// E6 (paper Sec. 3.3.2): window generalization sweep. Widening the
// learned rectangles increases robustness "but scaling them too much
// introduces the overlapping problem, i.e., patterns of different
// gestures detect the same movement". This harness sweeps the widening
// factor and reports detection rate, cross-gesture misfires, and the
// static overlap warnings of the Sec. 3.3.3 validator.

#include <cstdio>

#include "optimize/overlap.h"
#include "exp_util.h"

namespace epl {
namespace {

int Run() {
  bench::PrintHeader("E6: generalization (window widening) sweep",
                     "Sec. 3.3.2 (scaling step and the overlap problem)");

  std::vector<kinect::GestureShape> shapes = {
      kinect::GestureShapes::SwipeRight(), kinect::GestureShapes::Circle(),
      kinect::GestureShapes::RaiseHand(),
      kinect::GestureShapes::PushForward()};
  const int kTrials = 6;

  std::printf("%8s %14s %16s %18s\n", "widen", "detect rate",
              "cross misfires", "overlap warnings");

  for (double widen : {0.6, 1.0, 1.5, 2.5, 4.0, 6.0}) {
    core::LearnerConfig config;
    config.generalize.widen_factor = widen;
    std::vector<core::GestureDefinition> definitions;
    for (size_t i = 0; i < shapes.size(); ++i) {
      definitions.push_back(bench::TrainDefinition(
          shapes[i], 4, 11000 + 100 * static_cast<uint64_t>(i), config));
    }

    // Detection rate averaged over the vocabulary.
    double rate_sum = 0.0;
    int cross_misfires = 0;
    for (size_t i = 0; i < shapes.size(); ++i) {
      rate_sum += bench::DetectionRate(definitions[i], shapes[i], kTrials,
                                       12000 + static_cast<uint64_t>(i));
      // Performances of gesture i evaluated against all other patterns.
      for (int t = 0; t < kTrials; ++t) {
        std::vector<int> counts = bench::CountDetections(
            definitions,
            bench::Performance(kinect::UserProfile(), shapes[i],
                               13000 + static_cast<uint64_t>(t)));
        for (size_t j = 0; j < definitions.size(); ++j) {
          if (j != i && counts[j] > 0) {
            ++cross_misfires;
          }
        }
      }
    }
    size_t overlap_warnings =
        optimize::ValidateVocabulary(definitions).size();

    std::printf("%8.1f %13.0f%% %16d %18zu\n", widen,
                rate_sum / static_cast<double>(shapes.size()) * 100.0,
                cross_misfires, overlap_warnings);
  }

  std::printf(
      "\nexpected shape (paper): moderate widening keeps detection high\n"
      "with zero misfires; at large factors other gestures start firing\n"
      "the pattern, and the static validator flags the overlaps first.\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
