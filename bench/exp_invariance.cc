// E2 (paper Sec. 3.2, Fig. 3): user-invariance of the data
// transformation. Detection rate of a learned swipe_right across users
// who differ in position, body size, and orientation, with the
// transformation stages enabled vs disabled.
//
// Paper claim: the torso shift gives position invariance, the shoulder
// rotation gives orientation invariance, and the forearm scaling detects
// "the same gestures with children and adults".

#include <cstdio>

#include "exp_util.h"

namespace epl {
namespace {

struct UserCase {
  const char* label;
  kinect::UserProfile profile;
};

std::vector<UserCase> Cases() {
  std::vector<UserCase> cases;
  cases.push_back({"same as trainer", kinect::UserProfile()});
  kinect::UserProfile shifted;
  shifted.torso_position = Vec3(-600, 300, 3100);
  cases.push_back({"shifted 0.7m/1.1m", shifted});
  kinect::UserProfile child;
  child.height_mm = 1150;
  cases.push_back({"child (1.15m)", child});
  kinect::UserProfile turned;
  turned.yaw_rad = 0.6;
  cases.push_back({"turned 34 deg", turned});
  kinect::UserProfile all;
  all.height_mm = 1950;
  all.yaw_rad = -0.5;
  all.torso_position = Vec3(400, -100, 1600);
  cases.push_back({"tall+turned+shifted", all});
  return cases;
}

double RateFor(const core::GestureDefinition& definition,
               const kinect::GestureShape& shape,
               const kinect::UserProfile& user,
               const transform::TransformConfig& config, int trials,
               uint64_t seed_base) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> counts = bench::CountDetections(
        {definition},
        bench::Performance(user, shape, seed_base + static_cast<uint64_t>(t)),
        config);
    if (counts[0] > 0) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / trials;
}

int Run() {
  bench::PrintHeader(
      "E2: transformation invariance (detection rate per user)",
      "Sec. 3.2 / Fig. 3 (position, orientation, scale invariance)");

  kinect::GestureShape shape = kinect::GestureShapes::SwipeRight();
  const int kTrials = 6;

  transform::TransformConfig full;
  transform::TransformConfig none;
  none.translate = false;
  none.rotate = false;
  none.scale = false;
  transform::TransformConfig translate_only = none;
  translate_only.translate = true;
  transform::TransformConfig no_scale = full;
  no_scale.scale = false;

  struct Mode {
    const char* label;
    transform::TransformConfig config;
  };
  const Mode modes[] = {
      {"no transform", none},
      {"translate only", translate_only},
      {"translate+rotate", no_scale},
      {"full (t+r+s)", full},
  };

  std::printf("%-22s", "user \\ transform");
  for (const Mode& mode : modes) {
    std::printf("%18s", mode.label);
  }
  std::printf("\n");

  for (const UserCase& user_case : Cases()) {
    std::printf("%-22s", user_case.label);
    for (const Mode& mode : modes) {
      // Training always uses the mode's own transform so that train and
      // test observe the same coordinate space.
      core::LearnerConfig learner_config;
      core::GestureLearner learner(shape.name, shape.InvolvedJoints(),
                                   learner_config);
      kinect::UserProfile trainer;  // reference adult, centered
      for (int i = 0; i < 4; ++i) {
        std::vector<kinect::SkeletonFrame> frames = kinect::SynthesizeSample(
            trainer, shape, 100 + static_cast<uint64_t>(i));
        for (kinect::SkeletonFrame& frame : frames) {
          frame = transform::TransformFrame(frame, mode.config);
        }
        EPL_CHECK(learner.AddSample(frames).ok());
      }
      Result<core::GestureDefinition> definition = learner.Learn();
      EPL_CHECK(definition.ok()) << definition.status();
      double rate = RateFor(*definition, shape, user_case.profile,
                            mode.config, kTrials, 9000);
      std::printf("%17.0f%%", rate * 100.0);
    }
    std::printf("\n");
  }

  std::printf(
      "\nexpected shape (paper): near-100%% down the 'full' column; the\n"
      "'no transform' column collapses for shifted/turned/resized users.\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
