// Flattened multi-pattern runtime benchmarks: events/s of the columnar
// arena (MultiPatternMatcher) at 16/64/256 concurrent learned queries,
// and PredicateBank build cost at 2.5k / 10k distinct predicates (the
// checkpoint+delta region index is O(P^2/stride + P log P), a
// stride-factor cut over the dense O(P^2) index; compare the two build
// times in BENCH_flat_runtime.json).
//
// Program startup first runs a fused-vs-flattened cross-check: the
// flattened runtime must produce bit-identical matches to standalone
// NfaMatchers (the behavioral oracle) in both dominant and exhaustive
// mode, so the CI bench smoke doubles as an equivalence gate (it aborts
// before any benchmark runs, regardless of --benchmark_filter).

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cep/multi_matcher.h"
#include "cep/pattern.h"
#include "cep/predicate_bank.h"
#include "cep/simd.h"
#include "core/query_gen.h"
#include "exp_util.h"
#include "query/compiler.h"
#include "stream/schema.h"

namespace epl {
namespace {

std::vector<query::CompiledQuery> CompiledVariants(int count) {
  std::vector<query::CompiledQuery> compiled;
  compiled.reserve(static_cast<size_t>(count));
  for (const core::GestureDefinition& definition :
       bench::LearnedVariants(count)) {
    Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
    EPL_CHECK(parsed.ok()) << parsed.status();
    Result<query::CompiledQuery> query =
        query::CompileQuery(*parsed, kinect::KinectSchema());
    EPL_CHECK(query.ok()) << query.status();
    compiled.push_back(std::move(query).value());
  }
  return compiled;
}

/// The flattened runtime against the standalone per-query oracle: every
/// pattern's match stream must be bit-identical, whether events are fed
/// one at a time or in ProcessBatch windows.
void VerifyFlatEquivalence(cep::MatcherOptions::Mode mode,
                           size_t batch_size) {
  std::vector<query::CompiledQuery> queries = CompiledVariants(16);
  cep::MatcherOptions options;
  options.mode = mode;
  cep::MultiPatternMatcher multi(options);
  std::vector<std::unique_ptr<cep::NfaMatcher>> oracle;
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
    oracle.push_back(
        std::make_unique<cep::NfaMatcher>(&query.pattern, options));
  }

  const std::vector<stream::Event>& events = bench::MatchWorkload();
  std::vector<std::vector<cep::PatternMatch>> flat(queries.size());
  std::vector<std::vector<cep::PatternMatch>> reference(queries.size());
  std::vector<cep::MultiPatternMatcher::MultiMatch> scratch;
  size_t pos = 0;
  while (pos < events.size()) {
    const size_t chunk = std::min(batch_size, events.size() - pos);
    scratch.clear();
    if (batch_size <= 1) {
      multi.Process(events[pos], &scratch);
    } else {
      multi.ProcessBatch(events.data() + pos, chunk, &scratch);
    }
    for (cep::MultiPatternMatcher::MultiMatch& match : scratch) {
      flat[static_cast<size_t>(match.pattern_index)].push_back(
          std::move(match.match));
    }
    pos += chunk;
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const stream::Event& event : events) {
      oracle[q]->Process(event, &reference[q]);
    }
  }

  size_t total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    EPL_CHECK(flat[q].size() == reference[q].size())
        << queries[q].name << ": " << flat[q].size() << " vs "
        << reference[q].size() << " matches (batch " << batch_size << ")";
    for (size_t m = 0; m < flat[q].size(); ++m) {
      EPL_CHECK(flat[q][m].state_times == reference[q][m].state_times)
          << queries[q].name << " match " << m
          << " diverged from the NfaMatcher oracle (batch " << batch_size
          << ")";
    }
    total += flat[q].size();
  }
  EPL_CHECK(total > 0) << "equivalence workload produced no matches";
}

/// Batched-vs-per-event dominance: ProcessBatch at B=32 must not be
/// slower than per-event Process on the same 256-query workload (the
/// regression the SIMD gate grid fixed). Wall-clock best-of-N with a
/// noise slack, so a CI-runner hiccup cannot flake the gate while a real
/// return of the regression (batched 2x slower pre-fix) still trips it.
void VerifyBatchedDominance() {
  constexpr int kQueries = 256;
  constexpr size_t kBatch = 32;
  constexpr int kPasses = 3;
  constexpr double kSlack = 0.85;  // batched >= 85% of per-event events/s
  std::vector<query::CompiledQuery> queries = CompiledVariants(kQueries);
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  std::vector<cep::MultiPatternMatcher::MultiMatch> scratch;

  auto time_once = [&](auto&& run) {
    cep::MultiPatternMatcher multi;
    for (const query::CompiledQuery& query : queries) {
      multi.AddPattern(&query.pattern);
    }
    const auto start = std::chrono::steady_clock::now();
    run(multi);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  auto run_per_event = [&](cep::MultiPatternMatcher& multi) {
    for (const stream::Event& event : events) {
      scratch.clear();
      multi.Process(event, &scratch);
      benchmark::DoNotOptimize(scratch.size());
    }
  };
  auto run_batched = [&](cep::MultiPatternMatcher& multi) {
    size_t pos = 0;
    while (pos < events.size()) {
      const size_t chunk = std::min(kBatch, events.size() - pos);
      scratch.clear();
      multi.ProcessBatch(events.data() + pos, chunk, &scratch);
      benchmark::DoNotOptimize(scratch.size());
      pos += chunk;
    }
  };
  // Passes ALTERNATE modes so slow drift of the machine (frequency,
  // cache, a co-tenant ramping up) hits both sides alike instead of
  // biasing whichever mode happened to be timed second.
  double per_event = std::numeric_limits<double>::infinity();
  double batched = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    per_event = std::min(per_event, time_once(run_per_event));
    batched = std::min(batched, time_once(run_batched));
  }
  EPL_CHECK(batched <= per_event / kSlack)
      << "batched (B=" << kBatch << ") slower than per-event at " << kQueries
      << " queries: " << batched << "s vs " << per_event
      << "s (dispatch: " << cep::simd::DispatchName() << ")";
}

/// Run the cross-check at program start, not lazily inside a benchmark:
/// the gate must hold even when a --benchmark_filter skips every
/// benchmark that would have tripped it. Batched legs gate the
/// ProcessFlatBatch path the batch-sweep benchmark below measures.
const bool kFlatEquivalenceVerified = [] {
  VerifyFlatEquivalence(cep::MatcherOptions::Mode::kDominant, 1);
  VerifyFlatEquivalence(cep::MatcherOptions::Mode::kDominant, 8);
  VerifyFlatEquivalence(cep::MatcherOptions::Mode::kDominant, 64);
  VerifyFlatEquivalence(cep::MatcherOptions::Mode::kExhaustive, 1);
  VerifyFlatEquivalence(cep::MatcherOptions::Mode::kExhaustive, 8);
  VerifyBatchedDominance();
  // Which kernel table served this run, recorded into the JSON context
  // block so artifact diffs across machines are attributable.
  benchmark::AddCustomContext("simd_dispatch", cep::simd::DispatchName());
  return true;
}();

/// The columnar arena end to end: one MultiPatternMatcher serving N
/// distinct learned queries that all fire on the workload.
void BM_FlatRuntimeConcurrentQueries(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  std::vector<query::CompiledQuery> queries = CompiledVariants(num_queries);
  cep::MultiPatternMatcher multi;
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
  }
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  std::vector<cep::MultiPatternMatcher::MultiMatch> scratch;
  uint64_t matches = 0;
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      scratch.clear();
      multi.Process(event, &scratch);
      matches += scratch.size();
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = num_queries;
  state.counters["bank_predicates"] = multi.bank().num_predicates();
  const cep::PredicateBankStats& bank_stats = multi.bank().stats();
  const double stabs = static_cast<double>(bank_stats.region_memo_hits +
                                           bank_stats.region_searches);
  state.counters["memo_hit_rate"] =
      stabs > 0 ? static_cast<double>(bank_stats.region_memo_hits) / stabs
                : 0.0;
}
BENCHMARK(BM_FlatRuntimeConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

/// The batch sweep: events/s of ProcessBatch at window size B (range 0)
/// under N concurrent queries (range 1). B = 1 measures the batched
/// path's fixed overhead against BM_FlatRuntimeConcurrentQueries; rising
/// B amortizes the per-pattern sweep setup and the bank's per-field walk.
void BM_FlatRuntimeBatched(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const int num_queries = static_cast<int>(state.range(1));
  std::vector<query::CompiledQuery> queries = CompiledVariants(num_queries);
  cep::MultiPatternMatcher multi;
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
  }
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  std::vector<cep::MultiPatternMatcher::MultiMatch> scratch;
  uint64_t matches = 0;
  for (auto _ : state) {
    size_t pos = 0;
    while (pos < events.size()) {
      const size_t chunk = std::min(batch_size, events.size() - pos);
      scratch.clear();
      multi.ProcessBatch(events.data() + pos, chunk, &scratch);
      matches += scratch.size();
      pos += chunk;
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["queries"] = num_queries;
}
BENCHMARK(BM_FlatRuntimeBatched)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({32, 16})
    ->Args({128, 16})
    ->Args({1, 64})
    ->Args({8, 64})
    ->Args({32, 64})
    ->Args({128, 64})
    ->Args({1, 256})
    ->Args({8, 256})
    ->Args({32, 256})
    ->Args({128, 256});

/// Bank construction at paper-scale predicate counts. The checkpoint+delta
/// region index cuts build time and index_bytes by the stride factor:
/// compare the 2500 and 10000 rows (a dense per-region bitset index grows
/// ~16x from 2500 to 10000; this one grows ~5x).
void BM_BankBuildManyPredicates(benchmark::State& state) {
  const int num_predicates = static_cast<int>(state.range(0));
  const stream::Schema schema(std::vector<std::string>{"x", "y", "z"});
  const char* kFields[] = {"x", "y", "z"};
  std::vector<cep::CompiledPattern> patterns;
  patterns.reserve(static_cast<size_t>(num_predicates));
  for (int i = 0; i < num_predicates; ++i) {
    // Distinct center per predicate => no dedup; ~P/3 intervals per field.
    cep::PatternExprPtr pose = cep::PatternExpr::Pose(
        "s", cep::Expr::RangePredicate(kFields[i % 3], -2500.0 + 0.5 * i,
                                       5.0 + 3.0 * (i % 7)));
    Result<cep::CompiledPattern> compiled =
        cep::CompiledPattern::Compile(*pose, schema);
    EPL_CHECK(compiled.ok()) << compiled.status();
    patterns.push_back(std::move(compiled).value());
  }

  size_t index_bytes = 0;
  for (auto _ : state) {
    cep::PredicateBank bank;
    for (const cep::CompiledPattern& pattern : patterns) {
      benchmark::DoNotOptimize(bank.RegisterPattern(pattern));
    }
    bank.Build();
    EPL_CHECK(bank.num_decomposable() == num_predicates);
    index_bytes = bank.index_bytes();
    benchmark::DoNotOptimize(index_bytes);
  }
  state.counters["predicates"] = num_predicates;
  state.counters["index_bytes"] = static_cast<double>(index_bytes);
}
BENCHMARK(BM_BankBuildManyPredicates)
    ->Arg(2500)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace epl
