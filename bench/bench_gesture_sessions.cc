// Multi-user serving throughput: N concurrent sessions, each with 16
// learned gesture queries, on one machine. The legacy architecture gives
// every gesture its own per-query operator on the session's own stream;
// the shared GestureRuntime merges all sessions onto ONE stream and hosts
// every query in one fused runtime -- identical gestures dedup in the
// shared predicate bank, and per-session gate groups skip an entire
// foreign session with one predicate read per event, so per-event cost is
// sub-linear in the number of idle sessions.
//
// Startup runs a differential gate: the shared runtime must produce
// bit-identical per-session detections to the legacy per-query deployment
// before anything is measured.

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "cep/simd.h"
#include "exp_util.h"
#include "kinect/skeleton.h"
#include "workflow/composite.h"
#include "workflow/gesture_runtime.h"

namespace epl {
namespace {

using kinect::SkeletonFrame;
using workflow::GestureRuntime;
using workflow::GestureRuntimeOptions;
using workflow::RuntimeBackend;
using workflow::SessionId;

constexpr int kGesturesPerSession = 16;
constexpr int kMaxSessions = 64;

/// Per-session frame scripts, pre-transformed into kinect_t space (the
/// runtime merges raw session streams; transform_sessions is off). Each
/// session performs the gestures the deployed queries detect, with a
/// per-session seed so values differ across users.
const std::vector<std::vector<SkeletonFrame>>& SessionFrames() {
  static const std::vector<std::vector<SkeletonFrame>>* frames = [] {
    auto* out = new std::vector<std::vector<SkeletonFrame>>();
    transform::TransformConfig config;
    for (int s = 0; s < kMaxSessions; ++s) {
      kinect::SessionBuilder builder(kinect::UserProfile(),
                                     1000 + static_cast<uint64_t>(s));
      builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.2);
      builder.Perform(kinect::GestureShapes::RaiseHand(), 0.1);
      builder.Idle(0.3);
      std::vector<SkeletonFrame> transformed;
      transformed.reserve(builder.frames().size());
      for (const SkeletonFrame& frame : builder.frames()) {
        transformed.push_back(transform::TransformFrame(frame, config));
      }
      out->push_back(std::move(transformed));
    }
    return out;
  }();
  return *frames;
}

/// Globally timestamp-merged (session, frame) feed over the first
/// `sessions` scripts -- the arrival order a server would see. Stable:
/// ties and within-session order keep ascending session order. Session
/// counts beyond kMaxSessions reuse the scripts round-robin; the session
/// ids (and thus gate groups / routing keys) stay distinct.
std::vector<std::pair<SessionId, const SkeletonFrame*>> BuildFeed(
    int sessions) {
  const std::vector<std::vector<SkeletonFrame>>& frames = SessionFrames();
  std::vector<std::pair<SessionId, const SkeletonFrame*>> feed;
  for (int s = 0; s < sessions; ++s) {
    for (const SkeletonFrame& frame :
         frames[static_cast<size_t>(s) % frames.size()]) {
      feed.emplace_back(s, &frame);
    }
  }
  std::stable_sort(feed.begin(), feed.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->timestamp < b.second->timestamp;
                   });
  return feed;
}

GestureRuntimeOptions MakeOptions(RuntimeBackend backend, size_t batch_size,
                                  int num_shards) {
  GestureRuntimeOptions options;
  options.backend = backend;
  options.batch_size = batch_size;
  options.num_shards = num_shards;
  options.transform_sessions = false;  // frames are pre-transformed
  options.sync_detections = false;     // throughput mode; Flush per pass
  return options;
}

/// Opens `sessions` sessions and deploys the 16-query fleet in each.
std::vector<SessionId> DeployFleet(GestureRuntime* runtime, int sessions,
                                   uint64_t* detections) {
  const std::vector<core::GestureDefinition> definitions =
      bench::LearnedVariants(kGesturesPerSession);
  std::vector<SessionId> ids;
  for (int s = 0; s < sessions; ++s) {
    Result<SessionId> id = runtime->OpenSession("u" + std::to_string(s));
    EPL_CHECK(id.ok()) << id.status();
    for (const core::GestureDefinition& definition : definitions) {
      EPL_CHECK(runtime
                    ->Deploy(*id, definition,
                             [detections](const cep::Detection&) {
                               ++*detections;
                             })
                    .ok());
    }
    ids.push_back(*id);
  }
  return ids;
}

/// Differential gate: per-session detections of the shared runtime vs the
/// legacy per-query deployment, bit-exact and non-empty.
void VerifySessionEquivalence() {
  using Record = std::tuple<int, std::string, TimePoint,
                            std::vector<TimePoint>>;
  const int sessions = 4;
  auto run = [&](RuntimeBackend backend, size_t batch_size) {
    std::vector<Record> records;
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, MakeOptions(backend, batch_size, 1));
    const std::vector<core::GestureDefinition> definitions =
        bench::LearnedVariants(4);
    for (int s = 0; s < sessions; ++s) {
      Result<SessionId> id = runtime.OpenSession("u" + std::to_string(s));
      EPL_CHECK(id.ok()) << id.status();
      for (const core::GestureDefinition& definition : definitions) {
        const int session = *id;
        EPL_CHECK(runtime
                      .Deploy(*id, definition,
                              [&records, session](const cep::Detection& d) {
                                records.emplace_back(session, d.name, d.time,
                                                     d.pose_times);
                              })
                      .ok());
      }
    }
    for (const auto& [session, frame] : BuildFeed(sessions)) {
      EPL_CHECK(runtime.PushFrame(session, *frame).ok());
    }
    EPL_CHECK(runtime.Flush().ok());
    return records;
  };
  const std::vector<Record> legacy =
      run(RuntimeBackend::kLegacyPerQuery, 1);
  const std::vector<Record> fused = run(RuntimeBackend::kFused, 1);
  const std::vector<Record> batched = run(RuntimeBackend::kFused, 32);
  EPL_CHECK(!legacy.empty()) << "equivalence workload produced no detections";
  EPL_CHECK(fused == legacy)
      << "shared runtime diverged from legacy per-query deployment ("
      << fused.size() << " vs " << legacy.size() << " detections)";
  EPL_CHECK(batched == legacy)
      << "batched shared runtime diverged from legacy per-query deployment ("
      << batched.size() << " vs " << legacy.size() << " detections)";
}

/// Batched-vs-per-event dominance at every session count: the batched
/// shared runtime (B=32) must not be slower than the per-event shared
/// runtime on the same feed. Before the SIMD gate grid, batched LOST at
/// 64 sessions (the scalar per-(group, event) grid plus full-window member
/// scans outweighed the sweep amortization); this gate keeps that
/// regression dead. Wall-clock best-of-N with a noise slack for CI.
void VerifyBatchedDominance() {
  constexpr int kPasses = 3;
  constexpr double kSlack = 0.85;  // batched >= 85% of per-event events/s
  for (int sessions : {1, 8, 64}) {
    const std::vector<std::pair<SessionId, const SkeletonFrame*>> feed =
        BuildFeed(sessions);
    auto time_once = [&](size_t batch_size) {
      stream::StreamEngine engine;
      GestureRuntime runtime(
          &engine, MakeOptions(RuntimeBackend::kFused, batch_size, 1));
      uint64_t detections = 0;
      DeployFleet(&runtime, sessions, &detections);
      const auto start = std::chrono::steady_clock::now();
      for (const auto& [session, frame] : feed) {
        Status status = runtime.PushFrame(session, *frame);
        benchmark::DoNotOptimize(status.ok());
      }
      Status status = runtime.Flush();
      benchmark::DoNotOptimize(status.ok());
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      benchmark::DoNotOptimize(detections);
      return seconds;
    };
    // Passes ALTERNATE modes so slow drift of the machine (frequency,
    // cache, a co-tenant ramping up) hits both sides alike instead of
    // biasing whichever mode happened to be timed second.
    double per_event = std::numeric_limits<double>::infinity();
    double batched = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      per_event = std::min(per_event, time_once(1));
      batched = std::min(batched, time_once(32));
    }
    EPL_CHECK(batched <= per_event / kSlack)
        << "batched (B=32) slower than per-event at " << sessions
        << " sessions: " << batched << "s vs " << per_event
        << "s (dispatch: " << cep::simd::DispatchName() << ")";
  }
}

void RunSessions(benchmark::State& state, RuntimeBackend backend,
                 size_t batch_size, int num_shards) {
  static bool verified = [] {
    VerifySessionEquivalence();
    VerifyBatchedDominance();
    // Which kernel table served this run, recorded into the JSON context
    // block so artifact diffs across machines are attributable.
    benchmark::AddCustomContext("simd_dispatch", cep::simd::DispatchName());
    return true;
  }();
  (void)verified;
  const int sessions = static_cast<int>(state.range(0));
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine,
                         MakeOptions(backend, batch_size, num_shards));
  uint64_t detections = 0;
  DeployFleet(&runtime, sessions, &detections);
  const std::vector<std::pair<SessionId, const SkeletonFrame*>> feed =
      BuildFeed(sessions);
  for (auto _ : state) {
    for (const auto& [session, frame] : feed) {
      Status status = runtime.PushFrame(session, *frame);
      benchmark::DoNotOptimize(status.ok());
    }
    Status status = runtime.Flush();
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(feed.size()));
  state.counters["sessions"] = sessions;
  state.counters["queries"] = sessions * kGesturesPerSession;
  benchmark::DoNotOptimize(detections);
}

/// Legacy architecture: one per-query operator per gesture per session.
void BM_SessionsLegacyPerQuery(benchmark::State& state) {
  RunSessions(state, RuntimeBackend::kLegacyPerQuery, 1, 1);
}
BENCHMARK(BM_SessionsLegacyPerQuery)->Arg(1)->Arg(8)->Arg(64);

/// Shared runtime, per-event execution (interactive mode).
void BM_SessionsSharedRuntime(benchmark::State& state) {
  RunSessions(state, RuntimeBackend::kFused, 1, 1);
}
BENCHMARK(BM_SessionsSharedRuntime)->Arg(1)->Arg(8)->Arg(64);

/// Shared runtime, batched sweeps (offline replay mode).
void BM_SessionsSharedRuntimeBatched(benchmark::State& state) {
  RunSessions(state, RuntimeBackend::kFused, 32, 1);
}
BENCHMARK(BM_SessionsSharedRuntimeBatched)->Arg(1)->Arg(8)->Arg(64);

/// Shared runtime on the sharded engine (2 shards; on a 1-core container
/// the shards serialize -- this leg is a plumbing record, the multi-core
/// scaling lives in bench_sharded_engine).
void BM_SessionsSharedSharded(benchmark::State& state) {
  RunSessions(state, RuntimeBackend::kSharded, 32, 2);
}
BENCHMARK(BM_SessionsSharedSharded)->Arg(8)->Arg(64);

/// Producer fan-out window for the routed benchmark. Larger than the
/// interactive B=32 default: with 64+ interleaved sessions a 32-event
/// window splits into ~8-event sub-batches per shard, too small for the
/// flat path's sweep amortization; 128 keeps routed sub-batches
/// sweep-sized without changing detections (batch size never affects
/// results -- the startup gate checks fused B=32 against sharded B=128).
constexpr size_t kFanoutBatch = 128;

GestureRuntimeOptions MakeRoutedOptions(bool routed, size_t batch_size,
                                        int num_shards) {
  GestureRuntimeOptions options =
      MakeOptions(RuntimeBackend::kSharded, batch_size, num_shards);
  options.route_session_events = routed;
  options.shard_placement = routed ? cep::ShardPlacement::kSessionAffinity
                                   : cep::ShardPlacement::kBalanced;
  return options;
}

/// One full pass over `sessions` sessions on the sharded backend; returns
/// the fan-out copies enqueued per pushed event (events_routed includes
/// every per-shard copy, so broadcast reads ~num_shards and routed reads
/// ~1 when each event interests exactly one shard).
double MeasureCopiesPerEvent(bool routed, int sessions, int num_shards) {
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, MakeRoutedOptions(routed, kFanoutBatch, num_shards));
  uint64_t detections = 0;
  DeployFleet(&runtime, sessions, &detections);
  const std::vector<std::pair<SessionId, const SkeletonFrame*>> feed =
      BuildFeed(sessions);
  for (const auto& [session, frame] : feed) {
    EPL_CHECK(runtime.PushFrame(session, *frame).ok());
  }
  EPL_CHECK(runtime.Flush().ok());
  benchmark::DoNotOptimize(detections);
  const cep::ShardedEngine::EngineStats stats = runtime.ShardedStats();
  return static_cast<double>(stats.events_routed) /
         static_cast<double>(feed.size());
}

/// Startup gate for the routed fan-out path: (a) routed sharded execution
/// at 1 and 4 shards and broadcast sharded execution at 4 shards must all
/// produce bit-identical per-session detections to the fused runtime;
/// (b) at the acceptance workload (64 sessions x 16 gestures x 4 shards)
/// interest routing must cut fan-out copies per event by >= 2x vs
/// broadcast. Both measured numbers land in the JSON context block.
void VerifyRoutedFanout() {
  using Record = std::tuple<int, std::string, TimePoint,
                            std::vector<TimePoint>>;
  const int sessions = 8;
  auto run = [&](const GestureRuntimeOptions& options) {
    std::vector<Record> records;
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, options);
    const std::vector<core::GestureDefinition> definitions =
        bench::LearnedVariants(4);
    for (int s = 0; s < sessions; ++s) {
      Result<SessionId> id = runtime.OpenSession("u" + std::to_string(s));
      EPL_CHECK(id.ok()) << id.status();
      for (const core::GestureDefinition& definition : definitions) {
        const int session = *id;
        EPL_CHECK(runtime
                      .Deploy(*id, definition,
                              [&records, session](const cep::Detection& d) {
                                records.emplace_back(session, d.name, d.time,
                                                     d.pose_times);
                              })
                      .ok());
      }
    }
    for (const auto& [session, frame] : BuildFeed(sessions)) {
      EPL_CHECK(runtime.PushFrame(session, *frame).ok());
    }
    EPL_CHECK(runtime.Flush().ok());
    return records;
  };
  const std::vector<Record> fused =
      run(MakeOptions(RuntimeBackend::kFused, 32, 1));
  EPL_CHECK(!fused.empty()) << "routed-fanout workload produced no detections";
  for (const int shards : {1, 4}) {
    const std::vector<Record> routed = run(MakeRoutedOptions(true, kFanoutBatch, shards));
    EPL_CHECK(routed == fused)
        << "routed sharded runtime diverged from fused at " << shards
        << " shards (" << routed.size() << " vs " << fused.size()
        << " detections)";
  }
  const std::vector<Record> broadcast = run(MakeRoutedOptions(false, kFanoutBatch, 4));
  EPL_CHECK(broadcast == fused)
      << "broadcast sharded runtime diverged from fused (" << broadcast.size()
      << " vs " << fused.size() << " detections)";

  const double routed_copies = MeasureCopiesPerEvent(true, 64, 4);
  const double broadcast_copies = MeasureCopiesPerEvent(false, 64, 4);
  EPL_CHECK(routed_copies * 2.0 <= broadcast_copies)
      << "interest routing saved < 2x fan-out copies at 64 sessions x "
      << kGesturesPerSession << " gestures x 4 shards: " << routed_copies
      << " vs " << broadcast_copies << " copies/event";
  benchmark::AddCustomContext("routed_copies_per_event",
                              std::to_string(routed_copies));
  benchmark::AddCustomContext("broadcast_copies_per_event",
                              std::to_string(broadcast_copies));
}

/// Fan-out cost of the sharded backend under multi-session load:
/// broadcast (every event to every shard, balanced placement) vs interest
/// routing (session-affinity placement, per-shard interest filters).
/// Args: {sessions, shards, routed}. The copies_per_event counter is the
/// average number of per-shard enqueues each pushed event cost;
/// scripts/check_scaling.py asserts routed < broadcast at 4 shards.
void BM_SessionRoutedFanout(benchmark::State& state) {
  static bool verified = [] {
    VerifyRoutedFanout();
    return true;
  }();
  (void)verified;
  const int sessions = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const bool routed = state.range(2) != 0;
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, MakeRoutedOptions(routed, kFanoutBatch, num_shards));
  uint64_t detections = 0;
  DeployFleet(&runtime, sessions, &detections);
  const std::vector<std::pair<SessionId, const SkeletonFrame*>> feed =
      BuildFeed(sessions);
  for (auto _ : state) {
    for (const auto& [session, frame] : feed) {
      Status status = runtime.PushFrame(session, *frame);
      benchmark::DoNotOptimize(status.ok());
    }
    Status status = runtime.Flush();
    benchmark::DoNotOptimize(status.ok());
  }
  const cep::ShardedEngine::EngineStats stats = runtime.ShardedStats();
  const double events = static_cast<double>(state.iterations()) *
                        static_cast<double>(feed.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(feed.size()));
  state.counters["sessions"] = sessions;
  state.counters["queries"] = sessions * kGesturesPerSession;
  state.counters["shards"] = num_shards;
  state.counters["routed"] = routed ? 1 : 0;
  state.counters["copies_per_event"] =
      static_cast<double>(stats.events_routed) / events;
  state.counters["skipped_per_event"] =
      static_cast<double>(stats.events_skipped_by_filter) / events;
  state.counters["fanout_subbatches"] =
      static_cast<double>(stats.fanout_subbatches);
  state.counters["advance_tokens"] = static_cast<double>(stats.advance_tokens);
  state.counters["affinity_moves"] = static_cast<double>(stats.affinity_moves);
  state.counters["worker_wakeups_per_event"] =
      static_cast<double>(stats.worker_wakeups) / events;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_SessionRoutedFanout)
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 4, 0})
    ->Args({64, 4, 1})
    ->Args({256, 1, 0})
    ->Args({256, 1, 1})
    ->Args({256, 4, 0})
    ->Args({256, 4, 1})
    // Wall-clock items/s (the fan-out win is pipeline throughput), with
    // process CPU recorded so the saved per-shard filter work shows up
    // even when shards serialize on a small CI runner.
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Flat-path guard for composite gestures: with ZERO composites deployed
/// the per-event cost must be unchanged. The composite runner is lazily
/// allocated, so the guard times the worst zero-composite shape -- a
/// runtime that DID deploy a composite once and undeployed it (runner
/// allocated, epoch hooks armed, but inactive) -- against a
/// never-composite runtime on the identical feed, best-of-N with
/// alternating modes (see VerifyBatchedDominance) so machine drift hits
/// both sides alike. The <= 5% ceiling is enforced here at startup, and
/// the recorded overhead_pct counter is re-gated against the main-branch
/// baseline by scripts/bench_compare.py.
void BM_CompositeOverhead(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  const std::vector<std::pair<SessionId, const SkeletonFrame*>> feed =
      BuildFeed(sessions);
  const std::string input_name = bench::LearnedVariants(1)[0].name;
  auto make_runtime = [&](stream::StreamEngine* engine, uint64_t* detections,
                          bool touch_composite) {
    auto runtime = std::make_unique<GestureRuntime>(
        engine, MakeOptions(RuntimeBackend::kFused, 1, 1));
    std::vector<SessionId> ids =
        DeployFleet(runtime.get(), sessions, detections);
    if (touch_composite) {
      workflow::CompositeDefinition definition;
      definition.name = "composite_probe";
      definition.steps.push_back(workflow::CompositeStep{
          static_cast<int>(ids[0]), input_name, 1});
      EPL_CHECK(runtime
                    ->DeployComposite(ids[0], definition,
                                      [](const cep::Detection&) {})
                    .ok());
      EPL_CHECK(runtime->Undeploy(ids[0], "composite_probe").ok());
    }
    return runtime;
  };
  auto push_feed = [&](GestureRuntime* runtime) {
    for (const auto& [session, frame] : feed) {
      Status status = runtime->PushFrame(session, *frame);
      benchmark::DoNotOptimize(status.ok());
    }
    Status status = runtime->Flush();
    benchmark::DoNotOptimize(status.ok());
  };
  auto time_once = [&](bool touch_composite) {
    stream::StreamEngine engine;
    uint64_t detections = 0;
    auto runtime = make_runtime(&engine, &detections, touch_composite);
    const auto start = std::chrono::steady_clock::now();
    push_feed(runtime.get());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    benchmark::DoNotOptimize(detections);
    return seconds;
  };
  static const double overhead_pct = [&] {
    constexpr int kPasses = 5;
    double never = std::numeric_limits<double>::infinity();
    double touched = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      never = std::min(never, time_once(false));
      touched = std::min(touched, time_once(true));
    }
    const double pct = 100.0 * (touched / never - 1.0);
    EPL_CHECK(pct <= 5.0)
        << "composite machinery costs the zero-composite flat path " << pct
        << "% (" << touched << "s vs " << never << "s at " << sessions
        << " sessions); the acceptance ceiling is 5%";
    return pct;
  }();

  stream::StreamEngine engine;
  uint64_t detections = 0;
  auto runtime = make_runtime(&engine, &detections, true);
  for (auto _ : state) {
    push_feed(runtime.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(feed.size()));
  state.counters["sessions"] = sessions;
  state.counters["overhead_pct"] = std::max(0.0, overhead_pct);
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_CompositeOverhead)->Arg(8);

}  // namespace
}  // namespace epl
