// E4 (paper Sec. 3.3): "Usually, 3-5 samples are sufficient to achieve
// acceptable results." Detection rate as a function of the number of
// training samples, per gesture, evaluated across a panel of users that
// differ from the trainer.

#include <cstdio>

#include "exp_util.h"

namespace epl {
namespace {

int Run() {
  bench::PrintHeader("E4: detection rate vs number of training samples",
                     "Sec. 3.3 claim: '3-5 samples are sufficient'");

  const char* shapes[] = {"swipe_right", "circle", "raise_hand",
                          "push_forward", "hands_up"};
  const int kTrials = 10;

  std::printf("%-14s", "gesture");
  for (int n : {1, 2, 3, 4, 5, 6, 8}) {
    std::printf("   n=%d ", n);
  }
  std::printf("\n");

  for (const char* shape_name : shapes) {
    Result<kinect::GestureShape> shape =
        kinect::GestureShapes::ByName(shape_name);
    EPL_CHECK(shape.ok());
    std::printf("%-14s", shape_name);
    for (int n : {1, 2, 3, 4, 5, 6, 8}) {
      core::GestureDefinition definition =
          bench::TrainDefinition(*shape, n, 7000);
      double rate = bench::DetectionRate(definition, *shape, kTrials, 8000);
      std::printf("%6.0f%%", rate * 100.0);
    }
    std::printf("\n");
  }

  std::printf(
      "\nexpected shape (paper): low/unstable rates with 1-2 samples,\n"
      "acceptable from ~3 samples, saturating around 4-5 samples.\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
