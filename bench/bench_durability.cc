// Durability cost model: WAL ingest overhead and recovery time.
//
// BM_DurableIngest measures the same single-session fused workload with
// durability off and on (event WAL, group commit at the default
// sync_every_records), at 16 and 256 concurrent learned queries -- the
// flat-runtime fleet size. BM_DurableIngestOverhead pairs the two
// configurations pass-for-pass in one process and reports overhead_pct;
// that row is the acceptance statistic (budget: <= 15% at 256 queries),
// robust to the machine drifting between the standalone Off/On rows.
// Checkpoints run between timed iterations (PauseTiming), so the rows
// isolate pure append-path cost while the WAL stays pruned.
//
// BM_RecoverReplay measures GestureRuntime::Recover wall time as a
// function of checkpoint age (frames logged after the last checkpoint =
// WAL suffix to replay). The age=0 row is snapshot-restore cost alone;
// the spread across rows is the replay rate, i.e. what a longer
// checkpoint interval buys you in ingest overhead you pay back at
// recovery time.
//
// Startup runs a recovery gate: a checkpointed runtime must recover with
// its session, query fleet, and ingest counters intact before anything
// is measured.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "durability/file.h"
#include "exp_util.h"
#include "kinect/skeleton.h"
#include "workflow/gesture_runtime.h"

namespace epl {
namespace {

using kinect::SkeletonFrame;
using workflow::GestureRuntime;
using workflow::GestureRuntimeOptions;
using workflow::RecoverStats;
using workflow::RuntimeBackend;
using workflow::SessionId;

/// Pre-transformed single-session frame script, long enough that the
/// deepest recovery row (2048-frame WAL suffix) replays real work.
const std::vector<SkeletonFrame>& BenchFrames() {
  static const std::vector<SkeletonFrame>* frames = [] {
    kinect::SessionBuilder builder(kinect::UserProfile(), 4711);
    while (builder.frames().size() < 2304) {
      builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.2);
      builder.Perform(kinect::GestureShapes::RaiseHand(), 0.1);
      builder.Idle(0.3);
    }
    transform::TransformConfig config;
    auto* out = new std::vector<SkeletonFrame>();
    out->reserve(builder.frames().size());
    for (const SkeletonFrame& frame : builder.frames()) {
      out->push_back(transform::TransformFrame(frame, config));
    }
    return out;
  }();
  return *frames;
}

/// Fresh WAL directory under the system temp root; RemoveTree cleans it.
std::string MakeWalDir() {
  std::string templ = "/tmp/epl_bench_durability_XXXXXX";
  char* made = ::mkdtemp(templ.data());
  EPL_CHECK(made != nullptr);
  return templ;
}

void RemoveTree(const std::string& dir) {
  durability::FileSystem* fs = durability::DefaultFileSystem();
  Result<std::vector<std::string>> names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)fs->Remove(dir + "/" + name);
    }
  }
  (void)::rmdir(dir.c_str());
}

GestureRuntimeOptions MakeOptions(const std::string& wal_dir) {
  GestureRuntimeOptions options;
  options.backend = RuntimeBackend::kFused;
  options.batch_size = 32;
  options.sync_detections = false;  // throughput mode; Flush per pass
  options.transform_sessions = false;
  options.durability.dir = wal_dir;  // empty: durability off
  return options;
}

SessionId DeployFleet(GestureRuntime* runtime, int queries,
                      uint64_t* detections) {
  Result<SessionId> session = runtime->OpenSession("u0");
  EPL_CHECK(session.ok()) << session.status();
  for (const core::GestureDefinition& definition :
       bench::LearnedVariants(queries)) {
    EPL_CHECK(runtime
                  ->Deploy(*session, definition,
                           [detections](const cep::Detection&) {
                             ++*detections;
                           })
                  .ok());
  }
  return *session;
}

/// Recovery gate: checkpoint a live runtime, recover it, and check the
/// session, fleet, and ingest counter all came back.
void VerifyRecovery() {
  const std::string dir = MakeWalDir();
  const std::vector<SkeletonFrame>& frames = BenchFrames();
  const size_t ingest = 512;
  uint64_t detections = 0;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, MakeOptions(dir));
    SessionId session = DeployFleet(&runtime, 16, &detections);
    for (size_t i = 0; i < ingest; ++i) {
      EPL_CHECK(runtime.PushFrame(session, frames[i]).ok());
    }
    EPL_CHECK(runtime.Checkpoint().ok());
  }
  stream::StreamEngine engine;
  RecoverStats stats;
  Result<std::unique_ptr<GestureRuntime>> recovered = GestureRuntime::Recover(
      &engine, MakeOptions(dir),
      [](SessionId, const std::string&) {
        return [](const cep::Detection&) {};
      },
      &stats);
  EPL_CHECK(recovered.ok()) << recovered.status();
  EPL_CHECK((*recovered)->num_deployed() == 16)
      << (*recovered)->num_deployed();
  EPL_CHECK(stats.ingested[0] == ingest) << stats.ingested[0];
  RemoveTree(dir);
}

void RunIngest(benchmark::State& state, bool durable) {
  static bool verified = [] {
    VerifyRecovery();
    return true;
  }();
  (void)verified;
  const int queries = static_cast<int>(state.range(0));
  const std::vector<SkeletonFrame>& frames = BenchFrames();
  const std::string dir = durable ? MakeWalDir() : "";
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, MakeOptions(dir));
    uint64_t detections = 0;
    SessionId session = DeployFleet(&runtime, queries, &detections);
    for (auto _ : state) {
      for (const SkeletonFrame& frame : frames) {
        Status status = runtime.PushFrame(session, frame);
        benchmark::DoNotOptimize(status.ok());
      }
      Status status = runtime.Flush();
      benchmark::DoNotOptimize(status.ok());
      if (durable) {
        // Prune the WAL between timed passes so the rows measure the
        // append path, not an ever-growing directory.
        state.PauseTiming();
        EPL_CHECK(runtime.Checkpoint().ok());
        state.ResumeTiming();
      }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(frames.size()));
    state.counters["queries"] = queries;
    state.counters["wal"] = durable ? 1 : 0;
    benchmark::DoNotOptimize(detections);
  }
  if (durable) RemoveTree(dir);
}

void BM_DurableIngestOff(benchmark::State& state) { RunIngest(state, false); }
BENCHMARK(BM_DurableIngestOff)->Arg(16)->Arg(256);

void BM_DurableIngestOn(benchmark::State& state) { RunIngest(state, true); }
BENCHMARK(BM_DurableIngestOn)->Arg(16)->Arg(256);

/// Paired overhead measurement: alternates a WAL-off pass and a WAL-on
/// pass within each iteration and reports the median-of-passes ratio as
/// `overhead_pct`. The separate Off/On rows above drift against each
/// other on a busy machine (they run minutes apart); this row is the
/// stable statistic the <= 15% acceptance bound is checked against.
void BM_DurableIngestOverhead(benchmark::State& state) {
  const int queries = static_cast<int>(state.range(0));
  const std::vector<SkeletonFrame>& frames = BenchFrames();
  const std::string dir = MakeWalDir();
  {
    stream::StreamEngine engine_off;
    stream::StreamEngine engine_on;
    GestureRuntime off(&engine_off, MakeOptions(""));
    GestureRuntime on(&engine_on, MakeOptions(dir));
    uint64_t detections = 0;
    const SessionId off_session = DeployFleet(&off, queries, &detections);
    const SessionId on_session = DeployFleet(&on, queries, &detections);
    auto pass = [&frames](GestureRuntime& runtime, SessionId session) {
      const auto start = std::chrono::steady_clock::now();
      for (const SkeletonFrame& frame : frames) {
        Status status = runtime.PushFrame(session, frame);
        benchmark::DoNotOptimize(status.ok());
      }
      Status status = runtime.Flush();
      benchmark::DoNotOptimize(status.ok());
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    std::vector<double> off_passes;
    std::vector<double> on_passes;
    for (auto _ : state) {
      off_passes.push_back(pass(off, off_session));
      on_passes.push_back(pass(on, on_session));
      state.PauseTiming();
      EPL_CHECK(on.Checkpoint().ok());
      state.ResumeTiming();
    }
    std::sort(off_passes.begin(), off_passes.end());
    std::sort(on_passes.begin(), on_passes.end());
    const double off_med = off_passes[off_passes.size() / 2];
    const double on_med = on_passes[on_passes.size() / 2];
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(frames.size()));
    state.counters["queries"] = queries;
    state.counters["overhead_pct"] = 100.0 * (on_med / off_med - 1.0);
    benchmark::DoNotOptimize(detections);
  }
  RemoveTree(dir);
}
BENCHMARK(BM_DurableIngestOverhead)->Arg(256);

/// Recover wall time vs checkpoint age (WAL suffix length in frames).
void BM_RecoverReplay(benchmark::State& state) {
  const size_t age = static_cast<size_t>(state.range(0));
  const std::vector<SkeletonFrame>& frames = BenchFrames();
  EPL_CHECK(age + 256 <= frames.size());
  const std::string dir = MakeWalDir();
  uint64_t detections = 0;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, MakeOptions(dir));
    SessionId session = DeployFleet(&runtime, 64, &detections);
    // 256 frames of pre-checkpoint history, then `age` frames of WAL
    // suffix the recovery must replay.
    for (size_t i = 0; i < 256; ++i) {
      EPL_CHECK(runtime.PushFrame(session, frames[i]).ok());
    }
    EPL_CHECK(runtime.Checkpoint().ok());
    for (size_t i = 256; i < 256 + age; ++i) {
      EPL_CHECK(runtime.PushFrame(session, frames[i]).ok());
    }
    EPL_CHECK(runtime.Flush().ok());
  }
  for (auto _ : state) {
    stream::StreamEngine engine;
    RecoverStats stats;
    Result<std::unique_ptr<GestureRuntime>> recovered =
        GestureRuntime::Recover(
            &engine, MakeOptions(dir),
            [](SessionId, const std::string&) {
              return [](const cep::Detection&) {};
            },
            &stats);
    EPL_CHECK(recovered.ok()) << recovered.status();
    benchmark::DoNotOptimize(stats.replayed_records);
  }
  state.counters["age_frames"] = static_cast<double>(age);
  RemoveTree(dir);
}
BENCHMARK(BM_RecoverReplay)->Arg(0)->Arg(256)->Arg(2048);

}  // namespace
}  // namespace epl
