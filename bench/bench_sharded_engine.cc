// Multi-core scaling of the sharded matching runtime: events/s of a
// ShardedEngine at 1/2/4/8 shards x 16-256 concurrent learned gesture
// queries, against the single-threaded fused operator it partitions
// (BM_FusedOperatorConcurrentQueries, the per-shard-count baseline is the
// 1-shard engine). Each shard owns a PredicateBank covering only its slice
// of the queries, so per-shard work shrinks roughly linearly and the
// speedup tracks available cores (a 1-core container serializes the
// shards; CI and the acceptance numbers come from multi-core runners).
//
// BM_ShardedQueryExchange measures the runtime add/remove control path:
// quiesce every shard at an event boundary, deliver pending matches,
// mutate + rebalance, resume (the lazy bank rebuild itself lands on the
// shard workers with the next batch).

#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "cep/multi_match_operator.h"
#include "cep/sharded_engine.h"
#include "core/query_gen.h"
#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

using bench::LearnedVariants;

/// Pre-rendered kinect_t workload: repeated swipe performances (shared
/// with bench_match_throughput.cc via exp_util.h).
const std::vector<stream::Event>& Workload() { return bench::MatchWorkload(); }

cep::MultiMatchOperator::QuerySpec MakeSpec(
    const core::GestureDefinition& definition, uint64_t* detections) {
  Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
  EPL_CHECK(parsed.ok()) << parsed.status();
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, kinect::KinectSchema());
  EPL_CHECK(compiled.ok()) << compiled.status();
  cep::MultiMatchOperator::QuerySpec spec;
  spec.output_name = std::move(compiled->name);
  spec.pattern = std::move(compiled->pattern);
  spec.measures = std::move(compiled->measures);
  if (detections != nullptr) {
    spec.callback = [detections](const cep::Detection&) { ++*detections; };
  }
  return spec;
}

/// One-shot cross-check: the sharded engine must produce exactly the
/// detections of the fused single-threaded operator, in every scheduling
/// mode (static, work-stealing, work-stealing + pinned/spinning workers).
void VerifyShardedEquivalence(int num_shards, bool work_stealing = false,
                              bool pin_and_spin = false) {
  using Record = std::tuple<std::string, TimePoint, std::vector<TimePoint>>;
  std::vector<core::GestureDefinition> definitions = LearnedVariants(16);
  std::vector<Record> fused;
  std::vector<Record> sharded_records;
  {
    cep::MultiMatchOperator op;
    for (const core::GestureDefinition& definition : definitions) {
      cep::MultiMatchOperator::QuerySpec spec = MakeSpec(definition, nullptr);
      spec.callback = [&fused](const cep::Detection& d) {
        fused.emplace_back(d.name, d.time, d.pose_times);
      };
      op.AddQuery(std::move(spec));
    }
    for (const stream::Event& event : Workload()) {
      EPL_CHECK(op.Process(event).ok());
    }
  }
  {
    cep::ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.work_stealing = work_stealing;
    options.pin_workers = pin_and_spin;
    options.spin_wait_iterations = pin_and_spin ? 1000 : 0;
    cep::ShardedEngine engine(options);
    for (const core::GestureDefinition& definition : definitions) {
      cep::MultiMatchOperator::QuerySpec spec = MakeSpec(definition, nullptr);
      spec.callback = [&sharded_records](const cep::Detection& d) {
        sharded_records.emplace_back(d.name, d.time, d.pose_times);
      };
      engine.AddQuery(std::move(spec));
    }
    EPL_CHECK(engine.Start().ok());
    for (const stream::Event& event : Workload()) {
      EPL_CHECK(engine.Push(event));
    }
    EPL_CHECK(engine.Stop().ok());
  }
  EPL_CHECK(fused == sharded_records)
      << "sharded engine diverged from fused operator (" << fused.size()
      << " vs " << sharded_records.size() << " detections)";
  EPL_CHECK(!fused.empty()) << "equivalence workload produced no detections";
}

/// Single-threaded fused operator baseline over the same query sets.
void BM_FusedOperatorConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  std::vector<core::GestureDefinition> definitions = LearnedVariants(queries);
  uint64_t detections = 0;
  cep::MultiMatchOperator op;
  for (const core::GestureDefinition& definition : definitions) {
    op.AddQuery(MakeSpec(definition, &detections));
  }
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = op.Process(event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_FusedOperatorConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

/// The sharded runtime. args: (shards, queries).
void BM_ShardedEngineConcurrentQueries(benchmark::State& state) {
  int num_shards = static_cast<int>(state.range(0));
  int queries = static_cast<int>(state.range(1));
  static bool verified = [] {
    VerifyShardedEquivalence(1);
    VerifyShardedEquivalence(4);
    VerifyShardedEquivalence(4, /*work_stealing=*/true);
    VerifyShardedEquivalence(4, /*work_stealing=*/true, /*pin_and_spin=*/true);
    return true;
  }();
  (void)verified;
  std::vector<core::GestureDefinition> definitions = LearnedVariants(queries);
  uint64_t detections = 0;
  cep::ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = 64;
  cep::ShardedEngine engine(options);
  for (const core::GestureDefinition& definition : definitions) {
    engine.AddQuery(MakeSpec(definition, &detections));
  }
  EPL_CHECK(engine.Start().ok());
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      bool accepted = engine.Push(event);
      benchmark::DoNotOptimize(accepted);
    }
    EPL_CHECK(engine.Flush().ok());
  }
  EPL_CHECK(engine.Stop().ok());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["shards"] = num_shards;
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_ShardedEngineConcurrentQueries)
    ->ArgsProduct({{1, 2, 4, 8}, {16, 64, 256}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The CI scaling gate: wall-clock events/s at 1/2/4 shards x 256 queries
/// with the full multi-core scheduler engaged (work stealing + pinned,
/// spin-then-park workers). scripts/check_scaling.py consumes these rows
/// and fails the build when 4 shards deliver < 2x the 1-shard rate on a
/// multi-core runner.
void BM_ShardedScaleOut(benchmark::State& state) {
  int num_shards = static_cast<int>(state.range(0));
  int queries = static_cast<int>(state.range(1));
  static bool verified = [] {
    for (int shards : {1, 2, 4}) {
      VerifyShardedEquivalence(shards, /*work_stealing=*/true,
                               /*pin_and_spin=*/true);
    }
    return true;
  }();
  (void)verified;
  std::vector<core::GestureDefinition> definitions = LearnedVariants(queries);
  uint64_t detections = 0;
  cep::ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = 64;
  options.work_stealing = true;
  options.pin_workers = true;
  options.spin_wait_iterations = 2000;
  cep::ShardedEngine engine(options);
  for (const core::GestureDefinition& definition : definitions) {
    engine.AddQuery(MakeSpec(definition, &detections));
  }
  EPL_CHECK(engine.Start().ok());
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      bool accepted = engine.Push(event);
      benchmark::DoNotOptimize(accepted);
    }
    EPL_CHECK(engine.Flush().ok());
  }
  const uint64_t stolen = engine.stolen_batches();
  const int pin_failures = engine.pin_failures();
  EPL_CHECK(engine.Stop().ok());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["shards"] = num_shards;
  state.counters["queries"] = queries;
  state.counters["stolen_batches"] = static_cast<double>(stolen);
  state.counters["pin_failures"] = pin_failures;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_ShardedScaleOut)
    ->ArgsProduct({{1, 2, 4}, {256}})
    ->UseRealTime();

/// Runtime gesture exchange on a live sharded stream: one AddQuery +
/// RemoveQuery pair per iteration, with a batch of events streamed in
/// between so the lazy bank rebuild is exercised on the workers.
void BM_ShardedQueryExchange(benchmark::State& state) {
  int num_shards = static_cast<int>(state.range(0));
  int queries = static_cast<int>(state.range(1));
  std::vector<core::GestureDefinition> definitions =
      LearnedVariants(queries + 1);
  uint64_t detections = 0;
  cep::ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = 16;
  cep::ShardedEngine engine(options);
  for (int q = 0; q < queries; ++q) {
    engine.AddQuery(MakeSpec(definitions[static_cast<size_t>(q)],
                             &detections));
  }
  EPL_CHECK(engine.Start().ok());
  const std::vector<stream::Event>& events = Workload();
  size_t cursor = 0;
  for (auto _ : state) {
    int id = engine.AddQuery(MakeSpec(definitions.back(), &detections));
    for (int i = 0; i < 32; ++i) {
      engine.Push(events[cursor]);
      cursor = (cursor + 1) % events.size();
    }
    EPL_CHECK(engine.RemoveQuery(id).ok());
  }
  EPL_CHECK(engine.Stop().ok());
  state.counters["shards"] = num_shards;
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_ShardedQueryExchange)->ArgsProduct({{1, 4}, {64, 256}});

}  // namespace
}  // namespace epl
