// E8 (paper Sec. 1 requirements): the learned patterns must be "robust
// enough to detect the intended gesture" and "selective enough to
// distinguish from other patterns". Full confusion matrix over the
// 8-gesture vocabulary plus false-positive counts on idle and random
// distractor motion.

#include <cstdio>

#include "exp_util.h"

namespace epl {
namespace {

struct MatrixResult {
  int diagonal = 0;
  int off_diagonal = 0;
};

MatrixResult PrintMatrix(const std::vector<std::string>& names,
                         const std::vector<kinect::GestureShape>& shapes,
                         const std::vector<core::GestureDefinition>& defs,
                         int trials) {
  std::printf("%-16s", "");
  for (const std::string& name : names) {
    std::printf("%7.6s", name.c_str());
  }
  std::printf("\n");
  MatrixResult result;
  for (size_t i = 0; i < shapes.size(); ++i) {
    std::vector<int> row(defs.size(), 0);
    std::vector<kinect::UserProfile> users = bench::TestUsers();
    for (int t = 0; t < trials; ++t) {
      std::vector<int> counts = bench::CountDetections(
          defs,
          bench::Performance(users[static_cast<size_t>(t) % users.size()],
                             shapes[i],
                             21000 + 37 * static_cast<uint64_t>(t) + i));
      for (size_t j = 0; j < counts.size(); ++j) {
        row[j] += counts[j] > 0 ? 1 : 0;
      }
    }
    std::printf("%-16s", names[i].c_str());
    for (size_t j = 0; j < row.size(); ++j) {
      std::printf("%7d", row[j]);
      if (i == j) {
        result.diagonal += row[j];
      } else {
        result.off_diagonal += row[j];
      }
    }
    std::printf("\n");
  }
  return result;
}

int Run() {
  bench::PrintHeader("E8: vocabulary confusion matrix",
                     "Sec. 1 (robust & selective requirements)");

  std::vector<std::string> names = kinect::GestureShapes::Names();
  std::vector<kinect::GestureShape> shapes;
  std::vector<core::GestureDefinition> definitions;
  for (size_t i = 0; i < names.size(); ++i) {
    Result<kinect::GestureShape> shape =
        kinect::GestureShapes::ByName(names[i]);
    EPL_CHECK(shape.ok());
    shapes.push_back(*shape);
    definitions.push_back(bench::TrainDefinition(
        *shape, 4, 20000 + 100 * static_cast<uint64_t>(i)));
  }

  const int kTrials = 5;
  std::printf(
      "rows: performed gesture; columns: sessions with >=1 detection\n\n"
      "--- as learned (involved joints only) ---\n");
  MatrixResult before = PrintMatrix(names, shapes, definitions, kTrials);

  // The paper's remedy for the overlap problem (Sec. 3.3.2): "easily
  // solved by manually adding additional constraints to generated queries
  // that separate conflicting gestures". Here: single-hand gestures gain
  // the constraint that the OTHER hand stays in its neutral region.
  std::vector<core::GestureDefinition> constrained = definitions;
  for (size_t i = 0; i < constrained.size(); ++i) {
    core::GestureDefinition& def = constrained[i];
    bool has_left = false;
    for (kinect::JointId joint : def.joints) {
      if (joint == kinect::JointId::kLeftHand) {
        has_left = true;
      }
    }
    if (has_left) {
      continue;  // two-hand gestures already constrain both
    }
    def.joints.push_back(kinect::JointId::kLeftHand);
    for (core::PoseWindow& pose : def.poses) {
      core::JointWindow neutral;
      neutral.center = kinect::NeutralLeftHandOffset();
      neutral.half_width = Vec3(160, 160, 160);
      pose.joints[kinect::JointId::kLeftHand] = neutral;
    }
  }
  std::printf("\n--- with manual separating constraints "
              "(other hand near neutral) ---\n");
  MatrixResult after = PrintMatrix(names, shapes, constrained, kTrials);

  int diagonal_hits = after.diagonal;
  int off_diagonal = after.off_diagonal;
  std::printf("\noff-diagonal fires: %d before, %d after the manual "
              "constraints\n", before.off_diagonal, after.off_diagonal);

  // Negative controls.
  int idle_fp = 0;
  int distract_fp = 0;
  for (int t = 0; t < kTrials; ++t) {
    kinect::FrameSynthesizer idle_synth(kinect::UserProfile(),
                                        22000 + static_cast<uint64_t>(t));
    std::vector<int> idle_counts =
        bench::CountDetections(definitions, idle_synth.Idle(4.0));
    kinect::FrameSynthesizer distract_synth(
        kinect::UserProfile(), 23000 + static_cast<uint64_t>(t));
    std::vector<int> distract_counts =
        bench::CountDetections(definitions, distract_synth.Distract(4.0));
    for (size_t j = 0; j < definitions.size(); ++j) {
      idle_fp += idle_counts[j];
      distract_fp += distract_counts[j];
    }
  }

  int max_diagonal = static_cast<int>(shapes.size()) * kTrials;
  std::printf("diagonal (true detections):   %d / %d\n", diagonal_hits,
              max_diagonal);
  std::printf("off-diagonal (cross fires):   %d\n", off_diagonal);
  std::printf("idle false positives:         %d (over %d x 4 s idle)\n",
              idle_fp, kTrials);
  std::printf("distractor false positives:   %d (over %d x 4 s random)\n",
              distract_fp, kTrials);
  std::printf(
      "\nexpected shape (paper): a dominant diagonal. Residual cross fires\n"
      "are genuine containments (hands_up moves the right hand exactly\n"
      "like raise_hand) — the paper's overlap problem, reduced here by\n"
      "the manual separating constraints of Sec. 3.3.2.\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
