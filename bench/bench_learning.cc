// E11: learning cost. The paper's workflow is interactive — after each
// recorded sample the miner runs and partial results merge incrementally —
// so learning must be far below human reaction time.

#include <benchmark/benchmark.h>

#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

std::vector<std::vector<kinect::SkeletonFrame>> TransformedSamples(
    int count, double duration_s) {
  kinect::GestureShape shape = kinect::GestureShapes::Circle();
  kinect::MotionParams params;
  params.duration_s = duration_s;
  std::vector<std::vector<kinect::SkeletonFrame>> samples;
  for (int i = 0; i < count; ++i) {
    std::vector<kinect::SkeletonFrame> frames = kinect::SynthesizeSample(
        kinect::UserProfile(), shape, 50000 + static_cast<uint64_t>(i),
        params);
    for (kinect::SkeletonFrame& frame : frames) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    samples.push_back(std::move(frames));
  }
  return samples;
}

void BM_LearnerFullPipeline(benchmark::State& state) {
  int num_samples = static_cast<int>(state.range(0));
  std::vector<std::vector<kinect::SkeletonFrame>> samples =
      TransformedSamples(num_samples, 1.8);
  kinect::GestureShape shape = kinect::GestureShapes::Circle();
  for (auto _ : state) {
    core::GestureLearner learner(shape.name, shape.InvolvedJoints());
    for (const auto& sample : samples) {
      Status status = learner.AddSample(sample);
      benchmark::DoNotOptimize(status.ok());
    }
    Result<std::string> query = learner.GenerateQueryText();
    benchmark::DoNotOptimize(query.ok());
  }
  state.counters["samples"] = num_samples;
}
BENCHMARK(BM_LearnerFullPipeline)->Arg(1)->Arg(3)->Arg(5)->Arg(10);

void BM_SamplerBySampleLength(benchmark::State& state) {
  double duration = static_cast<double>(state.range(0));
  std::vector<std::vector<kinect::SkeletonFrame>> samples =
      TransformedSamples(1, duration);
  std::vector<core::SamplePoint> points = core::PointsFromFrames(
      samples[0], {kinect::JointId::kRightHand});
  core::DistanceSampler sampler;
  for (auto _ : state) {
    Result<core::SampleSummary> summary = sampler.Run(points);
    benchmark::DoNotOptimize(summary.ok());
  }
  state.counters["frames"] = static_cast<double>(points.size());
}
BENCHMARK(BM_SamplerBySampleLength)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IncrementalMergeStep(benchmark::State& state) {
  // Cost of adding one more sample to an already trained learner — the
  // per-recording latency the interactive user experiences.
  std::vector<std::vector<kinect::SkeletonFrame>> samples =
      TransformedSamples(6, 1.8);
  kinect::GestureShape shape = kinect::GestureShapes::Circle();
  for (auto _ : state) {
    state.PauseTiming();
    core::GestureLearner learner(shape.name, shape.InvolvedJoints());
    for (int i = 0; i < 5; ++i) {
      EPL_CHECK(learner.AddSample(samples[static_cast<size_t>(i)]).ok());
    }
    state.ResumeTiming();
    Status status = learner.AddSample(samples[5]);
    benchmark::DoNotOptimize(status.ok());
  }
}
BENCHMARK(BM_IncrementalMergeStep);

void BM_QueryGeneration(benchmark::State& state) {
  core::GestureDefinition definition = bench::TrainDefinition(
      kinect::GestureShapes::Circle(), 4, 51000);
  for (auto _ : state) {
    Result<std::string> text = core::GenerateQueryText(definition);
    benchmark::DoNotOptimize(text.ok());
  }
}
BENCHMARK(BM_QueryGeneration);

void BM_QueryParseCompileDeploy(benchmark::State& state) {
  core::GestureDefinition definition = bench::TrainDefinition(
      kinect::GestureShapes::Circle(), 4, 52000);
  Result<std::string> text = core::GenerateQueryText(definition);
  EPL_CHECK(text.ok());
  for (auto _ : state) {
    stream::StreamEngine engine;
    EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
    EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
    Result<stream::DeploymentId> id =
        query::DeployQueryText(&engine, *text, nullptr);
    benchmark::DoNotOptimize(id.ok());
  }
}
BENCHMARK(BM_QueryParseCompileDeploy);

}  // namespace
}  // namespace epl
