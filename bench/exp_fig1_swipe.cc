// E1 (paper Fig. 1): learn a swipe_right pattern from the verbatim sensor
// trace printed in the paper, show the generated query next to the
// paper's, and verify that the generated query detects the trace it was
// learned from.
//
// The Fig. 1 trace contains only torso + right hand columns (no elbow),
// so scaling is impossible; like the paper's own Fig. 1 query, learning
// runs on torso-relative millimeter offsets.

#include <cstdio>

#include "core/learner.h"
#include "kinect/trace_io.h"
#include "query/compiler.h"
#include "query/unparser.h"
#include "exp_util.h"

namespace epl {
namespace {

constexpr char kPaperQuery[] = R"(SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rHand_x - torso_x - 400) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rHand_x - torso_x - 800) < 50 and
  abs(rHand_y - torso_y - 150) < 50 and
  abs(rHand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
)";

int Run() {
  bench::PrintHeader("E1: Fig. 1 reproduction - swipe_right from the paper trace",
                     "Fig. 1 (query, sample data, windows)");

  std::string path = std::string(EPL_DATA_DIR) + "/fig1_swipe_right.csv";
  Result<std::vector<stream::Event>> events = kinect::ReadPaperTrace(path);
  EPL_CHECK(events.ok()) << events.status();
  std::printf("loaded %zu sensor tuples from %s\n\n", events->size(),
              path.c_str());

  // Torso-relative sample points for the right hand.
  std::vector<core::SamplePoint> points;
  for (const stream::Event& event : *events) {
    core::SamplePoint point;
    point.timestamp = event.timestamp;
    Vec3 torso(event.values[0], event.values[1], event.values[2]);
    Vec3 hand(event.values[3], event.values[4], event.values[5]);
    point.joints[kinect::JointId::kRightHand] = hand - torso;
    points.push_back(std::move(point));
  }

  // The paper's query has 3 poses; a 34% threshold yields 3 windows on
  // this 19-tuple trace.
  core::LearnerConfig config;
  config.sampler.threshold_pct = 0.34;
  config.generalize.min_half_width_mm = 50.0;  // the paper's +-50 windows
  config.source_stream = "kinect";
  core::GestureLearner learner("swipe_right",
                               {kinect::JointId::kRightHand}, config);
  Status status = learner.AddSamplePoints(points);
  EPL_CHECK(status.ok()) << status;

  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok()) << definition.status();
  // The trace is torso-relative; express predicates over plain rHand_*
  // fields of a torso-relative stream.
  Result<std::string> generated = learner.GenerateQueryText();
  EPL_CHECK(generated.ok()) << generated.status();

  std::printf("--- paper query (Fig. 1, verbatim) ---\n%s\n", kPaperQuery);
  std::printf("--- learned query (from the Fig. 1 trace) ---\n%s\n",
              generated->c_str());

  std::printf("learned poses (torso-relative, mm):\n");
  for (size_t i = 0; i < definition->poses.size(); ++i) {
    std::printf("  pose %zu: %s\n", i,
                definition->poses[i].ToString().c_str());
  }

  // Verification: deploy the learned query on a torso-relative stream and
  // replay the trace.
  stream::StreamEngine engine;
  stream::Schema schema(std::vector<std::string>{"rHand_x", "rHand_y",
                                                 "rHand_z"});
  EPL_CHECK(engine.RegisterStream("kinect", schema).ok());
  int detections = 0;
  Result<stream::DeploymentId> id = core::DeployGesture(
      &engine, *definition,
      [&detections](const cep::Detection& detection) {
        ++detections;
        std::printf("detection: \"%s\" after %s\n", detection.name.c_str(),
                    FormatDuration(detection.duration()).c_str());
      });
  EPL_CHECK(id.ok()) << id.status();
  for (const stream::Event& event : *events) {
    stream::Event relative;
    relative.timestamp = event.timestamp;
    relative.values = {event.values[3] - event.values[0],
                       event.values[4] - event.values[1],
                       event.values[5] - event.values[2]};
    EPL_CHECK(engine.Push("kinect", relative).ok());
  }

  std::printf("\nresult: %d detection(s) on the paper trace "
              "(paper: the query fires once per swipe)\n",
              detections);
  std::printf("shape check: 3 sequential poses, lateral x spacing "
              "~400 mm/step, within 1 s steps -> %s\n",
              definition->poses.size() == 3 && detections >= 1 ? "OK"
                                                               : "MISMATCH");
  return detections >= 1 ? 0 : 1;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
