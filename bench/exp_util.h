// Shared helpers for the experiment harnesses (exp_*.cc). Each harness
// regenerates one table/figure/claim of the paper; see EXPERIMENTS.md for
// the index.

#ifndef EPL_BENCH_EXP_UTIL_H_
#define EPL_BENCH_EXP_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cep/detection.h"
#include "common/logging.h"
#include "core/learner.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "stream/engine.h"
#include "transform/transform.h"
#include "transform/view.h"

namespace epl::bench {

/// Trains a gesture definition from `num_samples` synthesized recordings.
inline core::GestureDefinition TrainDefinition(
    const kinect::GestureShape& shape, int num_samples, uint64_t seed_base,
    const core::LearnerConfig& config = core::LearnerConfig(),
    const kinect::UserProfile& trainer = kinect::UserProfile(),
    const kinect::MotionParams& motion = kinect::MotionParams()) {
  core::GestureLearner learner(shape.name, shape.InvolvedJoints(), config);
  for (int i = 0; i < num_samples; ++i) {
    std::vector<kinect::SkeletonFrame> frames = kinect::SynthesizeSample(
        trainer, shape, seed_base + static_cast<uint64_t>(i), motion);
    for (kinect::SkeletonFrame& frame : frames) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    Status status = learner.AddSample(frames);
    EPL_CHECK(status.ok()) << status;
  }
  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok()) << definition.status();
  return std::move(definition).value();
}

/// One full performance (idle - gesture - idle) in raw camera space.
inline std::vector<kinect::SkeletonFrame> Performance(
    const kinect::UserProfile& user, const kinect::GestureShape& shape,
    uint64_t seed) {
  kinect::SessionBuilder builder(user, seed);
  builder.Idle(0.6).Perform(shape, 0.4).Idle(0.6);
  return builder.TakeFrames();
}

/// Plays `frames` against the deployed `definitions`; returns the number
/// of detections per definition.
inline std::vector<int> CountDetections(
    const std::vector<core::GestureDefinition>& definitions,
    const std::vector<kinect::SkeletonFrame>& frames,
    const transform::TransformConfig& transform_config =
        transform::TransformConfig()) {
  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine, transform_config).ok());
  std::vector<int> counts(definitions.size(), 0);
  for (size_t i = 0; i < definitions.size(); ++i) {
    int* slot = &counts[i];
    Result<stream::DeploymentId> id = core::DeployGesture(
        &engine, definitions[i],
        [slot](const cep::Detection&) { ++*slot; });
    EPL_CHECK(id.ok()) << id.status();
  }
  EPL_CHECK(kinect::PlayFrames(&engine, frames).ok());
  return counts;
}

/// Pre-rendered kinect_t workload for the matching benchmarks: repeated
/// swipe performances (raw camera space transformed per frame).
inline const std::vector<stream::Event>& MatchWorkload() {
  static const std::vector<stream::Event>* events = [] {
    auto* out = new std::vector<stream::Event>();
    kinect::SessionBuilder builder(kinect::UserProfile(), 42);
    for (int i = 0; i < 5; ++i) {
      builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.3);
    }
    transform::TransformConfig config;
    for (const kinect::SkeletonFrame& frame : builder.frames()) {
      out->push_back(
          kinect::FrameToEvent(transform::TransformFrame(frame, config)));
    }
    return out;
  }();
  return *events;
}

/// `count` learned gesture queries for the matching benchmarks: variants
/// of definitions trained from synthesized recordings, windows jittered so
/// queries are mostly distinct. Reads the raw "kinect" stream
/// (MatchWorkload is pre-transformed).
inline std::vector<core::GestureDefinition> LearnedVariants(int count) {
  static const std::vector<core::GestureDefinition>* bases = [] {
    auto* out = new std::vector<core::GestureDefinition>();
    out->push_back(TrainDefinition(kinect::GestureShapes::SwipeRight(), 3,
                                   100));
    out->push_back(TrainDefinition(kinect::GestureShapes::RaiseHand(), 3,
                                   200));
    return out;
  }();
  std::vector<core::GestureDefinition> definitions;
  definitions.reserve(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    core::GestureDefinition variant = (*bases)[q % bases->size()];
    variant.name = variant.name + "_" + std::to_string(q);
    variant.source_stream = "kinect";
    // Small distinct 2-D jitter per query: the (dy, dx) pair alone is
    // unique for q < 24*24 = 576 (dy cycles with q % 24, dx with
    // (q/24) % 24), yet stays well inside the learned half-widths
    // (>= 50 mm), so the benchmarks measure many DISTINCT queries that
    // all still fire on the workload.
    double dy = 0.5 * (q % 24);
    double dx = 0.5 * ((q / 24) % 24);
    for (core::PoseWindow& pose : variant.poses) {
      for (auto& [joint, window] : pose.joints) {
        (void)joint;
        window.center.y += dy;
        window.center.x += dx;
      }
    }
    definitions.push_back(std::move(variant));
  }
  return definitions;
}

/// A varied panel of test users (position / size / orientation).
inline std::vector<kinect::UserProfile> TestUsers() {
  std::vector<kinect::UserProfile> users(5);
  users[1].torso_position = Vec3(-500, 250, 2800);
  users[2].height_mm = 1250;  // child
  users[3].yaw_rad = 0.5;
  users[4].height_mm = 1950;
  users[4].torso_position = Vec3(350, -80, 1700);
  users[4].yaw_rad = -0.4;
  return users;
}

/// Detection rate of `definition` over `trials` performances of `shape`
/// spread across the test-user panel.
inline double DetectionRate(const core::GestureDefinition& definition,
                            const kinect::GestureShape& shape, int trials,
                            uint64_t seed_base,
                            const transform::TransformConfig& config =
                                transform::TransformConfig()) {
  std::vector<kinect::UserProfile> users = TestUsers();
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    const kinect::UserProfile& user = users[static_cast<size_t>(t) %
                                            users.size()];
    std::vector<int> counts =
        CountDetections({definition},
                        Performance(user, shape,
                                    seed_base + static_cast<uint64_t>(t)),
                        config);
    if (counts[0] > 0) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / trials;
}

inline void PrintHeader(const std::string& title, const std::string& anchor) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper anchor: %s\n", anchor.c_str());
  std::printf("==================================================\n");
}

}  // namespace epl::bench

#endif  // EPL_BENCH_EXP_UTIL_H_
