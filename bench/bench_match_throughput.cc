// E5 (paper Sec. 3.3.1): "using many CEP patterns for describing one
// gesture increases detection complexity". Matcher throughput as a
// function of (a) the number of poses per gesture and (b) the number of
// concurrently deployed gesture queries.

#include <benchmark/benchmark.h>

#include "cep/matcher.h"
#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

/// A synthetic n-pose lateral gesture definition.
core::GestureDefinition ChainDefinition(int poses) {
  core::GestureDefinition definition;
  definition.name = "chain";
  definition.joints = {kinect::JointId::kRightHand};
  for (int i = 0; i < poses; ++i) {
    core::PoseWindow pose;
    core::JointWindow window;
    window.center = Vec3(640.0 * i / std::max(1, poses - 1), 150.0, -150.0);
    window.half_width = Vec3(60, 60, 60);
    pose.joints[kinect::JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    definition.poses.push_back(pose);
  }
  return definition;
}

/// Pre-rendered kinect_t workload: repeated swipe performances.
const std::vector<stream::Event>& Workload() {
  static const std::vector<stream::Event>* events = [] {
    auto* out = new std::vector<stream::Event>();
    kinect::SessionBuilder builder(kinect::UserProfile(), 42);
    for (int i = 0; i < 5; ++i) {
      builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.3);
    }
    transform::TransformConfig config;
    for (const kinect::SkeletonFrame& frame : builder.frames()) {
      out->push_back(kinect::FrameToEvent(
          transform::TransformFrame(frame, config)));
    }
    return out;
  }();
  return *events;
}

void BM_MatcherPosesPerGesture(benchmark::State& state) {
  int poses = static_cast<int>(state.range(0));
  core::GestureDefinition definition = ChainDefinition(poses);
  Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
  EPL_CHECK(parsed.ok());
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, kinect::KinectSchema());
  EPL_CHECK(compiled.ok());
  cep::NfaMatcher matcher(&compiled->pattern);
  const std::vector<stream::Event>& events = Workload();
  std::vector<cep::PatternMatch> matches;
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["poses"] = poses;
}
BENCHMARK(BM_MatcherPosesPerGesture)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  for (int q = 0; q < queries; ++q) {
    core::GestureDefinition definition = ChainDefinition(4);
    definition.name = "chain_" + std::to_string(q);
    definition.source_stream = "kinect";
    // Spread the start windows so queries differ.
    for (size_t i = 0; i < definition.poses.size(); ++i) {
      definition.poses[i]
          .joints[kinect::JointId::kRightHand]
          .center.y += 10.0 * q;
    }
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_EngineConcurrentQueries)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128);

}  // namespace
}  // namespace epl
