// E5 (paper Sec. 3.3.1): "using many CEP patterns for describing one
// gesture increases detection complexity". Matcher throughput as a
// function of (a) the number of poses per gesture and (b) the number of
// concurrently deployed gesture queries, and (c) the shared multi-pattern
// engine (MultiMatchOperator + PredicateBank) against the per-query
// baseline at 16/64/256 concurrent learned queries.

#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "cep/matcher.h"
#include "cep/multi_match_operator.h"
#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

/// A synthetic n-pose lateral gesture definition.
core::GestureDefinition ChainDefinition(int poses) {
  core::GestureDefinition definition;
  definition.name = "chain";
  definition.joints = {kinect::JointId::kRightHand};
  for (int i = 0; i < poses; ++i) {
    core::PoseWindow pose;
    core::JointWindow window;
    window.center = Vec3(640.0 * i / std::max(1, poses - 1), 150.0, -150.0);
    window.half_width = Vec3(60, 60, 60);
    pose.joints[kinect::JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    definition.poses.push_back(pose);
  }
  return definition;
}


void BM_MatcherPosesPerGesture(benchmark::State& state) {
  int poses = static_cast<int>(state.range(0));
  core::GestureDefinition definition = ChainDefinition(poses);
  Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
  EPL_CHECK(parsed.ok());
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, kinect::KinectSchema());
  EPL_CHECK(compiled.ok());
  cep::NfaMatcher matcher(&compiled->pattern);
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  std::vector<cep::PatternMatch> matches;
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["poses"] = poses;
}
BENCHMARK(BM_MatcherPosesPerGesture)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  for (int q = 0; q < queries; ++q) {
    core::GestureDefinition definition = ChainDefinition(4);
    definition.name = "chain_" + std::to_string(q);
    definition.source_stream = "kinect";
    // Spread the start windows so queries differ.
    for (size_t i = 0; i < definition.poses.size(); ++i) {
      definition.poses[i]
          .joints[kinect::JointId::kRightHand]
          .center.y += 10.0 * q;
    }
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_EngineConcurrentQueries)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);


/// One-shot cross-check (run once per benchmark registration): the fused
/// deployment must produce exactly the detections of per-query deployment.
void VerifyFusedEquivalence(
    const std::vector<core::GestureDefinition>& definitions,
    const std::vector<stream::Event>& events) {
  using Record = std::tuple<std::string, TimePoint, std::vector<TimePoint>>;
  std::vector<Record> fused, per_query;
  {
    stream::StreamEngine engine;
    EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
    EPL_CHECK(core::DeployGesturesFused(
                  &engine, definitions,
                  [&fused](const cep::Detection& d) {
                    fused.emplace_back(d.name, d.time, d.pose_times);
                  })
                  .ok());
    for (const stream::Event& event : events) {
      EPL_CHECK(engine.Push("kinect", event).ok());
    }
  }
  {
    stream::StreamEngine engine;
    EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
    for (const core::GestureDefinition& definition : definitions) {
      EPL_CHECK(core::DeployGesture(&engine, definition,
                                    [&per_query](const cep::Detection& d) {
                                      per_query.emplace_back(d.name, d.time,
                                                             d.pose_times);
                                    })
                    .ok());
    }
    for (const stream::Event& event : events) {
      EPL_CHECK(engine.Push("kinect", event).ok());
    }
  }
  EPL_CHECK(fused == per_query)
      << "fused deployment diverged from per-query deployment ("
      << fused.size() << " vs " << per_query.size() << " detections)";
  EPL_CHECK(!fused.empty()) << "equivalence workload produced no detections";
}

/// Per-query baseline over the learned workload: N independent operators
/// (DeployGesture deploys one single-query fused operator per gesture, so
/// each has its own bank -- nothing is shared across queries).
void BM_PerQueryMatchersConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  std::vector<core::GestureDefinition> definitions =
      bench::LearnedVariants(queries);
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  for (const core::GestureDefinition& definition : definitions) {
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_PerQueryMatchersConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

/// The shared engine: one fused MultiMatchOperator over a PredicateBank.
void BM_MultiMatcherConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  std::vector<core::GestureDefinition> definitions =
      bench::LearnedVariants(queries);
  static bool verified = [] {
    VerifyFusedEquivalence(bench::LearnedVariants(16),
                           bench::MatchWorkload());
    return true;
  }();
  (void)verified;
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  EPL_CHECK(core::DeployGesturesFused(
                &engine, definitions,
                [&detections](const cep::Detection&) { ++detections; })
                .ok());
  const std::vector<stream::Event>& events = bench::MatchWorkload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_MultiMatcherConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace epl
