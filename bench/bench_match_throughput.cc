// E5 (paper Sec. 3.3.1): "using many CEP patterns for describing one
// gesture increases detection complexity". Matcher throughput as a
// function of (a) the number of poses per gesture and (b) the number of
// concurrently deployed gesture queries, and (c) the shared multi-pattern
// engine (MultiMatchOperator + PredicateBank) against the per-query
// baseline at 16/64/256 concurrent learned queries.

#include <string>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "cep/matcher.h"
#include "cep/multi_match_operator.h"
#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

/// A synthetic n-pose lateral gesture definition.
core::GestureDefinition ChainDefinition(int poses) {
  core::GestureDefinition definition;
  definition.name = "chain";
  definition.joints = {kinect::JointId::kRightHand};
  for (int i = 0; i < poses; ++i) {
    core::PoseWindow pose;
    core::JointWindow window;
    window.center = Vec3(640.0 * i / std::max(1, poses - 1), 150.0, -150.0);
    window.half_width = Vec3(60, 60, 60);
    pose.joints[kinect::JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    definition.poses.push_back(pose);
  }
  return definition;
}

/// Pre-rendered kinect_t workload: repeated swipe performances.
const std::vector<stream::Event>& Workload() {
  static const std::vector<stream::Event>* events = [] {
    auto* out = new std::vector<stream::Event>();
    kinect::SessionBuilder builder(kinect::UserProfile(), 42);
    for (int i = 0; i < 5; ++i) {
      builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.3);
    }
    transform::TransformConfig config;
    for (const kinect::SkeletonFrame& frame : builder.frames()) {
      out->push_back(kinect::FrameToEvent(
          transform::TransformFrame(frame, config)));
    }
    return out;
  }();
  return *events;
}

void BM_MatcherPosesPerGesture(benchmark::State& state) {
  int poses = static_cast<int>(state.range(0));
  core::GestureDefinition definition = ChainDefinition(poses);
  Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
  EPL_CHECK(parsed.ok());
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, kinect::KinectSchema());
  EPL_CHECK(compiled.ok());
  cep::NfaMatcher matcher(&compiled->pattern);
  const std::vector<stream::Event>& events = Workload();
  std::vector<cep::PatternMatch> matches;
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["poses"] = poses;
}
BENCHMARK(BM_MatcherPosesPerGesture)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  for (int q = 0; q < queries; ++q) {
    core::GestureDefinition definition = ChainDefinition(4);
    definition.name = "chain_" + std::to_string(q);
    definition.source_stream = "kinect";
    // Spread the start windows so queries differ.
    for (size_t i = 0; i < definition.poses.size(); ++i) {
      definition.poses[i]
          .joints[kinect::JointId::kRightHand]
          .center.y += 10.0 * q;
    }
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_EngineConcurrentQueries)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

/// `count` learned gesture queries: variants of definitions trained from
/// synthesized recordings, windows jittered so queries are mostly distinct.
/// Reads the raw "kinect" stream (the workload is pre-transformed).
std::vector<core::GestureDefinition> LearnedVariants(int count) {
  static const std::vector<core::GestureDefinition>* bases = [] {
    auto* out = new std::vector<core::GestureDefinition>();
    out->push_back(bench::TrainDefinition(kinect::GestureShapes::SwipeRight(),
                                          3, 100));
    out->push_back(bench::TrainDefinition(kinect::GestureShapes::RaiseHand(),
                                          3, 200));
    return out;
  }();
  std::vector<core::GestureDefinition> definitions;
  definitions.reserve(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    core::GestureDefinition variant = (*bases)[q % bases->size()];
    variant.name = variant.name + "_" + std::to_string(q);
    variant.source_stream = "kinect";
    // Small distinct 2-D jitter per query: the (dy, dx) pair alone is
    // unique for q < 24*24 = 576 (dy cycles with q % 24, dx with
    // (q/24) % 24), yet stays well inside the learned half-widths
    // (>= 50 mm), so the benchmark measures many DISTINCT queries that
    // all still fire on the workload.
    double dy = 0.5 * (q % 24);
    double dx = 0.5 * ((q / 24) % 24);
    for (core::PoseWindow& pose : variant.poses) {
      for (auto& [joint, window] : pose.joints) {
        (void)joint;
        window.center.y += dy;
        window.center.x += dx;
      }
    }
    definitions.push_back(std::move(variant));
  }
  return definitions;
}

/// One-shot cross-check (run once per benchmark registration): the fused
/// deployment must produce exactly the detections of per-query deployment.
void VerifyFusedEquivalence(
    const std::vector<core::GestureDefinition>& definitions,
    const std::vector<stream::Event>& events) {
  using Record = std::tuple<std::string, TimePoint, std::vector<TimePoint>>;
  std::vector<Record> fused, per_query;
  {
    stream::StreamEngine engine;
    EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
    EPL_CHECK(core::DeployGesturesFused(
                  &engine, definitions,
                  [&fused](const cep::Detection& d) {
                    fused.emplace_back(d.name, d.time, d.pose_times);
                  })
                  .ok());
    for (const stream::Event& event : events) {
      EPL_CHECK(engine.Push("kinect", event).ok());
    }
  }
  {
    stream::StreamEngine engine;
    EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
    for (const core::GestureDefinition& definition : definitions) {
      EPL_CHECK(core::DeployGesture(&engine, definition,
                                    [&per_query](const cep::Detection& d) {
                                      per_query.emplace_back(d.name, d.time,
                                                             d.pose_times);
                                    })
                    .ok());
    }
    for (const stream::Event& event : events) {
      EPL_CHECK(engine.Push("kinect", event).ok());
    }
  }
  EPL_CHECK(fused == per_query)
      << "fused deployment diverged from per-query deployment ("
      << fused.size() << " vs " << per_query.size() << " detections)";
  EPL_CHECK(!fused.empty()) << "equivalence workload produced no detections";
}

/// Per-query baseline over the learned workload: N independent
/// MatchOperator subscribers.
void BM_PerQueryMatchersConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  std::vector<core::GestureDefinition> definitions = LearnedVariants(queries);
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  for (const core::GestureDefinition& definition : definitions) {
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_PerQueryMatchersConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

/// The shared engine: one fused MultiMatchOperator over a PredicateBank.
void BM_MultiMatcherConcurrentQueries(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  std::vector<core::GestureDefinition> definitions = LearnedVariants(queries);
  static bool verified = [] {
    VerifyFusedEquivalence(LearnedVariants(16), Workload());
    return true;
  }();
  (void)verified;
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  uint64_t detections = 0;
  EPL_CHECK(core::DeployGesturesFused(
                &engine, definitions,
                [&detections](const cep::Detection&) { ++detections; })
                .ok());
  const std::vector<stream::Event>& events = Workload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["queries"] = queries;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_MultiMatcherConcurrentQueries)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace epl
