// E7 (paper Sec. 3.3.3): pattern optimization ablation. Measures the
// effect of window merging and coordinate elimination on pattern size
// (poses / active predicates), matcher work (predicate evaluations and
// wall time per event), and detection accuracy.

#include <chrono>
#include <cstdio>

#include "cep/matcher.h"
#include "optimize/simplify.h"
#include "query/compiler.h"
#include "exp_util.h"

namespace epl {
namespace {

struct Variant {
  const char* label;
  bool merge;
  bool eliminate_axes;
};

struct WorkloadCost {
  double evals_per_event = 0.0;
  double micros_per_event = 0.0;
  double instructions_per_state = 0.0;
};

WorkloadCost MeasureCost(const core::GestureDefinition& definition,
                         const std::vector<kinect::SkeletonFrame>& frames) {
  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
  EPL_CHECK(parsed.ok());
  Result<stream::Schema> schema = engine.GetSchema("kinect_t");
  EPL_CHECK(schema.ok());
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, *schema);
  EPL_CHECK(compiled.ok());

  WorkloadCost cost;
  size_t total_instructions = 0;
  for (int s = 0; s < compiled->pattern.num_states(); ++s) {
    total_instructions += compiled->pattern.predicate(s).num_instructions();
  }
  cost.instructions_per_state =
      static_cast<double>(total_instructions) /
      static_cast<double>(compiled->pattern.num_states());

  auto op = std::make_unique<cep::MatchOperator>(
      compiled->name, std::move(compiled->pattern), nullptr);
  cep::MatchOperator* op_ptr = op.get();
  EPL_CHECK(engine.Deploy("kinect_t", std::move(op)).ok());

  // Untimed warmup so the first variant is not penalized by cold caches.
  EPL_CHECK(kinect::PlayFrames(&engine, frames).ok());
  auto start = std::chrono::steady_clock::now();
  const int kRepeats = 20;
  for (int r = 0; r < kRepeats; ++r) {
    EPL_CHECK(kinect::PlayFrames(&engine, frames).ok());
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  double total_events = static_cast<double>(frames.size()) * kRepeats;
  cost.evals_per_event =
      static_cast<double>(op_ptr->matcher_stats().predicate_evaluations) /
      total_events;
  cost.micros_per_event =
      std::chrono::duration<double, std::micro>(elapsed).count() /
      total_events;
  return cost;
}

int Run() {
  bench::PrintHeader("E7: optimization ablation (merge + axis elimination)",
                     "Sec. 3.3.3 (validation & optimization outlook)");

  // A deliberately fine-grained pattern (low threshold -> many windows)
  // so the optimizations have something to optimize.
  core::LearnerConfig config;
  config.sampler.threshold_pct = 0.05;
  kinect::GestureShape shape = kinect::GestureShapes::SwipeRight();
  core::GestureDefinition base =
      bench::TrainDefinition(shape, 4, 15000, config);

  std::vector<kinect::SkeletonFrame> workload =
      bench::Performance(kinect::UserProfile(), shape, 15500);
  const int kTrials = 10;

  const Variant variants[] = {
      {"unoptimized", false, false},
      {"merge windows", true, false},
      {"eliminate axes", false, true},
      {"merge + eliminate", true, true},
  };

  std::printf("%-18s %6s %7s %12s %12s %11s %8s\n", "variant", "poses",
              "preds", "instr/state", "evals/event", "us/event", "detect");
  for (const Variant& variant : variants) {
    core::GestureDefinition definition = base;
    if (variant.merge) {
      optimize::MergeAdjacentPoses(&definition);
    }
    if (variant.eliminate_axes) {
      optimize::EliminateIrrelevantAxes(&definition);
    }
    WorkloadCost cost = MeasureCost(definition, workload);
    double rate = bench::DetectionRate(definition, shape, kTrials, 16000);
    std::printf("%-18s %6zu %7d %12.1f %12.2f %11.2f %7.0f%%\n",
                variant.label, definition.poses.size(),
                definition.NumActiveConstraints(),
                cost.instructions_per_state, cost.evals_per_event,
                cost.micros_per_event, rate * 100.0);
  }

  std::printf(
      "\nexpected shape (paper): both optimizations shrink the pattern and\n"
      "the per-event matcher work ('decrease the detection effort') while\n"
      "detection accuracy stays at least as high (merged windows are\n"
      "wider, so the overfitted fine-grained pattern becomes more robust).\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
