// E3 (paper Sec. 3.3.1, Fig. 4): distance-based sampling sweep. Varies
// the max_dist threshold (as % of total path deviation) and reports the
// number of extracted windows, detection rate, and false-positive rate —
// the under-/over-fitting trade-off that motivates the paper's
// distance-based sampling ("taking each measure as separate pose is
// impracticable ... gesture samples are overfitted").

#include <cstdio>

#include "exp_util.h"

namespace epl {
namespace {

int Run() {
  bench::PrintHeader("E3: max_dist sweep - windows vs robustness",
                     "Sec. 3.3.1 / Fig. 4 (distance-based sampling)");

  kinect::GestureShape shape = kinect::GestureShapes::SwipeRight();
  kinect::GestureShape distractor = kinect::GestureShapes::PushForward();
  const int kTrials = 8;

  std::printf("%12s %10s %12s %14s %16s\n", "max_dist(%)", "windows",
              "NFA states", "detect rate", "false positives");

  for (double pct : {0.02, 0.05, 0.08, 0.12, 0.20, 0.30, 0.45, 0.65}) {
    core::LearnerConfig config;
    config.sampler.threshold_pct = pct;
    core::GestureDefinition definition =
        bench::TrainDefinition(shape, 4, 3000, config);

    double detect = bench::DetectionRate(definition, shape, kTrials, 4000);
    // False positives: a different gesture and random hand motion.
    int false_positives = 0;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<int> counts = bench::CountDetections(
          {definition},
          bench::Performance(kinect::UserProfile(), distractor,
                             5000 + static_cast<uint64_t>(t)));
      false_positives += counts[0];
      kinect::FrameSynthesizer synth(kinect::UserProfile(),
                                     6000 + static_cast<uint64_t>(t));
      std::vector<int> distract_counts = bench::CountDetections(
          {definition}, synth.Distract(6.0));
      false_positives += distract_counts[0];
    }

    std::printf("%11.0f%% %10zu %12zu %13.0f%% %16d\n", pct * 100.0,
                definition.poses.size(), definition.poses.size(), detect * 100.0,
                false_positives);
  }

  std::printf(
      "\nexpected shape (paper): small thresholds -> many windows\n"
      "(overfitting: detection collapses); large thresholds -> few windows\n"
      "(underfitting: false positives appear); a broad middle regime gives\n"
      "few windows with robust and selective detection.\n");
  return 0;
}

}  // namespace
}  // namespace epl

int main() { return epl::Run(); }
