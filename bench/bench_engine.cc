// E9 (paper Sec. 3.3.1): the Kinect delivers tuples at 30 Hz, so the
// whole pipeline — transformation view plus all deployed gesture queries —
// has a 33 ms per-frame budget. This bench measures the end-to-end
// per-frame cost with a realistic vocabulary deployed.

#include <benchmark/benchmark.h>

#include "stream/runner.h"
#include "exp_util.h"

namespace epl {
namespace {

std::vector<stream::Event> RawWorkload() {
  kinect::SessionBuilder builder(kinect::UserProfile(), 314);
  for (int i = 0; i < 3; ++i) {
    builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
    builder.Perform(kinect::GestureShapes::Circle(), 0.2);
    builder.Idle(0.5);
  }
  std::vector<stream::Event> events;
  for (const kinect::SkeletonFrame& frame : builder.frames()) {
    events.push_back(kinect::FrameToEvent(frame));
  }
  return events;
}

void BM_EndToEndPipeline(benchmark::State& state) {
  int vocabulary = static_cast<int>(state.range(0));
  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  std::vector<std::string> names = kinect::GestureShapes::Names();
  uint64_t detections = 0;
  for (int q = 0; q < vocabulary; ++q) {
    Result<kinect::GestureShape> shape = kinect::GestureShapes::ByName(
        names[static_cast<size_t>(q) % names.size()]);
    EPL_CHECK(shape.ok());
    core::GestureDefinition definition = bench::TrainDefinition(
        *shape, 3, 40000 + 100 * static_cast<uint64_t>(q));
    definition.name += "_" + std::to_string(q);
    EPL_CHECK(core::DeployGesture(
                  &engine, definition,
                  [&detections](const cep::Detection&) { ++detections; })
                  .ok());
  }

  std::vector<stream::Event> events = RawWorkload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  int64_t frames = state.iterations() * static_cast<int64_t>(events.size());
  state.SetItemsProcessed(frames);
  state.counters["queries"] = vocabulary;
  state.counters["frame_budget_us"] = 33333;
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_EndToEndPipeline)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

void BM_TransformViewOnly(benchmark::State& state) {
  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  std::vector<stream::Event> events = RawWorkload();
  for (auto _ : state) {
    for (const stream::Event& event : events) {
      Status status = engine.Push("kinect", event);
      benchmark::DoNotOptimize(status.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_TransformViewOnly);

void BM_ThreadedRunnerPipeline(benchmark::State& state) {
  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  core::GestureDefinition definition = bench::TrainDefinition(
      kinect::GestureShapes::SwipeRight(), 3, 41000);
  uint64_t detections = 0;
  EPL_CHECK(core::DeployGesture(
                &engine, definition,
                [&detections](const cep::Detection&) { ++detections; })
                .ok());
  std::vector<stream::Event> events = RawWorkload();
  for (auto _ : state) {
    stream::EngineRunner runner(&engine, 4096);
    EPL_CHECK(runner.Start().ok());
    for (const stream::Event& event : events) {
      runner.Enqueue("kinect", event);
    }
    EPL_CHECK(runner.Stop().ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  benchmark::DoNotOptimize(detections);
}
BENCHMARK(BM_ThreadedRunnerPipeline);

}  // namespace
}  // namespace epl
