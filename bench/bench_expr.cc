// E10a (DESIGN.md 2.5): compiled postfix expression programs vs the
// tree-walking evaluator on a paper-shaped pose predicate (9 range
// conjuncts over 3 joints' axes).

#include <benchmark/benchmark.h>

#include "cep/expr.h"
#include "cep/expr_program.h"
#include "common/logging.h"
#include "common/rng.h"
#include "kinect/skeleton.h"
#include "query/parser.h"

namespace epl::cep {
namespace {

ExprPtr PaperPredicate() {
  Result<ExprPtr> expr = query::ParseExpression(
      "abs(rHand_x - 400) < 50 and abs(rHand_y - 150) < 50 and "
      "abs(rHand_z + 420) < 50 and abs(lHand_x + 185) < 80 and "
      "abs(lHand_y + 195) < 80 and abs(lHand_z - 0) < 80 and "
      "abs(head_x - 0) < 120 and abs(head_y - 577) < 120 and "
      "abs(head_z - 0) < 120");
  EPL_CHECK(expr.ok()) << expr.status();
  Status bound = (*expr)->Bind(kinect::KinectSchema());
  EPL_CHECK(bound.ok()) << bound;
  return std::move(expr).value();
}

std::vector<stream::Event> RandomEvents(int count) {
  Rng rng(7);
  std::vector<stream::Event> events;
  events.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    stream::Event event;
    event.timestamp = i;
    event.values.resize(
        static_cast<size_t>(kinect::KinectSchema().num_fields()));
    for (double& value : event.values) {
      value = rng.Uniform(-500, 700);
    }
    events.push_back(std::move(event));
  }
  return events;
}

void BM_ExprTreeWalk(benchmark::State& state) {
  ExprPtr expr = PaperPredicate();
  std::vector<stream::Event> events = RandomEvents(256);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->EvalBool(events[i % events.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprTreeWalk);

void BM_ExprCompiledProgram(benchmark::State& state) {
  ExprPtr expr = PaperPredicate();
  Result<ExprProgram> program = ExprProgram::Compile(*expr);
  EPL_CHECK(program.ok());
  std::vector<stream::Event> events = RandomEvents(256);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(program->EvalBool(events[i % events.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprCompiledProgram);

void BM_ExprCompileCost(benchmark::State& state) {
  ExprPtr expr = PaperPredicate();
  for (auto _ : state) {
    Result<ExprProgram> program = ExprProgram::Compile(*expr);
    benchmark::DoNotOptimize(program.ok());
  }
}
BENCHMARK(BM_ExprCompileCost);

}  // namespace
}  // namespace epl::cep
