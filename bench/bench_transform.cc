// E9 supplement: cost decomposition of the kinect_t transformation stage
// (paper Sec. 3.2) — per-frame cost of the full normalization, its
// individual stages, and the RPY angle computation.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "kinect/body_model.h"
#include "kinect/gesture_shapes.h"
#include "kinect/synthesizer.h"
#include "transform/rpy.h"
#include "transform/transform.h"

namespace epl::transform {
namespace {

std::vector<kinect::SkeletonFrame> Frames() {
  kinect::FrameSynthesizer synth(kinect::UserProfile(), 99);
  return synth.PerformGesture(kinect::GestureShapes::Circle());
}

void BM_TransformFrameFull(benchmark::State& state) {
  std::vector<kinect::SkeletonFrame> frames = Frames();
  TransformConfig config;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransformFrame(frames[i % frames.size()], config));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformFrameFull);

void BM_TransformFrameTranslateOnly(benchmark::State& state) {
  std::vector<kinect::SkeletonFrame> frames = Frames();
  TransformConfig config;
  config.rotate = false;
  config.scale = false;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransformFrame(frames[i % frames.size()], config));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformFrameTranslateOnly);

void BM_YawEstimation(benchmark::State& state) {
  std::vector<kinect::SkeletonFrame> frames = Frames();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateYaw(frames[i % frames.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YawEstimation);

void BM_ForearmRpy(benchmark::State& state) {
  std::vector<kinect::SkeletonFrame> frames = Frames();
  TransformConfig config;
  for (kinect::SkeletonFrame& frame : frames) {
    frame = TransformFrame(frame, config);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ForearmAngles(frames[i % frames.size()], /*right_side=*/true));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForearmRpy);

void BM_FrameEventConversionRoundTrip(benchmark::State& state) {
  std::vector<kinect::SkeletonFrame> frames = Frames();
  size_t i = 0;
  for (auto _ : state) {
    stream::Event event =
        kinect::FrameToEvent(frames[i % frames.size()]);
    Result<kinect::SkeletonFrame> back = kinect::FrameFromEvent(event);
    benchmark::DoNotOptimize(back.ok());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameEventConversionRoundTrip);

}  // namespace
}  // namespace epl::transform
