// E10b (DESIGN.md 2.4): dominant-run matcher vs the exhaustive oracle on
// identical streams, and matcher scaling with pose-region dwell time
// (events matching a predicate repeatedly).

#include <benchmark/benchmark.h>

#include "cep/matcher.h"
#include "common/logging.h"
#include "common/rng.h"
#include "query/parser.h"

namespace epl::cep {
namespace {

CompiledPattern ThreePosePattern(SelectPolicy select, ConsumePolicy consume) {
  std::vector<PatternExprPtr> children;
  for (double center : {1.0, 2.0, 3.0}) {
    children.push_back(
        PatternExpr::Pose("s", Expr::RangePredicate("v", center, 0.5)));
  }
  PatternExprPtr seq = PatternExpr::Sequence(
      std::move(children), kSecond, WithinMode::kGap, select, consume);
  Result<CompiledPattern> compiled =
      CompiledPattern::Compile(*seq, stream::Schema({"v"}));
  EPL_CHECK(compiled.ok());
  return std::move(compiled).value();
}

std::vector<stream::Event> RandomStream(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<stream::Event> events;
  TimePoint t = 0;
  for (int i = 0; i < count; ++i) {
    t += rng.UniformInt(20, 90) * kMillisecond;
    events.emplace_back(
        t, std::vector<double>{static_cast<double>(rng.UniformInt(1, 3))});
  }
  return events;
}

void BM_NfaDominant(benchmark::State& state) {
  CompiledPattern pattern =
      ThreePosePattern(SelectPolicy::kFirst, ConsumePolicy::kNone);
  std::vector<stream::Event> events = RandomStream(512, 11);
  std::vector<PatternMatch> matches;
  for (auto _ : state) {
    NfaMatcher matcher(&pattern);
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_NfaDominant);

void BM_NfaExhaustive(benchmark::State& state) {
  CompiledPattern pattern =
      ThreePosePattern(SelectPolicy::kAll, ConsumePolicy::kNone);
  std::vector<stream::Event> events = RandomStream(512, 11);
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 1 << 14;
  std::vector<PatternMatch> matches;
  for (auto _ : state) {
    NfaMatcher matcher(&pattern, options);
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_NfaExhaustive);

// Dwell: a 30 Hz sensor keeps producing events inside the same pose
// region; consume-all resets keep dominant-run state small.
void BM_NfaDominantDwellHeavy(benchmark::State& state) {
  CompiledPattern pattern =
      ThreePosePattern(SelectPolicy::kFirst, ConsumePolicy::kAll);
  std::vector<stream::Event> events;
  TimePoint t = 0;
  for (int rep = 0; rep < 8; ++rep) {
    for (double center : {1.0, 2.0, 3.0}) {
      for (int i = 0; i < 20; ++i) {  // ~0.66 s dwell per pose
        t += 33 * kMillisecond;
        events.emplace_back(t, std::vector<double>{center});
      }
    }
  }
  std::vector<PatternMatch> matches;
  for (auto _ : state) {
    NfaMatcher matcher(&pattern);
    for (const stream::Event& event : events) {
      matches.clear();
      matcher.Process(event, &matches);
      benchmark::DoNotOptimize(matches.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_NfaDominantDwellHeavy);

}  // namespace
}  // namespace epl::cep
