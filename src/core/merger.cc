#include "core/merger.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace epl::core {

using kinect::JointId;
using kinect::JointName;

void WindowMerger::JointBounds::Extend(const Vec3& point) {
  if (!initialized) {
    min = point;
    max = point;
    initialized = true;
    return;
  }
  min = Vec3::Min(min, point);
  max = Vec3::Max(max, point);
}

WindowMerger::WindowMerger(std::string gesture_name,
                           std::vector<JointId> joints, MergeConfig config)
    : name_(std::move(gesture_name)),
      joints_(std::move(joints)),
      config_(config) {}

JointPose WindowMerger::InterpolateAt(const SampleSummary& sample, double u) {
  const std::vector<PoseCentroid>& centroids = sample.centroids;
  Duration total = centroids.back().time_offset;
  if (centroids.size() == 1 || total <= 0) {
    return centroids.front().joints;
  }
  Duration target = static_cast<Duration>(u * static_cast<double>(total));
  size_t hi = 1;
  while (hi + 1 < centroids.size() && centroids[hi].time_offset < target) {
    ++hi;
  }
  const PoseCentroid& a = centroids[hi - 1];
  const PoseCentroid& b = centroids[hi];
  Duration span = b.time_offset - a.time_offset;
  double t = span > 0 ? static_cast<double>(target - a.time_offset) /
                            static_cast<double>(span)
                      : 0.0;
  t = std::max(0.0, std::min(1.0, t));
  JointPose result;
  for (const auto& [joint, pos_a] : a.joints) {
    auto it = b.joints.find(joint);
    result[joint] =
        it != b.joints.end() ? Vec3::Lerp(pos_a, it->second, t) : pos_a;
  }
  return result;
}

Status WindowMerger::AddSample(const SampleSummary& sample) {
  if (sample.centroids.empty()) {
    return InvalidArgumentError("sample has no centroids");
  }
  for (const PoseCentroid& centroid : sample.centroids) {
    for (JointId joint : joints_) {
      if (centroid.joints.find(joint) == centroid.joints.end()) {
        return InvalidArgumentError(
            "sample centroid is missing joint " +
            std::string(JointName(joint)));
      }
    }
  }

  // Align the sample to the reference pose count.
  std::vector<JointPose> aligned;
  std::vector<Duration> offsets;
  if (sample_count_ == 0) {
    aligned.reserve(sample.centroids.size());
    for (const PoseCentroid& centroid : sample.centroids) {
      aligned.push_back(centroid.joints);
      offsets.push_back(centroid.time_offset);
    }
  } else if (sample.centroids.size() == poses_.size()) {
    for (const PoseCentroid& centroid : sample.centroids) {
      aligned.push_back(centroid.joints);
      offsets.push_back(centroid.time_offset);
    }
  } else if (config_.alignment == MergeConfig::Alignment::kStrict) {
    MergeWarning warning;
    warning.sample_index = sample_count_;
    warning.message = StrFormat(
        "sample %d produced %zu poses but the gesture has %zu; rejected "
        "(strict alignment)",
        sample_count_ + 1, sample.centroids.size(), poses_.size());
    warnings_.push_back(warning);
    return FailedPreconditionError(warnings_.back().message);
  } else {
    // Resample the new sample's centroid path at the reference poses'
    // relative time positions.
    Duration reference_total = poses_.back().time_offset;
    Duration sample_total = sample.centroids.back().time_offset;
    for (size_t i = 0; i < poses_.size(); ++i) {
      double u = reference_total > 0
                     ? static_cast<double>(poses_[i].time_offset) /
                           static_cast<double>(reference_total)
                     : 0.0;
      aligned.push_back(InterpolateAt(sample, u));
      offsets.push_back(
          static_cast<Duration>(u * static_cast<double>(sample_total)));
    }
    MergeWarning warning;
    warning.sample_index = sample_count_;
    warning.message = StrFormat(
        "sample %d produced %zu poses, resampled to %zu", sample_count_ + 1,
        sample.centroids.size(), poses_.size());
    warnings_.push_back(warning);
  }

  // Outlier detection against the windows merged so far.
  if (sample_count_ > 0) {
    bool outlier = false;
    for (size_t i = 0; i < aligned.size(); ++i) {
      for (JointId joint : joints_) {
        const JointBounds& bounds = poses_[i].bounds.at(joint);
        const Vec3& point = aligned[i].at(joint);
        Vec3 center = (bounds.min + bounds.max) * 0.5;
        Vec3 half = (bounds.max - bounds.min) * 0.5;
        double mean_half = (half.x + half.y + half.z) / 3.0;
        double allowed =
            config_.outlier_slack_mm + config_.outlier_factor * mean_half;
        double deviation = 0.0;
        for (int axis = 0; axis < 3; ++axis) {
          deviation = std::max(
              deviation,
              std::abs(point[axis] - center[axis]) - half[axis]);
        }
        if (deviation > allowed) {
          outlier = true;
          MergeWarning warning;
          warning.sample_index = sample_count_;
          warning.pose_index = static_cast<int>(i);
          warning.joint = joint;
          warning.deviation_mm = deviation;
          warning.message = StrFormat(
              "sample %d deviates %.0f mm from pose %zu (%s); the gesture "
              "may have been performed differently",
              sample_count_ + 1, deviation, i,
              std::string(JointName(joint)).c_str());
          warnings_.push_back(warning);
        }
      }
    }
    if (outlier && config_.reject_outliers) {
      return FailedPreconditionError(
          StrFormat("sample %d rejected as outlier", sample_count_ + 1));
    }
  }

  // Merge: extend the MBRs and the observed gaps.
  if (sample_count_ == 0) {
    poses_.resize(aligned.size());
  }
  for (size_t i = 0; i < aligned.size(); ++i) {
    PoseAccumulator& pose = poses_[i];
    for (JointId joint : joints_) {
      pose.bounds[joint].Extend(aligned[i].at(joint));
    }
    if (sample_count_ == 0) {
      pose.time_offset = offsets[i];
    }
    if (i > 0) {
      pose.max_observed_gap =
          std::max(pose.max_observed_gap, offsets[i] - offsets[i - 1]);
    }
  }
  ++sample_count_;
  return OkStatus();
}

Result<GestureDefinition> WindowMerger::Build(
    const GeneralizationConfig& generalization) const {
  if (sample_count_ == 0) {
    return FailedPreconditionError("no samples merged yet");
  }
  GestureDefinition definition;
  definition.name = name_;
  definition.joints = joints_;
  definition.sample_count = sample_count_;
  definition.poses.reserve(poses_.size());
  for (size_t i = 0; i < poses_.size(); ++i) {
    const PoseAccumulator& accumulator = poses_[i];
    PoseWindow window;
    for (JointId joint : joints_) {
      const JointBounds& bounds = accumulator.bounds.at(joint);
      JointWindow jw;
      jw.center = (bounds.min + bounds.max) * 0.5;
      jw.half_width = (bounds.max - bounds.min) * 0.5;
      jw.Widen(generalization.widen_factor, generalization.extra_margin_mm,
               generalization.min_half_width_mm);
      window.joints[joint] = jw;
    }
    if (i > 0) {
      double slacked = static_cast<double>(accumulator.max_observed_gap) *
                       generalization.time_slack;
      Duration budget = static_cast<Duration>(slacked);
      if (generalization.time_round > 0) {
        Duration round = generalization.time_round;
        budget = ((budget + round - 1) / round) * round;
      }
      window.max_gap = std::max(budget, generalization.min_gap);
    }
    definition.poses.push_back(std::move(window));
  }
  EPL_RETURN_IF_ERROR(definition.Validate());
  return definition;
}

}  // namespace epl::core
