#include "core/query_gen.h"

#include "query/compiler.h"
#include "query/unparser.h"

namespace epl::core {

using cep::Expr;
using cep::ExprPtr;
using cep::PatternExpr;
using cep::PatternExprPtr;

namespace {

/// Conjunction of range predicates for one pose, in joint order and x,y,z
/// axis order (the paper's predicate order).
ExprPtr PosePredicate(const GestureDefinition& definition,
                      const PoseWindow& pose) {
  std::vector<ExprPtr> terms;
  for (kinect::JointId joint : definition.joints) {
    const JointWindow& window = pose.joints.at(joint);
    for (int axis = 0; axis < 3; ++axis) {
      if (!window.active[static_cast<size_t>(axis)]) {
        continue;
      }
      std::string field = std::string(kinect::JointName(joint)) + "_" +
                          std::string(AxisName(axis));
      terms.push_back(Expr::RangePredicate(field, window.center[axis],
                                           window.half_width[axis]));
    }
  }
  return Expr::And(std::move(terms));
}

}  // namespace

Result<query::ParsedQuery> GenerateQuery(const GestureDefinition& definition,
                                         const QueryGenConfig& config) {
  EPL_RETURN_IF_ERROR(definition.Validate());
  if (definition.NumActiveConstraints() == 0) {
    return FailedPreconditionError(
        "gesture '" + definition.name +
        "' has no active constraints; cannot generate a query");
  }

  std::vector<PatternExprPtr> poses;
  poses.reserve(definition.poses.size());
  for (const PoseWindow& pose : definition.poses) {
    poses.push_back(PatternExpr::Pose(definition.source_stream,
                                      PosePredicate(definition, pose)));
  }

  query::ParsedQuery query;
  query.name = definition.name;
  if (poses.size() == 1) {
    query.pattern = std::move(poses[0]);
    return query;
  }

  bool uniform_gaps = true;
  for (size_t i = 2; i < definition.poses.size(); ++i) {
    if (definition.poses[i].max_gap != definition.poses[1].max_gap) {
      uniform_gaps = false;
      break;
    }
  }

  if (!config.nest_like_paper && uniform_gaps) {
    // Flat chain: one within bounds every step (gap semantics).
    query.pattern =
        PatternExpr::Sequence(std::move(poses), definition.poses[1].max_gap);
    return query;
  }

  // Left-nested binary sequences, each carrying the right element's step
  // budget — the Fig. 1 shape.
  PatternExprPtr node = std::move(poses[0]);
  for (size_t i = 1; i < poses.size(); ++i) {
    std::vector<PatternExprPtr> pair;
    pair.push_back(std::move(node));
    pair.push_back(std::move(poses[i]));
    node = PatternExpr::Sequence(std::move(pair), definition.poses[i].max_gap);
  }
  query.pattern = std::move(node);
  return query;
}

Result<std::string> GenerateQueryText(const GestureDefinition& definition,
                                      const QueryGenConfig& config) {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       GenerateQuery(definition, config));
  return query::FormatQuery(parsed);
}

Result<stream::DeploymentId> DeployGesture(
    stream::StreamEngine* engine, const GestureDefinition& definition,
    cep::DetectionCallback callback, const QueryGenConfig& config,
    cep::MatcherOptions matcher_options) {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       GenerateQuery(definition, config));
  // Thin compatibility wrapper over the shared path: a single-query fused
  // operator instead of a standalone MatchOperator, so every learned
  // gesture -- even a lone one -- runs on the bank-backed flat runtime.
  // The handle semantics are unchanged (Undeploy removes the gesture).
  std::vector<query::ParsedQuery> queries;
  queries.push_back(std::move(parsed));
  EPL_ASSIGN_OR_RETURN(
      query::FusedDeployment deployment,
      query::DeployQueriesFused(engine, queries, std::move(callback),
                                matcher_options));
  return deployment.id;
}

namespace {

Result<std::vector<query::ParsedQuery>> GenerateQueries(
    const std::vector<GestureDefinition>& definitions,
    const QueryGenConfig& config) {
  std::vector<query::ParsedQuery> queries;
  queries.reserve(definitions.size());
  for (const GestureDefinition& definition : definitions) {
    EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                         GenerateQuery(definition, config));
    queries.push_back(std::move(parsed));
  }
  return queries;
}

}  // namespace

Result<query::FusedDeployment> DeployGesturesFused(
    stream::StreamEngine* engine,
    const std::vector<GestureDefinition>& definitions,
    cep::DetectionCallback callback, const QueryGenConfig& config,
    cep::MatcherOptions matcher_options) {
  EPL_ASSIGN_OR_RETURN(std::vector<query::ParsedQuery> queries,
                       GenerateQueries(definitions, config));
  return query::DeployQueriesFused(engine, queries, std::move(callback),
                                   matcher_options);
}

Result<int> AddFusedGesture(stream::StreamEngine* engine,
                            const query::FusedDeployment& deployment,
                            const GestureDefinition& definition,
                            cep::DetectionCallback callback,
                            const QueryGenConfig& config) {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       GenerateQuery(definition, config));
  return query::AddFusedQuery(engine, deployment, parsed,
                              std::move(callback));
}

Result<query::ShardedDeployment> DeployGesturesSharded(
    stream::StreamEngine* engine,
    const std::vector<GestureDefinition>& definitions,
    cep::DetectionCallback callback, const QueryGenConfig& config,
    cep::ShardedEngineOptions sharded_options) {
  EPL_ASSIGN_OR_RETURN(std::vector<query::ParsedQuery> queries,
                       GenerateQueries(definitions, config));
  return query::DeployQueriesSharded(engine, queries, std::move(callback),
                                     sharded_options);
}

Result<int> AddShardedGesture(stream::StreamEngine* engine,
                              const query::ShardedDeployment& deployment,
                              const GestureDefinition& definition,
                              cep::DetectionCallback callback,
                              const QueryGenConfig& config) {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       GenerateQuery(definition, config));
  return query::AddShardedQuery(engine, deployment, parsed,
                                std::move(callback));
}

}  // namespace epl::core
