// Distance-based sampling (paper Sec. 3.3.1, Fig. 4): reduces a recorded
// gesture sample (a dense 30 Hz tuple sequence) to a short sequence of
// characteristic pose centroids by clustering consecutive similar points,
// comparable to density-based clustering.

#ifndef EPL_CORE_SAMPLER_H_
#define EPL_CORE_SAMPLER_H_

#include <memory>
#include <vector>

#include "core/distance.h"
#include "common/time_util.h"

namespace epl::core {

/// One input point of a sample (a transformed sensor tuple restricted to
/// the involved joints).
struct SamplePoint {
  TimePoint timestamp = 0;
  JointPose joints;
};

/// One extracted characteristic pose.
struct PoseCentroid {
  int sequence = 0;
  JointPose joints;
  /// Offset of this pose from the start of the sample.
  Duration time_offset = 0;
  /// Number of tuples clustered into this pose.
  int support = 0;
};

struct SamplerConfig {
  /// Distance between cluster reference and current point; a new cluster
  /// starts when it exceeds the threshold. Defaults to Euclidean.
  std::shared_ptr<DistanceMetric> metric;
  /// Threshold as a fraction of the total path deviation of the sample
  /// (the paper's "at least x% of the total deviation observed").
  double threshold_pct = 0.12;
  /// Absolute threshold; when > 0 it overrides threshold_pct.
  double absolute_threshold = 0.0;
  /// Cluster centroid: the cluster's first tuple (the paper's reference
  /// behaviour) or the mean of its members (noise-robust variant).
  enum class CentroidMode { kReference, kMean };
  CentroidMode centroid_mode = CentroidMode::kReference;
};

/// Result of sampling one recorded gesture sample.
struct SampleSummary {
  std::vector<PoseCentroid> centroids;
  /// Total path deviation (sum of consecutive distances).
  double path_length = 0.0;
  /// The threshold actually used (absolute units of the metric).
  double threshold = 0.0;
  int frame_count = 0;
  Duration duration = 0;
};

class DistanceSampler {
 public:
  explicit DistanceSampler(SamplerConfig config = SamplerConfig());

  /// Extracts characteristic poses. Fails on an empty sample.
  Result<SampleSummary> Run(const std::vector<SamplePoint>& points) const;

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
};

/// Restricts transformed skeleton frames to `joints`, producing sampler
/// input.
std::vector<SamplePoint> PointsFromFrames(
    const std::vector<kinect::SkeletonFrame>& frames,
    const std::vector<kinect::JointId>& joints);

}  // namespace epl::core

#endif  // EPL_CORE_SAMPLER_H_
