#include "core/gesture_definition.h"

#include "common/string_util.h"

namespace epl::core {

Status GestureDefinition::Validate() const {
  if (name.empty()) {
    return InvalidArgumentError("gesture has no name");
  }
  if (source_stream.empty()) {
    return InvalidArgumentError("gesture has no source stream");
  }
  if (joints.empty()) {
    return InvalidArgumentError("gesture involves no joints");
  }
  if (poses.empty()) {
    return InvalidArgumentError("gesture has no poses");
  }
  for (size_t i = 0; i < poses.size(); ++i) {
    const PoseWindow& pose = poses[i];
    for (kinect::JointId joint : joints) {
      auto it = pose.joints.find(joint);
      if (it == pose.joints.end()) {
        return InvalidArgumentError(
            StrFormat("pose %zu does not constrain joint %s", i,
                      std::string(kinect::JointName(joint)).c_str()));
      }
      for (int axis = 0; axis < 3; ++axis) {
        if (it->second.active[static_cast<size_t>(axis)] &&
            it->second.half_width[axis] <= 0.0) {
          return InvalidArgumentError(
              StrFormat("pose %zu joint %s axis %s has non-positive width",
                        i, std::string(kinect::JointName(joint)).c_str(),
                        std::string(AxisName(axis)).c_str()));
        }
      }
    }
    if (i > 0 && pose.max_gap <= 0) {
      return InvalidArgumentError(
          StrFormat("pose %zu has non-positive time budget", i));
    }
  }
  return OkStatus();
}

int GestureDefinition::NumActiveConstraints() const {
  int count = 0;
  for (const PoseWindow& pose : poses) {
    for (const auto& [joint, window] : pose.joints) {
      count += window.NumActiveAxes();
    }
  }
  return count;
}

std::string GestureDefinition::ToString() const {
  std::string out = StrFormat("gesture '%s' on %s (%d samples, %zu poses)\n",
                              name.c_str(), source_stream.c_str(),
                              sample_count, poses.size());
  for (size_t i = 0; i < poses.size(); ++i) {
    out += StrFormat("  pose %zu: %s\n", i, poses[i].ToString().c_str());
  }
  return out;
}

}  // namespace epl::core
