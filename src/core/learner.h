// GestureLearner: the end-to-end learning facade (paper Sec. 3.3).
//
// Feed one or more recorded samples (already transformed into user space,
// i.e. kinect_t frames); each is reduced by distance-based sampling and
// merged incrementally. Learn() returns the generalized GestureDefinition;
// GenerateQuery() additionally emits the CEP query. "Usually, 3-5 samples
// are sufficient to achieve acceptable results" — experiment E4 measures
// exactly this.

#ifndef EPL_CORE_LEARNER_H_
#define EPL_CORE_LEARNER_H_

#include <string>
#include <vector>

#include "core/merger.h"
#include "core/query_gen.h"
#include "core/sampler.h"

namespace epl::core {

struct LearnerConfig {
  SamplerConfig sampler;
  MergeConfig merge;
  GeneralizationConfig generalize;
  QueryGenConfig query;
  /// Stream the generated query reads from.
  std::string source_stream = "kinect_t";
};

class GestureLearner {
 public:
  GestureLearner(std::string gesture_name,
                 std::vector<kinect::JointId> joints,
                 LearnerConfig config = LearnerConfig());

  /// Adds one recorded sample given as transformed skeleton frames.
  Status AddSample(const std::vector<kinect::SkeletonFrame>& frames);

  /// Adds one recorded sample given as raw sampler points.
  Status AddSamplePoints(const std::vector<SamplePoint>& points);

  /// Merged + generalized definition of everything added so far.
  Result<GestureDefinition> Learn() const;

  /// Learn() and generate the query AST / query text.
  Result<query::ParsedQuery> GenerateQuery() const;
  Result<std::string> GenerateQueryText() const;

  int sample_count() const { return merger_.sample_count(); }
  const std::vector<MergeWarning>& warnings() const {
    return merger_.warnings();
  }
  /// Per-sample sampling summaries (for visualization/debugging).
  const std::vector<SampleSummary>& summaries() const { return summaries_; }
  const LearnerConfig& config() const { return config_; }

 private:
  std::string name_;
  std::vector<kinect::JointId> joints_;
  LearnerConfig config_;
  DistanceSampler sampler_;
  WindowMerger merger_;
  std::vector<SampleSummary> summaries_;
};

}  // namespace epl::core

#endif  // EPL_CORE_LEARNER_H_
