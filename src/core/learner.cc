#include "core/learner.h"

namespace epl::core {

GestureLearner::GestureLearner(std::string gesture_name,
                               std::vector<kinect::JointId> joints,
                               LearnerConfig config)
    : name_(std::move(gesture_name)),
      joints_(std::move(joints)),
      config_(std::move(config)),
      sampler_(config_.sampler),
      merger_(name_, joints_, config_.merge) {}

Status GestureLearner::AddSample(
    const std::vector<kinect::SkeletonFrame>& frames) {
  return AddSamplePoints(PointsFromFrames(frames, joints_));
}

Status GestureLearner::AddSamplePoints(
    const std::vector<SamplePoint>& points) {
  EPL_ASSIGN_OR_RETURN(SampleSummary summary, sampler_.Run(points));
  EPL_RETURN_IF_ERROR(merger_.AddSample(summary));
  summaries_.push_back(std::move(summary));
  return OkStatus();
}

Result<GestureDefinition> GestureLearner::Learn() const {
  EPL_ASSIGN_OR_RETURN(GestureDefinition definition,
                       merger_.Build(config_.generalize));
  definition.source_stream = config_.source_stream;
  return definition;
}

Result<query::ParsedQuery> GestureLearner::GenerateQuery() const {
  EPL_ASSIGN_OR_RETURN(GestureDefinition definition, Learn());
  return core::GenerateQuery(definition, config_.query);
}

Result<std::string> GestureLearner::GenerateQueryText() const {
  EPL_ASSIGN_OR_RETURN(GestureDefinition definition, Learn());
  return core::GenerateQueryText(definition, config_.query);
}

}  // namespace epl::core
