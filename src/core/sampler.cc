#include "core/sampler.h"

#include "common/logging.h"

namespace epl::core {

DistanceSampler::DistanceSampler(SamplerConfig config)
    : config_(std::move(config)) {
  if (config_.metric == nullptr) {
    config_.metric = std::make_shared<EuclideanDistance>();
  }
}

Result<SampleSummary> DistanceSampler::Run(
    const std::vector<SamplePoint>& points) const {
  if (points.empty()) {
    return InvalidArgumentError("cannot sample an empty gesture sample");
  }
  const DistanceMetric& metric = *config_.metric;

  SampleSummary summary;
  summary.frame_count = static_cast<int>(points.size());
  summary.duration = points.back().timestamp - points.front().timestamp;

  // Pass 1: total path deviation (consecutive distances).
  for (size_t i = 1; i < points.size(); ++i) {
    summary.path_length +=
        metric.Distance(points[i - 1].joints, points[i].joints, 1);
  }
  summary.threshold = config_.absolute_threshold > 0.0
                          ? config_.absolute_threshold
                          : config_.threshold_pct * summary.path_length;
  if (summary.threshold <= 0.0) {
    // Degenerate sample (no movement at all): one cluster.
    summary.threshold = 1e-9;
  }

  // Pass 2: cluster. The first tuple seeds the first cluster and serves as
  // the reference for distance computation.
  const TimePoint start = points.front().timestamp;
  size_t cluster_start = 0;

  auto close_cluster = [&](size_t begin, size_t end) {
    // [begin, end) forms one cluster.
    PoseCentroid centroid;
    centroid.sequence = static_cast<int>(summary.centroids.size());
    centroid.support = static_cast<int>(end - begin);
    if (config_.centroid_mode == SamplerConfig::CentroidMode::kReference) {
      centroid.joints = points[begin].joints;
      centroid.time_offset = points[begin].timestamp - start;
    } else {
      JointPose sums;
      double total_seconds = 0.0;
      for (size_t i = begin; i < end; ++i) {
        for (const auto& [joint, pos] : points[i].joints) {
          sums[joint] += pos;
        }
        total_seconds += ToSeconds(points[i].timestamp - start);
      }
      double n = static_cast<double>(end - begin);
      for (auto& [joint, sum] : sums) {
        centroid.joints[joint] = sum / n;
      }
      centroid.time_offset = DurationFromSeconds(total_seconds / n);
    }
    summary.centroids.push_back(std::move(centroid));
  };

  for (size_t i = 1; i < points.size(); ++i) {
    double distance = metric.Distance(points[cluster_start].joints,
                                      points[i].joints,
                                      static_cast<int>(i - cluster_start));
    if (distance > summary.threshold) {
      close_cluster(cluster_start, i);
      cluster_start = i;
    }
  }
  close_cluster(cluster_start, points.size());
  return summary;
}

std::vector<SamplePoint> PointsFromFrames(
    const std::vector<kinect::SkeletonFrame>& frames,
    const std::vector<kinect::JointId>& joints) {
  std::vector<SamplePoint> points;
  points.reserve(frames.size());
  for (const kinect::SkeletonFrame& frame : frames) {
    SamplePoint point;
    point.timestamp = frame.timestamp;
    for (kinect::JointId joint : joints) {
      point.joints[joint] = frame.joint(joint);
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace epl::core
