// Distance metrics for the distance-based sampler (paper Sec. 3.3.1: "The
// distance function is configurable to express several gesture semantics,
// e.g., the Euclidean distance can be used to express spatial differences
// between successive poses, or metrics like 'every x tuples' can be used
// for time-based constraints.").

#ifndef EPL_CORE_DISTANCE_H_
#define EPL_CORE_DISTANCE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/vec3.h"
#include "kinect/skeleton.h"

namespace epl::core {

/// Positions of the involved joints at one instant (user space).
using JointPose = std::map<kinect::JointId, Vec3>;

class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  /// Distance between the reference pose of the current cluster and the
  /// current pose. `tuples_since_ref` is the number of stream tuples seen
  /// since the reference, which time-based metrics use instead of the
  /// coordinates.
  virtual double Distance(const JointPose& reference,
                          const JointPose& current,
                          int tuples_since_ref) const = 0;

  virtual std::string name() const = 0;
};

/// Euclidean distance over all involved joint coordinates.
class EuclideanDistance : public DistanceMetric {
 public:
  double Distance(const JointPose& reference, const JointPose& current,
                  int tuples_since_ref) const override;
  std::string name() const override { return "euclidean"; }
};

/// Maximum absolute per-axis difference (Chebyshev / L-infinity), which
/// pairs naturally with rectangular windows.
class ChebyshevDistance : public DistanceMetric {
 public:
  double Distance(const JointPose& reference, const JointPose& current,
                  int tuples_since_ref) const override;
  std::string name() const override { return "chebyshev"; }
};

/// "Every x tuples": the distance is the tuple count since the reference,
/// giving time-based sampling.
class TupleCountDistance : public DistanceMetric {
 public:
  double Distance(const JointPose& reference, const JointPose& current,
                  int tuples_since_ref) const override;
  std::string name() const override { return "tuple_count"; }
};

/// Euclidean distance with per-joint weights (emphasize the dominant hand).
class WeightedEuclideanDistance : public DistanceMetric {
 public:
  explicit WeightedEuclideanDistance(
      std::map<kinect::JointId, double> weights);
  double Distance(const JointPose& reference, const JointPose& current,
                  int tuples_since_ref) const override;
  std::string name() const override { return "weighted_euclidean"; }

 private:
  std::map<kinect::JointId, double> weights_;
};

/// Factory by name ("euclidean", "chebyshev", "tuple_count").
Result<std::shared_ptr<DistanceMetric>> MakeDistanceMetric(
    const std::string& name);

}  // namespace epl::core

#endif  // EPL_CORE_DISTANCE_H_
