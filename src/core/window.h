// Pose windows: multi-dimensional rectangles describing where involved
// joints must be for a pose to match (paper Sec. 3.3: "we express these
// regions as multi-dimensional rectangles ('windows'), having a center
// point ... and a width in each dimension").

#ifndef EPL_CORE_WINDOW_H_
#define EPL_CORE_WINDOW_H_

#include <array>
#include <map>
#include <string>

#include "common/result.h"
#include "common/time_util.h"
#include "common/vec3.h"
#include "kinect/skeleton.h"

namespace epl::core {

/// Axis-aligned box for one joint: |coord - center| < half_width per axis.
/// Axes can be deactivated by the optimizer (coordinate elimination,
/// paper Sec. 3.3.3); inactive axes produce no predicate.
struct JointWindow {
  Vec3 center;
  Vec3 half_width;
  std::array<bool, 3> active = {true, true, true};

  bool Contains(const Vec3& point) const {
    for (int axis = 0; axis < 3; ++axis) {
      if (active[static_cast<size_t>(axis)] &&
          std::abs(point[axis] - center[axis]) >= half_width[axis]) {
        return false;
      }
    }
    return true;
  }

  /// True when the boxes overlap on every active axis (an axis inactive on
  /// either side is unconstrained and always overlaps).
  bool Intersects(const JointWindow& other) const;

  /// Fraction of this box's active-axis extent covered by the
  /// intersection with `other` (1 = fully contained). Returns 1 when no
  /// axis is active.
  double ContainmentIn(const JointWindow& other) const;

  /// Grows the box: half_width = max(half_width * factor + margin, min_hw).
  void Widen(double factor, double margin, double min_half_width);

  int NumActiveAxes() const {
    return static_cast<int>(active[0]) + static_cast<int>(active[1]) +
           static_cast<int>(active[2]);
  }

  std::string ToString() const;
};

/// One pose of a gesture: a window per involved joint plus the time budget
/// from the previous pose (the `within` bound of the generated query).
struct PoseWindow {
  std::map<kinect::JointId, JointWindow> joints;
  /// Maximum allowed time since the previous pose (0 for the first pose).
  Duration max_gap = 0;

  /// True when every involved joint of `positions` lies inside its window.
  bool Contains(const std::map<kinect::JointId, Vec3>& positions) const;

  bool Intersects(const PoseWindow& other) const;

  /// Minimum containment over joints present in both (1 when disjoint
  /// joint sets).
  double ContainmentIn(const PoseWindow& other) const;

  void Widen(double factor, double margin, double min_half_width);

  std::string ToString() const;
};

}  // namespace epl::core

#endif  // EPL_CORE_WINDOW_H_
