// GestureDefinition: the learned, declarative description of one gesture —
// an ordered list of pose windows with step time budgets. This is what the
// gesture database stores and what the query generator turns into CEP
// query text (paper Fig. 2 center/right).

#ifndef EPL_CORE_GESTURE_DEFINITION_H_
#define EPL_CORE_GESTURE_DEFINITION_H_

#include <string>
#include <vector>

#include "core/window.h"

namespace epl::core {

struct GestureDefinition {
  /// Output value of the generated query (e.g. "swipe_right").
  std::string name;
  /// Stream/view the gesture is detected on (normally "kinect_t").
  std::string source_stream = "kinect_t";
  /// Involved joints in a fixed order.
  std::vector<kinect::JointId> joints;
  /// Characteristic poses in sequence order. poses[i].max_gap is the time
  /// budget between pose i-1 and pose i (ignored for i = 0).
  std::vector<PoseWindow> poses;
  /// How many samples were merged into this definition.
  int sample_count = 0;
  /// Free-form provenance notes.
  std::string notes;

  /// Structural checks: non-empty name/joints/poses, every pose constrains
  /// every involved joint, positive widths on active axes, positive gaps.
  Status Validate() const;

  /// Total number of active (joint, axis) constraints over all poses.
  int NumActiveConstraints() const;

  std::string ToString() const;
};

}  // namespace epl::core

#endif  // EPL_CORE_GESTURE_DEFINITION_H_
