#include "core/window.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace epl::core {

bool JointWindow::Intersects(const JointWindow& other) const {
  for (int axis = 0; axis < 3; ++axis) {
    size_t a = static_cast<size_t>(axis);
    if (!active[a] || !other.active[a]) {
      continue;
    }
    double gap = std::abs(center[axis] - other.center[axis]);
    if (gap >= half_width[axis] + other.half_width[axis]) {
      return false;
    }
  }
  return true;
}

double JointWindow::ContainmentIn(const JointWindow& other) const {
  double fraction = 1.0;
  bool any_active = false;
  for (int axis = 0; axis < 3; ++axis) {
    size_t a = static_cast<size_t>(axis);
    if (!active[a] || !other.active[a]) {
      continue;
    }
    any_active = true;
    double lo = std::max(center[axis] - half_width[axis],
                         other.center[axis] - other.half_width[axis]);
    double hi = std::min(center[axis] + half_width[axis],
                         other.center[axis] + other.half_width[axis]);
    double extent = 2.0 * half_width[axis];
    if (extent <= 0.0) {
      fraction *= (hi >= lo) ? 1.0 : 0.0;
    } else {
      fraction *= std::max(0.0, hi - lo) / extent;
    }
  }
  return any_active ? fraction : 1.0;
}

void JointWindow::Widen(double factor, double margin, double min_half_width) {
  for (int axis = 0; axis < 3; ++axis) {
    half_width[axis] =
        std::max(half_width[axis] * factor + margin, min_half_width);
  }
}

std::string JointWindow::ToString() const {
  std::string out = "center " + center.ToString() + " width " +
                    half_width.ToString();
  if (NumActiveAxes() < 3) {
    out += " axes[";
    for (int axis = 0; axis < 3; ++axis) {
      if (active[static_cast<size_t>(axis)]) {
        out += AxisName(axis);
      }
    }
    out += "]";
  }
  return out;
}

bool PoseWindow::Contains(
    const std::map<kinect::JointId, Vec3>& positions) const {
  for (const auto& [joint, window] : joints) {
    auto it = positions.find(joint);
    if (it == positions.end() || !window.Contains(it->second)) {
      return false;
    }
  }
  return true;
}

bool PoseWindow::Intersects(const PoseWindow& other) const {
  for (const auto& [joint, window] : joints) {
    auto it = other.joints.find(joint);
    if (it != other.joints.end() && !window.Intersects(it->second)) {
      return false;
    }
  }
  return true;
}

double PoseWindow::ContainmentIn(const PoseWindow& other) const {
  double fraction = 1.0;
  for (const auto& [joint, window] : joints) {
    auto it = other.joints.find(joint);
    if (it != other.joints.end()) {
      fraction = std::min(fraction, window.ContainmentIn(it->second));
    }
  }
  return fraction;
}

void PoseWindow::Widen(double factor, double margin, double min_half_width) {
  for (auto& [joint, window] : joints) {
    window.Widen(factor, margin, min_half_width);
  }
}

std::string PoseWindow::ToString() const {
  std::string out;
  for (const auto& [joint, window] : joints) {
    if (!out.empty()) {
      out += "; ";
    }
    out += std::string(kinect::JointName(joint)) + " " + window.ToString();
  }
  if (max_gap > 0) {
    out += StrFormat(" (within %s)", FormatDuration(max_gap).c_str());
  }
  return out;
}

}  // namespace epl::core
