// Query generation (paper Sec. 3.3.4): turns a GestureDefinition into a
// CEP query — the range predicates
//     abs(center_{j,i} - coord_{j,i}) < width_{j,i}
// conjoined per pose, poses joined with nested sequence operators, exactly
// the Fig. 1 shape.

#ifndef EPL_CORE_QUERY_GEN_H_
#define EPL_CORE_QUERY_GEN_H_

#include <string>
#include <vector>

#include "cep/detection.h"
#include "cep/matcher.h"
#include "core/gesture_definition.h"
#include "query/compiler.h"
#include "query/parser.h"
#include "stream/engine.h"

namespace epl::core {

struct QueryGenConfig {
  /// Left-nested binary sequences with a per-step `within` at every level,
  /// as in the paper's Fig. 1. When false and all step budgets are equal,
  /// a flat sequence with a single `within` is produced instead.
  bool nest_like_paper = true;
};

/// Builds the query AST (pattern + output name) for a gesture.
Result<query::ParsedQuery> GenerateQuery(
    const GestureDefinition& definition,
    const QueryGenConfig& config = QueryGenConfig());

/// Generated query text in the paper's layout; re-parses to the same
/// query (round-trip tested).
Result<std::string> GenerateQueryText(
    const GestureDefinition& definition,
    const QueryGenConfig& config = QueryGenConfig());

/// Generates and deploys the gesture's query on its source stream.
/// Compatibility wrapper over the shared path: deploys a single-query
/// fused operator (query::DeployQueriesFused), NOT a standalone
/// MatchOperator, so lone gestures still run on the bank-backed flat
/// runtime. Prefer workflow::GestureRuntime (named deploy/undeploy,
/// hot-swap, multi-session) or DeployGesturesFused for query fleets.
Result<stream::DeploymentId> DeployGesture(
    stream::StreamEngine* engine, const GestureDefinition& definition,
    cep::DetectionCallback callback,
    const QueryGenConfig& config = QueryGenConfig(),
    cep::MatcherOptions matcher_options = cep::MatcherOptions());

/// Generates queries for all `definitions` (which must share one source
/// stream) and deploys them as ONE fused MultiMatchOperator sharing a
/// predicate bank (query::DeployQueriesFused), instead of one match
/// operator per gesture. The returned handle supports runtime gesture
/// exchange (AddFusedGesture / FusedDeployment::op->RemoveQuery).
Result<query::FusedDeployment> DeployGesturesFused(
    stream::StreamEngine* engine,
    const std::vector<GestureDefinition>& definitions,
    cep::DetectionCallback callback,
    const QueryGenConfig& config = QueryGenConfig(),
    cep::MatcherOptions matcher_options = cep::MatcherOptions());

/// Generates and adds one gesture to a live fused deployment; returns the
/// query's stable id (for FusedDeployment::op->RemoveQuery).
Result<int> AddFusedGesture(stream::StreamEngine* engine,
                            const query::FusedDeployment& deployment,
                            const GestureDefinition& definition,
                            cep::DetectionCallback callback,
                            const QueryGenConfig& config = QueryGenConfig());

/// Like DeployGesturesFused, but partitions the gestures across the worker
/// shards of a cep::ShardedEngine (query::DeployQueriesSharded) for
/// multi-core scaling; detections are merged back in deterministic
/// (event-seq, query-id) order.
Result<query::ShardedDeployment> DeployGesturesSharded(
    stream::StreamEngine* engine,
    const std::vector<GestureDefinition>& definitions,
    cep::DetectionCallback callback,
    const QueryGenConfig& config = QueryGenConfig(),
    cep::ShardedEngineOptions sharded_options = cep::ShardedEngineOptions());

/// Generates and adds one gesture to a live sharded deployment; returns
/// the query's stable id (for ShardedDeployment::engine->RemoveQuery).
Result<int> AddShardedGesture(
    stream::StreamEngine* engine, const query::ShardedDeployment& deployment,
    const GestureDefinition& definition, cep::DetectionCallback callback,
    const QueryGenConfig& config = QueryGenConfig());

}  // namespace epl::core

#endif  // EPL_CORE_QUERY_GEN_H_
