// Window merging (paper Sec. 3.3.2): combines the characteristic poses
// extracted from multiple recordings of the same gesture into minimal
// bounding rectangles, incrementally. A sample that deviates strongly from
// the windows merged so far triggers a warning ("allowing us to issue a
// warning in this situation").

#ifndef EPL_CORE_MERGER_H_
#define EPL_CORE_MERGER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/gesture_definition.h"
#include "core/sampler.h"

namespace epl::core {

struct MergeConfig {
  /// Pose-count alignment across samples. The paper merges centroids "with
  /// the same sequence number"; kResample additionally tolerates samples
  /// whose sampler produced a different number of windows by interpolating
  /// them at the reference pose's relative path positions.
  enum class Alignment { kStrict, kResample };
  Alignment alignment = Alignment::kResample;
  /// A new centroid farther outside the current window than
  /// (outlier_slack_mm + outlier_factor * half_width) produces a warning.
  double outlier_factor = 3.0;
  double outlier_slack_mm = 80.0;
  /// When true, outlier samples are rejected instead of merged.
  bool reject_outliers = false;
};

struct MergeWarning {
  int sample_index = 0;
  int pose_index = 0;
  kinect::JointId joint = kinect::JointId::kTorso;
  double deviation_mm = 0.0;
  std::string message;
};

/// Widening of the merged MBRs before query generation (paper Sec. 3.3.2:
/// "another scaling step can be performed by increasing the rectangles'
/// width in each dimension").
struct GeneralizationConfig {
  double widen_factor = 1.0;
  double extra_margin_mm = 0.0;
  /// Lower bound on each half-width; the paper's example windows use 50.
  double min_half_width_mm = 50.0;
  /// Slack multiplier on the observed inter-pose gaps.
  double time_slack = 2.0;
  /// Gap budgets are rounded up to a multiple of this (the paper's queries
  /// use whole seconds).
  Duration time_round = kSecond;
  /// Lower bound for gap budgets.
  Duration min_gap = kSecond;
};

class WindowMerger {
 public:
  WindowMerger(std::string gesture_name,
               std::vector<kinect::JointId> joints,
               MergeConfig config = MergeConfig());

  /// Merges one sampled recording. The first sample fixes the pose count;
  /// later samples are aligned per MergeConfig::alignment.
  Status AddSample(const SampleSummary& sample);

  /// Builds the merged definition with `generalization` applied.
  Result<GestureDefinition> Build(
      const GeneralizationConfig& generalization =
          GeneralizationConfig()) const;

  int sample_count() const { return sample_count_; }
  int pose_count() const { return static_cast<int>(poses_.size()); }
  const std::vector<MergeWarning>& warnings() const { return warnings_; }

 private:
  struct JointBounds {
    Vec3 min;
    Vec3 max;
    bool initialized = false;

    void Extend(const Vec3& point);
  };
  struct PoseAccumulator {
    std::map<kinect::JointId, JointBounds> bounds;
    Duration max_observed_gap = 0;  // from previous pose
    Duration time_offset = 0;       // from the first sample (for alignment)
  };

  /// Interpolates a sample's centroid path at relative position u in [0,1].
  static JointPose InterpolateAt(const SampleSummary& sample, double u);

  std::string name_;
  std::vector<kinect::JointId> joints_;
  MergeConfig config_;
  std::vector<PoseAccumulator> poses_;
  std::vector<MergeWarning> warnings_;
  int sample_count_ = 0;
};

}  // namespace epl::core

#endif  // EPL_CORE_MERGER_H_
