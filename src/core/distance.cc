#include "core/distance.h"

#include <cmath>

namespace epl::core {

double EuclideanDistance::Distance(const JointPose& reference,
                                   const JointPose& current,
                                   int /*tuples_since_ref*/) const {
  double sum_sq = 0.0;
  for (const auto& [joint, ref_pos] : reference) {
    auto it = current.find(joint);
    if (it != current.end()) {
      sum_sq += (it->second - ref_pos).NormSquared();
    }
  }
  return std::sqrt(sum_sq);
}

double ChebyshevDistance::Distance(const JointPose& reference,
                                   const JointPose& current,
                                   int /*tuples_since_ref*/) const {
  double max_diff = 0.0;
  for (const auto& [joint, ref_pos] : reference) {
    auto it = current.find(joint);
    if (it == current.end()) {
      continue;
    }
    for (int axis = 0; axis < 3; ++axis) {
      max_diff =
          std::max(max_diff, std::abs(it->second[axis] - ref_pos[axis]));
    }
  }
  return max_diff;
}

double TupleCountDistance::Distance(const JointPose& /*reference*/,
                                    const JointPose& /*current*/,
                                    int tuples_since_ref) const {
  return static_cast<double>(tuples_since_ref);
}

WeightedEuclideanDistance::WeightedEuclideanDistance(
    std::map<kinect::JointId, double> weights)
    : weights_(std::move(weights)) {}

double WeightedEuclideanDistance::Distance(const JointPose& reference,
                                           const JointPose& current,
                                           int /*tuples_since_ref*/) const {
  double sum_sq = 0.0;
  for (const auto& [joint, ref_pos] : reference) {
    auto it = current.find(joint);
    if (it == current.end()) {
      continue;
    }
    auto weight_it = weights_.find(joint);
    double weight = weight_it != weights_.end() ? weight_it->second : 1.0;
    sum_sq += weight * (it->second - ref_pos).NormSquared();
  }
  return std::sqrt(sum_sq);
}

Result<std::shared_ptr<DistanceMetric>> MakeDistanceMetric(
    const std::string& name) {
  if (name == "euclidean") {
    return std::shared_ptr<DistanceMetric>(new EuclideanDistance());
  }
  if (name == "chebyshev") {
    return std::shared_ptr<DistanceMetric>(new ChebyshevDistance());
  }
  if (name == "tuple_count") {
    return std::shared_ptr<DistanceMetric>(new TupleCountDistance());
  }
  return NotFoundError("unknown distance metric: " + name);
}

}  // namespace epl::core
