#include "gesturedb/serialization.h"

#include <sstream>

#include "common/string_util.h"

namespace epl::gesturedb {

using core::GestureDefinition;
using core::JointWindow;
using core::PoseWindow;
using kinect::JointId;

namespace {
constexpr char kMagic[] = "epl-gesture v1";
}  // namespace

std::string Serialize(const GestureDefinition& definition) {
  std::string out = std::string(kMagic) + "\n";
  out += "name: " + definition.name + "\n";
  out += "stream: " + definition.source_stream + "\n";
  out += StrFormat("samples: %d\n", definition.sample_count);
  out += "joints:";
  for (JointId joint : definition.joints) {
    out += " " + std::string(kinect::JointName(joint));
  }
  out += "\n";
  if (!definition.notes.empty()) {
    out += "notes: " + definition.notes + "\n";
  }
  for (const PoseWindow& pose : definition.poses) {
    out += StrFormat("pose gap_us=%lld\n",
                     static_cast<long long>(pose.max_gap));
    for (JointId joint : definition.joints) {
      const JointWindow& window = pose.joints.at(joint);
      out += StrFormat(
          "  joint %s center %s %s %s half %s %s %s axes ",
          std::string(kinect::JointName(joint)).c_str(),
          FormatNumber(window.center.x).c_str(),
          FormatNumber(window.center.y).c_str(),
          FormatNumber(window.center.z).c_str(),
          FormatNumber(window.half_width.x).c_str(),
          FormatNumber(window.half_width.y).c_str(),
          FormatNumber(window.half_width.z).c_str());
      bool any = false;
      for (int axis = 0; axis < 3; ++axis) {
        if (window.active[static_cast<size_t>(axis)]) {
          out += AxisName(axis);
          any = true;
        }
      }
      if (!any) {
        out += "-";
      }
      out += "\n";
    }
  }
  out += "end\n";
  return out;
}

namespace {

Result<double> TokenToDouble(const std::vector<std::string>& tokens,
                             size_t index) {
  if (index >= tokens.size()) {
    return DataLossError("truncated line in gesture file");
  }
  return ParseDouble(tokens[index]);
}

}  // namespace

Result<GestureDefinition> Deserialize(const std::string& text) {
  std::istringstream input(text);
  std::string line;
  GestureDefinition definition;
  bool magic_seen = false;
  bool end_seen = false;
  PoseWindow* current_pose = nullptr;
  int line_number = 0;

  while (std::getline(input, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::string content(stripped);
    auto error = [&](const std::string& message) {
      return DataLossError(
          StrFormat("gesture file line %d: %s", line_number,
                    message.c_str()));
    };

    if (!magic_seen) {
      if (content != kMagic) {
        return error("expected header '" + std::string(kMagic) + "'");
      }
      magic_seen = true;
      continue;
    }
    if (content == "end") {
      end_seen = true;
      break;
    }
    if (StartsWith(content, "name: ")) {
      definition.name = content.substr(6);
      continue;
    }
    if (StartsWith(content, "stream: ")) {
      definition.source_stream = content.substr(8);
      continue;
    }
    if (StartsWith(content, "samples: ")) {
      EPL_ASSIGN_OR_RETURN(int64_t samples, ParseInt64(content.substr(9)));
      definition.sample_count = static_cast<int>(samples);
      continue;
    }
    if (StartsWith(content, "notes: ")) {
      definition.notes = content.substr(7);
      continue;
    }
    if (StartsWith(content, "joints:")) {
      std::vector<std::string> names =
          StrSplit(std::string(StripWhitespace(content.substr(7))), ' ');
      for (const std::string& name : names) {
        if (name.empty()) {
          continue;
        }
        Result<JointId> joint = kinect::JointFromName(name);
        if (!joint.ok()) {
          return error("unknown joint '" + name + "'");
        }
        definition.joints.push_back(*joint);
      }
      continue;
    }
    if (StartsWith(content, "pose gap_us=")) {
      EPL_ASSIGN_OR_RETURN(int64_t gap, ParseInt64(content.substr(12)));
      PoseWindow pose;
      pose.max_gap = gap;
      definition.poses.push_back(std::move(pose));
      current_pose = &definition.poses.back();
      continue;
    }
    if (StartsWith(content, "joint ")) {
      if (current_pose == nullptr) {
        return error("joint line outside a pose block");
      }
      std::vector<std::string> tokens = StrSplit(content, ' ');
      // joint <name> center x y z half x y z axes <flags>
      if (tokens.size() != 12 || tokens[2] != "center" ||
          tokens[6] != "half" || tokens[10] != "axes") {
        return error("malformed joint line");
      }
      Result<JointId> joint = kinect::JointFromName(tokens[1]);
      if (!joint.ok()) {
        return error("unknown joint '" + tokens[1] + "'");
      }
      JointWindow window;
      EPL_ASSIGN_OR_RETURN(window.center.x, TokenToDouble(tokens, 3));
      EPL_ASSIGN_OR_RETURN(window.center.y, TokenToDouble(tokens, 4));
      EPL_ASSIGN_OR_RETURN(window.center.z, TokenToDouble(tokens, 5));
      EPL_ASSIGN_OR_RETURN(window.half_width.x, TokenToDouble(tokens, 7));
      EPL_ASSIGN_OR_RETURN(window.half_width.y, TokenToDouble(tokens, 8));
      EPL_ASSIGN_OR_RETURN(window.half_width.z, TokenToDouble(tokens, 9));
      window.active = {false, false, false};
      for (char axis : tokens[11]) {
        if (axis == 'x') {
          window.active[0] = true;
        } else if (axis == 'y') {
          window.active[1] = true;
        } else if (axis == 'z') {
          window.active[2] = true;
        } else if (axis != '-') {
          return error("bad axis flags");
        }
      }
      (*current_pose).joints[*joint] = window;
      continue;
    }
    return error("unrecognized line '" + content + "'");
  }

  if (!magic_seen) {
    return DataLossError("gesture file is empty or missing header");
  }
  if (!end_seen) {
    return DataLossError("gesture file truncated (missing 'end')");
  }
  EPL_RETURN_IF_ERROR(definition.Validate().WithContext("gesture file"));
  return definition;
}

}  // namespace epl::gesturedb
