// Versioned text serialization of GestureDefinitions (the "Gesture
// Database" persistence format, paper Fig. 2).
//
// Format (line-oriented, '#' comments allowed):
//
//   epl-gesture v1
//   name: swipe_right
//   stream: kinect_t
//   samples: 4
//   joints: rHand lHand
//   notes: optional free text
//   pose gap_us=0
//     joint rHand center 0 150 -120 half 50 50 50 axes xyz
//     joint lHand center -185 -195 0 half 50 50 50 axes xy
//   pose gap_us=1000000
//     ...
//   end

#ifndef EPL_GESTUREDB_SERIALIZATION_H_
#define EPL_GESTUREDB_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "core/gesture_definition.h"

namespace epl::gesturedb {

std::string Serialize(const core::GestureDefinition& definition);

Result<core::GestureDefinition> Deserialize(const std::string& text);

}  // namespace epl::gesturedb

#endif  // EPL_GESTUREDB_SERIALIZATION_H_
