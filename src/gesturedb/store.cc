#include "gesturedb/store.h"

#include <algorithm>
#include <filesystem>

#include "common/csv.h"
#include "common/string_util.h"
#include "gesturedb/serialization.h"
#include "kinect/trace_io.h"

namespace epl::gesturedb {

namespace fs = std::filesystem;

namespace {

constexpr char kExtension[] = ".gesture";

Status ValidateName(const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("gesture name is empty");
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return InvalidArgumentError(
          "gesture name must be [A-Za-z0-9_-]: '" + name + "'");
    }
  }
  return OkStatus();
}

}  // namespace

GestureStore::GestureStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<GestureStore> GestureStore::Open(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return InternalError("cannot create store directory: " + directory +
                         ": " + ec.message());
  }
  return GestureStore(directory);
}

std::string GestureStore::GesturePath(const std::string& name) const {
  return directory_ + "/" + name + kExtension;
}

std::string GestureStore::SampleDir(const std::string& name) const {
  return directory_ + "/samples/" + name;
}

Status GestureStore::Put(const core::GestureDefinition& definition) {
  EPL_RETURN_IF_ERROR(ValidateName(definition.name));
  EPL_RETURN_IF_ERROR(definition.Validate());
  return WriteStringToFile(GesturePath(definition.name),
                           Serialize(definition));
}

Result<core::GestureDefinition> GestureStore::Get(
    const std::string& name) const {
  EPL_RETURN_IF_ERROR(ValidateName(name));
  Result<std::string> text = ReadFileToString(GesturePath(name));
  if (!text.ok()) {
    return NotFoundError("gesture not stored: " + name);
  }
  Result<core::GestureDefinition> definition = Deserialize(*text);
  if (!definition.ok()) {
    return definition.status().WithContext(GesturePath(name));
  }
  return definition;
}

bool GestureStore::Exists(const std::string& name) const {
  std::error_code ec;
  return fs::exists(GesturePath(name), ec);
}

Status GestureStore::Remove(const std::string& name) {
  EPL_RETURN_IF_ERROR(ValidateName(name));
  if (!Exists(name)) {
    return NotFoundError("gesture not stored: " + name);
  }
  std::error_code ec;
  fs::remove(GesturePath(name), ec);
  if (ec) {
    return InternalError("cannot remove " + GesturePath(name));
  }
  fs::remove_all(SampleDir(name), ec);
  return OkStatus();
}

Result<std::vector<std::string>> GestureStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string filename = entry.path().filename().string();
    if (EndsWith(filename, kExtension)) {
      names.push_back(
          filename.substr(0, filename.size() - sizeof(kExtension) + 1));
    }
  }
  if (ec) {
    return InternalError("cannot list store directory: " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<int> GestureStore::AddSample(
    const std::string& gesture_name,
    const std::vector<kinect::SkeletonFrame>& frames) {
  EPL_RETURN_IF_ERROR(ValidateName(gesture_name));
  std::error_code ec;
  fs::create_directories(SampleDir(gesture_name), ec);
  if (ec) {
    return InternalError("cannot create sample directory");
  }
  EPL_ASSIGN_OR_RETURN(int index, SampleCount(gesture_name));
  std::string path =
      SampleDir(gesture_name) + "/" + std::to_string(index) + ".csv";
  EPL_RETURN_IF_ERROR(kinect::WriteTrace(path, frames));
  return index;
}

Result<std::vector<kinect::SkeletonFrame>> GestureStore::GetSample(
    const std::string& gesture_name, int index) const {
  std::string path =
      SampleDir(gesture_name) + "/" + std::to_string(index) + ".csv";
  return kinect::ReadTrace(path);
}

Result<int> GestureStore::SampleCount(
    const std::string& gesture_name) const {
  std::error_code ec;
  if (!fs::exists(SampleDir(gesture_name), ec)) {
    return 0;
  }
  int count = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(SampleDir(gesture_name), ec)) {
    if (entry.is_regular_file() &&
        EndsWith(entry.path().filename().string(), ".csv")) {
      ++count;
    }
  }
  if (ec) {
    return InternalError("cannot list sample directory");
  }
  return count;
}

}  // namespace epl::gesturedb
