// GestureStore: directory-backed persistence for gesture definitions and
// their raw training samples (paper Fig. 2: "All gesture patterns are
// stored in a database"; "the sample data is stored in a database for
// further processing and manual debugging").
//
// Layout:
//   <root>/<name>.gesture            serialized definition
//   <root>/samples/<name>/<k>.csv    raw recorded sample traces

#ifndef EPL_GESTUREDB_STORE_H_
#define EPL_GESTUREDB_STORE_H_

#include <string>
#include <vector>

#include "core/gesture_definition.h"
#include "kinect/skeleton.h"

namespace epl::gesturedb {

class GestureStore {
 public:
  /// Opens (and creates if necessary) the store rooted at `directory`.
  static Result<GestureStore> Open(const std::string& directory);

  /// Writes or overwrites a definition.
  Status Put(const core::GestureDefinition& definition);

  Result<core::GestureDefinition> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;

  /// Removes the definition and its samples.
  Status Remove(const std::string& name);

  /// Sorted names of all stored gestures.
  Result<std::vector<std::string>> List() const;

  /// Appends a raw training sample for `gesture_name`; returns its index.
  Result<int> AddSample(const std::string& gesture_name,
                        const std::vector<kinect::SkeletonFrame>& frames);

  Result<std::vector<kinect::SkeletonFrame>> GetSample(
      const std::string& gesture_name, int index) const;

  Result<int> SampleCount(const std::string& gesture_name) const;

  const std::string& directory() const { return directory_; }

 private:
  explicit GestureStore(std::string directory);

  std::string GesturePath(const std::string& name) const;
  std::string SampleDir(const std::string& name) const;

  std::string directory_;
};

}  // namespace epl::gesturedb

#endif  // EPL_GESTUREDB_STORE_H_
