#include "common/status.h"

namespace epl {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string combined(context);
  combined += ": ";
  combined += message_;
  return Status(code_, std::move(combined));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}
Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}

}  // namespace epl
