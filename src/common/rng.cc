#include "common/rng.h"

#include <cmath>

namespace epl {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64() % range);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace epl
