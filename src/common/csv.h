// Minimal CSV reading/writing with a configurable delimiter.
//
// The paper's Fig. 1 sensor trace uses ';' as delimiter; generated traces
// use the same convention. No quoting support is needed for numeric traces.

#ifndef EPL_COMMON_CSV_H_
#define EPL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace epl {

struct CsvTable {
  std::vector<std::string> header;         // empty if has_header was false
  std::vector<std::vector<double>> rows;   // numeric payload
};

struct CsvOptions {
  char delimiter = ';';
  bool has_header = true;
  /// Skip lines that are empty or start with '#'.
  bool skip_comments = true;
};

/// Parses `text` as numeric CSV.
Result<CsvTable> ParseCsv(const std::string& text,
                          const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = CsvOptions());

/// Serializes a table (header omitted when empty).
std::string WriteCsv(const CsvTable& table,
                     const CsvOptions& options = CsvOptions());

/// Writes a table to a file, overwriting.
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options = CsvOptions());

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, overwriting.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace epl

#endif  // EPL_COMMON_CSV_H_
