#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace epl {

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

namespace internal_logging {
namespace {

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

LogSink& CurrentSink() {
  static LogSink* sink = new LogSink([](LogLevel level, const std::string& m) {
    std::fprintf(stderr, "[%s] %s\n",
                 std::string(LogLevelToString(level)).c_str(), m.c_str());
  });
  return *sink;
}

LogLevel& MinLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = CurrentSink();
  CurrentSink() = std::move(sink);
  return previous;
}

void Emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (CurrentSink()) {
    CurrentSink()(level, message);
  }
}

void SetMinLogLevel(LogLevel level) { MinLevel() = level; }
LogLevel GetMinLogLevel() { return MinLevel(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(GetMinLogLevel())) {
    Emit(level_, stream_.str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  std::string message = stream_.str();
  Emit(LogLevel::kError, message);
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

}  // namespace internal_logging

ScopedLogCapture::ScopedLogCapture() {
  previous_ = internal_logging::SetLogSink(
      [this](LogLevel level, const std::string& message) {
        std::lock_guard<std::mutex> lock(mu_);
        records_.push_back({level, message});
      });
}

ScopedLogCapture::~ScopedLogCapture() {
  internal_logging::SetLogSink(previous_);
}

std::vector<ScopedLogCapture::Record> ScopedLogCapture::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

bool ScopedLogCapture::Contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Record& record : records_) {
    if (record.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace epl
