// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator (sensor noise, user variation,
// distractor motion) draw from a seeded Rng so that tests and experiments
// are reproducible bit-for-bit.

#ifndef EPL_COMMON_RNG_H_
#define EPL_COMMON_RNG_H_

#include <cstdint>

namespace epl {

/// xoshiro256++ with a SplitMix64-seeded state. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Derives an independent generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace epl

#endif  // EPL_COMMON_RNG_H_
