#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace epl {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      result += separator;
    }
    result += pieces[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return InvalidArgumentError("cannot parse empty string as double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return InvalidArgumentError("cannot parse '" + buffer + "' as double");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return InvalidArgumentError("cannot parse empty string as int64");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return InvalidArgumentError("cannot parse '" + buffer + "' as int64");
  }
  return static_cast<int64_t>(value);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatNumber(double value) {
  // Round very-near integers to keep generated queries readable.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  std::string text = buffer;
  size_t dot = text.find('.');
  if (dot != std::string::npos) {
    size_t last = text.find_last_not_of('0');
    if (last == dot) {
      last -= 1;
    }
    text.erase(last + 1);
  }
  if (text == "-0") {
    text = "0";
  }
  return text;
}

}  // namespace epl
