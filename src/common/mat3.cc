#include "common/mat3.h"

#include <cmath>
#include <cstdio>

namespace epl {

Mat3::Mat3() : m_({1, 0, 0, 0, 1, 0, 0, 0, 1}) {}

Mat3::Mat3(const std::array<double, 9>& values) : m_(values) {}

Mat3 Mat3::Identity() { return Mat3(); }

Mat3 Mat3::RotationX(double radians) {
  double c = std::cos(radians);
  double s = std::sin(radians);
  return Mat3({1, 0, 0, 0, c, -s, 0, s, c});
}

Mat3 Mat3::RotationY(double radians) {
  double c = std::cos(radians);
  double s = std::sin(radians);
  return Mat3({c, 0, s, 0, 1, 0, -s, 0, c});
}

Mat3 Mat3::RotationZ(double radians) {
  double c = std::cos(radians);
  double s = std::sin(radians);
  return Mat3({c, -s, 0, s, c, 0, 0, 0, 1});
}

Mat3 Mat3::FromYawPitchRoll(double yaw, double pitch, double roll) {
  return RotationZ(yaw) * RotationY(pitch) * RotationX(roll);
}

Vec3 Mat3::Apply(const Vec3& v) const {
  return Vec3(m_[0] * v.x + m_[1] * v.y + m_[2] * v.z,
              m_[3] * v.x + m_[4] * v.y + m_[5] * v.z,
              m_[6] * v.x + m_[7] * v.y + m_[8] * v.z);
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 result;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) {
        sum += At(row, k) * o.At(k, col);
      }
      result.At(row, col) = sum;
    }
  }
  return result;
}

Mat3 Mat3::Transposed() const {
  Mat3 result;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      result.At(row, col) = At(col, row);
    }
  }
  return result;
}

Vec3 Mat3::ToRollPitchYaw() const {
  // R = Rz(yaw)*Ry(pitch)*Rx(roll):
  //   R[2][0] = -sin(pitch)
  //   R[1][0]/R[0][0] = tan(yaw)
  //   R[2][1]/R[2][2] = tan(roll)
  double pitch = std::asin(-At(2, 0));
  double yaw;
  double roll;
  if (std::abs(std::cos(pitch)) > 1e-9) {
    yaw = std::atan2(At(1, 0), At(0, 0));
    roll = std::atan2(At(2, 1), At(2, 2));
  } else {
    // Gimbal lock: yaw and roll are coupled; pick roll = 0.
    yaw = std::atan2(-At(0, 1), At(1, 1));
    roll = 0.0;
  }
  return Vec3(roll, pitch, yaw);
}

bool Mat3::ApproxEquals(const Mat3& o, double tolerance) const {
  for (int i = 0; i < 9; ++i) {
    if (std::abs(m_[i] - o.m_[i]) > tolerance) {
      return false;
    }
  }
  return true;
}

std::string Mat3::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "[%.3f %.3f %.3f; %.3f %.3f %.3f; %.3f %.3f %.3f]", m_[0],
                m_[1], m_[2], m_[3], m_[4], m_[5], m_[6], m_[7], m_[8]);
  return buffer;
}

}  // namespace epl
