// 3D vector used for skeleton joint positions (millimeters, camera or user
// coordinate space).

#ifndef EPL_COMMON_VEC3_H_
#define EPL_COMMON_VEC3_H_

#include <cmath>
#include <ostream>
#include <string>

namespace epl {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return Vec3(x + o.x, y + o.y, z + o.z);
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return Vec3(x - o.x, y - o.y, z - o.z);
  }
  constexpr Vec3 operator*(double s) const { return Vec3(x * s, y * s, z * s); }
  constexpr Vec3 operator/(double s) const { return Vec3(x / s, y / s, z / s); }
  constexpr Vec3 operator-() const { return Vec3(-x, -y, -z); }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return Vec3(y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x);
  }
  double Norm() const { return std::sqrt(Dot(*this)); }
  constexpr double NormSquared() const { return Dot(*this); }

  /// Returns a unit-length copy; the zero vector normalizes to zero.
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0.0 ? *this / n : Vec3();
  }

  double DistanceTo(const Vec3& o) const { return (*this - o).Norm(); }

  /// Componentwise min/max, used for bounding-rectangle construction.
  static constexpr Vec3 Min(const Vec3& a, const Vec3& b) {
    return Vec3(a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z);
  }
  static constexpr Vec3 Max(const Vec3& a, const Vec3& b) {
    return Vec3(a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z);
  }

  /// Linear interpolation: t=0 -> a, t=1 -> b.
  static constexpr Vec3 Lerp(const Vec3& a, const Vec3& b, double t) {
    return a + (b - a) * t;
  }

  /// Absolute tolerance comparison on each component.
  bool ApproxEquals(const Vec3& o, double tolerance = 1e-9) const {
    return std::abs(x - o.x) <= tolerance && std::abs(y - o.y) <= tolerance &&
           std::abs(z - o.z) <= tolerance;
  }

  /// Access component by axis index 0=x, 1=y, 2=z.
  double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
  double& operator[](int axis) { return axis == 0 ? x : (axis == 1 ? y : z); }

  std::string ToString() const;
};

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

inline Vec3 operator*(double s, const Vec3& v) { return v * s; }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Axis names for query generation: 0 -> "x", 1 -> "y", 2 -> "z".
std::string_view AxisName(int axis);

}  // namespace epl

#endif  // EPL_COMMON_VEC3_H_
