// 3x3 matrices for the coordinate rotations of the data transformation
// stage (paper Sec. 3.2) and Roll-Pitch-Yaw angle computation.

#ifndef EPL_COMMON_MAT3_H_
#define EPL_COMMON_MAT3_H_

#include <array>
#include <string>

#include "common/vec3.h"

namespace epl {

/// Row-major 3x3 matrix.
class Mat3 {
 public:
  /// Identity matrix.
  Mat3();
  explicit Mat3(const std::array<double, 9>& values);

  static Mat3 Identity();
  /// Rotation about the +X axis by `radians` (right-handed).
  static Mat3 RotationX(double radians);
  /// Rotation about the +Y axis by `radians` (right-handed).
  static Mat3 RotationY(double radians);
  /// Rotation about the +Z axis by `radians` (right-handed).
  static Mat3 RotationZ(double radians);
  /// Intrinsic yaw (Z), pitch (Y), roll (X) composition: R = Rz*Ry*Rx.
  static Mat3 FromYawPitchRoll(double yaw, double pitch, double roll);

  double At(int row, int col) const { return m_[row * 3 + col]; }
  double& At(int row, int col) { return m_[row * 3 + col]; }

  Vec3 Apply(const Vec3& v) const;
  Mat3 operator*(const Mat3& o) const;
  Vec3 operator*(const Vec3& v) const { return Apply(v); }

  /// For rotation matrices the transpose is the inverse.
  Mat3 Transposed() const;

  /// Extracts yaw/pitch/roll assuming this is a rotation built as Rz*Ry*Rx.
  /// Returned as (roll, pitch, yaw).
  Vec3 ToRollPitchYaw() const;

  bool ApproxEquals(const Mat3& o, double tolerance = 1e-9) const;
  std::string ToString() const;

 private:
  std::array<double, 9> m_;
};

}  // namespace epl

#endif  // EPL_COMMON_MAT3_H_
