#include "common/time_util.h"

#include <cstdio>

namespace epl {

std::string FormatDuration(Duration d) {
  char buffer[64];
  if (d >= kSecond || d <= -kSecond) {
    std::snprintf(buffer, sizeof(buffer), "%.3f s", ToSeconds(d));
  } else if (d >= kMillisecond || d <= -kMillisecond) {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms", ToMillis(d));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld us",
                  static_cast<long long>(d));
  }
  return buffer;
}

}  // namespace epl
