#include "common/vec3.h"

#include <cstdio>

namespace epl {

std::string Vec3::ToString() const {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "(%.3f, %.3f, %.3f)", x, y, z);
  return buffer;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << v.ToString();
}

std::string_view AxisName(int axis) {
  switch (axis) {
    case 0:
      return "x";
    case 1:
      return "y";
    case 2:
      return "z";
    default:
      return "?";
  }
}

}  // namespace epl
