// Time representation used across EPL.
//
// All stream timestamps are microseconds since an arbitrary epoch (the
// simulation start). Durations are also microsecond counts. Plain integer
// types keep events trivially copyable and serialization simple.

#ifndef EPL_COMMON_TIME_UTIL_H_
#define EPL_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace epl {

/// Microseconds since the stream epoch.
using TimePoint = int64_t;
/// Microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

constexpr Duration DurationFromSeconds(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kSecond));
}
constexpr Duration DurationFromMillis(double millis) {
  return static_cast<Duration>(millis * static_cast<double>(kMillisecond));
}
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Human-readable rendering, e.g. "1.500 s" or "33.3 ms".
std::string FormatDuration(Duration d);

}  // namespace epl

#endif  // EPL_COMMON_TIME_UTIL_H_
