// Small string helpers (locale-independent parsing, split/join/trim,
// printf-style formatting into std::string).

#ifndef EPL_COMMON_STRING_UTIL_H_
#define EPL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace epl {

/// Splits on every occurrence of `delimiter`; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Joins pieces with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Locale-independent numeric parsing; the full string must be consumed.
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double for query text: trims trailing zeros ("1.5", "120").
std::string FormatNumber(double value);

}  // namespace epl

#endif  // EPL_COMMON_STRING_UTIL_H_
