// Result<T>: a value or an error Status (absl::StatusOr-like).

#ifndef EPL_COMMON_RESULT_H_
#define EPL_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace epl {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing value() on an error aborts the process, so
/// callers must check ok() first (or use EPL_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// readable (`return value;` / `return InvalidArgumentError(...)`), the
  /// same convention absl::StatusOr uses.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    EPL_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EPL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    EPL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    EPL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace epl

#define EPL_RESULT_CONCAT_INNER_(x, y) x##y
#define EPL_RESULT_CONCAT_(x, y) EPL_RESULT_CONCAT_INNER_(x, y)

/// EPL_ASSIGN_OR_RETURN(auto x, Fn()): assigns on success, propagates the
/// Status on failure.
#define EPL_ASSIGN_OR_RETURN(decl, expr)                              \
  auto EPL_RESULT_CONCAT_(epl_result_tmp_, __LINE__) = (expr);        \
  if (!EPL_RESULT_CONCAT_(epl_result_tmp_, __LINE__).ok()) {          \
    return EPL_RESULT_CONCAT_(epl_result_tmp_, __LINE__).status();    \
  }                                                                   \
  decl = std::move(EPL_RESULT_CONCAT_(epl_result_tmp_, __LINE__)).value()

#endif  // EPL_COMMON_RESULT_H_
