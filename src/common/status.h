// Status: the error-handling vocabulary type of EPL.
//
// EPL does not use C++ exceptions. Every fallible operation returns a Status
// (or a Result<T>, see common/result.h). Statuses carry a code and a
// human-readable message. Use the EPL_RETURN_IF_ERROR macro to propagate.

#ifndef EPL_COMMON_STATUS_H_
#define EPL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace epl {

/// Canonical error codes, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
  kResourceExhausted = 9,
};

/// Returns the canonical name of a status code, e.g., "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK or an error code plus message. Cheap to copy when
/// OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with `context` (no-op on OK statuses). Useful when
  /// propagating errors upward with extra information.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status DataLossError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);

}  // namespace epl

/// Propagates an error Status from the current function.
#define EPL_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::epl::Status epl_status_macro_tmp = (expr);  \
    if (!epl_status_macro_tmp.ok()) {             \
      return epl_status_macro_tmp;                \
    }                                             \
  } while (false)

#endif  // EPL_COMMON_STATUS_H_
