#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace epl {

Result<CsvTable> ParseCsv(const std::string& text, const CsvOptions& options) {
  CsvTable table;
  std::istringstream input(text);
  std::string line;
  bool header_pending = options.has_header;
  size_t line_number = 0;
  size_t expected_columns = 0;
  while (std::getline(input, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (options.skip_comments &&
        (stripped.empty() || stripped.front() == '#')) {
      continue;
    }
    std::vector<std::string> fields =
        StrSplit(std::string(stripped), options.delimiter);
    if (header_pending) {
      for (std::string& field : fields) {
        field = std::string(StripWhitespace(field));
      }
      table.header = std::move(fields);
      expected_columns = table.header.size();
      header_pending = false;
      continue;
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& field : fields) {
      Result<double> value = ParseDouble(field);
      if (!value.ok()) {
        return value.status().WithContext(
            StrFormat("csv line %zu", line_number));
      }
      row.push_back(*value);
    }
    if (expected_columns == 0) {
      expected_columns = row.size();
    } else if (row.size() != expected_columns) {
      return DataLossError(
          StrFormat("csv line %zu has %zu columns, expected %zu", line_number,
                    row.size(), expected_columns));
    }
    table.rows.push_back(std::move(row));
  }
  if (header_pending) {
    return DataLossError("csv input has no header line");
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  EPL_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  Result<CsvTable> table = ParseCsv(content, options);
  if (!table.ok()) {
    return table.status().WithContext(path);
  }
  return table;
}

std::string WriteCsv(const CsvTable& table, const CsvOptions& options) {
  std::string out;
  if (!table.header.empty()) {
    out += StrJoin(table.header, std::string(1, options.delimiter));
    out += '\n';
  }
  for (const std::vector<double>& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += options.delimiter;
      }
      out += StrFormat("%.4f", row[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options) {
  return WriteStringToFile(path, WriteCsv(table, options));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open file for writing: " + path);
  }
  file << content;
  if (!file) {
    return InternalError("write failed: " + path);
  }
  return OkStatus();
}

}  // namespace epl
