// Minimal leveled logging and CHECK macros.
//
// EPL_LOG(INFO) << "message";       -- leveled log line
// EPL_CHECK(cond) << "detail";      -- aborts with message when cond is false
//
// The sink is swappable so tests can capture log output
// (see ScopedLogCapture).

#ifndef EPL_COMMON_LOGGING_H_
#define EPL_COMMON_LOGGING_H_

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace epl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogLevelToString(LogLevel level);

namespace internal_logging {

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs `sink` as the global log sink; returns the previous sink.
LogSink SetLogSink(LogSink sink);

/// Emits one record through the current sink (thread-safe).
void Emit(LogLevel level, const std::string& message);

/// Minimum level that is emitted (default kInfo).
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

/// Stream-collecting helper behind EPL_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process in the destructor.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// RAII capture of log records, for tests.
class ScopedLogCapture {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  struct Record {
    LogLevel level;
    std::string message;
  };

  std::vector<Record> records() const;
  /// True if any captured record contains `needle`.
  bool Contains(std::string_view needle) const;

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  internal_logging::LogSink previous_;
};

}  // namespace epl

#define EPL_LOG(level)                                                     \
  ::epl::internal_logging::LogMessage(::epl::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

#define EPL_CHECK(condition)                                          \
  (condition) ? (void)0                                               \
              : ::epl::internal_logging::FatalMessageVoidify() &      \
                    ::epl::internal_logging::FatalMessage(            \
                        __FILE__, __LINE__, #condition)               \
                        .stream()

#ifdef NDEBUG
#define EPL_DCHECK(condition) EPL_CHECK(true || (condition))
#else
#define EPL_DCHECK(condition) EPL_CHECK(condition)
#endif

namespace epl::internal_logging {
// Allows EPL_CHECK to appear in expression position with `<<` chaining.
struct FatalMessageVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace epl::internal_logging

#endif  // EPL_COMMON_LOGGING_H_
