// Mini OLAP substrate for the gesture-controlled navigation demo
// (paper Sec. 4 and ref [3]: Data3, a Kinect interface for OLAP).
//
// An in-memory cube with three hierarchical dimensions and a sales
// measure; navigation operators (drill-down, roll-up, pivot, slice) are
// what detected gestures map to.

#ifndef EPL_APPS_OLAP_H_
#define EPL_APPS_OLAP_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace epl::apps {

/// One fact row at the finest granularity.
struct FactRow {
  // time: year > quarter > month
  int year;
  int quarter;
  int month;
  // region: country > city
  std::string country;
  std::string city;
  // product: category > item
  std::string category;
  std::string item;
  double sales;
};

enum class Dimension { kTime = 0, kRegion = 1, kProduct = 2 };

std::string_view DimensionName(Dimension dim);

class OlapCube {
 public:
  /// Builds the demo dataset (deterministic synthetic sales facts).
  static OlapCube Demo();

  explicit OlapCube(std::vector<FactRow> facts);

  /// Navigation operators. Drill/roll move along the dimension hierarchy;
  /// they fail at the bottom/top.
  Status DrillDown(Dimension dim);
  Status RollUp(Dimension dim);
  /// Rotates the dimension order (which dimension labels the rows).
  void Pivot();
  /// Restricts the cube to the next value of the pivot dimension's current
  /// level (cycles through values; slicing again advances).
  Status SliceNext();
  /// Clears the slice filter.
  void Unslice();

  /// Current grouping level per dimension (0 = coarsest).
  int level(Dimension dim) const {
    return levels_[static_cast<size_t>(dim)];
  }
  Dimension pivot_dimension() const { return order_.front(); }
  const std::string& slice_filter() const { return slice_value_; }

  /// Aggregated view at the current levels: label -> total sales. Labels
  /// concatenate the group-by values of all dimensions.
  std::map<std::string, double> Aggregate() const;

  /// Text rendering of the current view (the demo's "display").
  std::string Render() const;

  /// One-line description of the current navigation state.
  std::string DescribeState() const;

  int num_facts() const { return static_cast<int>(facts_.size()); }

 private:
  std::string GroupKey(const FactRow& row, Dimension dim) const;
  std::string SliceKey(const FactRow& row) const;
  std::vector<std::string> SliceValues() const;

  std::vector<FactRow> facts_;
  std::array<int, 3> levels_ = {0, 0, 0};   // per Dimension enum index
  std::array<int, 3> max_levels_ = {2, 1, 1};
  std::vector<Dimension> order_ = {Dimension::kTime, Dimension::kRegion,
                                   Dimension::kProduct};
  std::string slice_value_;  // empty = no slice
};

}  // namespace epl::apps

#endif  // EPL_APPS_OLAP_H_
