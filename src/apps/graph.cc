#include "apps/graph.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/string_util.h"

namespace epl::apps {

int MovieGraph::AddNode(const std::string& name, NodeKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{name, kind});
  adjacency_.emplace_back();
  index_.emplace(name, id);
  return id;
}

int MovieGraph::AddActor(const std::string& name) {
  return AddNode(name, NodeKind::kActor);
}

int MovieGraph::AddMovie(const std::string& title) {
  return AddNode(title, NodeKind::kMovie);
}

Status MovieGraph::AddAppearance(const std::string& actor,
                                 const std::string& movie) {
  EPL_ASSIGN_OR_RETURN(int actor_id, FindNode(actor));
  EPL_ASSIGN_OR_RETURN(int movie_id, FindNode(movie));
  if (nodes_[static_cast<size_t>(actor_id)].kind != NodeKind::kActor ||
      nodes_[static_cast<size_t>(movie_id)].kind != NodeKind::kMovie) {
    return InvalidArgumentError("appearance must connect actor to movie");
  }
  adjacency_[static_cast<size_t>(actor_id)].push_back(movie_id);
  adjacency_[static_cast<size_t>(movie_id)].push_back(actor_id);
  return OkStatus();
}

Result<int> MovieGraph::FindNode(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return NotFoundError("unknown node: " + name);
  }
  return it->second;
}

std::vector<int> MovieGraph::Neighbors(int id) const {
  std::vector<int> neighbors = adjacency_[static_cast<size_t>(id)];
  std::sort(neighbors.begin(), neighbors.end(), [this](int a, int b) {
    return nodes_[static_cast<size_t>(a)].name <
           nodes_[static_cast<size_t>(b)].name;
  });
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  return neighbors;
}

int MovieGraph::Distance(int from, int to) const {
  if (from == to) {
    return 0;
  }
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<int> queue;
  dist[static_cast<size_t>(from)] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (int next : adjacency_[static_cast<size_t>(node)]) {
      if (dist[static_cast<size_t>(next)] < 0) {
        dist[static_cast<size_t>(next)] = dist[static_cast<size_t>(node)] + 1;
        if (next == to) {
          return dist[static_cast<size_t>(next)];
        }
        queue.push_back(next);
      }
    }
  }
  return -1;
}

Result<int> MovieGraph::BaconNumber(const std::string& actor) const {
  EPL_ASSIGN_OR_RETURN(int actor_id, FindNode(actor));
  EPL_ASSIGN_OR_RETURN(int bacon_id, FindNode("Kevin Bacon"));
  int distance = Distance(actor_id, bacon_id);
  if (distance < 0) {
    return NotFoundError(actor + " is not connected to Kevin Bacon");
  }
  return distance / 2;
}

MovieGraph MovieGraph::Demo() {
  MovieGraph graph;
  struct MovieCast {
    const char* title;
    std::vector<const char*> cast;
  };
  const std::vector<MovieCast> movies = {
      {"Apollo 13", {"Kevin Bacon", "Tom Hanks", "Bill Paxton"}},
      {"Footloose", {"Kevin Bacon", "Lori Singer", "John Lithgow"}},
      {"A Few Good Men",
       {"Kevin Bacon", "Tom Cruise", "Jack Nicholson", "Demi Moore"}},
      {"The Shining", {"Jack Nicholson", "Shelley Duvall"}},
      {"Forrest Gump", {"Tom Hanks", "Robin Wright", "Gary Sinise"}},
      {"Cast Away", {"Tom Hanks", "Helen Hunt"}},
      {"Top Gun", {"Tom Cruise", "Val Kilmer", "Meg Ryan"}},
      {"Twister", {"Bill Paxton", "Helen Hunt"}},
      {"The Princess Bride", {"Robin Wright", "Cary Elwes"}},
      {"Interview with the Vampire", {"Tom Cruise", "Brad Pitt"}},
      {"Se7en", {"Brad Pitt", "Morgan Freeman", "Gwyneth Paltrow"}},
      {"Footloose 2011", {"Julianne Hough", "Kenny Wormald"}},
  };
  for (const MovieCast& movie : movies) {
    graph.AddMovie(movie.title);
    for (const char* actor : movie.cast) {
      graph.AddActor(actor);
      EPL_CHECK(graph.AddAppearance(actor, movie.title).ok());
    }
  }
  return graph;
}

GraphCursor::GraphCursor(const MovieGraph* graph, int start_node)
    : graph_(graph), current_(start_node) {
  EPL_CHECK(graph_ != nullptr);
  EPL_CHECK(start_node >= 0 && start_node < graph_->num_nodes());
}

const MovieGraph::Node& GraphCursor::current_node() const {
  return graph_->node(current_);
}

int GraphCursor::selected_neighbor() const {
  std::vector<int> neighbors = graph_->Neighbors(current_);
  if (neighbors.empty()) {
    return -1;
  }
  return neighbors[static_cast<size_t>(selection_) % neighbors.size()];
}

void GraphCursor::NextNeighbor() {
  std::vector<int> neighbors = graph_->Neighbors(current_);
  if (!neighbors.empty()) {
    selection_ = (selection_ + 1) % static_cast<int>(neighbors.size());
  }
}

void GraphCursor::PrevNeighbor() {
  std::vector<int> neighbors = graph_->Neighbors(current_);
  if (!neighbors.empty()) {
    int count = static_cast<int>(neighbors.size());
    selection_ = (selection_ + count - 1) % count;
  }
}

Status GraphCursor::Expand() {
  int target = selected_neighbor();
  if (target < 0) {
    return FailedPreconditionError("current node has no neighbors");
  }
  history_.push_back(current_);
  current_ = target;
  selection_ = 0;
  return OkStatus();
}

Status GraphCursor::Back() {
  if (history_.empty()) {
    return FailedPreconditionError("no navigation history");
  }
  current_ = history_.back();
  history_.pop_back();
  selection_ = 0;
  return OkStatus();
}

std::string GraphCursor::Describe() const {
  const MovieGraph::Node& node = current_node();
  std::string out = StrFormat(
      "[%s] %s\n",
      node.kind == MovieGraph::NodeKind::kActor ? "actor" : "movie",
      node.name.c_str());
  std::vector<int> neighbors = graph_->Neighbors(current_);
  int selected = selected_neighbor();
  for (int neighbor : neighbors) {
    out += StrFormat("  %c %s\n", neighbor == selected ? '>' : ' ',
                     graph_->node(neighbor).name.c_str());
  }
  return out;
}

}  // namespace epl::apps
