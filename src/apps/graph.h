// Movie-graph substrate for the gesture-controlled graph navigation demo
// (paper Sec. 4 and ref [1]: "Gesture-Based Navigation in Graph Databases
// — The Kevin Bacon Game").

#ifndef EPL_APPS_GRAPH_H_
#define EPL_APPS_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace epl::apps {

/// Undirected bipartite actor-movie graph.
class MovieGraph {
 public:
  /// Small built-in dataset around Kevin Bacon.
  static MovieGraph Demo();

  enum class NodeKind { kActor, kMovie };

  struct Node {
    std::string name;
    NodeKind kind;
  };

  /// Adds a node; returns its id. Duplicate names return the existing id.
  int AddActor(const std::string& name);
  int AddMovie(const std::string& title);
  /// Connects an actor to a movie they appeared in.
  Status AddAppearance(const std::string& actor, const std::string& movie);

  Result<int> FindNode(const std::string& name) const;
  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Neighbor ids, sorted by name for deterministic navigation.
  std::vector<int> Neighbors(int id) const;

  /// BFS hop distance between two nodes (-1 when unreachable). The Bacon
  /// number of an actor is half the distance to Kevin Bacon.
  int Distance(int from, int to) const;

  /// Bacon number of an actor (movies do not count as hops): -1 when
  /// unreachable or unknown.
  Result<int> BaconNumber(const std::string& actor) const;

 private:
  int AddNode(const std::string& name, NodeKind kind);

  std::vector<Node> nodes_;
  std::map<std::string, int> index_;
  std::vector<std::vector<int>> adjacency_;
};

/// Navigation cursor over the graph: the gesture commands of the demo
/// (next/previous neighbor, expand, back) operate on this.
class GraphCursor {
 public:
  /// `graph` must outlive the cursor.
  GraphCursor(const MovieGraph* graph, int start_node);

  int current() const { return current_; }
  const MovieGraph::Node& current_node() const;

  /// The currently highlighted neighbor (empty graph edge case: -1).
  int selected_neighbor() const;

  /// Cycles the highlighted neighbor.
  void NextNeighbor();
  void PrevNeighbor();

  /// Moves to the highlighted neighbor (pushes history).
  Status Expand();

  /// Returns to the previously visited node.
  Status Back();

  /// Text rendering of the current node and its neighborhood.
  std::string Describe() const;

 private:
  const MovieGraph* graph_;
  int current_;
  int selection_ = 0;
  std::vector<int> history_;
};

}  // namespace epl::apps

#endif  // EPL_APPS_GRAPH_H_
