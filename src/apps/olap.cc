#include "apps/olap.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"

namespace epl::apps {

std::string_view DimensionName(Dimension dim) {
  switch (dim) {
    case Dimension::kTime:
      return "time";
    case Dimension::kRegion:
      return "region";
    case Dimension::kProduct:
      return "product";
  }
  return "?";
}

OlapCube OlapCube::Demo() {
  // Deterministic synthetic facts: 2 years x 4 quarters x 3 months,
  // 2 countries x 2 cities, 2 categories x 2 items.
  const std::array<std::pair<const char*, const char*>, 4> regions = {
      std::make_pair("Germany", "Berlin"),
      std::make_pair("Germany", "Ilmenau"),
      std::make_pair("France", "Paris"),
      std::make_pair("France", "Lyon")};
  const std::array<std::pair<const char*, const char*>, 4> products = {
      std::make_pair("Books", "Novel"), std::make_pair("Books", "Manual"),
      std::make_pair("Games", "Puzzle"), std::make_pair("Games", "Arcade")};
  std::vector<FactRow> facts;
  int tick = 0;
  for (int year : {2012, 2013}) {
    for (int quarter = 1; quarter <= 4; ++quarter) {
      for (int month_in_quarter = 1; month_in_quarter <= 3;
           ++month_in_quarter) {
        int month = (quarter - 1) * 3 + month_in_quarter;
        for (const auto& [country, city] : regions) {
          for (const auto& [category, item] : products) {
            FactRow row;
            row.year = year;
            row.quarter = quarter;
            row.month = month;
            row.country = country;
            row.city = city;
            row.category = category;
            row.item = item;
            // Deterministic but varied sales figures.
            row.sales = 100.0 + (tick * 37) % 400 +
                        (year == 2013 ? 50.0 : 0.0);
            ++tick;
            facts.push_back(std::move(row));
          }
        }
      }
    }
  }
  return OlapCube(std::move(facts));
}

OlapCube::OlapCube(std::vector<FactRow> facts) : facts_(std::move(facts)) {}

Status OlapCube::DrillDown(Dimension dim) {
  size_t index = static_cast<size_t>(dim);
  if (levels_[index] >= max_levels_[index]) {
    return FailedPreconditionError(
        std::string(DimensionName(dim)) +
        " is already at the finest level");
  }
  ++levels_[index];
  return OkStatus();
}

Status OlapCube::RollUp(Dimension dim) {
  size_t index = static_cast<size_t>(dim);
  if (levels_[index] <= 0) {
    return FailedPreconditionError(
        std::string(DimensionName(dim)) +
        " is already at the coarsest level");
  }
  --levels_[index];
  return OkStatus();
}

void OlapCube::Pivot() {
  std::rotate(order_.begin(), order_.begin() + 1, order_.end());
  slice_value_.clear();
}

std::string OlapCube::GroupKey(const FactRow& row, Dimension dim) const {
  int level = levels_[static_cast<size_t>(dim)];
  switch (dim) {
    case Dimension::kTime:
      if (level == 0) {
        return StrFormat("%d", row.year);
      }
      if (level == 1) {
        return StrFormat("%d-Q%d", row.year, row.quarter);
      }
      return StrFormat("%d-M%02d", row.year, row.month);
    case Dimension::kRegion:
      return level == 0 ? row.country : row.country + "/" + row.city;
    case Dimension::kProduct:
      return level == 0 ? row.category : row.category + "/" + row.item;
  }
  return "?";
}

std::string OlapCube::SliceKey(const FactRow& row) const {
  return GroupKey(row, pivot_dimension());
}

std::vector<std::string> OlapCube::SliceValues() const {
  std::vector<std::string> values;
  for (const FactRow& row : facts_) {
    std::string key = SliceKey(row);
    if (std::find(values.begin(), values.end(), key) == values.end()) {
      values.push_back(key);
    }
  }
  std::sort(values.begin(), values.end());
  return values;
}

Status OlapCube::SliceNext() {
  std::vector<std::string> values = SliceValues();
  if (values.empty()) {
    return FailedPreconditionError("cube has no data to slice");
  }
  if (slice_value_.empty()) {
    slice_value_ = values.front();
    return OkStatus();
  }
  auto it = std::find(values.begin(), values.end(), slice_value_);
  if (it == values.end() || ++it == values.end()) {
    slice_value_ = values.front();  // wrap around
  } else {
    slice_value_ = *it;
  }
  return OkStatus();
}

void OlapCube::Unslice() { slice_value_.clear(); }

std::map<std::string, double> OlapCube::Aggregate() const {
  std::map<std::string, double> totals;
  for (const FactRow& row : facts_) {
    if (!slice_value_.empty() && SliceKey(row) != slice_value_) {
      continue;
    }
    std::string key;
    for (Dimension dim : order_) {
      if (!key.empty()) {
        key += " | ";
      }
      key += GroupKey(row, dim);
    }
    totals[key] += row.sales;
  }
  return totals;
}

std::string OlapCube::Render() const {
  std::map<std::string, double> totals = Aggregate();
  std::string out = DescribeState() + "\n";
  size_t shown = 0;
  for (const auto& [key, total] : totals) {
    out += StrFormat("  %-40s %10.0f\n", key.c_str(), total);
    if (++shown >= 12 && totals.size() > 13) {
      out += StrFormat("  ... (%zu more rows)\n", totals.size() - shown);
      break;
    }
  }
  return out;
}

std::string OlapCube::DescribeState() const {
  std::string out = "cube[";
  for (size_t i = 0; i < order_.size(); ++i) {
    if (i > 0) {
      out += " x ";
    }
    out += std::string(DimensionName(order_[i])) +
           StrFormat("@L%d", levels_[static_cast<size_t>(order_[i])]);
  }
  out += "]";
  if (!slice_value_.empty()) {
    out += " slice=" + slice_value_;
  }
  return out;
}

}  // namespace epl::apps
