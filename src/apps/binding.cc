#include "apps/binding.h"

namespace epl::apps {

void GestureCommandRouter::Bind(const std::string& gesture,
                                Command command) {
  bindings_[gesture] = std::move(command);
}

Status GestureCommandRouter::Unbind(const std::string& gesture) {
  if (bindings_.erase(gesture) == 0) {
    return NotFoundError("gesture not bound: " + gesture);
  }
  return OkStatus();
}

bool GestureCommandRouter::IsBound(const std::string& gesture) const {
  return bindings_.count(gesture) > 0;
}

void GestureCommandRouter::OnDetection(const cep::Detection& detection) {
  auto it = bindings_.find(detection.name);
  if (it == bindings_.end() || !it->second) {
    ++unhandled_;
    return;
  }
  ++dispatched_;
  it->second(detection);
}

cep::DetectionCallback GestureCommandRouter::AsCallback() {
  return [this](const cep::Detection& detection) { OnDetection(detection); };
}

std::vector<std::string> GestureCommandRouter::BoundGestures() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, command] : bindings_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace epl::apps
