// GestureCommandRouter: maps detected gestures to application commands,
// rebindable at runtime (paper Sec. 4: "exchanging the applications'
// pre-defined navigation operations during runtime, demonstrating the full
// flexibility of the declarative gesture detection approach").

#ifndef EPL_APPS_BINDING_H_
#define EPL_APPS_BINDING_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cep/detection.h"
#include "common/result.h"

namespace epl::apps {

class GestureCommandRouter {
 public:
  using Command = std::function<void(const cep::Detection&)>;

  /// Binds (or rebinds) a gesture name to a command.
  void Bind(const std::string& gesture, Command command);

  Status Unbind(const std::string& gesture);

  bool IsBound(const std::string& gesture) const;

  /// Dispatches a detection to its bound command; unbound gestures count
  /// as unhandled.
  void OnDetection(const cep::Detection& detection);

  /// Adapter usable as cep::DetectionCallback.
  cep::DetectionCallback AsCallback();

  std::vector<std::string> BoundGestures() const;

  uint64_t dispatched() const { return dispatched_; }
  uint64_t unhandled() const { return unhandled_; }

 private:
  std::map<std::string, Command> bindings_;
  uint64_t dispatched_ = 0;
  uint64_t unhandled_ = 0;
};

}  // namespace epl::apps

#endif  // EPL_APPS_BINDING_H_
