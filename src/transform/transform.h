// Data transformation into a user-independent coordinate space
// (paper Sec. 3.2, Fig. 3).
//
// Three normalizations, each individually switchable (the invariance
// ablation experiment E2 turns them off):
//
//  * Position invariance: every joint is shifted by the torso position;
//    the torso becomes the origin.
//  * Orientation invariance: the skeleton is rotated about the vertical
//    axis by the user's estimated yaw (from the shoulder line) so that a
//    camera-facing orientation is canonical. Axis convention follows the
//    paper's Fig. 1/2 windows: X lateral, Y up, Z behind the user (poses
//    in front of the user have negative Z).
//  * Scale invariance: coordinates are divided by the right forearm length
//    (distance right hand to right elbow) and re-expressed in "reference
//    millimeters" (multiplied by the 280 mm reference forearm), so that
//    queries keep the familiar millimeter magnitudes of Fig. 1/2 while
//    being user-size independent.

#ifndef EPL_TRANSFORM_TRANSFORM_H_
#define EPL_TRANSFORM_TRANSFORM_H_

#include "common/vec3.h"
#include "kinect/body_model.h"
#include "kinect/skeleton.h"

namespace epl::transform {

struct TransformConfig {
  bool translate = true;  // torso-origin shift
  bool rotate = true;     // yaw normalization from the shoulder line
  bool scale = true;      // forearm-length normalization
  /// Reference forearm length used to keep scaled coordinates in
  /// millimeter-like magnitudes.
  double reference_forearm_mm = kinect::kReferenceForearmMm;
  /// Guard against degenerate skeletons: forearm lengths below this are
  /// treated as 1 (no scaling) to avoid dividing by ~0.
  double min_forearm_mm = 20.0;
  /// Exponential smoothing factor applied by the streaming kinect_t view
  /// to the per-frame forearm-length and yaw estimates (both are physical
  /// constants within a session; smoothing suppresses sensor noise that
  /// scaling would otherwise amplify at distant joints). 1 = no smoothing.
  /// Only the stateful TransformOperator uses this; the pure
  /// TransformFrame() helper always uses per-frame estimates.
  double estimate_smoothing = 0.15;
};

/// Estimated yaw (radians) of the user from the shoulder line; 0 when the
/// user squarely faces the camera.
double EstimateYaw(const kinect::SkeletonFrame& frame);

/// Scale factor from this frame: right forearm length.
double MeasureForearmLength(const kinect::SkeletonFrame& frame);

/// Applies the configured normalizations to every joint. The transformed
/// frame's torso is at the origin (when translate is on).
kinect::SkeletonFrame TransformFrame(const kinect::SkeletonFrame& frame,
                                     const TransformConfig& config);

/// Like TransformFrame but with externally supplied (e.g. smoothed) yaw
/// and forearm-length estimates.
kinect::SkeletonFrame TransformFrameExplicit(
    const kinect::SkeletonFrame& frame, const TransformConfig& config,
    double yaw, double forearm_length);

/// Transforms a single point given reference data from `frame`.
Vec3 TransformPoint(const Vec3& point, const kinect::SkeletonFrame& frame,
                    const TransformConfig& config);

}  // namespace epl::transform

#endif  // EPL_TRANSFORM_TRANSFORM_H_
