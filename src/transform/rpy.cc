#include "transform/rpy.h"

#include <cmath>

namespace epl::transform {

using kinect::JointId;

RollPitchYaw DirectionAngles(const Vec3& v) {
  RollPitchYaw angles;
  double norm = v.Norm();
  if (norm < 1e-9) {
    return angles;
  }
  Vec3 unit = v / norm;
  double clamped_y = std::max(-1.0, std::min(1.0, unit.y));
  angles.pitch = std::asin(clamped_y);
  // Azimuth: 0 = straight ahead (-Z), +pi/2 = +X (lateral).
  if (std::abs(unit.x) > 1e-12 || std::abs(unit.z) > 1e-12) {
    angles.yaw = std::atan2(unit.x, -unit.z);
  }
  return angles;
}

RollPitchYaw ForearmAngles(const kinect::SkeletonFrame& user_frame,
                           bool right_side) {
  JointId hand = right_side ? JointId::kRightHand : JointId::kLeftHand;
  JointId elbow = right_side ? JointId::kRightElbow : JointId::kLeftElbow;
  JointId shoulder =
      right_side ? JointId::kRightShoulder : JointId::kLeftShoulder;

  Vec3 forearm = user_frame.joint(hand) - user_frame.joint(elbow);
  Vec3 upper_arm = user_frame.joint(elbow) - user_frame.joint(shoulder);
  RollPitchYaw angles = DirectionAngles(forearm);

  // Roll: orientation of the arm plane (spanned by upper arm and forearm)
  // around the forearm axis, measured against the horizontal reference.
  double norm = forearm.Norm();
  if (norm < 1e-9) {
    return angles;
  }
  Vec3 axis = forearm / norm;
  Vec3 plane_normal = axis.Cross(upper_arm);
  if (plane_normal.Norm() < 1e-9) {
    return angles;  // arm fully extended: roll undefined, keep 0
  }
  plane_normal = plane_normal.Normalized();
  Vec3 reference = axis.Cross(Vec3(0, 1, 0));
  if (reference.Norm() < 1e-9) {
    return angles;  // forearm vertical: roll undefined
  }
  reference = reference.Normalized();
  double cos_roll =
      std::max(-1.0, std::min(1.0, plane_normal.Dot(reference)));
  double sign = plane_normal.Cross(reference).Dot(axis) < 0.0 ? 1.0 : -1.0;
  angles.roll = sign * std::acos(cos_roll);
  return angles;
}

}  // namespace epl::transform
