#include "transform/transform.h"

#include <cmath>

#include "common/mat3.h"

namespace epl::transform {

using kinect::JointId;
using kinect::SkeletonFrame;

double EstimateYaw(const SkeletonFrame& frame) {
  Vec3 shoulder_axis = frame.joint(JointId::kRightShoulder) -
                       frame.joint(JointId::kLeftShoulder);
  // For a camera-facing user the shoulder axis is (+2s, 0, 0). A body yaw
  // of theta rotates it to (2s cos, 0, -2s sin), so theta recovers as
  // -atan2(z, x).
  if (std::abs(shoulder_axis.x) < 1e-9 && std::abs(shoulder_axis.z) < 1e-9) {
    return 0.0;
  }
  return -std::atan2(shoulder_axis.z, shoulder_axis.x);
}

double MeasureForearmLength(const SkeletonFrame& frame) {
  return frame.joint(JointId::kRightHand)
      .DistanceTo(frame.joint(JointId::kRightElbow));
}

SkeletonFrame TransformFrameExplicit(const SkeletonFrame& frame,
                                     const TransformConfig& config,
                                     double yaw, double forearm_length) {
  SkeletonFrame out = frame;
  const Vec3 torso = frame.joint(JointId::kTorso);

  Mat3 unrotate;
  if (config.rotate) {
    unrotate = Mat3::RotationY(-yaw);
  }

  double scale = 1.0;
  if (config.scale && forearm_length >= config.min_forearm_mm) {
    scale = config.reference_forearm_mm / forearm_length;
  }

  for (Vec3& joint : out.joints) {
    Vec3 p = joint;
    if (config.translate) {
      p -= torso;
    }
    if (config.rotate) {
      p = unrotate.Apply(p);
    }
    p *= scale;
    joint = p;
  }
  return out;
}

SkeletonFrame TransformFrame(const SkeletonFrame& frame,
                             const TransformConfig& config) {
  return TransformFrameExplicit(frame, config, EstimateYaw(frame),
                                MeasureForearmLength(frame));
}

Vec3 TransformPoint(const Vec3& point, const SkeletonFrame& frame,
                    const TransformConfig& config) {
  Vec3 p = point;
  if (config.translate) {
    p -= frame.joint(JointId::kTorso);
  }
  if (config.rotate) {
    p = Mat3::RotationY(-EstimateYaw(frame)).Apply(p);
  }
  if (config.scale) {
    double forearm = MeasureForearmLength(frame);
    if (forearm >= config.min_forearm_mm) {
      p *= config.reference_forearm_mm / forearm;
    }
  }
  return p;
}

}  // namespace epl::transform
