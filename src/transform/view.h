// The kinect_t view: on-the-fly transformation of the raw kinect stream
// (paper Sec. 3.2: "we defined a kinect_t view letting AnduIN calculate
// all coordinates on-the-fly").
//
// kinect_t events contain every joint in user space plus derived forearm
// roll/pitch/yaw fields for both arms, so queries can range over either
// positions (window predicates) or rotations (e.g. a wave via yaw).

#ifndef EPL_TRANSFORM_VIEW_H_
#define EPL_TRANSFORM_VIEW_H_

#include <memory>
#include <string>

#include "stream/engine.h"
#include "stream/operator.h"
#include "transform/rpy.h"
#include "transform/transform.h"

namespace epl::transform {

/// Schema of kinect_t: KinectSchema() fields followed by rForearm_roll,
/// rForearm_pitch, rForearm_yaw, lForearm_roll, lForearm_pitch,
/// lForearm_yaw (angles in radians).
const stream::Schema& KinectTSchema();

/// Stream operator implementing the transformation. Stateful: it smooths
/// the per-frame forearm-length and yaw estimates with an exponential
/// moving average (TransformConfig::estimate_smoothing) since both are
/// physical constants of the tracked user.
class TransformOperator : public stream::Operator {
 public:
  explicit TransformOperator(TransformConfig config = TransformConfig());

  Status Process(const stream::Event& event) override;
  std::string name() const override { return "kinect_t"; }

 private:
  TransformConfig config_;
  bool has_estimates_ = false;
  double smoothed_yaw_ = 0.0;
  double smoothed_forearm_ = 0.0;
};

/// Name used for the transformed view.
inline constexpr char kKinectTViewName[] = "kinect_t";

/// Registers the "kinect_t" view over the "kinect" stream (which must
/// already be registered).
Status RegisterKinectTView(stream::StreamEngine* engine,
                           TransformConfig config = TransformConfig());

/// Registers a kinect_t view under a custom name over a custom source
/// stream (e.g. "alice/kinect_t" over "alice/kinect" for the multi-user
/// runtime's per-session views).
Status RegisterKinectTView(stream::StreamEngine* engine,
                           const std::string& view_name,
                           const std::string& source_name,
                           TransformConfig config = TransformConfig());

}  // namespace epl::transform

#endif  // EPL_TRANSFORM_VIEW_H_
