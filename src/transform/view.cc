#include "transform/view.h"

#include "common/logging.h"
#include "kinect/skeleton.h"

namespace epl::transform {

using kinect::FrameFromEvent;
using kinect::FrameToEvent;
using kinect::KinectSchema;
using kinect::SkeletonFrame;

const stream::Schema& KinectTSchema() {
  static const stream::Schema* schema = [] {
    auto* built = new stream::Schema(KinectSchema());
    built->AddField("rForearm_roll");
    built->AddField("rForearm_pitch");
    built->AddField("rForearm_yaw");
    built->AddField("lForearm_roll");
    built->AddField("lForearm_pitch");
    built->AddField("lForearm_yaw");
    EPL_CHECK(built->Validate().ok());
    return built;
  }();
  return *schema;
}

TransformOperator::TransformOperator(TransformConfig config)
    : config_(config) {}

Status TransformOperator::Process(const stream::Event& event) {
  EPL_ASSIGN_OR_RETURN(SkeletonFrame frame, FrameFromEvent(event));

  double yaw = EstimateYaw(frame);
  double forearm = MeasureForearmLength(frame);
  double alpha = config_.estimate_smoothing;
  if (!has_estimates_ || alpha >= 1.0) {
    smoothed_yaw_ = yaw;
    smoothed_forearm_ = forearm;
    has_estimates_ = true;
  } else {
    // Shortest-path blend for the angle to behave across the +-pi seam.
    double delta = yaw - smoothed_yaw_;
    while (delta > M_PI) {
      delta -= 2.0 * M_PI;
    }
    while (delta < -M_PI) {
      delta += 2.0 * M_PI;
    }
    smoothed_yaw_ += alpha * delta;
    smoothed_forearm_ += alpha * (forearm - smoothed_forearm_);
  }
  SkeletonFrame transformed =
      TransformFrameExplicit(frame, config_, smoothed_yaw_, smoothed_forearm_);

  stream::Event out = FrameToEvent(transformed);
  RollPitchYaw right = ForearmAngles(transformed, /*right_side=*/true);
  RollPitchYaw left = ForearmAngles(transformed, /*right_side=*/false);
  out.values.push_back(right.roll);
  out.values.push_back(right.pitch);
  out.values.push_back(right.yaw);
  out.values.push_back(left.roll);
  out.values.push_back(left.pitch);
  out.values.push_back(left.yaw);
  return Forward(out);
}

Status RegisterKinectTView(stream::StreamEngine* engine,
                           TransformConfig config) {
  return RegisterKinectTView(engine, kKinectTViewName, "kinect", config);
}

Status RegisterKinectTView(stream::StreamEngine* engine,
                           const std::string& view_name,
                           const std::string& source_name,
                           TransformConfig config) {
  return engine->RegisterView(view_name, source_name,
                              std::make_unique<TransformOperator>(config),
                              KinectTSchema());
}

}  // namespace epl::transform
