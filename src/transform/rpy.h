// Roll-Pitch-Yaw angles of limb segments (paper Sec. 3.2: "The
// calculation of Roll-Pitch-Yaw (RPY) angles ... implemented as user
// defined operators in AnduIN. They can be used to easily express
// movements using any kind of rotations, e.g., a wave gesture.").
//
// For a limb direction vector v (child joint minus parent joint) in user
// space (X lateral, Y up, Z behind):
//   pitch = elevation above the horizontal plane,
//   yaw   = azimuth in the horizontal plane, 0 pointing in front of the
//           user (-Z), positive toward +X,
//   roll  = rotation of the adjacent body plane about the limb axis
//           relative to the horizontal reference (0 for a vertical plane).

#ifndef EPL_TRANSFORM_RPY_H_
#define EPL_TRANSFORM_RPY_H_

#include "common/vec3.h"
#include "kinect/skeleton.h"

namespace epl::transform {

struct RollPitchYaw {
  double roll = 0.0;
  double pitch = 0.0;
  double yaw = 0.0;
};

/// Angles of the direction `v` (need not be normalized). Returns zeros for
/// a near-zero vector.
RollPitchYaw DirectionAngles(const Vec3& v);

/// RPY of the right/left forearm (elbow -> hand) in a *transformed* frame;
/// roll is derived from the upper-arm plane.
RollPitchYaw ForearmAngles(const kinect::SkeletonFrame& user_frame,
                           bool right_side);

}  // namespace epl::transform

#endif  // EPL_TRANSFORM_RPY_H_
