// Sample recording state machine (paper Sec. 3.1): after the control
// gesture, the user moves to the start pose; recording begins once they
// hold still, captures everything while they move, and ends when they hold
// still again at the end pose.

#ifndef EPL_WORKFLOW_RECORDER_H_
#define EPL_WORKFLOW_RECORDER_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "workflow/motion_detector.h"

namespace epl::workflow {

enum class RecorderState {
  kIdle,            // not recording
  kAwaitingStill,   // user moving to the start pose
  kAwaitingMotion,  // user holding the start pose; gesture not begun
  kRecording,       // capturing the gesture
  kComplete,        // sample finished (terminal until Reset/Start)
  kFailed,          // timed out or sample too short
};

std::string_view RecorderStateToString(RecorderState state);

struct RecorderConfig {
  StillnessConfig stillness;
  /// Give up when the user never settles at a start pose.
  Duration start_timeout = 10 * kSecond;
  /// Give up when a gesture never ends.
  Duration max_recording = 15 * kSecond;
  /// Recordings whose motion portion is shorter than this fail.
  Duration min_gesture = 250 * kMillisecond;
};

class SampleRecorder {
 public:
  explicit SampleRecorder(RecorderConfig config = RecorderConfig());

  /// Arms the recorder (state kAwaitingStill).
  void Start(TimePoint now);

  /// Feeds one frame; returns the state after consuming it.
  RecorderState Update(const kinect::SkeletonFrame& frame);

  RecorderState state() const { return state_; }

  /// The captured sample (valid in kComplete): frames from the end of the
  /// initial stillness to the start of the final stillness.
  const std::vector<kinect::SkeletonFrame>& sample() const {
    return sample_;
  }
  std::vector<kinect::SkeletonFrame> TakeSample() {
    return std::move(sample_);
  }

  /// Why the recorder entered kFailed.
  const std::string& failure_reason() const { return failure_reason_; }

  void Reset();

 private:
  void Fail(const std::string& reason);

  RecorderConfig config_;
  StillnessDetector stillness_;
  RecorderState state_ = RecorderState::kIdle;
  TimePoint armed_at_ = 0;
  TimePoint recording_since_ = 0;
  std::vector<kinect::SkeletonFrame> sample_;
  /// Trailing frames buffered while awaiting motion: stillness detection
  /// lags the true gesture onset by up to its window, so these frames are
  /// prepended to the sample when recording starts.
  std::deque<kinect::SkeletonFrame> onset_buffer_;
  std::string failure_reason_;
};

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_RECORDER_H_
