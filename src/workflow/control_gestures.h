// Built-in control gestures (paper Sec. 3.1): "we make use of pre-defined,
// but configurable gestures to control the learning tool itself". A wave
// starts the recording of a new sample; a swipe with both hands finalizes
// the learning process.
//
// The control gestures are themselves expressed as GestureDefinitions and
// deployed as CEP queries on kinect_t — the learning tool eats its own
// dog food.

#ifndef EPL_WORKFLOW_CONTROL_GESTURES_H_
#define EPL_WORKFLOW_CONTROL_GESTURES_H_

#include <string_view>

#include "core/gesture_definition.h"

namespace epl::workflow {

/// Reserved names of the control gestures.
inline constexpr char kControlWaveName[] = "__control_wave";
inline constexpr char kControlFinishName[] = "__control_finish";

/// Names with the "__" prefix are reserved for built-in control gestures.
/// The runtime keys deployments by name, so a user gesture under a
/// reserved name would hot-swap the control query itself; the controller
/// rejects them at BeginGesture and ignores them in stored databases.
inline bool IsReservedGestureName(std::string_view name) {
  return name.size() >= 2 && name[0] == '_' && name[1] == '_';
}

/// Right hand oscillating above the shoulder: right - left - right.
core::GestureDefinition ControlWaveDefinition();

/// Both hands sweeping outward simultaneously.
core::GestureDefinition ControlFinishDefinition();

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_CONTROL_GESTURES_H_
