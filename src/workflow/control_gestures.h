// Built-in control gestures (paper Sec. 3.1): "we make use of pre-defined,
// but configurable gestures to control the learning tool itself". A wave
// starts the recording of a new sample; a swipe with both hands finalizes
// the learning process.
//
// The control gestures are themselves expressed as GestureDefinitions and
// deployed as CEP queries on kinect_t — the learning tool eats its own
// dog food.

#ifndef EPL_WORKFLOW_CONTROL_GESTURES_H_
#define EPL_WORKFLOW_CONTROL_GESTURES_H_

#include "core/gesture_definition.h"

namespace epl::workflow {

/// Reserved names of the control gestures.
inline constexpr char kControlWaveName[] = "__control_wave";
inline constexpr char kControlFinishName[] = "__control_finish";

/// Right hand oscillating above the shoulder: right - left - right.
core::GestureDefinition ControlWaveDefinition();

/// Both hands sweeping outward simultaneously.
core::GestureDefinition ControlFinishDefinition();

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_CONTROL_GESTURES_H_
