#include "workflow/composite.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "cep/composite.h"
#include "cep/expr.h"
#include "cep/pattern.h"
#include "common/time_util.h"

namespace epl::workflow {

namespace {

constexpr char kHeader[] = "composite v1";

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Status ValidateComposite(const CompositeDefinition& definition) {
  if (definition.name.empty()) {
    return InvalidArgumentError("composite gesture needs a name");
  }
  if (definition.steps.empty()) {
    return InvalidArgumentError("composite gesture '" + definition.name +
                                "' needs at least one step");
  }
  for (const CompositeStep& step : definition.steps) {
    if (step.gesture.empty()) {
      return InvalidArgumentError("composite gesture '" + definition.name +
                                  "' has a step without a gesture name");
    }
    if (step.count < 1) {
      return InvalidArgumentError("composite gesture '" + definition.name +
                                  "' step '" + step.gesture +
                                  "' needs count >= 1");
    }
    if (step.session < kAnySession) {
      return InvalidArgumentError("composite gesture '" + definition.name +
                                  "' step '" + step.gesture +
                                  "' has an invalid session id");
    }
    if (step.gesture == definition.name) {
      return InvalidArgumentError("composite gesture '" + definition.name +
                                  "' cannot consume its own detections");
    }
  }
  return OkStatus();
}

std::string SerializeComposite(const CompositeDefinition& definition) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "name " << definition.name << "\n";
  out << "within " << FormatDouble(definition.within_seconds) << "\n";
  for (const CompositeStep& step : definition.steps) {
    // The gesture name is the last field so it may contain spaces.
    out << "step " << step.session << " " << step.count << " " << step.gesture
        << "\n";
  }
  return out.str();
}

Result<CompositeDefinition> ParseComposite(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return InvalidArgumentError("composite definition missing '" +
                                std::string(kHeader) + "' header");
  }
  CompositeDefinition definition;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> std::ws;
      std::getline(fields, definition.name);
    } else if (key == "within") {
      if (!(fields >> definition.within_seconds)) {
        return InvalidArgumentError("composite 'within' line is malformed: " +
                                    line);
      }
    } else if (key == "step") {
      CompositeStep step;
      if (!(fields >> step.session >> step.count)) {
        return InvalidArgumentError("composite 'step' line is malformed: " +
                                    line);
      }
      fields >> std::ws;
      std::getline(fields, step.gesture);
      definition.steps.push_back(std::move(step));
    } else {
      return InvalidArgumentError("composite definition has an unknown line: " +
                                  line);
    }
  }
  EPL_RETURN_IF_ERROR(ValidateComposite(definition));
  return definition;
}

Result<query::ParsedQuery> BuildCompositeQuery(
    const CompositeDefinition& definition) {
  EPL_RETURN_IF_ERROR(ValidateComposite(definition));
  std::vector<cep::PatternExprPtr> poses;
  for (const CompositeStep& step : definition.steps) {
    for (int i = 0; i < step.count; ++i) {
      // Tags are 32-bit integers embedded in doubles (cep::GestureTag), so
      // a half-open unit window selects exactly one tag value.
      std::vector<cep::ExprPtr> terms;
      terms.push_back(cep::Expr::RangePredicate(
          cep::kDetectionGestureField, cep::GestureTag(step.gesture), 0.5));
      if (step.session != kAnySession) {
        terms.push_back(cep::Expr::RangePredicate(
            cep::kDetectionSessionField, static_cast<double>(step.session),
            0.5));
      }
      cep::ExprPtr predicate = terms.size() == 1
                                   ? std::move(terms.front())
                                   : cep::Expr::And(std::move(terms));
      poses.push_back(cep::PatternExpr::Pose(
          std::string(cep::kDetectionStreamName), std::move(predicate)));
    }
  }
  query::ParsedQuery parsed;
  parsed.name = definition.name;
  if (poses.size() == 1) {
    parsed.pattern = std::move(poses.front());
  } else {
    std::optional<Duration> within;
    if (definition.within_seconds > 0) {
      within = DurationFromSeconds(definition.within_seconds);
    }
    parsed.pattern = cep::PatternExpr::Sequence(
        std::move(poses), within, cep::WithinMode::kSpan);
  }
  return parsed;
}

}  // namespace epl::workflow
