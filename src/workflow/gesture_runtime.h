// GestureRuntime: the session layer between the learning workflow and the
// shared matching runtime.
//
// The paper's learn -> deploy -> test loop (Sec. 3.1 / Fig. 2) used to
// deploy every gesture -- including the built-in control gestures --
// as its own per-query match operator. This layer multiplexes all of them
// over the shared runtime instead (SASE+/ZStream-style multi-query
// sharing): ONE fused MultiMatchOperator (or ShardedEngine, selectable)
// per source stream hosts every deployed gesture, and gestures are
// deployed, undeployed, and re-deployed BY NAME via runtime
// AddQuery/RemoveQuery hot-swap. Re-learning a live gesture is an atomic
// swap at an exact event boundary: the retiring query sees every event up
// to and including the current one, the replacement sees exactly the
// events after it -- no deferred-undeploy dance, no window where both or
// neither are live.
//
// Multi-session mode is how "heavy traffic from millions of users" becomes
// an actual code path: every user gets a namespaced stream pair
// ("<user>/kinect" -> "<user>/kinect_t"), all sessions merge into ONE
// shared stream (kSessionStreamName) whose events carry a `session` field,
// and one shared runtime hosts every session's queries. Each deployed
// query is rescoped onto the merged stream (PatternExpr::Rescope) and
// carries the session's identity predicate as its GROUP GATE
// (MultiPatternMatcher::AddPattern), which the matcher enforces as an
// extra conjunct on every state -- per-session isolation by construction.
// Because the gate stays OUT of the pose predicates, identical gestures
// deployed by different sessions dedup to ONE predicate set in the shared
// bank (predicate cost independent of the session count), and the flat
// runtime skips an entire session's patterns with one gate read when an
// event belongs to another session -- per-event cost sub-linear in the
// number of idle sessions.
//
// Detections route per query: each deploy carries its own callback, so a
// session only ever observes its own gestures (the merge stream never
// leaks detections across sessions).
//
// Differential guarantee (tests/workflow_runtime_test.cc): a full
// controller session -- control gestures, learned gestures, re-learning --
// produces bit-identical detections on the shared runtime (fused, and
// sharded at any shard count with sync_detections) and on the legacy
// per-query deployment (RuntimeBackend::kLegacyPerQuery, kept as the
// differential and benchmark baseline).
//
// Threading / re-entrancy contract: the runtime is single-threaded like
// the StreamEngine it manages. Deploy/Undeploy may be called from inside a
// detection callback (the controller's finish gesture does exactly that);
// operations the underlying backend cannot apply mid-dispatch are deferred
// and applied at the next PushFrame/Flush boundary -- which keeps the swap
// semantics above, since no events flow in between. Each session's frames
// must be timestamp-monotonic; ordering ACROSS sessions is by arrival.
// (That suffices because every session query is fully session-scoped: it
// only ever advances on its own session's events, whose timestamps are
// monotonic, and foreign events are no-ops for it.) The runtime must
// outlive all event flow through its engine.

#ifndef EPL_WORKFLOW_GESTURE_RUNTIME_H_
#define EPL_WORKFLOW_GESTURE_RUNTIME_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cep/sharded_engine.h"
#include "core/query_gen.h"
#include "durability/event_log.h"
#include "durability/snapshot.h"
#include "gesturedb/store.h"
#include "kinect/skeleton.h"
#include "query/compiler.h"
#include "stream/engine.h"
#include "transform/transform.h"
#include "workflow/composite.h"

namespace epl::workflow {

enum class RuntimeBackend {
  /// One match operator per gesture query, exactly the pre-runtime
  /// architecture. Kept as the differential-test and benchmark baseline.
  kLegacyPerQuery,
  /// One fused MultiMatchOperator per source stream (default).
  kFused,
  /// One ShardedEngine per source stream (multi-core scaling).
  kSharded,
};

/// Handle of an open user session. kLocalSession addresses the classic
/// single-user pipeline ("kinect" / the definition's own source stream)
/// without any session namespacing.
using SessionId = int;
inline constexpr SessionId kLocalSession = -1;

/// The shared multi-session stream: per-session view events plus a
/// trailing `session` field identifying the originating session.
inline constexpr char kSessionStreamName[] = "gesture_sessions";
inline constexpr char kSessionFieldName[] = "session";

/// Durability knobs. Setting `dir` makes the runtime durable: every frame
/// and deploy/session mutation is appended to an event WAL there before it
/// takes effect, Checkpoint() writes run-state snapshots, and Recover()
/// rebuilds a crashed runtime bit-identically (snapshot + WAL-suffix
/// replay). Requires the fused or sharded backend.
struct DurabilityOptions {
  /// WAL + snapshot directory; empty disables durability entirely.
  std::string dir;
  /// WAL segment rotation size.
  uint64_t segment_bytes = 4ull << 20;
  /// fsync every this many WAL records (0: no count-based group commit).
  uint64_t sync_every_records = 0;
  /// fsync at the first WAL append after this many milliseconds (0: no
  /// time-based group commit). fsync cadence only bounds loss on power
  /// failure: a process crash loses at most the user-space batch buffer
  /// (below), and a SIGKILL after Flush() loses nothing.
  uint64_t sync_interval_ms = 50;
  /// User-space WAL write batching (one write() per this many bytes);
  /// Flush() and every fsync drain it. 0: one write() per record.
  uint64_t buffer_bytes = 64 << 10;
  /// Filesystem to write through (tests inject fault models); null uses
  /// the real one.
  durability::FileSystem* fs = nullptr;
};

struct GestureRuntimeOptions {
  RuntimeBackend backend = RuntimeBackend::kFused;
  cep::MatcherOptions matcher;
  /// Fused backend: events accumulated per matcher sweep; sharded backend:
  /// events per fan-out batch. Interactive sessions (detections steering
  /// the workflow) want 1; offline replays raise it for throughput.
  size_t batch_size = 1;
  /// Sharded backend: worker shard count.
  int num_shards = 1;
  /// Sharded backend: deliver detections synchronously inside each frame's
  /// dispatch (exact event-boundary semantics, what the interactive
  /// controller needs). Off: detections surface at batch boundaries and
  /// Flush(), which is the throughput mode.
  bool sync_detections = true;
  /// Sharded backend: idle shard workers execute the deepest-backlog
  /// shard's pending batch instead of sleeping (skewed per-session query
  /// costs; see ShardedEngineOptions::work_stealing). Detections stay
  /// bit-identical either way.
  bool work_stealing = false;
  /// Sharded backend: pin each shard worker to a CPU of the process
  /// affinity mask (see ShardedEngineOptions::pin_workers).
  bool pin_workers = false;
  /// Sharded backend: iterations an idle worker polls for new work before
  /// parking (see ShardedEngineOptions::spin_wait_iterations).
  int spin_wait_iterations = 0;
  /// Sharded backend: adaptive fleet sizing from observed per-shard busy
  /// time (see AdaptiveShardOptions; num_shards is the starting size).
  cep::AdaptiveShardOptions adaptive_shards;
  /// Sharded backend: interest-routed fan-out on the merged session
  /// stream. Each session event is fanned out only to the shards hosting
  /// that session's queries (plus shards with unscoped queries), instead
  /// of broadcast to every shard -- the session id the merge tap appends
  /// becomes the engine's routing field (ShardedEngineOptions::
  /// routing_field). Detections are bit-identical either way; off
  /// reverts to broadcast.
  bool route_session_events = true;
  /// Sharded backend: base-query placement. kSessionAffinity (default)
  /// packs each session's queries onto the fewest shards that fit the
  /// measured-cost skew budget, which is what makes routed fan-out touch
  /// ~1 shard per event; kBalanced spreads purely by weight.
  cep::ShardPlacement shard_placement = cep::ShardPlacement::kSessionAffinity;
  /// Give every session its own kinect_t transformation view and merge the
  /// transformed events. Off: raw kinect events merge directly (workloads
  /// that are already transformed, e.g. benchmarks).
  bool transform_sessions = true;
  core::QueryGenConfig query;
  transform::TransformConfig transform;
  DurabilityOptions durability;
};

/// Builds the detection callback for one recovered query: Recover() cannot
/// reuse the crashed process's closures, so the caller re-supplies them per
/// (session, gesture name).
using DetectionCallbackFactory =
    std::function<cep::DetectionCallback(SessionId, const std::string&)>;

/// What Recover() reconstructed -- the caller reads `ingested` to know the
/// frame index each session's producer resumes pushing from.
struct RecoverStats {
  /// WAL seq the snapshot covered up to (0: recovered from an empty dir).
  uint64_t snapshot_seq = 0;
  /// WAL records replayed on top of the snapshot.
  uint64_t replayed_records = 0;
  /// Frames durably ingested per session, snapshot + replay combined.
  std::map<SessionId, uint64_t> ingested;
};

class GestureRuntime {
 public:
  /// `engine` must outlive the runtime.
  explicit GestureRuntime(stream::StreamEngine* engine,
                          GestureRuntimeOptions options = {});

  GestureRuntime(const GestureRuntime&) = delete;
  GestureRuntime& operator=(const GestureRuntime&) = delete;

  stream::StreamEngine* engine() const { return engine_; }
  const GestureRuntimeOptions& options() const { return options_; }

  /// Opens a session for `user`: registers "<user>/kinect" (and its
  /// "<user>/kinect_t" view unless transform_sessions is off), ensures the
  /// shared session stream exists, and taps the session's events into it.
  Result<SessionId> OpenSession(const std::string& user);

  /// Undeploys every gesture of the session, detaches its tap, and
  /// unregisters its namespaced streams ("<user>/kinect" and the
  /// "<user>/kinect_t" view), so a close -> reopen cycle leaves no trace
  /// in the engine. Callable from inside a detection callback: the session
  /// is closed for further deploys immediately, its queries and streams
  /// retire at the next event boundary.
  Status CloseSession(SessionId session);

  /// The stream carrying the session's transformed (or raw) events --
  /// where a controller attaches its recorder tap.
  Result<std::string> SessionViewStream(SessionId session) const;

  /// Fan-out and placement counters summed over every sharded channel
  /// (all zeros under the fused/legacy backends): how many event copies
  /// routing delivered vs skipped, sub-batch enqueues, advance tokens,
  /// affinity moves, worker wakeups. See ShardedEngine::EngineStats.
  cep::ShardedEngine::EngineStats ShardedStats() const;

  /// Deploys (or, if `name` is already live in this session, atomically
  /// re-deploys) the gesture's generated query under its definition name.
  /// Local deploys run on definition.source_stream; session deploys are
  /// rescoped onto the shared session stream with the session's identity
  /// predicate as pose guard and group gate. Detections of this gesture go
  /// to `callback`. Callable from inside a detection callback: backends
  /// that cannot mutate mid-dispatch apply the change at the next
  /// PushFrame/Flush boundary (identical swap semantics, since no events
  /// flow in between; errors then surface from that call).
  Status Deploy(SessionId session, const core::GestureDefinition& definition,
                cep::DetectionCallback callback);
  Status Deploy(const core::GestureDefinition& definition,
                cep::DetectionCallback callback) {
    return Deploy(kLocalSession, definition, std::move(callback));
  }

  /// Deploys a COMPOSITE gesture: a pattern over other deployed gestures'
  /// detections (see workflow/composite.h). The inputs named by the
  /// definition's steps must already be deployed (exact-session steps in
  /// their session, kAnySession steps anywhere) and share one source
  /// stream channel; deploying against missing inputs is NotFound. The
  /// composite's level is fixed at deploy time (1 + the highest input
  /// level), which makes query-DAG cycles unrepresentable: deploying a
  /// composite under a name some live composite already consumes -- the
  /// only way an edge could point backwards -- is rejected with
  /// FailedPrecondition (a self-referencing step is InvalidArgument).
  /// Detections of level-k inputs at timestamp t are visible to this
  /// composite AT t (same feedback epoch, not t+1), and the combined
  /// detection order is deterministic: (event-seq, level, query-id),
  /// bit-identical across the fused and sharded backends. Requires the
  /// fused or sharded backend. Callable from inside a detection callback
  /// with the same deferral semantics as Deploy.
  Status DeployComposite(SessionId session,
                         const CompositeDefinition& definition,
                         cep::DetectionCallback callback);
  Status DeployComposite(const CompositeDefinition& definition,
                         cep::DetectionCallback callback) {
    return DeployComposite(kLocalSession, definition, std::move(callback));
  }

  /// Removes the named gesture, discarding its partial matches. A gesture
  /// (base or composite) consumed by a live composite cannot be
  /// undeployed (FailedPrecondition) -- undeploy the consumer first.
  Status Undeploy(SessionId session, const std::string& name);
  Status Undeploy(const std::string& name) {
    return Undeploy(kLocalSession, name);
  }

  bool IsDeployed(SessionId session, const std::string& name) const;
  bool IsDeployed(const std::string& name) const {
    return IsDeployed(kLocalSession, name);
  }

  /// Names of the session's deployed gestures, sorted.
  std::vector<std::string> DeployedGestures(
      SessionId session = kLocalSession) const;

  /// Boot-time bulk load: deploys every gesture stored in `store` into the
  /// shared bank (one runtime AddQuery each; with the fused/sharded
  /// backends the bank builds once, on the first event). Reserved "__"
  /// names are skipped -- a stored "__control_wave" must not hot-swap a
  /// live control query (see IsReservedGestureName). Detections of all
  /// loaded gestures go to `callback`. Returns the number loaded. A store
  /// record that fails to parse (truncated/corrupt file) does NOT abort
  /// the load: every parseable gesture still deploys, and the first bad
  /// record's error -- naming the offending file -- is returned instead of
  /// the count.
  Result<int> LoadStore(SessionId session, const gesturedb::GestureStore& store,
                        cep::DetectionCallback callback);
  Result<int> LoadStore(const gesturedb::GestureStore& store,
                        cep::DetectionCallback callback) {
    return LoadStore(kLocalSession, store, std::move(callback));
  }

  /// Applies deferred mutations, then feeds the frame into the session's
  /// raw stream (kLocalSession: "kinect").
  Status PushFrame(SessionId session, const kinect::SkeletonFrame& frame);
  Status PushFrame(const kinect::SkeletonFrame& frame) {
    return PushFrame(kLocalSession, frame);
  }
  Status PushFrames(SessionId session,
                    const std::vector<kinect::SkeletonFrame>& frames);

  /// Applies deferred mutations and flushes every channel: fused batched
  /// windows are swept, sharded engines quiesce and deliver everything
  /// pending.
  Status Flush();

  /// Resizes every live sharded channel's worker fleet to `num_shards` at
  /// a quiesced event boundary (run-state preserving; see
  /// cep::ShardedEngine::Resize). Sharded backend only; must not be
  /// called from a detection callback.
  Status ResizeShards(int num_shards);

  /// Deployed gestures across all sessions.
  size_t num_deployed() const { return gestures_.size(); }
  /// Live fused/sharded operators (one per source stream in use).
  size_t num_channels() const { return channels_.size(); }

  /// Whether this runtime writes a WAL (options.durability.dir set).
  bool durable() const { return !options_.durability.dir.empty(); }

  /// Frames durably ingested for `session` -- after Recover(), the index
  /// the session's producer resumes pushing from.
  uint64_t ingested_events(SessionId session) const;

  /// Writes a run-state snapshot at a quiesced event boundary and prunes
  /// the WAL prefix it covers: Flush, export every deployed query's live
  /// NFA runs, rotate the WAL segment, atomically write
  /// snapshot-<seq>.snap, then drop stale snapshots and covered segments.
  /// Durable runtimes only; must not be called from a detection callback.
  Status Checkpoint();

  /// Rebuilds a runtime from `options.durability.dir`: restores sessions,
  /// deployed gestures, and mid-gesture partial runs from the newest valid
  /// snapshot, then replays the WAL suffix (seq >= snapshot seq) through
  /// the normal ingest path. Detections for replayed events are
  /// re-delivered (at-least-once past the snapshot cut); the recovered
  /// detection stream is bit-identical to the never-crashed run from the
  /// snapshot cut onward. `factory` supplies the detection callback of
  /// each recovered query. An empty/missing directory recovers to an empty
  /// runtime (fresh start).
  static Result<std::unique_ptr<GestureRuntime>> Recover(
      stream::StreamEngine* engine, GestureRuntimeOptions options,
      const DetectionCallbackFactory& factory, RecoverStats* stats = nullptr);

 private:
  /// The shared operator of one source stream.
  struct Channel {
    query::FusedDeployment fused;      // backend kFused
    query::ShardedDeployment sharded;  // backend kSharded
  };

  struct Session {
    std::string name;
    std::string raw_stream;
    std::string view_stream;
    /// The session's identity predicate compiled as a group gate, shared
    /// by all of the session's query specs and enforced by the matcher on
    /// every state.
    std::shared_ptr<const cep::CompiledPattern> gate;
    stream::DeploymentId tap = 0;
    bool open = true;
  };

  struct Gesture {
    std::string stream;               // channel key / legacy deploy stream
    int query_id = -1;                // fused/sharded stable id
    stream::DeploymentId legacy_id = 0;
    /// Canonical unparser rendering of the deployed (rescoped) query;
    /// recorded only on durable runtimes, serialized into checkpoints.
    /// Empty for composites, which serialize their definition instead
    /// (gesture tags round-trip exactly through it).
    std::string query_text;
    /// Composite level; 0 = base gesture. Level >= 1 gestures keep their
    /// definition for consumed-input checks and checkpointing.
    int level = 0;
    CompositeDefinition composite;
  };

  using GestureKey = std::pair<SessionId, std::string>;

  bool in_dispatch() const { return dispatch_depth_ > 0; }
  /// Opens the WAL on the first durable operation (errors early when the
  /// backend cannot support durability).
  Status EnsureWal();
  /// Appends one typed record to the WAL. No-op when not durable, during
  /// replay, and inside suppressed scopes (CloseSession teardown, whose
  /// undeploys are implied by the kCloseSession record).
  Status LogRecord(const durability::WalRecord& record);
  /// OpenSession core; `forced_id` >= 0 pins the session id (recovery
  /// restores sessions under their original ids, which gates and WAL
  /// records encode).
  Result<SessionId> DoOpenSession(const std::string& user,
                                  SessionId forced_id);
  /// Applies one replayed WAL record through the normal mutation/ingest
  /// paths (logging suppressed via replaying_).
  Status ApplyWalRecord(const durability::WalRecord& record,
                        const DetectionCallbackFactory& factory);
  /// Restores one snapshot query: reparse its canonical text, recompile
  /// against the restored session's gate, adopt with its live runs.
  Status RestoreQuery(const durability::QueryState& state,
                      const DetectionCallbackFactory& factory);
  /// Wraps a detection callback so the runtime knows when it is inside a
  /// dispatch (mutations from there may need deferring).
  cep::DetectionCallback Guard(cep::DetectionCallback callback);
  /// Runs the deferred mutations in request order.
  Status Pump();
  Result<Session*> FindSession(SessionId session);
  Result<const Session*> FindSession(SessionId session) const;
  /// Registers the shared session stream on first use.
  Status EnsureSessionStream();
  Result<Channel*> EnsureChannel(const std::string& stream);
  /// The gesture's generated query, rescoped for `session` (null = local).
  Result<query::ParsedQuery> BuildQuery(
      const Session* session, const core::GestureDefinition& definition) const;
  /// Registers the synthetic `__detections` stream on first composite use
  /// (schema resolution only -- derived events never flow through the
  /// engine, see cep/composite.h).
  Status EnsureDetectionStream();
  /// Error when a live composite consumes gesture (session, name) -- the
  /// reason both Undeploy of an input and DeployComposite under a
  /// consumed name are rejected.
  Status CheckNotConsumed(SessionId session, const std::string& name) const;
  /// Dispatch-unsafe deploy core (callers defer when needed).
  Status DoDeploy(SessionId session, const core::GestureDefinition& definition,
                  cep::DetectionCallback callback);
  Status DoDeployComposite(SessionId session,
                           const CompositeDefinition& definition,
                           cep::DetectionCallback callback);
  Status DoUndeploy(SessionId session, const std::string& name);
  /// Retires one gesture's query/deployment (map entry already removed).
  Status Retire(const Gesture& gesture);

  stream::StreamEngine* engine_;
  GestureRuntimeOptions options_;

  std::map<std::string, Channel> channels_;
  std::map<SessionId, Session> sessions_;
  std::map<GestureKey, Gesture> gestures_;
  SessionId next_session_id_ = 0;

  int dispatch_depth_ = 0;
  std::vector<std::function<Status()>> pending_;

  // --- Durability state (unused unless options.durability.dir is set) ---
  durability::FileSystem* fs_ = nullptr;
  std::unique_ptr<durability::EventLog> wal_;
  /// Reused across LogRecord calls so the per-event encode allocates
  /// nothing at steady state.
  durability::ByteWriter wal_encode_scratch_;
  /// Frames ingested per session since the beginning of time (survives
  /// checkpoints; the producer resume index).
  std::map<SessionId, uint64_t> ingested_;
  /// True while Recover() replays the WAL suffix: suppresses re-logging.
  bool replaying_ = false;
  /// True while a CloseSession teardown runs: its undeploys are implied
  /// by the kCloseSession record and must not be logged individually.
  bool suppress_wal_ = false;
};

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_GESTURE_RUNTIME_H_
