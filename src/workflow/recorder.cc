#include "workflow/recorder.h"

namespace epl::workflow {

std::string_view RecorderStateToString(RecorderState state) {
  switch (state) {
    case RecorderState::kIdle:
      return "idle";
    case RecorderState::kAwaitingStill:
      return "awaiting_still";
    case RecorderState::kAwaitingMotion:
      return "awaiting_motion";
    case RecorderState::kRecording:
      return "recording";
    case RecorderState::kComplete:
      return "complete";
    case RecorderState::kFailed:
      return "failed";
  }
  return "?";
}

SampleRecorder::SampleRecorder(RecorderConfig config)
    : config_(config), stillness_(config.stillness) {}

void SampleRecorder::Start(TimePoint now) {
  state_ = RecorderState::kAwaitingStill;
  armed_at_ = now;
  stillness_.Reset();
  sample_.clear();
  onset_buffer_.clear();
  failure_reason_.clear();
}

void SampleRecorder::Reset() {
  state_ = RecorderState::kIdle;
  stillness_.Reset();
  sample_.clear();
  onset_buffer_.clear();
  failure_reason_.clear();
}

void SampleRecorder::Fail(const std::string& reason) {
  state_ = RecorderState::kFailed;
  failure_reason_ = reason;
  sample_.clear();
}

RecorderState SampleRecorder::Update(const kinect::SkeletonFrame& frame) {
  switch (state_) {
    case RecorderState::kIdle:
    case RecorderState::kComplete:
    case RecorderState::kFailed:
      return state_;

    case RecorderState::kAwaitingStill: {
      if (stillness_.Update(frame)) {
        state_ = RecorderState::kAwaitingMotion;
      } else if (frame.timestamp - armed_at_ > config_.start_timeout) {
        Fail("user never settled at a start pose");
      }
      return state_;
    }

    case RecorderState::kAwaitingMotion: {
      // Keep the trailing window of still frames: when motion is detected
      // the true gesture onset lies up to one stillness window in the
      // past, so those frames belong to the sample.
      onset_buffer_.push_back(frame);
      while (!onset_buffer_.empty() &&
             onset_buffer_.front().timestamp <
                 frame.timestamp - config_.stillness.window) {
        onset_buffer_.pop_front();
      }
      if (!stillness_.Update(frame)) {
        state_ = RecorderState::kRecording;
        recording_since_ = frame.timestamp;
        sample_.assign(onset_buffer_.begin(), onset_buffer_.end());
        onset_buffer_.clear();
      } else if (frame.timestamp - armed_at_ > config_.start_timeout) {
        Fail("user held the start pose but never moved");
      }
      return state_;
    }

    case RecorderState::kRecording: {
      sample_.push_back(frame);
      bool still = stillness_.Update(frame);
      if (still) {
        // Gesture ended: drop the trailing stillness window.
        TimePoint cutoff = frame.timestamp - config_.stillness.window;
        while (!sample_.empty() && sample_.back().timestamp > cutoff) {
          sample_.pop_back();
        }
        // Judge the minimum length on the motion portion only (the
        // prepended onset frames are mostly still).
        if (sample_.empty() ||
            sample_.back().timestamp - recording_since_ <
                config_.min_gesture) {
          Fail("recorded gesture too short");
        } else {
          state_ = RecorderState::kComplete;
        }
      } else if (frame.timestamp - recording_since_ >
                 config_.max_recording) {
        Fail("gesture recording exceeded the time limit");
      }
      return state_;
    }
  }
  return state_;
}

}  // namespace epl::workflow
