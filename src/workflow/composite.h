// Composite gesture definitions for the workflow layer.
//
// A composite gesture is a pattern over DETECTIONS instead of skeleton
// frames: "session 3 waved, then session 7 swiped right, within 2
// seconds", or the cross-session aggregate "50 users swiped right within
// 2 seconds" (any-session steps with a count). Deploying one makes a
// query's detection stream re-enter the runtime as a first-class input:
// base (level-0) query detections become derived events on the synthetic
// `__detections` stream (see cep/composite.h) and feed the composite's
// pattern within the same timestamp epoch as the source event.
//
// This header holds the backend-independent pieces: the definition
// struct, its text serialization (what the WAL and snapshots store), and
// the translation into a query::ParsedQuery over the detection schema.
// GestureRuntime::DeployComposite owns the runtime half (input
// resolution, level assignment, cycle rejection).

#ifndef EPL_WORKFLOW_COMPOSITE_H_
#define EPL_WORKFLOW_COMPOSITE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/parser.h"

namespace epl::workflow {

/// A step consumes detections of one deployed gesture. `session` selects
/// whose: an exact session id (including the local pseudo-session, -1) or
/// kAnySession to accept the gesture from every session (the
/// cross-session aggregate building block).
inline constexpr int kAnySession = -2;

struct CompositeStep {
  int session = kAnySession;
  std::string gesture;
  /// Number of consecutive detections this step requires (the "50 users
  /// swiped right" count). Repeats of an any-session step may come from
  /// the same or different sessions; an exact-session step simply
  /// requires `count` detections from that session.
  int count = 1;
};

struct CompositeDefinition {
  std::string name;
  std::vector<CompositeStep> steps;
  /// Overall window: first consumed detection to last, in seconds
  /// (WithinMode::kSpan). <= 0 means unbounded.
  double within_seconds = 0;
};

/// Structural validation: non-empty name and steps, counts >= 1, no step
/// consuming the composite's own name (the trivial cycle; deeper cycles
/// are impossible by construction, see GestureRuntime::DeployComposite).
Status ValidateComposite(const CompositeDefinition& definition);

/// Line-based text form, stable across versions -- this is what WAL
/// kDeployComposite records and snapshot QueryStates carry, and what
/// recovery re-parses to rebuild the query (composites are NOT restored
/// from unparsed query text: gesture-name tags round-trip exactly through
/// the definition, not through formatted double literals).
std::string SerializeComposite(const CompositeDefinition& definition);
Result<CompositeDefinition> ParseComposite(const std::string& text);

/// Translates the definition into a ParsedQuery whose poses match derived
/// detection events on cep::kDetectionStreamName: each step becomes
/// `count` poses predicated on the step's gesture tag (and session tag,
/// unless kAnySession), sequenced with a kSpan window of
/// `within_seconds`. The result compiles with query::CompileQuerySpec
/// against the registered detection schema like any base query.
Result<query::ParsedQuery> BuildCompositeQuery(
    const CompositeDefinition& definition);

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_COMPOSITE_H_
