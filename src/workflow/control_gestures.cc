#include "workflow/control_gestures.h"

namespace epl::workflow {

using core::GestureDefinition;
using core::JointWindow;
using core::PoseWindow;
using kinect::JointId;

namespace {

JointWindow Box(double cx, double cy, double cz, double hx, double hy,
                double hz) {
  JointWindow window;
  window.center = Vec3(cx, cy, cz);
  window.half_width = Vec3(hx, hy, hz);
  return window;
}

}  // namespace

GestureDefinition ControlWaveDefinition() {
  GestureDefinition definition;
  definition.name = kControlWaveName;
  definition.joints = {JointId::kRightHand};
  definition.notes = "built-in control gesture: wave starts recording";

  // Hand above the shoulder oscillating right - left - right (matching
  // the Wave shape: x 120..400 around 260, y ~380, z ~-160).
  PoseWindow right1;
  right1.joints[JointId::kRightHand] = Box(400, 380, -160, 90, 170, 180);
  PoseWindow left;
  left.joints[JointId::kRightHand] = Box(120, 380, -160, 90, 170, 180);
  left.max_gap = kSecond;
  PoseWindow right2 = right1;
  right2.max_gap = kSecond;
  definition.poses = {right1, left, right2};
  return definition;
}

GestureDefinition ControlFinishDefinition() {
  GestureDefinition definition;
  definition.name = kControlFinishName;
  definition.joints = {JointId::kRightHand, JointId::kLeftHand};
  definition.notes =
      "built-in control gesture: two-hand swipe finishes learning";

  PoseWindow inward;
  inward.joints[JointId::kRightHand] = Box(120, 140, -180, 100, 120, 180);
  inward.joints[JointId::kLeftHand] = Box(-120, 140, -180, 100, 120, 180);
  PoseWindow outward;
  outward.joints[JointId::kRightHand] = Box(550, 140, -170, 130, 130, 190);
  outward.joints[JointId::kLeftHand] = Box(-550, 140, -170, 130, 130, 190);
  outward.max_gap = 2 * kSecond;
  definition.poses = {inward, outward};
  return definition;
}

}  // namespace epl::workflow
