#include "workflow/motion_detector.h"

#include <algorithm>

namespace epl::workflow {

StillnessDetector::StillnessDetector(StillnessConfig config)
    : config_(std::move(config)) {}

void StillnessDetector::Reset() {
  history_.clear();
  still_ = false;
}

bool StillnessDetector::Update(const kinect::SkeletonFrame& frame) {
  history_.push_back(frame);
  TimePoint cutoff = frame.timestamp - config_.window;
  while (!history_.empty() && history_.front().timestamp < cutoff) {
    history_.pop_front();
  }
  // The window must actually span the configured duration.
  if (history_.size() < 2 ||
      history_.back().timestamp - history_.front().timestamp <
          config_.window - kinect::kFramePeriod) {
    still_ = false;
    return still_;
  }
  double max_extent = 0.0;
  for (kinect::JointId joint : config_.joints) {
    Vec3 lo = history_.front().joint(joint);
    Vec3 hi = lo;
    for (const kinect::SkeletonFrame& past : history_) {
      lo = Vec3::Min(lo, past.joint(joint));
      hi = Vec3::Max(hi, past.joint(joint));
    }
    max_extent = std::max(max_extent, (hi - lo).Norm());
  }
  if (still_) {
    // Hysteresis: leave the still state only on clear movement.
    still_ = max_extent <= config_.motion_epsilon_mm;
  } else {
    still_ = max_extent <= config_.epsilon_mm;
  }
  return still_;
}

}  // namespace epl::workflow
