// LearningController: the interactive gesture-learning workflow of paper
// Sec. 3.1 / Fig. 2, wired end to end:
//
//   * raw "kinect" frames stream through the engine into the "kinect_t"
//     transformation view;
//   * built-in control gestures run as CEP queries on kinect_t — a wave
//     starts the recording of a new sample, a two-hand swipe finishes the
//     learning phase;
//   * the stillness-delimited recorder captures samples and feeds the
//     incremental learner (warnings surface when a sample deviates);
//   * on finish, the learned query is generated, stored in the gesture
//     database, and deployed; the session enters the testing phase where
//     detections of the new gesture are reported back.
//
// Visual feedback of the paper's GUI maps to the callback events below.

#ifndef EPL_WORKFLOW_CONTROLLER_H_
#define EPL_WORKFLOW_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/learner.h"
#include "gesturedb/store.h"
#include "stream/engine.h"
#include "transform/view.h"
#include "workflow/control_gestures.h"
#include "workflow/recorder.h"

namespace epl::workflow {

enum class ControllerPhase { kIdle, kLearning, kTesting };

std::string_view ControllerPhaseToString(ControllerPhase phase);

struct ControllerEvents {
  /// Human-readable progress lines (the GUI's status display).
  std::function<void(const std::string&)> on_status;
  /// A sample was recorded and merged (sample index, current pose count).
  std::function<void(int, int)> on_sample;
  /// Learner / recorder warnings (e.g. deviating samples).
  std::function<void(const std::string&)> on_warning;
  /// A gesture was learned and deployed (name, generated query text).
  std::function<void(const std::string&, const std::string&)> on_deployed;
  /// Detections of learned gestures during the testing phase.
  cep::DetectionCallback on_detection;
};

struct ControllerConfig {
  core::LearnerConfig learner;
  RecorderConfig recorder;
  transform::TransformConfig transform;
  /// Deploy the wave / two-hand-swipe control queries.
  bool deploy_control_gestures = true;
};

class LearningController {
 public:
  /// `engine` must outlive the controller. `store` may be null (no
  /// persistence).
  LearningController(stream::StreamEngine* engine,
                     gesturedb::GestureStore* store,
                     ControllerConfig config = ControllerConfig(),
                     ControllerEvents events = ControllerEvents());

  /// Registers streams/views (if absent) and deploys control queries and
  /// the internal frame tap. Call once.
  Status Init();

  /// Starts defining a new gesture; subsequent recordings feed it.
  Status BeginGesture(const std::string& name,
                      std::vector<kinect::JointId> joints);

  /// Equivalent to the wave control gesture.
  Status TriggerRecording();

  /// Equivalent to the two-hand-swipe control gesture: learn, store,
  /// deploy, enter the testing phase.
  Status FinishLearning();

  /// Entry point for the sensor feed (raw camera-space frames).
  Status PushFrame(const kinect::SkeletonFrame& frame);
  Status PushFrames(const std::vector<kinect::SkeletonFrame>& frames);

  ControllerPhase phase() const { return phase_; }
  RecorderState recorder_state() const { return recorder_.state(); }
  int sample_count() const {
    return learner_ ? learner_->sample_count() : 0;
  }
  /// Query text of the most recently deployed gesture.
  const std::string& last_query_text() const { return last_query_text_; }
  /// Names of gestures deployed by this controller.
  std::vector<std::string> deployed_gestures() const;

 private:
  void Emit(const std::string& status);
  void Warn(const std::string& warning);
  void OnControlWave();
  void OnControlFinish();
  void OnTransformedEvent(const stream::Event& event);
  void HandleRecorderResult();
  Status ApplyPendingUndeploys();

  stream::StreamEngine* engine_;
  gesturedb::GestureStore* store_;
  ControllerConfig config_;
  ControllerEvents events_;

  ControllerPhase phase_ = ControllerPhase::kIdle;
  std::unique_ptr<core::GestureLearner> learner_;
  std::string gesture_name_;
  std::vector<kinect::JointId> gesture_joints_;
  SampleRecorder recorder_;
  size_t warnings_reported_ = 0;
  TimePoint last_timestamp_ = 0;
  std::string last_query_text_;
  std::map<std::string, stream::DeploymentId> deployments_;
  std::vector<stream::DeploymentId> pending_undeploys_;
  bool initialized_ = false;
};

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_CONTROLLER_H_
