// LearningController: the interactive gesture-learning workflow of paper
// Sec. 3.1 / Fig. 2, wired end to end:
//
//   * raw "kinect" frames stream through the engine into the "kinect_t"
//     transformation view;
//   * built-in control gestures run as CEP queries on kinect_t — a wave
//     starts the recording of a new sample, a two-hand swipe finishes the
//     learning phase;
//   * the stillness-delimited recorder captures samples and feeds the
//     incremental learner (warnings surface when a sample deviates);
//   * on finish, the learned query is generated, stored in the gesture
//     database, and deployed; the session enters the testing phase where
//     detections of the new gesture are reported back.
//
// Every deployment — control gestures, store-loaded gestures, freshly
// learned gestures — goes through the shared GestureRuntime: one fused (or
// sharded) operator hosts all of the controller's queries, re-learning a
// gesture is an atomic hot-swap at an event boundary, and the gestures
// already in the database come back live at Init. A controller either owns
// a private runtime (single-user constructor) or joins a shared runtime
// under a named session, so N controllers — N users — multiplex over ONE
// matching runtime with per-session detection routing.
//
// Visual feedback of the paper's GUI maps to the callback events below.

#ifndef EPL_WORKFLOW_CONTROLLER_H_
#define EPL_WORKFLOW_CONTROLLER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/learner.h"
#include "gesturedb/store.h"
#include "stream/engine.h"
#include "transform/view.h"
#include "workflow/control_gestures.h"
#include "workflow/gesture_runtime.h"
#include "workflow/recorder.h"

namespace epl::workflow {

enum class ControllerPhase { kIdle, kLearning, kTesting };

std::string_view ControllerPhaseToString(ControllerPhase phase);

struct ControllerEvents {
  /// Human-readable progress lines (the GUI's status display).
  std::function<void(const std::string&)> on_status;
  /// A sample was recorded and merged (sample index, current pose count).
  std::function<void(int, int)> on_sample;
  /// Learner / recorder warnings (e.g. deviating samples).
  std::function<void(const std::string&)> on_warning;
  /// A gesture was learned and deployed (name, generated query text).
  std::function<void(const std::string&, const std::string&)> on_deployed;
  /// Detections of learned (and store-loaded) gestures outside the
  /// learning phase.
  cep::DetectionCallback on_detection;
};

struct ControllerConfig {
  core::LearnerConfig learner;
  RecorderConfig recorder;
  transform::TransformConfig transform;
  /// Deploy the wave / two-hand-swipe control queries.
  bool deploy_control_gestures = true;
  /// Deploy every gesture already in the store at Init (boot-time bulk
  /// load into the shared bank); their detections go to on_detection.
  bool load_stored_gestures = true;
  /// Runtime configuration when the controller owns its runtime (the
  /// engine+store constructor). Ignored when joining a shared runtime.
  GestureRuntimeOptions runtime;
};

class LearningController {
 public:
  /// Single-user pipeline: the controller owns a private GestureRuntime
  /// (config.runtime) over `engine`, on the classic "kinect" / "kinect_t"
  /// streams. `engine` must outlive the controller. `store` may be null
  /// (no persistence).
  LearningController(stream::StreamEngine* engine,
                     gesturedb::GestureStore* store,
                     ControllerConfig config = ControllerConfig(),
                     ControllerEvents events = ControllerEvents());

  /// Multi-user pipeline: joins `runtime` (which must outlive the
  /// controller) under a session named `user`; Init() opens the session.
  /// All of this controller's queries share the runtime with every other
  /// session, and its frames go to the session's namespaced streams.
  LearningController(GestureRuntime* runtime, std::string user,
                     gesturedb::GestureStore* store,
                     ControllerConfig config = ControllerConfig(),
                     ControllerEvents events = ControllerEvents());

  /// Registers streams/views (if absent), opens the session (shared
  /// runtime), deploys control queries, bulk-loads stored gestures, and
  /// deploys the internal frame tap. Call once.
  Status Init();

  /// Starts defining a new gesture; subsequent recordings feed it.
  Status BeginGesture(const std::string& name,
                      std::vector<kinect::JointId> joints);

  /// Equivalent to the wave control gesture.
  Status TriggerRecording();

  /// Equivalent to the two-hand-swipe control gesture: learn, store,
  /// deploy (re-learning hot-swaps the live query), enter the testing
  /// phase.
  Status FinishLearning();

  /// Entry point for the sensor feed (raw camera-space frames).
  Status PushFrame(const kinect::SkeletonFrame& frame);
  Status PushFrames(const std::vector<kinect::SkeletonFrame>& frames);

  ControllerPhase phase() const { return phase_; }
  RecorderState recorder_state() const { return recorder_.state(); }
  int sample_count() const {
    return learner_ ? learner_->sample_count() : 0;
  }
  /// Query text of the most recently deployed gesture.
  const std::string& last_query_text() const { return last_query_text_; }
  /// Names of learned/loaded gestures deployed by this controller.
  std::vector<std::string> deployed_gestures() const;
  /// The runtime serving this controller's queries.
  GestureRuntime* runtime() const { return runtime_; }
  /// The controller's session on the runtime (kLocalSession when it owns
  /// the runtime).
  SessionId session() const { return session_; }

 private:
  void Emit(const std::string& status);
  void Warn(const std::string& warning);
  void OnControlWave();
  void OnControlFinish();
  void OnTransformedEvent(const stream::Event& event);
  void HandleRecorderResult();
  /// Forwards a detection to on_detection outside the learning phase.
  void ReportDetection(const cep::Detection& detection);

  stream::StreamEngine* engine_;
  gesturedb::GestureStore* store_;
  ControllerConfig config_;
  ControllerEvents events_;

  std::unique_ptr<GestureRuntime> owned_runtime_;
  GestureRuntime* runtime_;
  std::string user_;
  SessionId session_ = kLocalSession;
  std::string view_stream_;

  ControllerPhase phase_ = ControllerPhase::kIdle;
  std::unique_ptr<core::GestureLearner> learner_;
  std::string gesture_name_;
  std::vector<kinect::JointId> gesture_joints_;
  SampleRecorder recorder_;
  size_t warnings_reported_ = 0;
  TimePoint last_timestamp_ = 0;
  std::string last_query_text_;
  std::set<std::string> deployed_names_;
  bool initialized_ = false;
};

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_CONTROLLER_H_
