#include "workflow/controller.h"

#include "common/string_util.h"
#include "kinect/sensor.h"
#include "stream/operators.h"

namespace epl::workflow {

using kinect::SkeletonFrame;

std::string_view ControllerPhaseToString(ControllerPhase phase) {
  switch (phase) {
    case ControllerPhase::kIdle:
      return "idle";
    case ControllerPhase::kLearning:
      return "learning";
    case ControllerPhase::kTesting:
      return "testing";
  }
  return "?";
}

LearningController::LearningController(stream::StreamEngine* engine,
                                       gesturedb::GestureStore* store,
                                       ControllerConfig config,
                                       ControllerEvents events)
    : engine_(engine),
      store_(store),
      config_(std::move(config)),
      events_(std::move(events)),
      recorder_(config_.recorder) {
  // The controller owns its runtime: the learner's query-generation knob
  // governs deployment too, so the deployed query always matches the
  // query text the controller reports.
  config_.runtime.query = config_.learner.query;
  owned_runtime_ = std::make_unique<GestureRuntime>(engine, config_.runtime);
  runtime_ = owned_runtime_.get();
}

LearningController::LearningController(GestureRuntime* runtime,
                                       std::string user,
                                       gesturedb::GestureStore* store,
                                       ControllerConfig config,
                                       ControllerEvents events)
    : engine_(runtime->engine()),
      store_(store),
      config_(std::move(config)),
      events_(std::move(events)),
      runtime_(runtime),
      user_(std::move(user)),
      recorder_(config_.recorder) {}

void LearningController::Emit(const std::string& status) {
  if (events_.on_status) {
    events_.on_status(status);
  }
}

void LearningController::Warn(const std::string& warning) {
  if (events_.on_warning) {
    events_.on_warning(warning);
  }
}

void LearningController::ReportDetection(const cep::Detection& detection) {
  // Suppressed while learning: a half-performed recording of gesture X
  // must not read as a detection of the live X (the re-learn case).
  if (phase_ != ControllerPhase::kLearning && events_.on_detection) {
    events_.on_detection(detection);
  }
}

Status LearningController::Init() {
  if (initialized_) {
    return FailedPreconditionError("controller already initialized");
  }
  if (user_.empty()) {
    // Private runtime on the classic single-user streams.
    if (!engine_->HasStream("kinect")) {
      EPL_RETURN_IF_ERROR(kinect::RegisterKinectStream(engine_));
    }
    if (!engine_->HasStream(transform::kKinectTViewName)) {
      EPL_RETURN_IF_ERROR(
          transform::RegisterKinectTView(engine_, config_.transform));
    }
    view_stream_ = transform::kKinectTViewName;
  } else {
    EPL_ASSIGN_OR_RETURN(session_, runtime_->OpenSession(user_));
    EPL_ASSIGN_OR_RETURN(view_stream_, runtime_->SessionViewStream(session_));
  }
  if (config_.deploy_control_gestures) {
    EPL_RETURN_IF_ERROR(runtime_->Deploy(
        session_, ControlWaveDefinition(),
        [this](const cep::Detection&) { OnControlWave(); }));
    EPL_RETURN_IF_ERROR(runtime_->Deploy(
        session_, ControlFinishDefinition(),
        [this](const cep::Detection&) { OnControlFinish(); }));
  }
  if (store_ != nullptr && config_.load_stored_gestures) {
    // Boot-time bulk load: every stored gesture comes back live on the
    // shared runtime (all of them share one bank build; LoadStore skips
    // reserved "__" names, so a poisoned store cannot hot-swap the
    // control queries).
    EPL_ASSIGN_OR_RETURN(
        int loaded,
        runtime_->LoadStore(session_, *store_,
                            [this](const cep::Detection& detection) {
                              ReportDetection(detection);
                            }));
    for (const std::string& name : runtime_->DeployedGestures(session_)) {
      if (!IsReservedGestureName(name)) {
        deployed_names_.insert(name);
      }
    }
    if (loaded > 0) {
      Emit(StrFormat("%d stored gesture(s) deployed from the database",
                     loaded));
    }
  }
  // Frame tap: drives the recorder with transformed frames. Deployed after
  // the control matchers so control actions precede recorder updates for
  // the same frame.
  auto tap = std::make_unique<stream::CallbackSink>(
      [this](const stream::Event& event) { OnTransformedEvent(event); });
  EPL_RETURN_IF_ERROR(engine_->Deploy(view_stream_, std::move(tap)).status());
  initialized_ = true;
  Emit("controller initialized");
  return OkStatus();
}

Status LearningController::BeginGesture(
    const std::string& name, std::vector<kinect::JointId> joints) {
  if (!initialized_) {
    return FailedPreconditionError("call Init() first");
  }
  if (name.empty() || joints.empty()) {
    return InvalidArgumentError("gesture needs a name and involved joints");
  }
  if (IsReservedGestureName(name)) {
    return InvalidArgumentError(
        "gesture name '" + name +
        "' is reserved for built-in control gestures");
  }
  core::LearnerConfig learner_config = config_.learner;
  learner_config.source_stream = transform::kKinectTViewName;
  learner_ =
      std::make_unique<core::GestureLearner>(name, joints, learner_config);
  gesture_name_ = name;
  gesture_joints_ = std::move(joints);
  warnings_reported_ = 0;
  recorder_.Reset();
  phase_ = ControllerPhase::kLearning;
  Emit(StrFormat("defining gesture '%s'; wave to record a sample",
                 name.c_str()));
  return OkStatus();
}

Status LearningController::TriggerRecording() {
  if (phase_ != ControllerPhase::kLearning) {
    return FailedPreconditionError("not in the learning phase");
  }
  OnControlWave();
  return OkStatus();
}

void LearningController::OnControlWave() {
  if (phase_ != ControllerPhase::kLearning || learner_ == nullptr) {
    return;
  }
  if (recorder_.state() != RecorderState::kIdle) {
    return;  // already recording
  }
  recorder_.Start(last_timestamp_);
  Emit("recording armed: move to the start pose and hold still");
}

void LearningController::OnControlFinish() {
  if (phase_ != ControllerPhase::kLearning ||
      recorder_.state() == RecorderState::kRecording) {
    return;
  }
  Status status = FinishLearning();
  if (!status.ok()) {
    Warn("finish failed: " + status.ToString());
  }
}

Status LearningController::FinishLearning() {
  if (phase_ != ControllerPhase::kLearning || learner_ == nullptr) {
    return FailedPreconditionError("no gesture being learned");
  }
  if (learner_->sample_count() == 0) {
    return FailedPreconditionError(
        "record at least one sample before finishing");
  }
  EPL_ASSIGN_OR_RETURN(core::GestureDefinition definition, learner_->Learn());
  // Rendered with the RUNTIME's query config -- the single source of truth
  // for what actually deploys (a shared runtime's config wins over the
  // controller's own learner.query).
  EPL_ASSIGN_OR_RETURN(std::string query_text,
                       core::GenerateQueryText(definition,
                                               runtime_->options().query));
  if (store_ != nullptr) {
    EPL_RETURN_IF_ERROR(store_->Put(definition));
  }
  // Deploy through the shared runtime. Re-learning an existing gesture is
  // an atomic hot-swap at this exact event boundary: the old query sees
  // every frame up to and including the current one, the new query the
  // frames after it, and no other live gesture is perturbed.
  std::string name = definition.name;
  EPL_RETURN_IF_ERROR(runtime_->Deploy(
      session_, definition, [this](const cep::Detection& detection) {
        ReportDetection(detection);
      }));
  deployed_names_.insert(name);
  last_query_text_ = query_text;
  phase_ = ControllerPhase::kTesting;
  Emit(StrFormat("gesture '%s' deployed; entering the testing phase",
                 name.c_str()));
  if (events_.on_deployed) {
    events_.on_deployed(name, query_text);
  }
  return OkStatus();
}

Status LearningController::PushFrame(const SkeletonFrame& frame) {
  if (!initialized_) {
    return FailedPreconditionError("call Init() first");
  }
  return runtime_->PushFrame(session_, frame);
}

Status LearningController::PushFrames(
    const std::vector<SkeletonFrame>& frames) {
  for (const SkeletonFrame& frame : frames) {
    EPL_RETURN_IF_ERROR(PushFrame(frame));
  }
  return OkStatus();
}

void LearningController::OnTransformedEvent(const stream::Event& event) {
  last_timestamp_ = event.timestamp;
  if (recorder_.state() == RecorderState::kIdle) {
    return;
  }
  // kinect_t events carry the kinect fields plus derived angles; the
  // recorder consumes the skeleton part.
  stream::Event kinect_part;
  kinect_part.timestamp = event.timestamp;
  kinect_part.values.assign(
      event.values.begin(),
      event.values.begin() + kinect::KinectSchema().num_fields());
  Result<SkeletonFrame> frame = kinect::FrameFromEvent(kinect_part);
  if (!frame.ok()) {
    Warn("bad kinect_t event: " + frame.status().ToString());
    return;
  }
  recorder_.Update(*frame);
  HandleRecorderResult();
}

void LearningController::HandleRecorderResult() {
  switch (recorder_.state()) {
    case RecorderState::kComplete: {
      std::vector<SkeletonFrame> sample = recorder_.TakeSample();
      recorder_.Reset();
      Status status = learner_->AddSample(sample);
      if (!status.ok()) {
        Warn("sample rejected: " + status.ToString());
        break;
      }
      // Surface any new merge warnings.
      const std::vector<core::MergeWarning>& warnings = learner_->warnings();
      for (; warnings_reported_ < warnings.size(); ++warnings_reported_) {
        Warn(warnings[warnings_reported_].message);
      }
      int poses = learner_->summaries().empty()
                      ? 0
                      : static_cast<int>(
                            learner_->summaries().back().centroids.size());
      Emit(StrFormat("sample %d recorded (%d characteristic poses)",
                     learner_->sample_count(), poses));
      if (events_.on_sample) {
        events_.on_sample(learner_->sample_count(), poses);
      }
      break;
    }
    case RecorderState::kFailed: {
      Warn("recording failed: " + recorder_.failure_reason());
      recorder_.Reset();
      break;
    }
    default:
      break;
  }
}

std::vector<std::string> LearningController::deployed_gestures() const {
  return std::vector<std::string>(deployed_names_.begin(),
                                  deployed_names_.end());
}

}  // namespace epl::workflow
