#include "workflow/controller.h"

#include "common/string_util.h"
#include "kinect/sensor.h"
#include "stream/operators.h"

namespace epl::workflow {

using core::DeployGesture;
using kinect::SkeletonFrame;

std::string_view ControllerPhaseToString(ControllerPhase phase) {
  switch (phase) {
    case ControllerPhase::kIdle:
      return "idle";
    case ControllerPhase::kLearning:
      return "learning";
    case ControllerPhase::kTesting:
      return "testing";
  }
  return "?";
}

LearningController::LearningController(stream::StreamEngine* engine,
                                       gesturedb::GestureStore* store,
                                       ControllerConfig config,
                                       ControllerEvents events)
    : engine_(engine),
      store_(store),
      config_(std::move(config)),
      events_(std::move(events)),
      recorder_(config_.recorder) {}

void LearningController::Emit(const std::string& status) {
  if (events_.on_status) {
    events_.on_status(status);
  }
}

void LearningController::Warn(const std::string& warning) {
  if (events_.on_warning) {
    events_.on_warning(warning);
  }
}

Status LearningController::Init() {
  if (initialized_) {
    return FailedPreconditionError("controller already initialized");
  }
  if (!engine_->HasStream("kinect")) {
    EPL_RETURN_IF_ERROR(kinect::RegisterKinectStream(engine_));
  }
  if (!engine_->HasStream(transform::kKinectTViewName)) {
    EPL_RETURN_IF_ERROR(
        transform::RegisterKinectTView(engine_, config_.transform));
  }
  if (config_.deploy_control_gestures) {
    EPL_RETURN_IF_ERROR(
        DeployGesture(engine_, ControlWaveDefinition(),
                      [this](const cep::Detection&) { OnControlWave(); })
            .status());
    EPL_RETURN_IF_ERROR(
        DeployGesture(engine_, ControlFinishDefinition(),
                      [this](const cep::Detection&) { OnControlFinish(); })
            .status());
  }
  // Frame tap: drives the recorder with transformed frames. Deployed after
  // the control matchers so control actions precede recorder updates for
  // the same frame.
  auto tap = std::make_unique<stream::CallbackSink>(
      [this](const stream::Event& event) { OnTransformedEvent(event); });
  EPL_RETURN_IF_ERROR(
      engine_->Deploy(transform::kKinectTViewName, std::move(tap)).status());
  initialized_ = true;
  Emit("controller initialized");
  return OkStatus();
}

Status LearningController::BeginGesture(
    const std::string& name, std::vector<kinect::JointId> joints) {
  if (!initialized_) {
    return FailedPreconditionError("call Init() first");
  }
  if (name.empty() || joints.empty()) {
    return InvalidArgumentError("gesture needs a name and involved joints");
  }
  core::LearnerConfig learner_config = config_.learner;
  learner_config.source_stream = transform::kKinectTViewName;
  learner_ =
      std::make_unique<core::GestureLearner>(name, joints, learner_config);
  gesture_name_ = name;
  gesture_joints_ = std::move(joints);
  warnings_reported_ = 0;
  recorder_.Reset();
  phase_ = ControllerPhase::kLearning;
  Emit(StrFormat("defining gesture '%s'; wave to record a sample",
                 name.c_str()));
  return OkStatus();
}

Status LearningController::TriggerRecording() {
  if (phase_ != ControllerPhase::kLearning) {
    return FailedPreconditionError("not in the learning phase");
  }
  OnControlWave();
  return OkStatus();
}

void LearningController::OnControlWave() {
  if (phase_ != ControllerPhase::kLearning || learner_ == nullptr) {
    return;
  }
  if (recorder_.state() != RecorderState::kIdle) {
    return;  // already recording
  }
  recorder_.Start(last_timestamp_);
  Emit("recording armed: move to the start pose and hold still");
}

void LearningController::OnControlFinish() {
  if (phase_ != ControllerPhase::kLearning ||
      recorder_.state() == RecorderState::kRecording) {
    return;
  }
  Status status = FinishLearning();
  if (!status.ok()) {
    Warn("finish failed: " + status.ToString());
  }
}

Status LearningController::FinishLearning() {
  if (phase_ != ControllerPhase::kLearning || learner_ == nullptr) {
    return FailedPreconditionError("no gesture being learned");
  }
  if (learner_->sample_count() == 0) {
    return FailedPreconditionError(
        "record at least one sample before finishing");
  }
  EPL_ASSIGN_OR_RETURN(core::GestureDefinition definition, learner_->Learn());
  EPL_ASSIGN_OR_RETURN(std::string query_text,
                       core::GenerateQueryText(definition,
                                               config_.learner.query));
  if (store_ != nullptr) {
    EPL_RETURN_IF_ERROR(store_->Put(definition));
  }
  // Re-learning an existing gesture: retire the old deployment between
  // frames (Undeploy must not run inside a dispatch).
  auto existing = deployments_.find(definition.name);
  if (existing != deployments_.end()) {
    pending_undeploys_.push_back(existing->second);
    deployments_.erase(existing);
  }
  std::string name = definition.name;
  EPL_ASSIGN_OR_RETURN(
      stream::DeploymentId id,
      DeployGesture(engine_, definition,
                    [this](const cep::Detection& detection) {
                      if (phase_ == ControllerPhase::kTesting &&
                          events_.on_detection) {
                        events_.on_detection(detection);
                      }
                    },
                    config_.learner.query));
  deployments_[name] = id;
  last_query_text_ = query_text;
  phase_ = ControllerPhase::kTesting;
  Emit(StrFormat("gesture '%s' deployed; entering the testing phase",
                 name.c_str()));
  if (events_.on_deployed) {
    events_.on_deployed(name, query_text);
  }
  return OkStatus();
}

Status LearningController::PushFrame(const SkeletonFrame& frame) {
  if (!initialized_) {
    return FailedPreconditionError("call Init() first");
  }
  EPL_RETURN_IF_ERROR(ApplyPendingUndeploys());
  return engine_->Push("kinect", kinect::FrameToEvent(frame));
}

Status LearningController::PushFrames(
    const std::vector<SkeletonFrame>& frames) {
  for (const SkeletonFrame& frame : frames) {
    EPL_RETURN_IF_ERROR(PushFrame(frame));
  }
  return OkStatus();
}

Status LearningController::ApplyPendingUndeploys() {
  for (stream::DeploymentId id : pending_undeploys_) {
    EPL_RETURN_IF_ERROR(engine_->Undeploy(id));
  }
  pending_undeploys_.clear();
  return OkStatus();
}

void LearningController::OnTransformedEvent(const stream::Event& event) {
  last_timestamp_ = event.timestamp;
  if (recorder_.state() == RecorderState::kIdle) {
    return;
  }
  // kinect_t events carry the kinect fields plus derived angles; the
  // recorder consumes the skeleton part.
  stream::Event kinect_part;
  kinect_part.timestamp = event.timestamp;
  kinect_part.values.assign(
      event.values.begin(),
      event.values.begin() + kinect::KinectSchema().num_fields());
  Result<SkeletonFrame> frame = kinect::FrameFromEvent(kinect_part);
  if (!frame.ok()) {
    Warn("bad kinect_t event: " + frame.status().ToString());
    return;
  }
  recorder_.Update(*frame);
  HandleRecorderResult();
}

void LearningController::HandleRecorderResult() {
  switch (recorder_.state()) {
    case RecorderState::kComplete: {
      std::vector<SkeletonFrame> sample = recorder_.TakeSample();
      recorder_.Reset();
      Status status = learner_->AddSample(sample);
      if (!status.ok()) {
        Warn("sample rejected: " + status.ToString());
        break;
      }
      // Surface any new merge warnings.
      const std::vector<core::MergeWarning>& warnings = learner_->warnings();
      for (; warnings_reported_ < warnings.size(); ++warnings_reported_) {
        Warn(warnings[warnings_reported_].message);
      }
      int poses = learner_->summaries().empty()
                      ? 0
                      : static_cast<int>(
                            learner_->summaries().back().centroids.size());
      Emit(StrFormat("sample %d recorded (%d characteristic poses)",
                     learner_->sample_count(), poses));
      if (events_.on_sample) {
        events_.on_sample(learner_->sample_count(), poses);
      }
      break;
    }
    case RecorderState::kFailed: {
      Warn("recording failed: " + recorder_.failure_reason());
      recorder_.Reset();
      break;
    }
    default:
      break;
  }
}

std::vector<std::string> LearningController::deployed_gestures() const {
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, id] : deployments_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace epl::workflow
