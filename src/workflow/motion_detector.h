// Stillness detection (paper Sec. 3.1: "The actual recording is triggered
// after the user did not move for some time and lasts until the user stops
// at the end pose.").

#ifndef EPL_WORKFLOW_MOTION_DETECTOR_H_
#define EPL_WORKFLOW_MOTION_DETECTOR_H_

#include <deque>
#include <vector>

#include "kinect/skeleton.h"

namespace epl::workflow {

struct StillnessConfig {
  /// The user counts as still when the observed joints stayed within a
  /// box of this diagonal for `window` time. Sized for transformed
  /// (kinect_t) coordinates where scale normalization amplifies sensor
  /// noise at outstretched joints.
  double epsilon_mm = 80.0;
  /// Hysteresis: once still, the user counts as moving only when the box
  /// exceeds this larger bound, so noise excursions around epsilon_mm do
  /// not flicker the state (which would start and instantly abort
  /// recordings). Must be >= epsilon_mm.
  double motion_epsilon_mm = 130.0;
  Duration window = 500 * kMillisecond;
  /// Joints that must hold still (hands by default — the body may sway).
  std::vector<kinect::JointId> joints = {kinect::JointId::kRightHand,
                                         kinect::JointId::kLeftHand};
};

class StillnessDetector {
 public:
  explicit StillnessDetector(StillnessConfig config = StillnessConfig());

  /// Feeds one frame; returns true when the user is currently still (the
  /// trailing window is full and movement stayed below epsilon).
  bool Update(const kinect::SkeletonFrame& frame);

  bool IsStill() const { return still_; }
  void Reset();

 private:
  StillnessConfig config_;
  std::deque<kinect::SkeletonFrame> history_;
  bool still_ = false;
};

}  // namespace epl::workflow

#endif  // EPL_WORKFLOW_MOTION_DETECTOR_H_
