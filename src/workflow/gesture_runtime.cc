#include "workflow/gesture_runtime.h"

#include "kinect/sensor.h"
#include "stream/operators.h"
#include "transform/view.h"
#include "workflow/control_gestures.h"

namespace epl::workflow {

using core::GestureDefinition;
using kinect::SkeletonFrame;

namespace {

/// Stamps a session's view events with the session id and pushes them
/// into the shared session stream. A push failure propagates as a Status
/// (straight to PushFrame for raw session streams; through the view
/// dispatch chain for transformed sessions) instead of aborting.
class SessionMergeTap : public stream::Operator {
 public:
  SessionMergeTap(stream::StreamEngine* engine, SessionId session)
      : engine_(engine), session_(session) {}

  Status Process(const stream::Event& event) override {
    scratch_ = event;
    scratch_.values.push_back(static_cast<double>(session_));
    return engine_->Push(kSessionStreamName, scratch_);
  }

  std::string name() const override {
    return "session_merge[" + std::to_string(session_) + "]";
  }

 private:
  stream::StreamEngine* engine_;
  SessionId session_;
  stream::Event scratch_;  // capacity reused across frames
};

}  // namespace

GestureRuntime::GestureRuntime(stream::StreamEngine* engine,
                               GestureRuntimeOptions options)
    : engine_(engine), options_(std::move(options)) {
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.num_shards = std::max(1, options_.num_shards);
}

cep::DetectionCallback GestureRuntime::Guard(cep::DetectionCallback callback) {
  if (callback == nullptr) {
    return nullptr;
  }
  return [this, callback = std::move(callback)](const cep::Detection& d) {
    ++dispatch_depth_;
    callback(d);
    --dispatch_depth_;
  };
}

Status GestureRuntime::Pump() {
  if (pending_.empty()) {
    return OkStatus();
  }
  std::vector<std::function<Status()>> ops;
  ops.swap(pending_);
  for (size_t i = 0; i < ops.size(); ++i) {
    Status status = ops[i]();
    if (!status.ok()) {
      // Keep the unexecuted remainder queued (in request order, ahead of
      // anything ops[i] itself queued), so one failing deferred mutation
      // cannot silently drop the ones behind it.
      pending_.insert(pending_.begin(),
                      std::make_move_iterator(ops.begin() +
                                              static_cast<ptrdiff_t>(i) + 1),
                      std::make_move_iterator(ops.end()));
      return status;
    }
  }
  return OkStatus();
}

Result<GestureRuntime::Session*> GestureRuntime::FindSession(
    SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return NotFoundError("unknown session " + std::to_string(session));
  }
  return &it->second;
}

Result<const GestureRuntime::Session*> GestureRuntime::FindSession(
    SessionId session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return NotFoundError("unknown session " + std::to_string(session));
  }
  return &it->second;
}

Status GestureRuntime::EnsureSessionStream() {
  if (engine_->HasStream(kSessionStreamName)) {
    return OkStatus();
  }
  stream::Schema schema = options_.transform_sessions
                              ? transform::KinectTSchema()
                              : kinect::KinectSchema();
  schema.AddField(kSessionFieldName);
  return engine_->RegisterStream(kSessionStreamName, std::move(schema));
}

Result<SessionId> GestureRuntime::OpenSession(const std::string& user) {
  if (user.empty()) {
    return InvalidArgumentError("session needs a user name");
  }
  if (in_dispatch()) {
    return FailedPreconditionError(
        "OpenSession from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  for (const auto& [id, session] : sessions_) {
    (void)id;
    if (session.open && session.name == user) {
      return AlreadyExistsError("session already open for user: " + user);
    }
  }
  const SessionId id = next_session_id_++;
  Session session;
  session.name = user;
  session.raw_stream = user + "/kinect";
  if (!engine_->HasStream(session.raw_stream)) {
    EPL_RETURN_IF_ERROR(
        kinect::RegisterKinectStream(engine_, session.raw_stream));
  }
  if (options_.transform_sessions) {
    session.view_stream = user + "/kinect_t";
    if (!engine_->HasStream(session.view_stream)) {
      EPL_RETURN_IF_ERROR(transform::RegisterKinectTView(
          engine_, session.view_stream, session.raw_stream,
          options_.transform));
    }
  } else {
    session.view_stream = session.raw_stream;
  }

  if (options_.backend != RuntimeBackend::kLegacyPerQuery) {
    // Tap the session's view into the shared stream, stamped with the
    // session id. (Legacy sessions run their per-query operators on their
    // own view and never touch the shared stream.)
    EPL_RETURN_IF_ERROR(EnsureSessionStream());
    EPL_ASSIGN_OR_RETURN(
        session.tap,
        engine_->Deploy(session.view_stream,
                        std::make_unique<SessionMergeTap>(engine_, id)));
    // The session's identity predicate, compiled once as the group gate
    // all of the session's query specs share. The matcher enforces it on
    // every state (isolation) and skips the whole session group when an
    // event belongs to someone else (sub-linear in idle sessions).
    cep::ExprPtr gate_expr = cep::Expr::RangePredicate(
        kSessionFieldName, static_cast<double>(id), 0.5);
    EPL_ASSIGN_OR_RETURN(stream::Schema schema,
                         engine_->GetSchema(kSessionStreamName));
    cep::PatternExprPtr pose =
        cep::PatternExpr::Pose(kSessionStreamName, std::move(gate_expr));
    EPL_ASSIGN_OR_RETURN(cep::CompiledPattern gate,
                         cep::CompiledPattern::Compile(*pose, schema));
    session.gate = std::make_shared<const cep::CompiledPattern>(
        std::move(gate));
  }
  sessions_.emplace(id, std::move(session));
  return id;
}

Status GestureRuntime::CloseSession(SessionId session) {
  if (!in_dispatch()) {
    EPL_RETURN_IF_ERROR(Pump());
  }
  EPL_ASSIGN_OR_RETURN(Session * found, FindSession(session));
  // Close the session SYNCHRONOUSLY -- from this call on, deploys against
  // it fail with NotFound even when the teardown below is deferred, so a
  // callback's close-then-deploy sequence cannot invert.
  found->open = false;
  const stream::DeploymentId tap = found->tap;
  found->tap = 0;
  auto teardown = [this, session, tap]() -> Status {
    for (const std::string& name : DeployedGestures(session)) {
      EPL_RETURN_IF_ERROR(DoUndeploy(session, name));
    }
    return tap != 0 ? engine_->Undeploy(tap) : OkStatus();
  };
  if (in_dispatch()) {
    // Engine undeploys (and sharded control operations) cannot run
    // mid-dispatch; the session's queries retire at the next boundary --
    // the same boundary a mid-callback RemoveQuery would take effect at.
    pending_.push_back(std::move(teardown));
    return OkStatus();
  }
  return teardown();
}

Result<std::string> GestureRuntime::SessionViewStream(SessionId session) const {
  if (session == kLocalSession) {
    return std::string(transform::kKinectTViewName);
  }
  EPL_ASSIGN_OR_RETURN(const Session* found, FindSession(session));
  return found->view_stream;
}

Result<GestureRuntime::Channel*> GestureRuntime::EnsureChannel(
    const std::string& stream) {
  auto it = channels_.find(stream);
  if (it != channels_.end()) {
    return &it->second;
  }
  Channel channel;
  if (options_.backend == RuntimeBackend::kFused) {
    EPL_ASSIGN_OR_RETURN(
        channel.fused,
        query::DeployFusedOperator(engine_, stream, options_.matcher,
                                   options_.batch_size));
  } else {
    cep::ShardedEngineOptions sharded;
    sharded.num_shards = options_.num_shards;
    sharded.batch_size = options_.batch_size;
    sharded.matcher = options_.matcher;
    sharded.sync_delivery = options_.sync_detections;
    EPL_ASSIGN_OR_RETURN(
        channel.sharded,
        query::DeployShardedOperator(engine_, stream, sharded));
  }
  return &channels_.emplace(stream, std::move(channel)).first->second;
}

Result<query::ParsedQuery> GestureRuntime::BuildQuery(
    const Session* session, const GestureDefinition& definition) const {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       core::GenerateQuery(definition, options_.query));
  if (session != nullptr) {
    if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
      parsed.pattern = parsed.pattern->Rescope(session->view_stream, nullptr);
    } else {
      // The session's identity predicate is NOT conjoined into the poses:
      // it rides along as the query's gate, which the matcher enforces on
      // every state. Identical gestures deployed by different sessions
      // therefore share their pose predicates in the bank.
      parsed.pattern = parsed.pattern->Rescope(kSessionStreamName, nullptr);
    }
  }
  return parsed;
}

Status GestureRuntime::Retire(const Gesture& gesture) {
  switch (options_.backend) {
    case RuntimeBackend::kLegacyPerQuery: {
      const stream::DeploymentId id = gesture.legacy_id;
      if (in_dispatch()) {
        // Undeploy must not run inside a dispatch; the retiring operator
        // sees no further events before the next boundary anyway (and its
        // detections for the current event still fire, exactly like a
        // fused RemoveQuery requested mid-callback).
        pending_.push_back([this, id] { return engine_->Undeploy(id); });
        return OkStatus();
      }
      return engine_->Undeploy(id);
    }
    case RuntimeBackend::kFused: {
      auto channel = channels_.find(gesture.stream);
      if (channel == channels_.end()) {
        return InternalError("gesture channel vanished: " + gesture.stream);
      }
      // Mid-callback removals are deferred by the operator itself.
      return channel->second.fused.op->RemoveQuery(gesture.query_id);
    }
    case RuntimeBackend::kSharded: {
      auto channel = channels_.find(gesture.stream);
      if (channel == channels_.end()) {
        return InternalError("gesture channel vanished: " + gesture.stream);
      }
      return channel->second.sharded.engine->RemoveQuery(gesture.query_id);
    }
  }
  return InternalError("unknown backend");
}

Status GestureRuntime::DoDeploy(SessionId session,
                                const GestureDefinition& definition,
                                cep::DetectionCallback callback) {
  if (definition.name.empty()) {
    return InvalidArgumentError("gesture needs a name");
  }
  Session* found = nullptr;
  if (session != kLocalSession) {
    EPL_ASSIGN_OR_RETURN(found, FindSession(session));
  }
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       BuildQuery(found, definition));
  const std::string stream = parsed.pattern->SourceStream();
  const GestureKey key{session, definition.name};
  auto existing = gestures_.find(key);

  // Atomic swap semantics: the retiring query is removed before the
  // replacement is added, both at the same event boundary (requested from
  // a callback, the backend applies them in order after the current
  // event), so the old query sees every event up to and including the
  // current one and the new query exactly the events after it.
  if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
    EPL_ASSIGN_OR_RETURN(
        stream::DeploymentId id,
        query::DeployQuery(engine_, parsed, Guard(std::move(callback)),
                           options_.matcher));
    if (existing != gestures_.end()) {
      EPL_RETURN_IF_ERROR(Retire(existing->second));
    }
    gestures_[key] = Gesture{stream, -1, id};
    return OkStatus();
  }

  // Compile before touching the channel, so a bad query cannot leave an
  // empty operator (or running shard workers) deployed behind an error.
  EPL_ASSIGN_OR_RETURN(
      cep::MultiMatchOperator::QuerySpec spec,
      query::CompileQuerySpec(engine_, parsed, Guard(std::move(callback)),
                              found != nullptr ? found->gate : nullptr));
  EPL_ASSIGN_OR_RETURN(Channel * channel, EnsureChannel(stream));
  if (existing != gestures_.end()) {
    EPL_RETURN_IF_ERROR(Retire(existing->second));
  }
  const int id = options_.backend == RuntimeBackend::kFused
                     ? channel->fused.op->AddQuery(std::move(spec))
                     : channel->sharded.engine->AddQuery(std::move(spec));
  gestures_[key] = Gesture{stream, id, 0};
  return OkStatus();
}

Status GestureRuntime::Deploy(SessionId session,
                              const GestureDefinition& definition,
                              cep::DetectionCallback callback) {
  if (in_dispatch()) {
    if (options_.backend == RuntimeBackend::kSharded) {
      // The sharded engine's control operations quiesce the workers and
      // must not run from a delivery callback; apply at the next frame
      // boundary (no events flow in between, so the swap point is the
      // same one the fused backend realizes immediately).
      pending_.push_back([this, session, definition,
                          callback = std::move(callback)]() mutable {
        return DoDeploy(session, definition, std::move(callback));
      });
      return OkStatus();
    }
    return DoDeploy(session, definition, std::move(callback));
  }
  EPL_RETURN_IF_ERROR(Pump());
  return DoDeploy(session, definition, std::move(callback));
}

Status GestureRuntime::DoUndeploy(SessionId session, const std::string& name) {
  auto it = gestures_.find(GestureKey{session, name});
  if (it == gestures_.end()) {
    return NotFoundError("gesture not deployed: " + name);
  }
  Gesture gesture = it->second;
  gestures_.erase(it);
  return Retire(gesture);
}

Status GestureRuntime::Undeploy(SessionId session, const std::string& name) {
  if (in_dispatch()) {
    if (options_.backend == RuntimeBackend::kSharded) {
      pending_.push_back(
          [this, session, name] { return DoUndeploy(session, name); });
      return OkStatus();
    }
    return DoUndeploy(session, name);
  }
  EPL_RETURN_IF_ERROR(Pump());
  return DoUndeploy(session, name);
}

bool GestureRuntime::IsDeployed(SessionId session,
                                const std::string& name) const {
  return gestures_.count(GestureKey{session, name}) > 0;
}

std::vector<std::string> GestureRuntime::DeployedGestures(
    SessionId session) const {
  std::vector<std::string> names;
  for (const auto& [key, gesture] : gestures_) {
    (void)gesture;
    if (key.first == session) {
      names.push_back(key.second);
    }
  }
  return names;  // map order: already sorted by name within the session
}

Result<int> GestureRuntime::LoadStore(SessionId session,
                                      const gesturedb::GestureStore& store,
                                      cep::DetectionCallback callback) {
  if (in_dispatch()) {
    return FailedPreconditionError(
        "LoadStore from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  EPL_ASSIGN_OR_RETURN(std::vector<std::string> names, store.List());
  int loaded = 0;
  for (const std::string& name : names) {
    if (IsReservedGestureName(name)) {
      // A stored "__control_wave" must not hot-swap a live control query.
      continue;
    }
    EPL_ASSIGN_OR_RETURN(GestureDefinition definition, store.Get(name));
    EPL_RETURN_IF_ERROR(DoDeploy(session, definition, callback));
    ++loaded;
  }
  return loaded;
}

Status GestureRuntime::PushFrame(SessionId session,
                                 const SkeletonFrame& frame) {
  if (in_dispatch()) {
    return FailedPreconditionError(
        "PushFrame from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  if (session == kLocalSession) {
    return engine_->Push("kinect", kinect::FrameToEvent(frame));
  }
  EPL_ASSIGN_OR_RETURN(const Session* found, FindSession(session));
  return engine_->Push(found->raw_stream, kinect::FrameToEvent(frame));
}

Status GestureRuntime::PushFrames(SessionId session,
                                  const std::vector<SkeletonFrame>& frames) {
  for (const SkeletonFrame& frame : frames) {
    EPL_RETURN_IF_ERROR(PushFrame(session, frame));
  }
  return OkStatus();
}

Status GestureRuntime::Flush() {
  if (in_dispatch()) {
    return FailedPreconditionError("Flush from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  for (auto& [stream, channel] : channels_) {
    (void)stream;
    if (options_.backend == RuntimeBackend::kFused) {
      channel.fused.op->FlushBatchedEvents();
    } else if (options_.backend == RuntimeBackend::kSharded &&
               channel.sharded.engine->running()) {
      EPL_RETURN_IF_ERROR(channel.sharded.engine->Flush());
    }
  }
  // Flushed detections may have requested further mutations.
  return Pump();
}

}  // namespace epl::workflow
