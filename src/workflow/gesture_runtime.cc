#include "workflow/gesture_runtime.h"

#include "cep/composite.h"
#include "gesturedb/serialization.h"
#include "kinect/sensor.h"
#include "query/unparser.h"
#include "stream/operators.h"
#include "transform/view.h"
#include "workflow/control_gestures.h"

namespace epl::workflow {

using core::GestureDefinition;
using kinect::SkeletonFrame;

namespace {

/// Stamps a session's view events with the session id and pushes them
/// into the shared session stream. A push failure propagates as a Status
/// (straight to PushFrame for raw session streams; through the view
/// dispatch chain for transformed sessions) instead of aborting.
class SessionMergeTap : public stream::Operator {
 public:
  SessionMergeTap(stream::StreamEngine* engine, SessionId session)
      : engine_(engine), session_(session) {}

  Status Process(const stream::Event& event) override {
    scratch_ = event;
    scratch_.values.push_back(static_cast<double>(session_));
    return engine_->Push(kSessionStreamName, scratch_);
  }

  std::string name() const override {
    return "session_merge[" + std::to_string(session_) + "]";
  }

 private:
  stream::StreamEngine* engine_;
  SessionId session_;
  stream::Event scratch_;  // capacity reused across frames
};

}  // namespace

GestureRuntime::GestureRuntime(stream::StreamEngine* engine,
                               GestureRuntimeOptions options)
    : engine_(engine), options_(std::move(options)) {
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.num_shards = std::max(1, options_.num_shards);
}

Status GestureRuntime::EnsureWal() {
  if (!durable() || wal_ != nullptr) {
    return OkStatus();
  }
  if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
    return FailedPreconditionError(
        "durability requires the fused or sharded backend");
  }
  fs_ = options_.durability.fs != nullptr ? options_.durability.fs
                                          : durability::DefaultFileSystem();
  EPL_RETURN_IF_ERROR(fs_->CreateDir(options_.durability.dir));
  durability::EventLogOptions log_options;
  log_options.segment_bytes = options_.durability.segment_bytes;
  log_options.sync_every_records = options_.durability.sync_every_records;
  log_options.sync_interval_ms = options_.durability.sync_interval_ms;
  log_options.buffer_bytes = options_.durability.buffer_bytes;
  EPL_ASSIGN_OR_RETURN(
      wal_, durability::EventLog::Open(options_.durability.dir, log_options,
                                       fs_));
  return OkStatus();
}

Status GestureRuntime::LogRecord(const durability::WalRecord& record) {
  if (!durable() || replaying_ || suppress_wal_) {
    return OkStatus();
  }
  EPL_RETURN_IF_ERROR(EnsureWal());
  wal_encode_scratch_.Clear();
  durability::EncodeWalRecord(record, &wal_encode_scratch_);
  return wal_->Append(wal_encode_scratch_.str()).status();
}

uint64_t GestureRuntime::ingested_events(SessionId session) const {
  auto it = ingested_.find(session);
  return it == ingested_.end() ? 0 : it->second;
}

cep::DetectionCallback GestureRuntime::Guard(cep::DetectionCallback callback) {
  if (callback == nullptr) {
    return nullptr;
  }
  return [this, callback = std::move(callback)](const cep::Detection& d) {
    ++dispatch_depth_;
    callback(d);
    --dispatch_depth_;
  };
}

Status GestureRuntime::Pump() {
  if (pending_.empty()) {
    return OkStatus();
  }
  std::vector<std::function<Status()>> ops;
  ops.swap(pending_);
  for (size_t i = 0; i < ops.size(); ++i) {
    Status status = ops[i]();
    if (!status.ok()) {
      // Keep the unexecuted remainder queued (in request order, ahead of
      // anything ops[i] itself queued), so one failing deferred mutation
      // cannot silently drop the ones behind it.
      pending_.insert(pending_.begin(),
                      std::make_move_iterator(ops.begin() +
                                              static_cast<ptrdiff_t>(i) + 1),
                      std::make_move_iterator(ops.end()));
      return status;
    }
  }
  return OkStatus();
}

Result<GestureRuntime::Session*> GestureRuntime::FindSession(
    SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return NotFoundError("unknown session " + std::to_string(session));
  }
  return &it->second;
}

Result<const GestureRuntime::Session*> GestureRuntime::FindSession(
    SessionId session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    return NotFoundError("unknown session " + std::to_string(session));
  }
  return &it->second;
}

Status GestureRuntime::EnsureSessionStream() {
  if (engine_->HasStream(kSessionStreamName)) {
    return OkStatus();
  }
  stream::Schema schema = options_.transform_sessions
                              ? transform::KinectTSchema()
                              : kinect::KinectSchema();
  schema.AddField(kSessionFieldName);
  return engine_->RegisterStream(kSessionStreamName, std::move(schema));
}

Result<SessionId> GestureRuntime::OpenSession(const std::string& user) {
  if (in_dispatch()) {
    return FailedPreconditionError(
        "OpenSession from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(EnsureWal());
  EPL_RETURN_IF_ERROR(Pump());
  EPL_ASSIGN_OR_RETURN(const SessionId id, DoOpenSession(user, -1));
  durability::WalRecord record;
  record.type = durability::WalRecord::Type::kOpenSession;
  record.session = id;
  record.name = user;
  EPL_RETURN_IF_ERROR(LogRecord(record));
  return id;
}

Result<SessionId> GestureRuntime::DoOpenSession(const std::string& user,
                                                SessionId forced_id) {
  if (user.empty()) {
    return InvalidArgumentError("session needs a user name");
  }
  for (const auto& [id, session] : sessions_) {
    (void)id;
    if (session.open && session.name == user) {
      return AlreadyExistsError("session already open for user: " + user);
    }
  }
  // Recovery pins session ids to their original values: the gates and WAL
  // records of a restored session encode the id, so it must not drift.
  const SessionId id = forced_id >= 0 ? forced_id : next_session_id_++;
  next_session_id_ = std::max(next_session_id_, id + 1);
  Session session;
  session.name = user;
  session.raw_stream = user + "/kinect";
  if (!engine_->HasStream(session.raw_stream)) {
    EPL_RETURN_IF_ERROR(
        kinect::RegisterKinectStream(engine_, session.raw_stream));
  }
  if (options_.transform_sessions) {
    session.view_stream = user + "/kinect_t";
    if (!engine_->HasStream(session.view_stream)) {
      EPL_RETURN_IF_ERROR(transform::RegisterKinectTView(
          engine_, session.view_stream, session.raw_stream,
          options_.transform));
    }
  } else {
    session.view_stream = session.raw_stream;
  }

  if (options_.backend != RuntimeBackend::kLegacyPerQuery) {
    // Tap the session's view into the shared stream, stamped with the
    // session id. (Legacy sessions run their per-query operators on their
    // own view and never touch the shared stream.)
    EPL_RETURN_IF_ERROR(EnsureSessionStream());
    EPL_ASSIGN_OR_RETURN(
        session.tap,
        engine_->Deploy(session.view_stream,
                        std::make_unique<SessionMergeTap>(engine_, id)));
    // The session's identity predicate, compiled once as the group gate
    // all of the session's query specs share. The matcher enforces it on
    // every state (isolation) and skips the whole session group when an
    // event belongs to someone else (sub-linear in idle sessions).
    cep::ExprPtr gate_expr = cep::Expr::RangePredicate(
        kSessionFieldName, static_cast<double>(id), 0.5);
    EPL_ASSIGN_OR_RETURN(stream::Schema schema,
                         engine_->GetSchema(kSessionStreamName));
    cep::PatternExprPtr pose =
        cep::PatternExpr::Pose(kSessionStreamName, std::move(gate_expr));
    EPL_ASSIGN_OR_RETURN(cep::CompiledPattern gate,
                         cep::CompiledPattern::Compile(*pose, schema));
    session.gate = std::make_shared<const cep::CompiledPattern>(
        std::move(gate));
  }
  sessions_.emplace(id, std::move(session));
  return id;
}

Status GestureRuntime::CloseSession(SessionId session) {
  if (!in_dispatch()) {
    EPL_RETURN_IF_ERROR(Pump());
  }
  EPL_ASSIGN_OR_RETURN(Session * found, FindSession(session));
  // Close the session SYNCHRONOUSLY -- from this call on, deploys against
  // it fail with NotFound even when the teardown below is deferred, so a
  // callback's close-then-deploy sequence cannot invert.
  found->open = false;
  const stream::DeploymentId tap = found->tap;
  found->tap = 0;
  durability::WalRecord record;
  record.type = durability::WalRecord::Type::kCloseSession;
  record.session = session;
  EPL_RETURN_IF_ERROR(LogRecord(record));
  auto teardown = [this, session, tap]() -> Status {
    {
      // The teardown's undeploys are implied by the kCloseSession record;
      // logging them individually would double-apply them on replay.
      suppress_wal_ = true;
      Status undeploys = OkStatus();
      for (const std::string& name : DeployedGestures(session)) {
        undeploys = DoUndeploy(session, name);
        if (!undeploys.ok()) {
          break;
        }
      }
      suppress_wal_ = false;
      EPL_RETURN_IF_ERROR(undeploys);
    }
    if (tap != 0) {
      EPL_RETURN_IF_ERROR(engine_->Undeploy(tap));
    }
    // Garbage-collect the session's namespaced streams so close -> reopen
    // leaves nothing behind in the engine. A stream that still has foreign
    // subscribers (e.g. a controller's recorder tap the caller owns) is
    // left registered -- the caller keeps responsibility for it.
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return OkStatus();
    }
    const std::string raw = it->second.raw_stream;
    const std::string view = it->second.view_stream;
    sessions_.erase(it);
    ingested_.erase(session);
    bool view_removed = true;
    if (view != raw && engine_->HasStream(view)) {
      Status removed = engine_->UnregisterStream(view);
      if (removed.code() == StatusCode::kFailedPrecondition) {
        view_removed = false;
      } else {
        EPL_RETURN_IF_ERROR(removed);
      }
    }
    if (view_removed && engine_->HasStream(raw)) {
      Status removed = engine_->UnregisterStream(raw);
      if (removed.code() != StatusCode::kFailedPrecondition) {
        EPL_RETURN_IF_ERROR(removed);
      }
    }
    return OkStatus();
  };
  if (in_dispatch()) {
    // Engine undeploys (and sharded control operations) cannot run
    // mid-dispatch; the session's queries retire at the next boundary --
    // the same boundary a mid-callback RemoveQuery would take effect at.
    pending_.push_back(std::move(teardown));
    return OkStatus();
  }
  return teardown();
}

Result<std::string> GestureRuntime::SessionViewStream(SessionId session) const {
  if (session == kLocalSession) {
    return std::string(transform::kKinectTViewName);
  }
  EPL_ASSIGN_OR_RETURN(const Session* found, FindSession(session));
  return found->view_stream;
}

cep::ShardedEngine::EngineStats GestureRuntime::ShardedStats() const {
  cep::ShardedEngine::EngineStats total;
  for (const auto& [stream, channel] : channels_) {
    if (channel.sharded.engine == nullptr) {
      continue;
    }
    const cep::ShardedEngine::EngineStats stats =
        channel.sharded.engine->engine_stats();
    total.fanout_batches += stats.fanout_batches;
    total.fanout_subbatches += stats.fanout_subbatches;
    total.events_routed += stats.events_routed;
    total.events_skipped_by_filter += stats.events_skipped_by_filter;
    total.advance_tokens += stats.advance_tokens;
    total.affinity_moves += stats.affinity_moves;
    total.worker_wakeups += stats.worker_wakeups;
  }
  return total;
}

Result<GestureRuntime::Channel*> GestureRuntime::EnsureChannel(
    const std::string& stream) {
  auto it = channels_.find(stream);
  if (it != channels_.end()) {
    return &it->second;
  }
  Channel channel;
  if (options_.backend == RuntimeBackend::kFused) {
    EPL_ASSIGN_OR_RETURN(
        channel.fused,
        query::DeployFusedOperator(engine_, stream, options_.matcher,
                                   options_.batch_size));
  } else {
    cep::ShardedEngineOptions sharded;
    sharded.num_shards = options_.num_shards;
    sharded.batch_size = options_.batch_size;
    sharded.matcher = options_.matcher;
    sharded.sync_delivery = options_.sync_detections;
    sharded.work_stealing = options_.work_stealing;
    sharded.pin_workers = options_.pin_workers;
    sharded.spin_wait_iterations = options_.spin_wait_iterations;
    sharded.adaptive = options_.adaptive_shards;
    sharded.placement = options_.shard_placement;
    if (options_.route_session_events && stream == kSessionStreamName) {
      // The merge tap appends the session id as the stream's last field;
      // routing on it lets the engine skip shards hosting no query for
      // that session (detections stay bit-identical either way).
      EPL_ASSIGN_OR_RETURN(stream::Schema schema, engine_->GetSchema(stream));
      EPL_ASSIGN_OR_RETURN(sharded.routing_field,
                           schema.FieldIndex(kSessionFieldName));
    }
    EPL_ASSIGN_OR_RETURN(
        channel.sharded,
        query::DeployShardedOperator(engine_, stream, sharded));
  }
  return &channels_.emplace(stream, std::move(channel)).first->second;
}

Result<query::ParsedQuery> GestureRuntime::BuildQuery(
    const Session* session, const GestureDefinition& definition) const {
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       core::GenerateQuery(definition, options_.query));
  if (session != nullptr) {
    if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
      parsed.pattern = parsed.pattern->Rescope(session->view_stream, nullptr);
    } else {
      // The session's identity predicate is NOT conjoined into the poses:
      // it rides along as the query's gate, which the matcher enforces on
      // every state. Identical gestures deployed by different sessions
      // therefore share their pose predicates in the bank.
      parsed.pattern = parsed.pattern->Rescope(kSessionStreamName, nullptr);
    }
  }
  return parsed;
}

Status GestureRuntime::Retire(const Gesture& gesture) {
  switch (options_.backend) {
    case RuntimeBackend::kLegacyPerQuery: {
      const stream::DeploymentId id = gesture.legacy_id;
      if (in_dispatch()) {
        // Undeploy must not run inside a dispatch; the retiring operator
        // sees no further events before the next boundary anyway (and its
        // detections for the current event still fire, exactly like a
        // fused RemoveQuery requested mid-callback).
        pending_.push_back([this, id] { return engine_->Undeploy(id); });
        return OkStatus();
      }
      return engine_->Undeploy(id);
    }
    case RuntimeBackend::kFused: {
      auto channel = channels_.find(gesture.stream);
      if (channel == channels_.end()) {
        return InternalError("gesture channel vanished: " + gesture.stream);
      }
      // Mid-callback removals are deferred by the operator itself.
      return channel->second.fused.op->RemoveQuery(gesture.query_id);
    }
    case RuntimeBackend::kSharded: {
      auto channel = channels_.find(gesture.stream);
      if (channel == channels_.end()) {
        return InternalError("gesture channel vanished: " + gesture.stream);
      }
      return channel->second.sharded.engine->RemoveQuery(gesture.query_id);
    }
  }
  return InternalError("unknown backend");
}

Status GestureRuntime::DoDeploy(SessionId session,
                                const GestureDefinition& definition,
                                cep::DetectionCallback callback) {
  if (definition.name.empty()) {
    return InvalidArgumentError("gesture needs a name");
  }
  Session* found = nullptr;
  if (session != kLocalSession) {
    EPL_ASSIGN_OR_RETURN(found, FindSession(session));
  }
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       BuildQuery(found, definition));
  const std::string stream = parsed.pattern->SourceStream();
  const GestureKey key{session, definition.name};
  auto existing = gestures_.find(key);
  // Durable runtimes keep the deployed query's canonical text (what a
  // checkpoint serializes) and log the deploy with its gesturedb-format
  // definition (what replay reapplies).
  std::string query_text;
  durability::WalRecord record;
  const bool log_deploy = durable() && !replaying_ && !suppress_wal_;
  if (durable()) {
    query_text = query::FormatQuery(parsed);
  }
  if (log_deploy) {
    record.type = durability::WalRecord::Type::kDeploy;
    record.session = session;
    record.name = definition.name;
    record.definition = gesturedb::Serialize(definition);
  }

  // Atomic swap semantics: the retiring query is removed before the
  // replacement is added, both at the same event boundary (requested from
  // a callback, the backend applies them in order after the current
  // event), so the old query sees every event up to and including the
  // current one and the new query exactly the events after it.
  if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
    EPL_ASSIGN_OR_RETURN(
        stream::DeploymentId id,
        query::DeployQuery(engine_, parsed, Guard(std::move(callback)),
                           options_.matcher));
    if (existing != gestures_.end()) {
      EPL_RETURN_IF_ERROR(Retire(existing->second));
    }
    gestures_[key] = Gesture{stream, -1, id, std::move(query_text)};
    if (log_deploy) {
      EPL_RETURN_IF_ERROR(LogRecord(record));
    }
    return OkStatus();
  }

  // Compile before touching the channel, so a bad query cannot leave an
  // empty operator (or running shard workers) deployed behind an error.
  EPL_ASSIGN_OR_RETURN(
      cep::MultiMatchOperator::QuerySpec spec,
      query::CompileQuerySpec(engine_, parsed, Guard(std::move(callback)),
                              found != nullptr ? found->gate : nullptr));
  // The derived-event identity: composites deployed later match this
  // gesture's detections by these tags. Stamped on every base deploy
  // (they cost nothing without composites), so a composite can consume
  // any gesture that was live before it.
  spec.tag = cep::GestureTag(definition.name);
  spec.session_tag = static_cast<double>(session);
  // A gated query only matches events whose session field equals
  // session_tag; telling the engine lets it route fan-out and co-locate
  // the session's queries.
  spec.session_scoped = found != nullptr;
  EPL_ASSIGN_OR_RETURN(Channel * channel, EnsureChannel(stream));
  if (existing != gestures_.end()) {
    EPL_RETURN_IF_ERROR(Retire(existing->second));
  }
  const int id = options_.backend == RuntimeBackend::kFused
                     ? channel->fused.op->AddQuery(std::move(spec))
                     : channel->sharded.engine->AddQuery(std::move(spec));
  gestures_[key] = Gesture{stream, id, 0, std::move(query_text)};
  if (log_deploy) {
    EPL_RETURN_IF_ERROR(LogRecord(record));
  }
  return OkStatus();
}

Status GestureRuntime::Deploy(SessionId session,
                              const GestureDefinition& definition,
                              cep::DetectionCallback callback) {
  EPL_RETURN_IF_ERROR(EnsureWal());
  if (in_dispatch()) {
    if (options_.backend == RuntimeBackend::kSharded) {
      // The sharded engine's control operations quiesce the workers and
      // must not run from a delivery callback; apply at the next frame
      // boundary (no events flow in between, so the swap point is the
      // same one the fused backend realizes immediately).
      pending_.push_back([this, session, definition,
                          callback = std::move(callback)]() mutable {
        return DoDeploy(session, definition, std::move(callback));
      });
      return OkStatus();
    }
    return DoDeploy(session, definition, std::move(callback));
  }
  EPL_RETURN_IF_ERROR(Pump());
  return DoDeploy(session, definition, std::move(callback));
}

Status GestureRuntime::EnsureDetectionStream() {
  if (engine_->HasStream(cep::kDetectionStreamName)) {
    return OkStatus();
  }
  stream::Schema schema = cep::DetectionSchema();
  return engine_->RegisterStream(cep::kDetectionStreamName,
                                 std::move(schema));
}

Status GestureRuntime::CheckNotConsumed(SessionId session,
                                        const std::string& name) const {
  for (const auto& [key, gesture] : gestures_) {
    if (gesture.level == 0 || (key.first == session && key.second == name)) {
      continue;
    }
    for (const CompositeStep& step : gesture.composite.steps) {
      if (step.gesture == name &&
          (step.session == kAnySession || step.session == session)) {
        return FailedPreconditionError(
            "gesture '" + name + "' is consumed by composite '" + key.second +
            "'");
      }
    }
  }
  return OkStatus();
}

Status GestureRuntime::DoDeployComposite(SessionId session,
                                         const CompositeDefinition& definition,
                                         cep::DetectionCallback callback) {
  if (options_.backend == RuntimeBackend::kLegacyPerQuery) {
    return FailedPreconditionError(
        "composite gestures require the fused or sharded backend");
  }
  EPL_RETURN_IF_ERROR(ValidateComposite(definition));
  if (session != kLocalSession) {
    EPL_RETURN_IF_ERROR(FindSession(session).status());
  }
  // A live composite consuming this name would gain an edge to a STRICTLY
  // NEWER query -- the one shape the old-to-new deploy order cannot level
  // -- so it is the one shape rejected. (Re-deploying a consumed BASE
  // gesture stays legal: its tag is a pure function of the name, so the
  // consumer keeps matching across the hot-swap.)
  EPL_RETURN_IF_ERROR(CheckNotConsumed(session, definition.name));

  // Resolve the inputs: every step needs at least one live match, and all
  // inputs must feed one channel (their epochs are per-channel).
  int max_level = 0;
  std::string stream;
  for (const CompositeStep& step : definition.steps) {
    int found = 0;
    for (const auto& [key, gesture] : gestures_) {
      if (key.second != step.gesture ||
          (step.session != kAnySession && key.first != step.session)) {
        continue;
      }
      ++found;
      max_level = std::max(max_level, gesture.level);
      if (stream.empty()) {
        stream = gesture.stream;
      } else if (stream != gesture.stream) {
        return InvalidArgumentError(
            "composite '" + definition.name + "' inputs span source streams " +
            stream + " and " + gesture.stream);
      }
    }
    if (found == 0) {
      return NotFoundError("composite input not deployed: " + step.gesture);
    }
  }
  const int level = max_level + 1;

  EPL_RETURN_IF_ERROR(EnsureDetectionStream());
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       BuildCompositeQuery(definition));
  durability::WalRecord record;
  const bool log_deploy = durable() && !replaying_ && !suppress_wal_;
  if (log_deploy) {
    record.type = durability::WalRecord::Type::kDeployComposite;
    record.session = session;
    record.name = definition.name;
    record.definition = SerializeComposite(definition);
  }
  EPL_ASSIGN_OR_RETURN(
      cep::MultiMatchOperator::QuerySpec spec,
      query::CompileQuerySpec(engine_, parsed, Guard(std::move(callback)),
                              nullptr));
  spec.level = level;
  spec.tag = cep::GestureTag(definition.name);
  spec.session_tag = static_cast<double>(session);
  EPL_ASSIGN_OR_RETURN(Channel * channel, EnsureChannel(stream));
  const GestureKey key{session, definition.name};
  auto existing = gestures_.find(key);
  if (existing != gestures_.end()) {
    EPL_RETURN_IF_ERROR(Retire(existing->second));
  }
  const int id = options_.backend == RuntimeBackend::kFused
                     ? channel->fused.op->AddQuery(std::move(spec))
                     : channel->sharded.engine->AddQuery(std::move(spec));
  Gesture gesture;
  gesture.stream = stream;
  gesture.query_id = id;
  gesture.level = level;
  gesture.composite = definition;
  gestures_[key] = std::move(gesture);
  if (log_deploy) {
    EPL_RETURN_IF_ERROR(LogRecord(record));
  }
  return OkStatus();
}

Status GestureRuntime::DeployComposite(SessionId session,
                                       const CompositeDefinition& definition,
                                       cep::DetectionCallback callback) {
  EPL_RETURN_IF_ERROR(EnsureWal());
  if (in_dispatch()) {
    if (options_.backend == RuntimeBackend::kSharded) {
      // Same deferral as Deploy: sharded control operations quiesce the
      // workers and cannot run from a delivery callback.
      pending_.push_back([this, session, definition,
                          callback = std::move(callback)]() mutable {
        return DoDeployComposite(session, definition, std::move(callback));
      });
      return OkStatus();
    }
    return DoDeployComposite(session, definition, std::move(callback));
  }
  EPL_RETURN_IF_ERROR(Pump());
  return DoDeployComposite(session, definition, std::move(callback));
}

Status GestureRuntime::DoUndeploy(SessionId session, const std::string& name) {
  auto it = gestures_.find(GestureKey{session, name});
  if (it == gestures_.end()) {
    return NotFoundError("gesture not deployed: " + name);
  }
  // CloseSession teardown (suppress_wal_) dismantles the whole session at
  // once; its composites and their intra-session inputs go down together,
  // so the consumed-input guard only applies to direct undeploys.
  if (!suppress_wal_) {
    EPL_RETURN_IF_ERROR(CheckNotConsumed(session, name));
  }
  Gesture gesture = it->second;
  gestures_.erase(it);
  EPL_RETURN_IF_ERROR(Retire(gesture));
  durability::WalRecord record;
  record.type = durability::WalRecord::Type::kUndeploy;
  record.session = session;
  record.name = name;
  return LogRecord(record);
}

Status GestureRuntime::Undeploy(SessionId session, const std::string& name) {
  if (in_dispatch()) {
    if (options_.backend == RuntimeBackend::kSharded) {
      pending_.push_back(
          [this, session, name] { return DoUndeploy(session, name); });
      return OkStatus();
    }
    return DoUndeploy(session, name);
  }
  EPL_RETURN_IF_ERROR(Pump());
  return DoUndeploy(session, name);
}

bool GestureRuntime::IsDeployed(SessionId session,
                                const std::string& name) const {
  return gestures_.count(GestureKey{session, name}) > 0;
}

std::vector<std::string> GestureRuntime::DeployedGestures(
    SessionId session) const {
  std::vector<std::string> names;
  for (const auto& [key, gesture] : gestures_) {
    (void)gesture;
    if (key.first == session) {
      names.push_back(key.second);
    }
  }
  return names;  // map order: already sorted by name within the session
}

Result<int> GestureRuntime::LoadStore(SessionId session,
                                      const gesturedb::GestureStore& store,
                                      cep::DetectionCallback callback) {
  if (in_dispatch()) {
    return FailedPreconditionError(
        "LoadStore from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(EnsureWal());
  EPL_RETURN_IF_ERROR(Pump());
  EPL_ASSIGN_OR_RETURN(std::vector<std::string> names, store.List());
  int loaded = 0;
  Status first_error = OkStatus();
  for (const std::string& name : names) {
    if (IsReservedGestureName(name)) {
      // A stored "__control_wave" must not hot-swap a live control query.
      continue;
    }
    Result<GestureDefinition> definition = store.Get(name);
    if (!definition.ok()) {
      // One corrupt record must not take down the whole boot load: the
      // parseable gestures still deploy, and the first bad record's error
      // (which names the offending file) is reported after the sweep.
      if (first_error.ok()) {
        first_error = definition.status();
      }
      continue;
    }
    EPL_RETURN_IF_ERROR(DoDeploy(session, *definition, callback));
    ++loaded;
  }
  EPL_RETURN_IF_ERROR(first_error);
  return loaded;
}

Status GestureRuntime::PushFrame(SessionId session,
                                 const SkeletonFrame& frame) {
  if (in_dispatch()) {
    return FailedPreconditionError(
        "PushFrame from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  const std::string* stream = nullptr;
  static const std::string kLocalStream = "kinect";
  if (session == kLocalSession) {
    stream = &kLocalStream;
  } else {
    EPL_ASSIGN_OR_RETURN(const Session* found, FindSession(session));
    stream = &found->raw_stream;
  }
  if (!durable()) {
    return engine_->Push(*stream, kinect::FrameToEvent(frame));
  }
  // Write-ahead: the raw frame event is durable before the engine sees it,
  // so anything logged WILL be reflected after recovery, and a frame whose
  // PushFrame never returned OK is the producer's to retry.
  durability::WalRecord record;
  record.session = session;
  record.event = kinect::FrameToEvent(frame);
  EPL_RETURN_IF_ERROR(EnsureWal());
  EPL_RETURN_IF_ERROR(LogRecord(record));
  ++ingested_[session];
  return engine_->Push(*stream, record.event);
}

Status GestureRuntime::PushFrames(SessionId session,
                                  const std::vector<SkeletonFrame>& frames) {
  for (const SkeletonFrame& frame : frames) {
    EPL_RETURN_IF_ERROR(PushFrame(session, frame));
  }
  return OkStatus();
}

Status GestureRuntime::Flush() {
  if (in_dispatch()) {
    return FailedPreconditionError("Flush from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  for (auto& [stream, channel] : channels_) {
    (void)stream;
    if (options_.backend == RuntimeBackend::kFused) {
      channel.fused.op->FlushBatchedEvents();
    } else if (options_.backend == RuntimeBackend::kSharded &&
               channel.sharded.engine->running()) {
      EPL_RETURN_IF_ERROR(channel.sharded.engine->Flush());
    }
  }
  // Flushed detections may have requested further mutations.
  EPL_RETURN_IF_ERROR(Pump());
  // Everything ingested so far must survive a process crash once Flush
  // returns: drain the WAL batch buffer into the page cache.
  if (wal_ != nullptr) {
    EPL_RETURN_IF_ERROR(wal_->FlushBuffered());
  }
  return OkStatus();
}

Status GestureRuntime::ResizeShards(int num_shards) {
  if (options_.backend != RuntimeBackend::kSharded) {
    return FailedPreconditionError("ResizeShards requires the sharded backend");
  }
  if (in_dispatch()) {
    return FailedPreconditionError(
        "ResizeShards from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(Pump());
  for (auto& [stream, channel] : channels_) {
    (void)stream;
    EPL_RETURN_IF_ERROR(channel.sharded.engine->Resize(num_shards));
  }
  // Channels created from here on start at the new size too.
  options_.num_shards = std::max(1, num_shards);
  return OkStatus();
}

Status GestureRuntime::Checkpoint() {
  if (!durable()) {
    return FailedPreconditionError(
        "Checkpoint on a runtime without a durability dir");
  }
  if (in_dispatch()) {
    return FailedPreconditionError(
        "Checkpoint from inside a detection callback");
  }
  EPL_RETURN_IF_ERROR(EnsureWal());
  // Quiesce to a consistent cut: deferred mutations applied, batched
  // windows swept, sharded workers drained. Every event with seq <
  // next_seq() is now fully reflected in the matchers' run state.
  EPL_RETURN_IF_ERROR(Flush());

  durability::Snapshot snapshot;
  snapshot.wal_seq = wal_->next_seq();
  snapshot.next_session_id = next_session_id_;
  if (ingested_.count(kLocalSession) > 0) {
    durability::SessionState local;
    local.id = kLocalSession;
    local.ingested_events = ingested_.at(kLocalSession);
    snapshot.sessions.push_back(std::move(local));
  }
  for (const auto& [id, session] : sessions_) {
    if (!session.open) {
      continue;
    }
    durability::SessionState state;
    state.id = id;
    state.user = session.name;
    state.ingested_events = ingested_events(id);
    snapshot.sessions.push_back(std::move(state));
  }

  // Per channel, queries serialize in stable-id order: restoration assigns
  // fresh ids in that order, preserving the relative order the sharded
  // merge sorts detections by ((event_seq, query_id)).
  std::map<std::string, std::map<int, durability::QueryState>> per_channel;
  for (const auto& [key, gesture] : gestures_) {
    durability::QueryState state;
    state.session = key.first;
    state.name = key.second;
    state.query_text = gesture.query_text;
    state.level = gesture.level;
    if (gesture.level > 0) {
      // Composites serialize their definition (tags round-trip exactly)
      // plus the channel stream, which restore cannot re-derive: the
      // inputs' own restore order must not matter.
      state.stream = gesture.stream;
      state.definition = SerializeComposite(gesture.composite);
    }
    per_channel[gesture.stream].emplace(gesture.query_id, std::move(state));
  }
  for (auto& [stream, queries] : per_channel) {
    auto channel = channels_.find(stream);
    if (channel == channels_.end()) {
      return InternalError("gesture channel vanished: " + stream);
    }
    if (options_.backend == RuntimeBackend::kFused) {
      for (auto& [id, state] : queries) {
        EPL_ASSIGN_OR_RETURN(
            state.runs, channel->second.fused.op->ExportQueryRunState(id));
      }
    } else {
      EPL_ASSIGN_OR_RETURN(auto states,
                           channel->second.sharded.engine->ExportRunStates());
      std::map<int, cep::NfaRunState*> by_id;
      for (auto& [id, runs] : states) {
        by_id[id] = &runs;
      }
      for (auto& [id, state] : queries) {
        auto it = by_id.find(id);
        if (it == by_id.end()) {
          return InternalError("query " + std::to_string(id) +
                               " missing from sharded export");
        }
        state.runs = std::move(*it->second);
      }
    }
    for (auto& [id, state] : queries) {
      (void)id;
      snapshot.queries.push_back(std::move(state));
    }
  }

  // Rotate first so every segment is wholly before or after the cut, then
  // make the snapshot durable, then prune what it covers. A crash between
  // any two steps leaves a recoverable directory: worst case some stale
  // segments/snapshots survive until the next checkpoint.
  EPL_RETURN_IF_ERROR(wal_->RotateSegment());
  EPL_RETURN_IF_ERROR(
      durability::WriteSnapshot(fs_, options_.durability.dir, snapshot));
  EPL_RETURN_IF_ERROR(durability::RemoveStaleSnapshots(
      fs_, options_.durability.dir, snapshot.wal_seq));
  return wal_->DropSegmentsBelow(snapshot.wal_seq);
}

Status GestureRuntime::RestoreQuery(const durability::QueryState& state,
                                    const DetectionCallbackFactory& factory) {
  if (state.level > 0) {
    // A composite restores from its serialized definition and recorded
    // channel; its inputs' liveness was proven at original deploy time
    // and their run state restores from the same snapshot.
    EPL_ASSIGN_OR_RETURN(CompositeDefinition definition,
                         ParseComposite(state.definition));
    EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                         BuildCompositeQuery(definition));
    EPL_RETURN_IF_ERROR(EnsureDetectionStream());
    cep::DetectionCallback callback =
        factory ? factory(state.session, state.name) : nullptr;
    EPL_ASSIGN_OR_RETURN(
        cep::MultiMatchOperator::QuerySpec spec,
        query::CompileQuerySpec(engine_, parsed, Guard(std::move(callback)),
                                nullptr));
    spec.level = state.level;
    spec.tag = cep::GestureTag(state.name);
    spec.session_tag = static_cast<double>(state.session);
    EPL_ASSIGN_OR_RETURN(Channel * channel, EnsureChannel(state.stream));
    Result<int> id =
        options_.backend == RuntimeBackend::kFused
            ? channel->fused.op->RestoreQuery(std::move(spec), state.runs)
            : channel->sharded.engine->RestoreQuery(std::move(spec),
                                                    state.runs);
    EPL_RETURN_IF_ERROR(id.status());
    Gesture gesture;
    gesture.stream = state.stream;
    gesture.query_id = *id;
    gesture.level = state.level;
    gesture.composite = std::move(definition);
    gestures_[GestureKey{state.session, state.name}] = std::move(gesture);
    return OkStatus();
  }
  EPL_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                       query::ParseQuery(state.query_text));
  std::shared_ptr<const cep::CompiledPattern> gate;
  if (state.session != kLocalSession) {
    EPL_ASSIGN_OR_RETURN(Session * found, FindSession(state.session));
    gate = found->gate;
  }
  cep::DetectionCallback callback =
      factory ? factory(state.session, state.name) : nullptr;
  EPL_ASSIGN_OR_RETURN(
      cep::MultiMatchOperator::QuerySpec spec,
      query::CompileQuerySpec(engine_, parsed, Guard(std::move(callback)),
                              gate));
  // Restore the derived-event identity too: composites recovered from the
  // same snapshot (and WAL replay) keep re-deriving from this query.
  spec.tag = cep::GestureTag(state.name);
  spec.session_tag = static_cast<double>(state.session);
  spec.session_scoped = gate != nullptr;
  const std::string stream = parsed.pattern->SourceStream();
  EPL_ASSIGN_OR_RETURN(Channel * channel, EnsureChannel(stream));
  Result<int> id =
      options_.backend == RuntimeBackend::kFused
          ? channel->fused.op->RestoreQuery(std::move(spec), state.runs)
          : channel->sharded.engine->RestoreQuery(std::move(spec),
                                                  state.runs);
  EPL_RETURN_IF_ERROR(id.status());
  Gesture gesture;
  gesture.stream = stream;
  gesture.query_id = *id;
  gesture.query_text = state.query_text;
  gestures_[GestureKey{state.session, state.name}] = std::move(gesture);
  return OkStatus();
}

Status GestureRuntime::ApplyWalRecord(const durability::WalRecord& record,
                                      const DetectionCallbackFactory& factory) {
  using Type = durability::WalRecord::Type;
  switch (record.type) {
    case Type::kEvent: {
      // Mirrors PushFrame: deferred mutations from earlier replayed
      // detections apply at this event boundary, exactly as live.
      EPL_RETURN_IF_ERROR(Pump());
      ++ingested_[record.session];
      if (record.session == kLocalSession) {
        return engine_->Push("kinect", record.event);
      }
      EPL_ASSIGN_OR_RETURN(const Session* found, FindSession(record.session));
      return engine_->Push(found->raw_stream, record.event);
    }
    case Type::kOpenSession: {
      EPL_ASSIGN_OR_RETURN(SessionId id,
                           DoOpenSession(record.name, record.session));
      (void)id;
      return OkStatus();
    }
    case Type::kCloseSession:
      return CloseSession(record.session);
    case Type::kDeploy: {
      EPL_ASSIGN_OR_RETURN(core::GestureDefinition definition,
                           gesturedb::Deserialize(record.definition));
      return DoDeploy(record.session, definition,
                      factory ? factory(record.session, definition.name)
                              : nullptr);
    }
    case Type::kUndeploy:
      return DoUndeploy(record.session, record.name);
    case Type::kDeployComposite: {
      EPL_ASSIGN_OR_RETURN(CompositeDefinition definition,
                           ParseComposite(record.definition));
      return DoDeployComposite(record.session, definition,
                               factory
                                   ? factory(record.session, definition.name)
                                   : nullptr);
    }
  }
  return InternalError("unknown WAL record type");
}

Result<std::unique_ptr<GestureRuntime>> GestureRuntime::Recover(
    stream::StreamEngine* engine, GestureRuntimeOptions options,
    const DetectionCallbackFactory& factory, RecoverStats* stats) {
  if (options.durability.dir.empty()) {
    return InvalidArgumentError("Recover needs options.durability.dir");
  }
  auto runtime =
      std::make_unique<GestureRuntime>(engine, std::move(options));
  // Opens the WAL (creating the dir, truncating a torn tail) before the
  // snapshot is read, so both views of the directory are post-crash.
  EPL_RETURN_IF_ERROR(runtime->EnsureWal());

  durability::Snapshot snapshot;
  Result<durability::Snapshot> loaded = durability::ReadLatestSnapshot(
      runtime->fs_, runtime->options_.durability.dir);
  if (loaded.ok()) {
    snapshot = std::move(loaded).value();
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }

  runtime->replaying_ = true;
  runtime->next_session_id_ = snapshot.next_session_id;
  for (const durability::SessionState& session : snapshot.sessions) {
    runtime->ingested_[session.id] = session.ingested_events;
    if (session.id == kLocalSession) {
      continue;
    }
    EPL_ASSIGN_OR_RETURN(SessionId id,
                         runtime->DoOpenSession(session.user, session.id));
    (void)id;
  }
  for (const durability::QueryState& query : snapshot.queries) {
    EPL_RETURN_IF_ERROR(
        runtime->RestoreQuery(query, factory)
            .WithContext("restoring query " + query.name));
  }

  uint64_t replayed = 0;
  EPL_RETURN_IF_ERROR(runtime->wal_->Replay(
      snapshot.wal_seq,
      [&](uint64_t seq, std::string_view payload) -> Status {
        EPL_ASSIGN_OR_RETURN(durability::WalRecord record,
                             durability::DecodeWalRecord(payload));
        ++replayed;
        return runtime->ApplyWalRecord(record, factory)
            .WithContext("replaying WAL record " + std::to_string(seq));
      }));
  runtime->replaying_ = false;

  if (stats != nullptr) {
    stats->snapshot_seq = snapshot.wal_seq;
    stats->replayed_records = replayed;
    stats->ingested = runtime->ingested_;
  }
  return runtime;
}

}  // namespace epl::workflow
