// Recursive-descent parser for gesture queries.
//
// Grammar (keywords case-insensitive):
//
//   query    := SELECT string (',' expr)* MATCHING pattern ';'
//   pattern  := term ('->' term)* [WITHIN number unit [TOTAL]]
//               [SELECT (FIRST|ALL)] [CONSUME (ALL|NONE)]
//   term     := ident '(' expr ')'     -- pose on stream `ident`
//             | '(' pattern ')'        -- nested sequence
//   unit     := SECONDS | SECOND | SEC | MILLISECONDS | MILLISECOND | MS
//
// Expressions use the usual precedence: or < and < comparison < additive <
// multiplicative < unary, with function calls and parentheses.
// `WITHIN ... TOTAL` selects span semantics (WithinMode::kSpan); without
// TOTAL the gap semantics of the paper's generated queries apply
// (DESIGN.md 2.3).

#ifndef EPL_QUERY_PARSER_H_
#define EPL_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "cep/pattern.h"
#include "common/result.h"
#include "query/lexer.h"

namespace epl::query {

/// A syntactically valid query; expressions are still unbound.
struct ParsedQuery {
  /// Output value, e.g. "swipe_right".
  std::string name;
  /// Optional output measures (paper Sec. 3.3.4).
  std::vector<cep::ExprPtr> measures;
  /// The MATCHING pattern.
  cep::PatternExprPtr pattern;

  ParsedQuery() = default;
  ParsedQuery(ParsedQuery&&) = default;
  ParsedQuery& operator=(ParsedQuery&&) = default;

  /// Deep copy.
  ParsedQuery Clone() const;
};

/// Parses one query. Errors carry line:column positions.
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Parses a ';'-separated script of queries.
Result<std::vector<ParsedQuery>> ParseQueries(const std::string& text);

/// Parses a standalone expression (used by tests and interactive tools).
Result<cep::ExprPtr> ParseExpression(const std::string& text);

}  // namespace epl::query

#endif  // EPL_QUERY_PARSER_H_
