#include "query/unparser.h"

#include "common/string_util.h"

namespace epl::query {

using cep::ConsumePolicy;
using cep::Expr;
using cep::PatternExpr;
using cep::PatternKind;
using cep::SelectPolicy;
using cep::WithinMode;

std::string FormatDurationLiteral(Duration duration) {
  if (duration % kSecond == 0) {
    return FormatNumber(ToSeconds(duration)) + " seconds";
  }
  return FormatNumber(ToMillis(duration)) + " milliseconds";
}

namespace {

std::string Indent(int depth) { return std::string(2 * depth, ' '); }

/// Flattens the left spine of an `and` chain into individual conjuncts.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind() == cep::ExprKind::kBinary &&
      expr.binary_op() == cep::BinaryOp::kAnd) {
    CollectConjuncts(expr.arg(0), out);
    CollectConjuncts(expr.arg(1), out);
    return;
  }
  out->push_back(&expr);
}

std::string FormatPose(const PatternExpr& pose, int depth) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pose.predicate(), &conjuncts);
  if (conjuncts.size() == 1) {
    return Indent(depth) + pose.source() + "(" + conjuncts[0]->ToString() +
           ")";
  }
  std::string out = Indent(depth) + pose.source() + "(\n";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    out += Indent(depth + 1) + conjuncts[i]->ToString();
    if (i + 1 < conjuncts.size()) {
      out += " and";
    }
    out += "\n";
  }
  out += Indent(depth) + ")";
  return out;
}

std::string FormatClauses(const PatternExpr& seq) {
  std::string out;
  if (seq.within().has_value()) {
    out += "within " + FormatDurationLiteral(*seq.within());
    if (seq.within_mode() == WithinMode::kSpan) {
      out += " total";
    }
    out += " ";
  }
  out += seq.select_policy() == SelectPolicy::kFirst ? "select first"
                                                     : "select all";
  out += seq.consume_policy() == ConsumePolicy::kAll ? " consume all"
                                                     : " consume none";
  return out;
}

/// `top_level` sequences are rendered without surrounding parentheses, the
/// way Fig. 1 writes the outermost pattern.
std::string FormatPattern(const PatternExpr& node, int depth,
                          bool top_level) {
  if (node.kind() == PatternKind::kPose) {
    return FormatPose(node, depth);
  }
  std::string out;
  int child_depth = top_level ? depth : depth + 1;
  if (!top_level) {
    out += Indent(depth) + "(\n";
  }
  for (size_t i = 0; i < node.children().size(); ++i) {
    out += FormatPattern(*node.children()[i], child_depth, false);
    if (i + 1 < node.children().size()) {
      out += " ->";
    }
    out += "\n";
  }
  out += Indent(child_depth) + FormatClauses(node);
  if (!top_level) {
    out += "\n" + Indent(depth) + ")";
  }
  return out;
}

}  // namespace

std::string FormatQuery(const ParsedQuery& query) {
  std::string out = "SELECT \"" + query.name + "\"";
  for (const cep::ExprPtr& measure : query.measures) {
    out += ", " + measure->ToString();
  }
  out += "\nMATCHING\n";
  if (query.pattern->kind() == PatternKind::kPose) {
    out += FormatPattern(*query.pattern, 1, false);
    out += ";\n";
    return out;
  }
  out += FormatPattern(*query.pattern, 1, true);
  out += ";\n";
  return out;
}

std::string FormatQueryCompact(const ParsedQuery& query) {
  std::string out = "SELECT \"" + query.name + "\"";
  for (const cep::ExprPtr& measure : query.measures) {
    out += ", " + measure->ToString();
  }
  out += " MATCHING " + query.pattern->ToString() + ";";
  return out;
}

}  // namespace epl::query
