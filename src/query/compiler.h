// Semantic analysis and compilation of parsed queries, plus deployment
// into a StreamEngine.

#ifndef EPL_QUERY_COMPILER_H_
#define EPL_QUERY_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/detection.h"
#include "cep/match_operator.h"
#include "cep/multi_match_operator.h"
#include "cep/nfa.h"
#include "cep/sharded_engine.h"
#include "query/parser.h"
#include "stream/engine.h"

namespace epl::query {

/// A fully analyzed query, ready to instantiate match operators.
struct CompiledQuery {
  std::string name;
  std::string source_stream;
  cep::CompiledPattern pattern;
  std::vector<cep::ExprProgram> measures;
};

/// Binds the query against `schema` (the schema of its source stream) and
/// compiles pattern and measures.
Result<CompiledQuery> CompileQuery(const ParsedQuery& parsed,
                                   const stream::Schema& schema);

/// Compiles `parsed` against the schema of its source stream in `engine`
/// and deploys a match operator there. Detections go to `callback`.
/// Returns the deployment handle (Undeploy to remove the gesture at
/// runtime).
Result<stream::DeploymentId> DeployQuery(stream::StreamEngine* engine,
                                         const ParsedQuery& parsed,
                                         cep::DetectionCallback callback,
                                         cep::MatcherOptions options = {});

/// Convenience: parse + deploy query text.
Result<stream::DeploymentId> DeployQueryText(stream::StreamEngine* engine,
                                             const std::string& text,
                                             cep::DetectionCallback callback,
                                             cep::MatcherOptions options = {});

/// Handle for a fused deployment: the engine-owned operator stays
/// addressable so queries can be exchanged at runtime.
struct FusedDeployment {
  stream::DeploymentId id = 0;
  /// Owned by the StreamEngine; valid until the deployment is undeployed.
  cep::MultiMatchOperator* op = nullptr;
};

/// Compiles every query in `parsed` (all must read the same source stream)
/// and deploys ONE fused MultiMatchOperator subscribing to that stream, so
/// all queries share a PredicateBank evaluation per event instead of
/// running independent match operators. Detections from every query go to
/// `callback` (distinguished by Detection::name). Undeploying the returned
/// handle removes all the queries at once; individual queries can be
/// exchanged at runtime via AddFusedQuery / FusedDeployment::op.
/// `batch_size` > 1 makes the operator accumulate that many events per
/// matcher sweep (offline replays; detections then fire at flush
/// boundaries, still in exact per-event order -- see MultiMatchOperator).
/// Drain the tail of a finished stream with
/// `deployment.op->FlushBatchedEvents()` (Undeploy flushes via Close).
Result<FusedDeployment> DeployQueriesFused(
    stream::StreamEngine* engine, const std::vector<ParsedQuery>& parsed,
    cep::DetectionCallback callback, cep::MatcherOptions options = {},
    size_t batch_size = 1);

/// Compiles `parsed` against the deployment's stream and adds it to the
/// live fused operator (paper's "exchange gestures during runtime");
/// returns the query's stable id, usable with
/// `deployment.op->RemoveQuery(id)`. Must be serialized with event
/// processing (the StreamEngine is single-threaded); exchanges from other
/// threads belong on the sharded path, whose control ops synchronize
/// internally.
Result<int> AddFusedQuery(stream::StreamEngine* engine,
                          const FusedDeployment& deployment,
                          const ParsedQuery& parsed,
                          cep::DetectionCallback callback);

/// Handle for a sharded deployment: the adapter operator is engine-owned,
/// the ShardedEngine it wraps stays addressable for runtime add/remove,
/// Flush, and statistics.
struct ShardedDeployment {
  stream::DeploymentId id = 0;
  /// Owned by the deployed ShardedMatchOperator; valid until undeployed.
  cep::ShardedEngine* engine = nullptr;
};

/// Like DeployQueriesFused, but the queries are partitioned across the
/// worker shards of a ShardedEngine (multi-core scaling); the adapter
/// operator subscribes to the shared source stream and fans events out.
/// Detections are merged back in deterministic (event-seq, query-id)
/// order and delivered during stream pushes; call
/// `deployment.engine->Flush()` to force out everything pending.
/// Undeploying stops the shard workers.
Result<ShardedDeployment> DeployQueriesSharded(
    stream::StreamEngine* engine, const std::vector<ParsedQuery>& parsed,
    cep::DetectionCallback callback, cep::ShardedEngineOptions options = {});

/// Compiles `parsed` against the deployment's stream and adds it to the
/// live sharded engine; returns the query's stable id, usable with
/// `deployment.engine->RemoveQuery(id)`.
Result<int> AddShardedQuery(stream::StreamEngine* engine,
                            const ShardedDeployment& deployment,
                            const ParsedQuery& parsed,
                            cep::DetectionCallback callback);

/// Compiles `parsed` against the schema of its source stream in `engine`
/// into a QuerySpec ready for MultiMatchOperator::AddQuery /
/// ShardedEngine::AddQuery, with `callback` and the optional group `gate`
/// attached (see MultiPatternMatcher::AddPattern). This is the building
/// block of the session-layer GestureRuntime, which manages deployments
/// itself and needs compiled specs rather than one-shot deploy calls.
Result<cep::MultiMatchOperator::QuerySpec> CompileQuerySpec(
    stream::StreamEngine* engine, const ParsedQuery& parsed,
    cep::DetectionCallback callback,
    std::shared_ptr<const cep::CompiledPattern> gate = nullptr);

/// Deploys an EMPTY fused operator subscribing to `stream`; queries are
/// added afterwards via FusedDeployment::op->AddQuery (runtime add/remove
/// is the normal mode of operation for the session runtime).
Result<FusedDeployment> DeployFusedOperator(stream::StreamEngine* engine,
                                            const std::string& stream,
                                            cep::MatcherOptions options = {},
                                            size_t batch_size = 1);

/// Deploys an EMPTY sharded engine subscribing to `stream` (workers
/// started); queries are added afterwards via
/// ShardedDeployment::engine->AddQuery.
Result<ShardedDeployment> DeployShardedOperator(
    stream::StreamEngine* engine, const std::string& stream,
    cep::ShardedEngineOptions options = {});

}  // namespace epl::query

#endif  // EPL_QUERY_COMPILER_H_
