// Semantic analysis and compilation of parsed queries, plus deployment
// into a StreamEngine.

#ifndef EPL_QUERY_COMPILER_H_
#define EPL_QUERY_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/detection.h"
#include "cep/match_operator.h"
#include "cep/nfa.h"
#include "query/parser.h"
#include "stream/engine.h"

namespace epl::query {

/// A fully analyzed query, ready to instantiate match operators.
struct CompiledQuery {
  std::string name;
  std::string source_stream;
  cep::CompiledPattern pattern;
  std::vector<cep::ExprProgram> measures;
};

/// Binds the query against `schema` (the schema of its source stream) and
/// compiles pattern and measures.
Result<CompiledQuery> CompileQuery(const ParsedQuery& parsed,
                                   const stream::Schema& schema);

/// Compiles `parsed` against the schema of its source stream in `engine`
/// and deploys a match operator there. Detections go to `callback`.
/// Returns the deployment handle (Undeploy to remove the gesture at
/// runtime).
Result<stream::DeploymentId> DeployQuery(stream::StreamEngine* engine,
                                         const ParsedQuery& parsed,
                                         cep::DetectionCallback callback,
                                         cep::MatcherOptions options = {});

/// Convenience: parse + deploy query text.
Result<stream::DeploymentId> DeployQueryText(stream::StreamEngine* engine,
                                             const std::string& text,
                                             cep::DetectionCallback callback,
                                             cep::MatcherOptions options = {});

/// Compiles every query in `parsed` (all must read the same source stream)
/// and deploys ONE fused MultiMatchOperator subscribing to that stream, so
/// all queries share a PredicateBank evaluation per event instead of
/// running independent match operators. Detections from every query go to
/// `callback` (distinguished by Detection::name). Returns the single
/// deployment handle; undeploying it removes all the queries at once.
Result<stream::DeploymentId> DeployQueriesFused(
    stream::StreamEngine* engine, const std::vector<ParsedQuery>& parsed,
    cep::DetectionCallback callback, cep::MatcherOptions options = {});

}  // namespace epl::query

#endif  // EPL_QUERY_COMPILER_H_
