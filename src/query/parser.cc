#include "query/parser.h"

#include "common/string_util.h"

namespace epl::query {

using cep::BinaryOp;
using cep::ConsumePolicy;
using cep::Expr;
using cep::ExprPtr;
using cep::PatternExpr;
using cep::PatternExprPtr;
using cep::SelectPolicy;
using cep::UnaryOp;
using cep::WithinMode;

ParsedQuery ParsedQuery::Clone() const {
  ParsedQuery copy;
  copy.name = name;
  copy.measures.reserve(measures.size());
  for (const ExprPtr& measure : measures) {
    copy.measures.push_back(measure->Clone());
  }
  copy.pattern = pattern ? pattern->Clone() : nullptr;
  return copy;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseQuery() {
    EPL_ASSIGN_OR_RETURN(ParsedQuery query, ParseQueryNoEof());
    EPL_RETURN_IF_ERROR(Expect(TokenType::kEof));
    return query;
  }

  Result<std::vector<ParsedQuery>> ParseQueries() {
    std::vector<ParsedQuery> queries;
    while (!Check(TokenType::kEof)) {
      EPL_ASSIGN_OR_RETURN(ParsedQuery query, ParseQueryNoEof());
      queries.push_back(std::move(query));
    }
    return queries;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    EPL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    EPL_RETURN_IF_ERROR(Expect(TokenType::kEof));
    return expr;
  }

 private:
  Result<ParsedQuery> ParseQueryNoEof() {
    ParsedQuery query;
    EPL_RETURN_IF_ERROR(Expect(TokenType::kSelect));
    EPL_ASSIGN_OR_RETURN(Token name, ExpectToken(TokenType::kString));
    query.name = name.text;
    while (Match(TokenType::kComma)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr measure, ParseExpr());
      query.measures.push_back(std::move(measure));
    }
    EPL_RETURN_IF_ERROR(Expect(TokenType::kMatching));
    EPL_ASSIGN_OR_RETURN(query.pattern, ParsePattern());
    EPL_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
    EPL_RETURN_IF_ERROR(query.pattern->Validate());
    return query;
  }

  // pattern := term ('->' term)* [within] [select] [consume]
  Result<PatternExprPtr> ParsePattern() {
    std::vector<PatternExprPtr> children;
    EPL_ASSIGN_OR_RETURN(PatternExprPtr first, ParseTerm());
    children.push_back(std::move(first));
    while (Match(TokenType::kArrow)) {
      EPL_ASSIGN_OR_RETURN(PatternExprPtr term, ParseTerm());
      children.push_back(std::move(term));
    }

    std::optional<Duration> within;
    WithinMode mode = WithinMode::kGap;
    SelectPolicy select = SelectPolicy::kFirst;
    ConsumePolicy consume = ConsumePolicy::kAll;
    bool has_clause = false;

    if (Match(TokenType::kWithin)) {
      has_clause = true;
      EPL_ASSIGN_OR_RETURN(Token amount, ExpectToken(TokenType::kNumber));
      if (Match(TokenType::kSeconds)) {
        within = DurationFromSeconds(amount.number);
      } else if (Match(TokenType::kMilliseconds)) {
        within = DurationFromMillis(amount.number);
      } else {
        return ErrorHere("expected time unit (seconds or milliseconds)");
      }
      if (Match(TokenType::kTotal)) {
        mode = WithinMode::kSpan;
      }
    }
    if (Match(TokenType::kSelect)) {
      has_clause = true;
      if (Match(TokenType::kFirst)) {
        select = SelectPolicy::kFirst;
      } else if (Match(TokenType::kAll)) {
        select = SelectPolicy::kAll;
      } else {
        return ErrorHere("expected 'first' or 'all' after select");
      }
    }
    if (Match(TokenType::kConsume)) {
      has_clause = true;
      if (Match(TokenType::kAll)) {
        consume = ConsumePolicy::kAll;
      } else if (Match(TokenType::kNone)) {
        consume = ConsumePolicy::kNone;
      } else {
        return ErrorHere("expected 'all' or 'none' after consume");
      }
    }

    // Collapse a clause-free single-element "sequence" to its child.
    if (children.size() == 1 && !has_clause) {
      return std::move(children[0]);
    }
    return PatternExpr::Sequence(std::move(children), within, mode, select,
                                 consume);
  }

  // term := ident '(' expr ')' | '(' pattern ')'
  Result<PatternExprPtr> ParseTerm() {
    if (Check(TokenType::kIdentifier)) {
      Token source = Advance();
      EPL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      EPL_ASSIGN_OR_RETURN(ExprPtr predicate, ParseExpr());
      EPL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return PatternExpr::Pose(source.text, std::move(predicate));
    }
    if (Match(TokenType::kLParen)) {
      EPL_ASSIGN_OR_RETURN(PatternExprPtr pattern, ParsePattern());
      EPL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return pattern;
    }
    return ErrorHere("expected pose or '(' in pattern");
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    EPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match(TokenType::kOr)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    EPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (Match(TokenType::kAnd)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    EPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    if (Match(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenType::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenType::kGe)) {
      op = BinaryOp::kGe;
    } else if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNe)) {
      op = BinaryOp::kNe;
    } else {
      return lhs;
    }
    EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    EPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (Match(TokenType::kPlus)) {
        EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Match(TokenType::kMinus)) {
        EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    EPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (Match(TokenType::kStar)) {
        EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Match(TokenType::kSlash)) {
        EPL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold negation of literals so "-120" is a constant.
      if (operand->kind() == cep::ExprKind::kConst) {
        return Expr::Constant(-operand->constant_value());
      }
      return Expr::Unary(UnaryOp::kNegate, std::move(operand));
    }
    if (Match(TokenType::kNot)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Check(TokenType::kNumber)) {
      Token token = Advance();
      return Expr::Constant(token.number);
    }
    if (Check(TokenType::kIdentifier)) {
      Token token = Advance();
      if (Match(TokenType::kLParen)) {
        std::vector<ExprPtr> args;
        if (!Check(TokenType::kRParen)) {
          while (true) {
            EPL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) {
              break;
            }
          }
        }
        EPL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        return Expr::Call(token.text, std::move(args));
      }
      return Expr::Field(token.text);
    }
    if (Match(TokenType::kLParen)) {
      EPL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      EPL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return expr;
    }
    return ErrorHere("expected expression");
  }

  // Token utilities.
  const Token& Peek() const { return tokens_[position_]; }
  Token Advance() { return tokens_[position_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (Check(type)) {
      ++position_;
      return true;
    }
    return false;
  }
  Status Expect(TokenType type) {
    if (!Check(type)) {
      return ErrorHere(StrFormat("expected %s, found %s",
                                 std::string(TokenTypeToString(type)).c_str(),
                                 Peek().Describe().c_str()));
    }
    ++position_;
    return OkStatus();
  }
  Result<Token> ExpectToken(TokenType type) {
    if (!Check(type)) {
      return ErrorHere(StrFormat("expected %s, found %s",
                                 std::string(TokenTypeToString(type)).c_str(),
                                 Peek().Describe().c_str()));
    }
    return Advance();
  }
  Status ErrorHere(const std::string& message) const {
    const Token& token = Peek();
    return InvalidArgumentError(StrFormat("parse error at %d:%d: %s",
                                          token.line, token.column,
                                          message.c_str()));
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  EPL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<std::vector<ParsedQuery>> ParseQueries(const std::string& text) {
  EPL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQueries();
}

Result<cep::ExprPtr> ParseExpression(const std::string& text) {
  EPL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace epl::query
