// Unparser: renders a ParsedQuery back to query text in the layout of the
// paper's Fig. 1. FormatQuery output re-parses to a structurally identical
// query (round-trip tested).

#ifndef EPL_QUERY_UNPARSER_H_
#define EPL_QUERY_UNPARSER_H_

#include <string>

#include "query/parser.h"

namespace epl::query {

/// Multi-line, indented rendering (the paper's presentation format).
std::string FormatQuery(const ParsedQuery& query);

/// Single-line rendering (for logs).
std::string FormatQueryCompact(const ParsedQuery& query);

/// Renders a duration as query text, e.g. "1 seconds" or "250 milliseconds".
std::string FormatDurationLiteral(Duration duration);

}  // namespace epl::query

#endif  // EPL_QUERY_UNPARSER_H_
