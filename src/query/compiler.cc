#include "query/compiler.h"

#include "cep/multi_match_operator.h"

namespace epl::query {

Result<CompiledQuery> CompileQuery(const ParsedQuery& parsed,
                                   const stream::Schema& schema) {
  if (parsed.pattern == nullptr) {
    return InvalidArgumentError("query has no pattern");
  }
  if (parsed.name.empty()) {
    return InvalidArgumentError("query has no output name");
  }
  CompiledQuery compiled;
  compiled.name = parsed.name;
  compiled.source_stream = parsed.pattern->SourceStream();
  EPL_ASSIGN_OR_RETURN(compiled.pattern,
                       cep::CompiledPattern::Compile(*parsed.pattern, schema));
  for (const cep::ExprPtr& measure : parsed.measures) {
    cep::ExprPtr bound = measure->Clone();
    Status bind_status = bound->Bind(schema);
    if (!bind_status.ok()) {
      return bind_status.WithContext("output measure '" + measure->ToString() +
                                     "'");
    }
    EPL_ASSIGN_OR_RETURN(cep::ExprProgram program,
                         cep::ExprProgram::Compile(*bound));
    compiled.measures.push_back(std::move(program));
  }
  return compiled;
}

Result<stream::DeploymentId> DeployQuery(stream::StreamEngine* engine,
                                         const ParsedQuery& parsed,
                                         cep::DetectionCallback callback,
                                         cep::MatcherOptions options) {
  if (parsed.pattern == nullptr) {
    return InvalidArgumentError("query has no pattern");
  }
  std::string source = parsed.pattern->SourceStream();
  Result<stream::Schema> schema = engine->GetSchema(source);
  if (!schema.ok()) {
    return schema.status().WithContext("query '" + parsed.name +
                                       "' reads undeclared stream");
  }
  EPL_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(parsed, *schema));
  auto op = std::make_unique<cep::MatchOperator>(
      compiled.name, std::move(compiled.pattern), std::move(callback),
      std::move(compiled.measures), options);
  return engine->Deploy(source, std::move(op));
}

namespace {

/// Validates that every query has a pattern and that all read one stream;
/// returns that stream's name.
Result<std::string> SharedSourceStream(const std::vector<ParsedQuery>& parsed) {
  if (parsed.empty()) {
    return InvalidArgumentError("fused deployment needs at least one query");
  }
  std::string source;
  for (const ParsedQuery& query : parsed) {
    if (query.pattern == nullptr) {
      return InvalidArgumentError("query '" + query.name + "' has no pattern");
    }
    std::string query_source = query.pattern->SourceStream();
    if (source.empty()) {
      source = query_source;
    } else if (query_source != source) {
      return InvalidArgumentError(
          "fused queries must share a source stream: '" + source + "' vs '" +
          query_source + "' (query '" + query.name + "')");
    }
  }
  return source;
}

cep::MultiMatchOperator::QuerySpec MakeQuerySpec(
    CompiledQuery compiled, cep::DetectionCallback callback) {
  cep::MultiMatchOperator::QuerySpec spec;
  spec.output_name = std::move(compiled.name);
  spec.pattern = std::move(compiled.pattern);
  spec.measures = std::move(compiled.measures);
  spec.callback = std::move(callback);
  return spec;
}

/// Compiles one query destined for the live deployment `id`, validating
/// that it reads the deployment's subscribed stream.
Result<CompiledQuery> CompileForDeployment(stream::StreamEngine* engine,
                                           stream::DeploymentId id,
                                           const ParsedQuery& parsed) {
  if (parsed.pattern == nullptr) {
    return InvalidArgumentError("query '" + parsed.name + "' has no pattern");
  }
  EPL_ASSIGN_OR_RETURN(std::string deployed_stream,
                       engine->DeploymentStream(id));
  std::string source = parsed.pattern->SourceStream();
  if (source != deployed_stream) {
    return InvalidArgumentError("query '" + parsed.name + "' reads stream '" +
                                source + "' but the deployment subscribes to '" +
                                deployed_stream + "'");
  }
  EPL_ASSIGN_OR_RETURN(stream::Schema schema, engine->GetSchema(source));
  return CompileQuery(parsed, schema);
}

}  // namespace

Result<FusedDeployment> DeployQueriesFused(stream::StreamEngine* engine,
                                           const std::vector<ParsedQuery>& parsed,
                                           cep::DetectionCallback callback,
                                           cep::MatcherOptions options,
                                           size_t batch_size) {
  EPL_ASSIGN_OR_RETURN(std::string source, SharedSourceStream(parsed));
  Result<stream::Schema> schema = engine->GetSchema(source);
  if (!schema.ok()) {
    return schema.status().WithContext("fused queries read undeclared stream");
  }
  auto op = std::make_unique<cep::MultiMatchOperator>(options, batch_size);
  cep::MultiMatchOperator* raw = op.get();
  for (const ParsedQuery& query : parsed) {
    EPL_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(query, *schema));
    op->AddQuery(MakeQuerySpec(std::move(compiled), callback));
  }
  EPL_ASSIGN_OR_RETURN(stream::DeploymentId id,
                       engine->Deploy(source, std::move(op)));
  return FusedDeployment{id, raw};
}

Result<int> AddFusedQuery(stream::StreamEngine* engine,
                          const FusedDeployment& deployment,
                          const ParsedQuery& parsed,
                          cep::DetectionCallback callback) {
  if (deployment.op == nullptr) {
    return InvalidArgumentError("fused deployment has no operator");
  }
  EPL_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      CompileForDeployment(engine, deployment.id, parsed));
  return deployment.op->AddQuery(
      MakeQuerySpec(std::move(compiled), std::move(callback)));
}

Result<ShardedDeployment> DeployQueriesSharded(
    stream::StreamEngine* engine, const std::vector<ParsedQuery>& parsed,
    cep::DetectionCallback callback, cep::ShardedEngineOptions options) {
  EPL_ASSIGN_OR_RETURN(std::string source, SharedSourceStream(parsed));
  Result<stream::Schema> schema = engine->GetSchema(source);
  if (!schema.ok()) {
    return schema.status().WithContext(
        "sharded queries read undeclared stream");
  }
  auto op = std::make_unique<cep::ShardedMatchOperator>(options);
  cep::ShardedEngine* sharded = &op->engine();
  for (const ParsedQuery& query : parsed) {
    EPL_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(query, *schema));
    sharded->AddQuery(MakeQuerySpec(std::move(compiled), callback));
  }
  // Deploy calls Open(), which starts the shard workers.
  EPL_ASSIGN_OR_RETURN(stream::DeploymentId id,
                       engine->Deploy(source, std::move(op)));
  return ShardedDeployment{id, sharded};
}

Result<int> AddShardedQuery(stream::StreamEngine* engine,
                            const ShardedDeployment& deployment,
                            const ParsedQuery& parsed,
                            cep::DetectionCallback callback) {
  if (deployment.engine == nullptr) {
    return InvalidArgumentError("sharded deployment has no engine");
  }
  EPL_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      CompileForDeployment(engine, deployment.id, parsed));
  return deployment.engine->AddQuery(
      MakeQuerySpec(std::move(compiled), std::move(callback)));
}

Result<cep::MultiMatchOperator::QuerySpec> CompileQuerySpec(
    stream::StreamEngine* engine, const ParsedQuery& parsed,
    cep::DetectionCallback callback,
    std::shared_ptr<const cep::CompiledPattern> gate) {
  if (parsed.pattern == nullptr) {
    return InvalidArgumentError("query '" + parsed.name + "' has no pattern");
  }
  std::string source = parsed.pattern->SourceStream();
  Result<stream::Schema> schema = engine->GetSchema(source);
  if (!schema.ok()) {
    return schema.status().WithContext("query '" + parsed.name +
                                       "' reads undeclared stream");
  }
  EPL_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(parsed, *schema));
  cep::MultiMatchOperator::QuerySpec spec =
      MakeQuerySpec(std::move(compiled), std::move(callback));
  spec.gate = std::move(gate);
  return spec;
}

Result<FusedDeployment> DeployFusedOperator(stream::StreamEngine* engine,
                                            const std::string& stream,
                                            cep::MatcherOptions options,
                                            size_t batch_size) {
  EPL_RETURN_IF_ERROR(engine->GetSchema(stream).status());
  auto op = std::make_unique<cep::MultiMatchOperator>(options, batch_size);
  cep::MultiMatchOperator* raw = op.get();
  EPL_ASSIGN_OR_RETURN(stream::DeploymentId id,
                       engine->Deploy(stream, std::move(op)));
  return FusedDeployment{id, raw};
}

Result<ShardedDeployment> DeployShardedOperator(
    stream::StreamEngine* engine, const std::string& stream,
    cep::ShardedEngineOptions options) {
  EPL_RETURN_IF_ERROR(engine->GetSchema(stream).status());
  auto op = std::make_unique<cep::ShardedMatchOperator>(options);
  cep::ShardedEngine* sharded = &op->engine();
  EPL_ASSIGN_OR_RETURN(stream::DeploymentId id,
                       engine->Deploy(stream, std::move(op)));
  return ShardedDeployment{id, sharded};
}

Result<stream::DeploymentId> DeployQueryText(stream::StreamEngine* engine,
                                             const std::string& text,
                                             cep::DetectionCallback callback,
                                             cep::MatcherOptions options) {
  EPL_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  return DeployQuery(engine, parsed, std::move(callback), options);
}

}  // namespace epl::query
