// Lexer for the EPL gesture query language (paper Fig. 1 dialect).
//
// Keywords are case-insensitive. Tokens carry source positions for error
// reporting.

#ifndef EPL_QUERY_LEXER_H_
#define EPL_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace epl::query {

enum class TokenType {
  // Literals and identifiers.
  kIdentifier,
  kNumber,
  kString,
  // Keywords.
  kSelect,
  kMatching,
  kWithin,
  kSeconds,
  kMilliseconds,
  kTotal,
  kFirst,
  kAll,
  kConsume,
  kNone,
  kAnd,
  kOr,
  kNot,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kArrow,  // ->
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,  // == or =
  kNe,  // !=
  kEof,
};

std::string_view TokenTypeToString(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // raw text (identifier / keyword / operator)
  double number = 0.0;   // kNumber only
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

/// Splits `text` into tokens; the last token is always kEof.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace epl::query

#endif  // EPL_QUERY_LEXER_H_
