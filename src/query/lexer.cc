#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace epl::query {

std::string_view TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kNumber:
      return "number";
    case TokenType::kString:
      return "string";
    case TokenType::kSelect:
      return "select";
    case TokenType::kMatching:
      return "matching";
    case TokenType::kWithin:
      return "within";
    case TokenType::kSeconds:
      return "seconds";
    case TokenType::kMilliseconds:
      return "milliseconds";
    case TokenType::kTotal:
      return "total";
    case TokenType::kFirst:
      return "first";
    case TokenType::kAll:
      return "all";
    case TokenType::kConsume:
      return "consume";
    case TokenType::kNone:
      return "none";
    case TokenType::kAnd:
      return "and";
    case TokenType::kOr:
      return "or";
    case TokenType::kNot:
      return "not";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kComma:
      return ",";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kArrow:
      return "->";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kStar:
      return "*";
    case TokenType::kSlash:
      return "/";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kEq:
      return "==";
    case TokenType::kNe:
      return "!=";
    case TokenType::kEof:
      return "<eof>";
  }
  return "?";
}

std::string Token::Describe() const {
  if (type == TokenType::kIdentifier || type == TokenType::kNumber ||
      type == TokenType::kString) {
    return StrFormat("%s '%s'", std::string(TokenTypeToString(type)).c_str(),
                     text.c_str());
  }
  return StrFormat("'%s'", std::string(TokenTypeToString(type)).c_str());
}

namespace {

struct Keyword {
  const char* text;
  TokenType type;
};

constexpr Keyword kKeywords[] = {
    {"select", TokenType::kSelect},
    {"matching", TokenType::kMatching},
    {"within", TokenType::kWithin},
    {"seconds", TokenType::kSeconds},
    {"second", TokenType::kSeconds},
    {"sec", TokenType::kSeconds},
    {"milliseconds", TokenType::kMilliseconds},
    {"millisecond", TokenType::kMilliseconds},
    {"ms", TokenType::kMilliseconds},
    {"total", TokenType::kTotal},
    {"first", TokenType::kFirst},
    {"all", TokenType::kAll},
    {"consume", TokenType::kConsume},
    {"none", TokenType::kNone},
    {"and", TokenType::kAnd},
    {"or", TokenType::kOr},
    {"not", TokenType::kNot},
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = text.size();

  auto make = [&](TokenType type, std::string token_text) {
    Token token;
    token.type = type;
    token.text = std::move(token_text);
    token.line = line;
    token.column = column;
    return token;
  };
  auto error = [&](const std::string& message) {
    return InvalidArgumentError(
        StrFormat("lex error at %d:%d: %s", line, column, message.c_str()));
  };

  while (i < n) {
    char c = text[i];
    // Whitespace and newlines.
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    // Comments: -- to end of line (SQL style) and # to end of line.
    if (c == '#' || (c == '-' && i + 1 < n && text[i + 1] == '-')) {
      while (i < n && text[i] != '\n') {
        ++i;
      }
      continue;
    }
    // Identifiers and keywords.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(text[i])) {
        ++i;
      }
      std::string word = text.substr(start, i - start);
      std::string lower = ToLower(word);
      TokenType type = TokenType::kIdentifier;
      for (const Keyword& keyword : kKeywords) {
        if (lower == keyword.text) {
          type = keyword.type;
          break;
        }
      }
      tokens.push_back(make(type, word));
      column += static_cast<int>(word.size());
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.')) {
        ++i;
      }
      // Exponent part.
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (text[exp] == '+' || text[exp] == '-')) {
          ++exp;
        }
        if (exp < n && std::isdigit(static_cast<unsigned char>(text[exp]))) {
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
            ++i;
          }
        }
      }
      std::string word = text.substr(start, i - start);
      Result<double> value = ParseDouble(word);
      if (!value.ok()) {
        return error("bad number literal '" + word + "'");
      }
      Token token = make(TokenType::kNumber, word);
      token.number = *value;
      tokens.push_back(std::move(token));
      column += static_cast<int>(word.size());
      continue;
    }
    // String literals.
    if (c == '"') {
      size_t start = ++i;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        ++i;
      }
      if (i >= n || text[i] != '"') {
        return error("unterminated string literal");
      }
      std::string value = text.substr(start, i - start);
      ++i;  // closing quote
      tokens.push_back(make(TokenType::kString, value));
      column += static_cast<int>(value.size()) + 2;
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char second) {
      return i + 1 < n && text[i + 1] == second;
    };
    switch (c) {
      case '(':
        tokens.push_back(make(TokenType::kLParen, "("));
        ++i;
        ++column;
        continue;
      case ')':
        tokens.push_back(make(TokenType::kRParen, ")"));
        ++i;
        ++column;
        continue;
      case ',':
        tokens.push_back(make(TokenType::kComma, ","));
        ++i;
        ++column;
        continue;
      case ';':
        tokens.push_back(make(TokenType::kSemicolon, ";"));
        ++i;
        ++column;
        continue;
      case '+':
        tokens.push_back(make(TokenType::kPlus, "+"));
        ++i;
        ++column;
        continue;
      case '*':
        tokens.push_back(make(TokenType::kStar, "*"));
        ++i;
        ++column;
        continue;
      case '/':
        tokens.push_back(make(TokenType::kSlash, "/"));
        ++i;
        ++column;
        continue;
      case '-':
        if (two('>')) {
          tokens.push_back(make(TokenType::kArrow, "->"));
          i += 2;
          column += 2;
        } else {
          tokens.push_back(make(TokenType::kMinus, "-"));
          ++i;
          ++column;
        }
        continue;
      case '<':
        if (two('=')) {
          tokens.push_back(make(TokenType::kLe, "<="));
          i += 2;
          column += 2;
        } else {
          tokens.push_back(make(TokenType::kLt, "<"));
          ++i;
          ++column;
        }
        continue;
      case '>':
        if (two('=')) {
          tokens.push_back(make(TokenType::kGe, ">="));
          i += 2;
          column += 2;
        } else {
          tokens.push_back(make(TokenType::kGt, ">"));
          ++i;
          ++column;
        }
        continue;
      case '=':
        if (two('=')) {
          tokens.push_back(make(TokenType::kEq, "=="));
          i += 2;
          column += 2;
        } else {
          tokens.push_back(make(TokenType::kEq, "="));
          ++i;
          ++column;
        }
        continue;
      case '!':
        if (two('=')) {
          tokens.push_back(make(TokenType::kNe, "!="));
          i += 2;
          column += 2;
          continue;
        }
        return error("unexpected character '!'");
      default:
        return error(StrFormat("unexpected character '%c'", c));
    }
  }
  tokens.push_back(make(TokenType::kEof, ""));
  return tokens;
}

}  // namespace epl::query
