// Push-based stream operator interface.
//
// Operators form a DAG: each operator forwards produced events to its
// downstream operators. The engine (stream/engine.h) owns operators and
// wires subscriptions; operators themselves only hold non-owning pointers
// to their downstreams.

#ifndef EPL_STREAM_OPERATOR_H_
#define EPL_STREAM_OPERATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace epl::stream {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Called once before the first event.
  virtual Status Open() { return OkStatus(); }

  /// Consumes one event. Implementations call Forward() for each produced
  /// event (possibly zero or several).
  virtual Status Process(const Event& event) = 0;

  /// Called once after the last event.
  virtual Status Close() { return OkStatus(); }

  /// Human-readable operator name for diagnostics.
  virtual std::string name() const { return "operator"; }

  void AddDownstream(Operator* op) { downstream_.push_back(op); }
  void ClearDownstream() { downstream_.clear(); }
  const std::vector<Operator*>& downstream() const { return downstream_; }

 protected:
  /// Pushes `event` to every downstream operator, stopping on first error.
  Status Forward(const Event& event) {
    for (Operator* op : downstream_) {
      EPL_RETURN_IF_ERROR(op->Process(event));
    }
    return OkStatus();
  }

 private:
  std::vector<Operator*> downstream_;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_OPERATOR_H_
