// Schema: names the fields of a stream's events.
//
// The EPL data plane is numeric: every event is a timestamp plus a flat
// vector of doubles. A Schema maps field names (e.g. "rHand_x") to indices.
// Queries resolve names to indices once at compile time; the hot path only
// uses integer indices.

#ifndef EPL_STREAM_SCHEMA_H_
#define EPL_STREAM_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace epl::stream {

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names);

  /// Appends a field; returns its index. Duplicate names are rejected by
  /// Validate(), not here, so builders can stay fluent.
  int AddField(const std::string& name);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const std::vector<std::string>& field_names() const { return fields_; }
  const std::string& field_name(int index) const { return fields_[index]; }

  /// Index of `name`, or error if absent.
  Result<int> FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// Rejects duplicate or empty field names.
  Status Validate() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_SCHEMA_H_
