// Basic reusable operators: filter, map, project, and sinks.

#ifndef EPL_STREAM_OPERATORS_H_
#define EPL_STREAM_OPERATORS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "stream/operator.h"

namespace epl::stream {

/// Forwards events for which `predicate` returns true.
class FilterOperator : public Operator {
 public:
  using Predicate = std::function<bool(const Event&)>;

  explicit FilterOperator(Predicate predicate)
      : predicate_(std::move(predicate)) {}

  Status Process(const Event& event) override {
    if (predicate_(event)) {
      return Forward(event);
    }
    return OkStatus();
  }

  std::string name() const override { return "filter"; }

 private:
  Predicate predicate_;
};

/// Applies `fn` to each event and forwards the result.
class MapOperator : public Operator {
 public:
  using MapFn = std::function<Event(const Event&)>;

  explicit MapOperator(MapFn fn) : fn_(std::move(fn)) {}

  Status Process(const Event& event) override { return Forward(fn_(event)); }

  std::string name() const override { return "map"; }

 private:
  MapFn fn_;
};

/// Keeps only the fields at `indices` (in the given order).
class ProjectOperator : public Operator {
 public:
  explicit ProjectOperator(std::vector<int> indices)
      : indices_(std::move(indices)) {}

  Status Process(const Event& event) override {
    Event out;
    out.timestamp = event.timestamp;
    out.values.reserve(indices_.size());
    for (int index : indices_) {
      if (index < 0 || static_cast<size_t>(index) >= event.values.size()) {
        return OutOfRangeError("project index out of range");
      }
      out.values.push_back(event.values[index]);
    }
    return Forward(out);
  }

  std::string name() const override { return "project"; }

 private:
  std::vector<int> indices_;
};

/// Invokes a callback per event (terminal operator).
class CallbackSink : public Operator {
 public:
  using Callback = std::function<void(const Event&)>;

  explicit CallbackSink(Callback callback) : callback_(std::move(callback)) {}

  Status Process(const Event& event) override {
    callback_(event);
    return OkStatus();
  }

  std::string name() const override { return "callback_sink"; }

 private:
  Callback callback_;
};

/// Counts events (terminal operator).
class CountingSink : public Operator {
 public:
  Status Process(const Event&) override {
    ++count_;
    return OkStatus();
  }

  uint64_t count() const { return count_; }
  std::string name() const override { return "counting_sink"; }

 private:
  uint64_t count_ = 0;
};

/// Collects events into a vector (terminal operator, for tests).
class CollectSink : public Operator {
 public:
  Status Process(const Event& event) override {
    events_.push_back(event);
    return OkStatus();
  }

  const std::vector<Event>& events() const { return events_; }
  std::string name() const override { return "collect_sink"; }

 private:
  std::vector<Event> events_;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_OPERATORS_H_
