// Portability shim over CPU affinity and spin-wait hints.
//
// ShardedEngine pins shard workers to distinct CPUs (one cache-hot bank +
// arena per core) and spins briefly before parking on the work condition
// variable. Both are platform services: Linux exposes them through
// sched_getaffinity / pthread_setaffinity_np, other platforms may not.
// This header isolates that dependency -- callers get an honest `false`
// (and a hardware_concurrency fallback) where pinning is unavailable, so
// the engine runs unpinned instead of failing to build.

#ifndef EPL_STREAM_THREAD_AFFINITY_H_
#define EPL_STREAM_THREAD_AFFINITY_H_

namespace epl::stream {

/// CPUs this process may run on: the size of the process affinity mask
/// when the platform exposes one (containers and taskset shrink it), the
/// hardware concurrency otherwise. Always >= 1.
int NumAffinityCpus();

/// Pins the calling thread to the `slot % NumAffinityCpus()`-th CPU of the
/// process affinity mask -- slots are dense worker indices, the mask maps
/// them onto whatever CPUs the process actually owns. Returns false when
/// pinning is unsupported on this platform or rejected by the kernel;
/// callers should treat that as "run unpinned", not as an error.
bool PinCurrentThreadToAffinitySlot(int slot);

/// One spin-wait iteration hint (x86 `pause` / arm `yield`): tells the
/// core a sibling hyperthread may run and keeps the spin loop from
/// saturating the load ports while polling.
void CpuRelax();

}  // namespace epl::stream

#endif  // EPL_STREAM_THREAD_AFFINITY_H_
