// Bounded multi-producer multi-consumer queue used by the threaded runner.

#ifndef EPL_STREAM_BOUNDED_QUEUE_H_
#define EPL_STREAM_BOUNDED_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "stream/thread_affinity.h"

namespace epl::stream {

/// Blocking bounded FIFO. Push blocks while full; Pop blocks while empty.
/// Close() wakes all waiters; Pop returns nullopt once closed and drained.
///
/// `spin_iterations` > 0 makes the Pop side spin-then-park: an empty-queue
/// Pop/PopBatch polls an approximate item counter for that many CpuRelax
/// iterations before taking the lock and blocking. A producer that
/// publishes every few microseconds is usually caught by the spin, saving
/// the futex round trip; the behavior (ordering, blocking, close
/// semantics) is identical either way, only the wakeup latency changes.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, int spin_iterations = 0)
      : capacity_(capacity), spin_iterations_(spin_iterations) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Returns false if the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    queue_.push_back(std::move(item));
    approx_size_.store(queue_.size(), std::memory_order_release);
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(item));
    approx_size_.store(queue_.size(), std::memory_order_release);
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    SpinForItem();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    approx_size_.store(queue_.size(), std::memory_order_release);
    not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and drained), then moves up to `max_items` (which must be > 0) into
  /// `out` (appended, not cleared) under a single lock acquisition.
  /// Returns the number of items taken; 0 means closed and drained.
  /// Consumers draining in batches pay one lock round-trip per burst
  /// instead of one per item.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    EPL_CHECK(max_items > 0) << "PopBatch with max_items == 0";
    SpinForItem();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    size_t taken = 0;
    while (taken < max_items && !queue_.empty()) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++taken;
    }
    approx_size_.store(queue_.size(), std::memory_order_release);
    if (taken > 0) {
      not_full_.notify_all();
    }
    return taken;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    closed_approx_.store(true, std::memory_order_release);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  /// Lock-free poll before a potentially blocking Pop. Purely an
  /// optimization: whatever it observes, the caller re-checks under the
  /// lock, so a stale counter costs at most the spin budget.
  void SpinForItem() const {
    for (int i = 0; i < spin_iterations_; ++i) {
      if (approx_size_.load(std::memory_order_acquire) > 0 ||
          closed_approx_.load(std::memory_order_acquire)) {
        return;
      }
      CpuRelax();
    }
  }

  const size_t capacity_;
  const int spin_iterations_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
  // Mirrors of queue_.size() / closed_ for the lock-free spin poll.
  std::atomic<size_t> approx_size_{0};
  std::atomic<bool> closed_approx_{false};
};

}  // namespace epl::stream

#endif  // EPL_STREAM_BOUNDED_QUEUE_H_
