// Event: one tuple of a data stream.

#ifndef EPL_STREAM_EVENT_H_
#define EPL_STREAM_EVENT_H_

#include <string>
#include <vector>

#include "common/time_util.h"

namespace epl::stream {

/// A timestamped tuple. `values` is described by the stream's Schema.
struct Event {
  TimePoint timestamp = 0;
  std::vector<double> values;

  Event() = default;
  Event(TimePoint ts, std::vector<double> vals)
      : timestamp(ts), values(std::move(vals)) {}

  std::string ToString() const;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_EVENT_H_
