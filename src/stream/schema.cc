#include "stream/schema.h"

#include "common/string_util.h"

namespace epl::stream {

Schema::Schema(std::vector<std::string> field_names) {
  for (std::string& name : field_names) {
    AddField(name);
  }
}

int Schema::AddField(const std::string& name) {
  int index = static_cast<int>(fields_.size());
  fields_.push_back(name);
  index_.emplace(name, index);
  return index;
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return NotFoundError("unknown field: " + name);
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.find(name) != index_.end();
}

Status Schema::Validate() const {
  if (index_.size() != fields_.size()) {
    return InvalidArgumentError("schema has duplicate field names");
  }
  for (const std::string& name : fields_) {
    if (name.empty()) {
      return InvalidArgumentError("schema has an empty field name");
    }
  }
  return OkStatus();
}

std::string Schema::ToString() const {
  return "(" + StrJoin(fields_, ", ") + ")";
}

}  // namespace epl::stream
