#include "stream/engine.h"

#include <algorithm>

#include "stream/operators.h"

namespace epl::stream {

Status StreamEngine::RegisterStream(const std::string& name, Schema schema) {
  EPL_RETURN_IF_ERROR(schema.Validate());
  if (nodes_.count(name) > 0) {
    return AlreadyExistsError("stream already registered: " + name);
  }
  Node node;
  node.schema = std::move(schema);
  nodes_.emplace(name, std::move(node));
  return OkStatus();
}

Status StreamEngine::RegisterView(const std::string& view_name,
                                  const std::string& source_name,
                                  std::unique_ptr<Operator> transform,
                                  Schema view_schema) {
  EPL_RETURN_IF_ERROR(view_schema.Validate());
  if (nodes_.count(view_name) > 0) {
    return AlreadyExistsError("stream already registered: " + view_name);
  }
  EPL_ASSIGN_OR_RETURN(Node * source, FindNode(source_name));
  (void)source;

  Node node;
  node.schema = std::move(view_schema);
  node.is_view = true;
  nodes_.emplace(view_name, std::move(node));

  // The transform's output is dispatched into the view node. The dispatcher
  // sink looks the node up per event so that map growth cannot invalidate
  // anything (std::map nodes are stable anyway).
  auto dispatcher = std::make_unique<CallbackSink>([this,
                                                    view_name](const Event& e) {
    auto it = nodes_.find(view_name);
    if (it != nodes_.end()) {
      // Dispatch errors inside a view are surfaced via the source Push call
      // chain; CallbackSink has a void callback, so record and check here.
      Status status = Dispatch(it->second, e);
      EPL_CHECK(status.ok()) << "view dispatch failed: " << status;
    }
  });
  transform->AddDownstream(dispatcher.get());
  EPL_RETURN_IF_ERROR(transform->Open());

  auto source_it = nodes_.find(source_name);
  source_it->second.subscribers.push_back(transform.get());
  View view;
  view.source = source_name;
  view.transform = std::move(transform);
  view.dispatcher = std::move(dispatcher);
  views_.emplace(view_name, std::move(view));
  return OkStatus();
}

Status StreamEngine::UnregisterStream(const std::string& name) {
  auto node_it = nodes_.find(name);
  if (node_it == nodes_.end()) {
    return NotFoundError("unknown stream: " + name);
  }
  for (const auto& [id, deployment] : deployments_) {
    (void)id;
    if (deployment.node_name == name) {
      return FailedPreconditionError(
          "stream still has a deployed subscriber: " + name);
    }
  }
  for (const auto& [view_name, view] : views_) {
    if (view.source == name) {
      return FailedPreconditionError("stream still feeds view " + view_name +
                                     ": " + name);
    }
  }
  auto view_it = views_.find(name);
  if (view_it != views_.end()) {
    auto source_it = nodes_.find(view_it->second.source);
    if (source_it != nodes_.end()) {
      auto& subs = source_it->second.subscribers;
      subs.erase(std::remove(subs.begin(), subs.end(),
                             view_it->second.transform.get()),
                 subs.end());
    }
    Status closed = view_it->second.transform->Close();
    views_.erase(view_it);
    EPL_RETURN_IF_ERROR(closed);
  }
  nodes_.erase(node_it);
  return OkStatus();
}

Result<DeploymentId> StreamEngine::Deploy(const std::string& name,
                                          std::unique_ptr<Operator> op) {
  EPL_ASSIGN_OR_RETURN(Node * node, FindNode(name));
  EPL_RETURN_IF_ERROR(op->Open());
  node->subscribers.push_back(op.get());
  DeploymentId id = next_deployment_id_++;
  deployments_.emplace(id, Deployment{name, std::move(op)});
  return id;
}

Status StreamEngine::Undeploy(DeploymentId id) {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return NotFoundError("unknown deployment id");
  }
  auto node_it = nodes_.find(it->second.node_name);
  if (node_it != nodes_.end()) {
    auto& subs = node_it->second.subscribers;
    subs.erase(std::remove(subs.begin(), subs.end(), it->second.op.get()),
               subs.end());
  }
  EPL_RETURN_IF_ERROR(it->second.op->Close());
  deployments_.erase(it);
  return OkStatus();
}

Result<std::string> StreamEngine::DeploymentStream(DeploymentId id) const {
  auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return NotFoundError("unknown deployment id");
  }
  return it->second.node_name;
}

Status StreamEngine::Push(const std::string& stream_name, const Event& event) {
  EPL_ASSIGN_OR_RETURN(Node * node, FindNode(stream_name));
  if (node->is_view) {
    return FailedPreconditionError(
        "cannot push directly into view: " + stream_name);
  }
  if (static_cast<int>(event.values.size()) != node->schema.num_fields()) {
    return InvalidArgumentError(
        "event arity does not match schema of stream " + stream_name);
  }
  return Dispatch(*node, event);
}

Status StreamEngine::Dispatch(Node& node, const Event& event) {
  ++node.event_count;
  // Iterate over a snapshot (local: view dispatch nests): a Process
  // callback may Deploy new operators, which would reallocate the
  // subscriber vector. Operators deployed mid-dispatch see the next event.
  // Undeploy must not be called from within a callback; defer it to
  // between events instead.
  std::vector<Operator*> snapshot = node.subscribers;
  for (Operator* op : snapshot) {
    EPL_RETURN_IF_ERROR(op->Process(event));
  }
  return OkStatus();
}

bool StreamEngine::HasStream(const std::string& name) const {
  return nodes_.count(name) > 0;
}

Result<Schema> StreamEngine::GetSchema(const std::string& name) const {
  EPL_ASSIGN_OR_RETURN(const Node* node, FindNode(name));
  return node->schema;
}

Result<uint64_t> StreamEngine::EventCount(const std::string& name) const {
  EPL_ASSIGN_OR_RETURN(const Node* node, FindNode(name));
  return node->event_count;
}

std::vector<std::string> StreamEngine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) {
    names.push_back(name);
  }
  return names;
}

Result<StreamEngine::Node*> StreamEngine::FindNode(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return NotFoundError("unknown stream: " + name);
  }
  return &it->second;
}

Result<const StreamEngine::Node*> StreamEngine::FindNode(
    const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return NotFoundError("unknown stream: " + name);
  }
  return &it->second;
}

}  // namespace epl::stream
