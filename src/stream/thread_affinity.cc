#include "stream/thread_affinity.h"

#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace epl::stream {
namespace {

#if defined(__linux__)
// CPU ids in the process affinity mask, ascending. Empty when the mask
// cannot be read.
std::vector<int> AffinityCpuIds() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) {
    return {};
  }
  std::vector<int> ids;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) {
      ids.push_back(cpu);
    }
  }
  return ids;
}
#endif

int HardwareConcurrencyFloor() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int NumAffinityCpus() {
#if defined(__linux__)
  const std::vector<int> ids = AffinityCpuIds();
  if (!ids.empty()) {
    return static_cast<int>(ids.size());
  }
#endif
  return HardwareConcurrencyFloor();
}

bool PinCurrentThreadToAffinitySlot(int slot) {
#if defined(__linux__)
  if (slot < 0) {
    return false;
  }
  const std::vector<int> ids = AffinityCpuIds();
  if (ids.empty()) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(ids[static_cast<size_t>(slot) % ids.size()], &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No architectural hint: a compiler barrier keeps the poll loop honest.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace epl::stream
