// StreamEngine: named streams, derived views, and operator subscriptions.
//
// This is the AnduIN-substitute data stream management core (DESIGN.md S2).
// Sources push events into named streams; views transform a source stream
// on-the-fly (paper Sec. 3.2: the kinect_t view); match operators and sinks
// subscribe to streams or views. Deployments can be added and removed at
// runtime, which is what enables the paper's "exchange gestures during
// runtime" demonstration.
//
// The engine core is single-threaded and deterministic; stream/runner.h
// adds a threaded ingestion wrapper.

#ifndef EPL_STREAM_ENGINE_H_
#define EPL_STREAM_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/operator.h"
#include "stream/schema.h"

namespace epl::stream {

/// Handle for a deployed operator; used to undeploy.
using DeploymentId = uint64_t;

class StreamEngine {
 public:
  StreamEngine() = default;

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Declares a base stream that sources push into.
  Status RegisterStream(const std::string& name, Schema schema);

  /// Declares `view_name` as the result of applying `transform` to every
  /// event of `source_name`. Events the transform forwards are dispatched
  /// to the view's subscribers. The engine takes ownership of `transform`.
  Status RegisterView(const std::string& view_name,
                      const std::string& source_name,
                      std::unique_ptr<Operator> transform, Schema view_schema);

  /// Removes a stream or view (the reverse of RegisterStream/RegisterView),
  /// freeing its name for re-registration. Fails with FailedPrecondition
  /// while anything still depends on it: a live deployment subscribed to
  /// it, or a view deriving from it. Unregistering a view detaches and
  /// closes its transform. Must not be called from inside a dispatch.
  Status UnregisterStream(const std::string& name);

  /// Attaches `op` (engine takes ownership) as a subscriber of the stream
  /// or view `name`. Returns a handle for Undeploy().
  Result<DeploymentId> Deploy(const std::string& name,
                              std::unique_ptr<Operator> op);

  /// Detaches and destroys a previously deployed operator.
  Status Undeploy(DeploymentId id);

  /// Name of the stream or view a deployment subscribes to (used by the
  /// runtime add-query paths to validate that a new query reads the same
  /// stream as the deployment it joins).
  Result<std::string> DeploymentStream(DeploymentId id) const;

  /// Pushes one event into a base stream (error for views).
  Status Push(const std::string& stream_name, const Event& event);

  bool HasStream(const std::string& name) const;
  Result<Schema> GetSchema(const std::string& name) const;

  /// Number of events dispatched into `name` so far.
  Result<uint64_t> EventCount(const std::string& name) const;

  /// Names of all registered streams and views (sorted).
  std::vector<std::string> StreamNames() const;

  /// Number of live deployments (excluding view transforms).
  size_t deployment_count() const { return deployments_.size(); }

 private:
  struct Node {
    Schema schema;
    bool is_view = false;
    std::vector<Operator*> subscribers;
    uint64_t event_count = 0;
  };

  struct Deployment {
    std::string node_name;
    std::unique_ptr<Operator> op;
  };

  /// A view's machinery: the transform subscribed to the source stream and
  /// the sink dispatching its output into the view node. Keyed by view
  /// name so UnregisterStream can detach exactly this view again.
  struct View {
    std::string source;
    std::unique_ptr<Operator> transform;
    std::unique_ptr<Operator> dispatcher;
  };

  Status Dispatch(Node& node, const Event& event);

  Result<Node*> FindNode(const std::string& name);
  Result<const Node*> FindNode(const std::string& name) const;

  std::map<std::string, Node> nodes_;
  std::map<DeploymentId, Deployment> deployments_;
  std::map<std::string, View> views_;
  DeploymentId next_deployment_id_ = 1;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_ENGINE_H_
