#include "stream/runner.h"

namespace epl::stream {

EngineRunner::EngineRunner(StreamEngine* engine, size_t queue_capacity,
                           int spin_iterations)
    : engine_(engine), queue_(queue_capacity, spin_iterations) {}

EngineRunner::~EngineRunner() {
  if (running_.load()) {
    Stop().ok();
  }
}

Status EngineRunner::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("runner already started");
  }
  worker_status_ = OkStatus();
  worker_ = std::thread([this] { Run(); });
  return OkStatus();
}

bool EngineRunner::Enqueue(const std::string& stream, Event event) {
  return queue_.Push({stream, std::move(event)});
}

Status EngineRunner::Stop() {
  if (!running_.load()) {
    return FailedPreconditionError("runner not started");
  }
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();
  }
  running_.store(false);
  return worker_status_;
}

void EngineRunner::Run() {
  // Drain in bursts: one queue lock round-trip per burst instead of one
  // per event keeps the worker ahead of fast producers.
  constexpr size_t kBurst = 64;
  std::vector<std::pair<std::string, Event>> batch;
  batch.reserve(kBurst);
  while (true) {
    batch.clear();
    if (queue_.PopBatch(&batch, kBurst) == 0) {
      return;
    }
    for (std::pair<std::string, Event>& item : batch) {
      Status status = engine_->Push(item.first, item.second);
      if (!status.ok() && worker_status_.ok()) {
        worker_status_ = status;
      }
      processed_.fetch_add(1);
    }
  }
}

}  // namespace epl::stream
