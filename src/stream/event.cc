#include "stream/event.h"

#include "common/string_util.h"

namespace epl::stream {

std::string Event::ToString() const {
  std::string out = StrFormat("@%lld [", static_cast<long long>(timestamp));
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += StrFormat("%.3f", values[i]);
  }
  out += "]";
  return out;
}

}  // namespace epl::stream
