// EngineRunner: threaded ingestion wrapper around StreamEngine.
//
// Producers enqueue (stream, event) pairs from any thread; a single worker
// thread drains the queue and pushes into the engine, preserving the
// engine's single-threaded execution model.

#ifndef EPL_STREAM_RUNNER_H_
#define EPL_STREAM_RUNNER_H_

#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "stream/bounded_queue.h"
#include "stream/engine.h"

namespace epl::stream {

class EngineRunner {
 public:
  /// The runner does not own the engine; the engine must outlive it.
  /// No other thread may call engine->Push while the runner is running.
  /// `spin_iterations` > 0 makes the worker spin-then-park on an empty
  /// queue (see BoundedQueue): lower dispatch latency for producers that
  /// enqueue every few microseconds, at the price of idle CPU.
  explicit EngineRunner(StreamEngine* engine, size_t queue_capacity = 1024,
                        int spin_iterations = 0);
  ~EngineRunner();

  EngineRunner(const EngineRunner&) = delete;
  EngineRunner& operator=(const EngineRunner&) = delete;

  /// Starts the worker thread. Error if already running.
  Status Start();

  /// Blocking enqueue; returns false after Stop().
  bool Enqueue(const std::string& stream, Event event);

  /// Drains the queue, stops the worker, and returns the first engine error
  /// encountered (if any).
  Status Stop();

  uint64_t processed() const { return processed_.load(); }
  bool running() const { return running_.load(); }

 private:
  void Run();

  StreamEngine* engine_;
  BoundedQueue<std::pair<std::string, Event>> queue_;
  std::thread worker_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> processed_{0};
  Status worker_status_;
};

}  // namespace epl::stream

#endif  // EPL_STREAM_RUNNER_H_
