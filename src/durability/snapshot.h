// Snapshot: versioned binary run-state checkpoints, plus the typed WAL
// records the GestureRuntime logs between them.
//
// A checkpoint is a consistent cut of the whole runtime at a quiesced
// event boundary: the open sessions, every deployed query (its canonical
// query text from the unparser, its gesture name, its session whose gate
// it carries), and every query's live NFA runs and statistics
// (cep::NfaRunState, the ExtractPattern-shaped materialization). Recovery
// rebuilds the runtime from the newest valid snapshot and replays the WAL
// suffix with seq >= Snapshot::wal_seq.
//
// On-disk layout:
//
//   <dir>/snapshot-<wal_seq, 20 digits>.snap
//
//   file := "EPLSNAP1" | u32 version | u32 body_len | u32 crc32(body)
//           | body
//
// written to a ".tmp" sibling, fsynced, atomically renamed, and sealed
// with a directory fsync -- so a visible snapshot file is complete by
// construction and a bit-flipped one is rejected by CRC (recovery then
// falls back to the next-newest). WAL record payloads reuse the same
// codec; gesture definitions travel as gesturedb/serialization text and
// query text as the canonical unparser rendering, so the durable formats
// share one schema with the gesture database.

#ifndef EPL_DURABILITY_SNAPSHOT_H_
#define EPL_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cep/matcher.h"
#include "durability/codec.h"
#include "durability/file.h"
#include "stream/event.h"

namespace epl::durability {

/// One typed record of the runtime WAL. Events carry the already
/// transformed stream::Event exactly as it was pushed; mutations carry
/// the session plus the names/serialized definition needed to reapply
/// them.
struct WalRecord {
  enum class Type : uint8_t {
    kEvent = 1,         // session, event
    kOpenSession = 2,   // session (the assigned id), name (the user)
    kCloseSession = 3,  // session
    kDeploy = 4,        // session, name, definition (gesturedb text)
    kUndeploy = 5,      // session, name
    /// session, name, definition (workflow::SerializeComposite text).
    /// Replay re-resolves the composite's inputs against the queries live
    /// at that point of the log -- derived detection events themselves are
    /// NEVER logged; recovery re-derives them from replayed base events.
    kDeployComposite = 6,
  };

  Type type = Type::kEvent;
  int session = -1;  // workflow::kLocalSession for the classic pipeline
  stream::Event event;
  std::string name;
  std::string definition;
};

std::string EncodeWalRecord(const WalRecord& record);
/// Appends the encoding to `out` -- the ingest hot path reuses one writer
/// across records to stay allocation-free.
void EncodeWalRecord(const WalRecord& record, ByteWriter* out);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// Run-state codec shared by snapshots and the Extract/Adopt round-trip
/// (tests serialize a detached matcher through exactly this).
void EncodeRunState(const cep::NfaRunState& state, ByteWriter* out);
Result<cep::NfaRunState> DecodeRunState(ByteReader* in);

/// One open session at the cut. Sessions with id < 0 carry only the
/// event counter of the classic local pipeline.
struct SessionState {
  int id = 0;
  std::string user;
  /// Frames durably ingested for this session up to the cut -- the index
  /// a crashed producer resumes pushing from.
  uint64_t ingested_events = 0;
};

/// One deployed query at the cut, in restoration order.
struct QueryState {
  int session = -1;
  std::string name;        // gesture name (deploy key)
  std::string query_text;  // canonical unparser rendering, rescoped
  /// Composite level (0 = base query; see cep/composite.h). Level >= 1
  /// queries restore from `definition` (workflow::SerializeComposite
  /// text, which round-trips gesture tags exactly) and `stream` (the
  /// channel the composite's inputs feed), not from query_text.
  int level = 0;
  std::string stream;
  std::string definition;
  cep::NfaRunState runs;
};

struct Snapshot {
  /// WAL records with seq < wal_seq are reflected in this snapshot;
  /// recovery replays from here.
  uint64_t wal_seq = 0;
  int next_session_id = 0;
  std::vector<SessionState> sessions;
  std::vector<QueryState> queries;
};

/// Atomically writes `snapshot` as <dir>/snapshot-<wal_seq>.snap.
Status WriteSnapshot(FileSystem* fs, const std::string& dir,
                     const Snapshot& snapshot);

/// Reads the newest valid snapshot in `dir`. A corrupt newer file is
/// skipped (with the older fallback used); NotFound when none exists.
Result<Snapshot> ReadLatestSnapshot(FileSystem* fs, const std::string& dir);

/// Deletes snapshot files older than the one covering `keep_seq`, plus
/// any leftover ".tmp" from an interrupted write.
Status RemoveStaleSnapshots(FileSystem* fs, const std::string& dir,
                            uint64_t keep_seq);

}  // namespace epl::durability

#endif  // EPL_DURABILITY_SNAPSHOT_H_
