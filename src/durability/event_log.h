// EventLog: a length-prefixed, CRC32-framed write-ahead log with segment
// rotation and torn-tail recovery.
//
// On-disk layout (all integers little-endian):
//
//   <dir>/wal-<first_seq, 20 digits>.log     one segment per file
//
//   segment := record*
//   record  := u32 body_len | u32 crc32(body) | body
//   body    := u64 seq | payload bytes
//
// Sequence numbers are contiguous across segments; a segment's file name
// embeds the sequence number of its first record, so ordering and
// checkpoint-coverage checks need only the directory listing. Open() scans
// every segment: a partial or CRC-broken record at the tail of the LAST
// segment is a torn write (the process died mid-append) and is truncated
// away -- never an error; the same damage anywhere else is real corruption
// and surfaces as DataLoss naming the segment and offset.
//
// Appends are framed in memory and handed to the file either immediately
// (buffer_bytes == 0: a SIGKILL'd process loses nothing that Append
// returned OK for -- the page cache survives) or via a user-space batch
// buffer that a single write() drains (buffer_bytes > 0: a process crash
// can additionally lose the still-buffered tail, the same loss class the
// torn-tail scan already repairs). fsync is group-committed: every
// `sync_every_records` records and/or every `sync_interval_ms`
// milliseconds, plus at rotation, Sync() and Close(). A write error is
// sticky: the log refuses further appends until reopened, because the
// file tail is in an unknown (possibly torn) state.

#ifndef EPL_DURABILITY_EVENT_LOG_H_
#define EPL_DURABILITY_EVENT_LOG_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "durability/file.h"

namespace epl::durability {

struct EventLogOptions {
  /// A segment is rotated once it grows past this size.
  uint64_t segment_bytes = 4ull << 20;
  /// fsync after every this many appended records (0: no count-based
  /// trigger). Batched group commit; see the class comment.
  uint64_t sync_every_records = 0;
  /// fsync at the first append after this many milliseconds since the
  /// last sync (0: no time-based trigger). Bounds the power-loss window
  /// in wall time instead of record count, so slow streams still commit
  /// promptly and fast streams amortize.
  uint64_t sync_interval_ms = 50;
  /// Batch appended frames in user space and drain them with one write()
  /// once this many bytes accumulate (0: one write() per record). The
  /// buffer also drains at every sync, rotation, Replay and Close.
  uint64_t buffer_bytes = 0;
};

class EventLog {
 public:
  /// Opens (creating if necessary) the log in `dir`, validates every
  /// segment, truncates a torn tail, and positions for appending.
  static Result<std::unique_ptr<EventLog>> Open(
      const std::string& dir, EventLogOptions options = {},
      FileSystem* fs = nullptr);

  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one record and returns its sequence number.
  Result<uint64_t> Append(std::string_view payload);

  /// Durably flushes everything appended so far.
  Status Sync();

  /// Drains the user-space batch buffer into the segment file WITHOUT
  /// fsync: after this, everything appended so far survives a process
  /// crash (page cache), though not a power loss.
  Status FlushBuffered();

  /// Seals the current segment and starts a new one (no-op while the
  /// current segment is empty). Checkpoints rotate first so every segment
  /// is wholly before or after the snapshot boundary.
  Status RotateSegment();

  /// Deletes every segment whose records all have seq < `seq` (the active
  /// segment is never deleted). Called after a snapshot covering
  /// [0, seq) became durable.
  Status DropSegmentsBelow(uint64_t seq);

  /// Streams every durable record with seq >= `from_seq`, in order.
  Status Replay(uint64_t from_seq,
                const std::function<Status(uint64_t seq,
                                           std::string_view payload)>& fn);

  /// Sequence number the next Append will return.
  uint64_t next_seq() const { return next_seq_; }
  /// Segment file names, oldest first.
  std::vector<std::string> SegmentNames() const;

 private:
  struct Segment {
    std::string name;
    uint64_t first_seq = 0;  // name-embedded; == next_seq_ while empty
    uint64_t num_records = 0;
  };

  EventLog(FileSystem* fs, std::string dir, EventLogOptions options);

  std::string SegmentPath(const Segment& segment) const;
  static std::string SegmentName(uint64_t first_seq);
  /// Scans one segment file's records; `last` enables torn-tail
  /// truncation. Updates next_seq_ and the segment's record count; calls
  /// `fn` (optional) per record.
  Status ScanSegment(
      Segment* segment, bool last,
      const std::function<Status(uint64_t, std::string_view)>* fn);
  Status OpenActive();

  FileSystem* fs_;
  std::string dir_;
  EventLogOptions options_;

  std::vector<Segment> segments_;
  std::unique_ptr<File> active_;
  uint64_t active_bytes_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t records_since_sync_ = 0;
  std::chrono::steady_clock::time_point last_sync_ =
      std::chrono::steady_clock::now();
  Status status_;  // sticky write failure
  std::string scratch_;
  std::string buffer_;  // framed records not yet handed to active_
};

}  // namespace epl::durability

#endif  // EPL_DURABILITY_EVENT_LOG_H_
