#include "durability/crash_point.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace epl::durability {

namespace {

// The armed target. Written under g_mu, read on the crash path after the
// g_armed fast gate (single-threaded durability writers; the atomic gate
// only keeps the disarmed hot path free of locks).
std::mutex g_mu;
std::string* g_target = nullptr;
std::atomic<int> g_remaining{0};

[[noreturn]] void Die() {
  // SIGKILL, exactly like an external `kill -9`: no atexit handlers, no
  // stream flushes, no destructor-ordered teardown -- the on-disk state is
  // whatever the completed syscalls left behind.
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; keeps [[noreturn]] honest
}

// Environment arming: EPL_CRASH_POINT="<name>" or "<name>:<nth>".
[[maybe_unused]] const bool g_env_loaded = [] {
  const char* spec = std::getenv("EPL_CRASH_POINT");
  if (spec != nullptr && *spec != '\0') {
    std::string name(spec);
    int nth = 1;
    const size_t colon = name.rfind(':');
    if (colon != std::string::npos) {
      nth = std::max(1, std::atoi(name.c_str() + colon + 1));
      name.resize(colon);
    }
    ArmCrashPoint(name, nth);
  }
  return true;
}();

}  // namespace

const std::vector<std::string>& RegisteredCrashPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "wal_append_mid_record",  // header written, payload not yet
      "wal_append_post_write",  // record complete, before the batched fsync
      "wal_rotate_pre_sync",    // full segment about to be fsynced
      "wal_rotate_pre_open",    // old segment sealed, next not yet created
      "snapshot_mid_write",     // partial snapshot temp file
      "snapshot_pre_rename",    // complete temp, not yet visible
      "snapshot_post_rename",   // snapshot live, stale files not yet pruned
      "wal_truncate_mid",       // some covered WAL segments already deleted
  };
  return *points;
}

void ArmCrashPoint(const std::string& name, int nth) {
  std::lock_guard<std::mutex> lock(g_mu);
  delete g_target;
  g_target = new std::string(name);
  g_remaining.store(std::max(1, nth), std::memory_order_relaxed);
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void DisarmCrashPoints() {
  std::lock_guard<std::mutex> lock(g_mu);
  internal::g_armed.store(false, std::memory_order_relaxed);
  delete g_target;
  g_target = nullptr;
}

bool CrashPointsArmed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

namespace internal {

std::atomic<bool> g_armed{false};

void CrashIfArmed(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_target == nullptr || *g_target != name) {
    return;
  }
  if (g_remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
    Die();
  }
}

}  // namespace internal

}  // namespace epl::durability
