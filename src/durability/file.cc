#include "durability/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace epl::durability {

namespace {

Status ErrnoError(std::string_view op, const std::string& path) {
  const std::string message =
      std::string(op) + " " + path + ": " + std::strerror(errno);
  return errno == ENOSPC ? ResourceExhaustedError(message)
                         : InternalError(message);
}

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return FailedPreconditionError("append to closed file: " + path_);
    }
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoError("write", path_);
      }
      written += static_cast<size_t>(n);
    }
    return OkStatus();
  }

  Status Sync() override {
    if (fd_ < 0) {
      return FailedPreconditionError("sync of closed file: " + path_);
    }
    if (::fsync(fd_) != 0) {
      return ErrnoError("fsync", path_);
    }
    return OkStatus();
  }

  Status Close() override {
    if (fd_ < 0) {
      return OkStatus();
    }
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoError("close", path_);
    }
    return OkStatus();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<File>> OpenAppend(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return ErrnoError("open", path);
    }
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return NotFoundError("no such file: " + path);
      }
      return ErrnoError("open", path);
    }
    std::string out;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        Status status = ErrnoError("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) {
        break;
      }
      out.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
      if (errno == ENOENT) {
        return NotFoundError("no such directory: " + dir);
      }
      return ErrnoError("opendir", dir);
    }
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        names.push_back(name);
      }
    }
    ::closedir(handle);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir", dir);
    }
    return OkStatus();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoError("unlink", path);
    }
    return OkStatus();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename", from + " -> " + to);
    }
    return OkStatus();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoError("truncate", path);
    }
    return OkStatus();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        return NotFoundError("no such file: " + path);
      }
      return ErrnoError("stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return ErrnoError("open", dir);
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return ErrnoError("fsync", dir);
    }
    return OkStatus();
  }
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

}  // namespace epl::durability
