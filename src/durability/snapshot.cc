#include "durability/snapshot.h"

#include <algorithm>
#include <cstdlib>

#include "durability/crash_point.h"

namespace epl::durability {

namespace {

constexpr char kMagic[] = "EPLSNAP1";  // 8 bytes, versioned
// Version 2 added QueryState::{level, stream, definition} (composite
// gestures); version-1 snapshots still decode, with those fields
// defaulted (v1 runtimes had no composites to restore).
constexpr uint32_t kVersion = 2;
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".snap";
constexpr char kTmpSuffix[] = ".tmp";

std::string SnapshotName(uint64_t wal_seq) {
  std::string digits = std::to_string(wal_seq);
  return kSnapshotPrefix + std::string(20 - digits.size(), '0') + digits +
         kSnapshotSuffix;
}

bool ParseSnapshotName(const std::string& name, uint64_t* wal_seq) {
  const size_t prefix = sizeof(kSnapshotPrefix) - 1;
  const size_t suffix = sizeof(kSnapshotSuffix) - 1;
  if (name.size() <= prefix + suffix ||
      name.compare(0, prefix, kSnapshotPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSnapshotSuffix) != 0) {
    return false;
  }
  *wal_seq = std::strtoull(name.c_str() + prefix, nullptr, 10);
  return true;
}

void EncodeEvent(const stream::Event& event, ByteWriter* out) {
  out->PutI64(event.timestamp);
  out->PutU64(event.values.size());
  out->PutDoubles(event.values.data(), event.values.size());
}

Result<stream::Event> DecodeEvent(ByteReader* in) {
  stream::Event event;
  EPL_ASSIGN_OR_RETURN(event.timestamp, in->ReadI64());
  EPL_ASSIGN_OR_RETURN(uint64_t count, in->ReadU64());
  if (count > in->remaining() / 8) {
    return DataLossError("event value count " + std::to_string(count) +
                         " exceeds the remaining input");
  }
  event.values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    EPL_ASSIGN_OR_RETURN(double v, in->ReadDouble());
    event.values.push_back(v);
  }
  return event;
}

void EncodeSnapshotBody(const Snapshot& snapshot, ByteWriter* out) {
  out->PutU64(snapshot.wal_seq);
  out->PutI64(snapshot.next_session_id);
  out->PutU64(snapshot.sessions.size());
  for (const SessionState& session : snapshot.sessions) {
    out->PutI64(session.id);
    out->PutString(session.user);
    out->PutU64(session.ingested_events);
  }
  out->PutU64(snapshot.queries.size());
  for (const QueryState& query : snapshot.queries) {
    out->PutI64(query.session);
    out->PutString(query.name);
    out->PutString(query.query_text);
    out->PutI64(query.level);
    out->PutString(query.stream);
    out->PutString(query.definition);
    EncodeRunState(query.runs, out);
  }
}

Result<Snapshot> DecodeSnapshotBody(std::string_view body, uint32_t version) {
  ByteReader in(body);
  Snapshot snapshot;
  EPL_ASSIGN_OR_RETURN(snapshot.wal_seq, in.ReadU64());
  EPL_ASSIGN_OR_RETURN(int64_t next_id, in.ReadI64());
  snapshot.next_session_id = static_cast<int>(next_id);
  EPL_ASSIGN_OR_RETURN(uint64_t num_sessions, in.ReadU64());
  for (uint64_t i = 0; i < num_sessions; ++i) {
    SessionState session;
    EPL_ASSIGN_OR_RETURN(int64_t id, in.ReadI64());
    session.id = static_cast<int>(id);
    EPL_ASSIGN_OR_RETURN(session.user, in.ReadString());
    EPL_ASSIGN_OR_RETURN(session.ingested_events, in.ReadU64());
    snapshot.sessions.push_back(std::move(session));
  }
  EPL_ASSIGN_OR_RETURN(uint64_t num_queries, in.ReadU64());
  for (uint64_t i = 0; i < num_queries; ++i) {
    QueryState query;
    EPL_ASSIGN_OR_RETURN(int64_t session, in.ReadI64());
    query.session = static_cast<int>(session);
    EPL_ASSIGN_OR_RETURN(query.name, in.ReadString());
    EPL_ASSIGN_OR_RETURN(query.query_text, in.ReadString());
    if (version >= 2) {
      EPL_ASSIGN_OR_RETURN(int64_t level, in.ReadI64());
      query.level = static_cast<int>(level);
      EPL_ASSIGN_OR_RETURN(query.stream, in.ReadString());
      EPL_ASSIGN_OR_RETURN(query.definition, in.ReadString());
    }
    EPL_ASSIGN_OR_RETURN(query.runs, DecodeRunState(&in));
    snapshot.queries.push_back(std::move(query));
  }
  if (!in.done()) {
    return DataLossError("snapshot body carries " +
                         std::to_string(in.remaining()) +
                         " trailing bytes");
  }
  return snapshot;
}

}  // namespace

void EncodeWalRecord(const WalRecord& record, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(record.type));
  out->PutI64(record.session);
  switch (record.type) {
    case WalRecord::Type::kEvent:
      EncodeEvent(record.event, out);
      break;
    case WalRecord::Type::kOpenSession:
    case WalRecord::Type::kUndeploy:
      out->PutString(record.name);
      break;
    case WalRecord::Type::kCloseSession:
      break;
    case WalRecord::Type::kDeploy:
    case WalRecord::Type::kDeployComposite:
      out->PutString(record.name);
      out->PutString(record.definition);
      break;
  }
}

std::string EncodeWalRecord(const WalRecord& record) {
  ByteWriter out;
  EncodeWalRecord(record, &out);
  return out.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  ByteReader in(payload);
  WalRecord record;
  EPL_ASSIGN_OR_RETURN(uint8_t type, in.ReadU8());
  if (type < static_cast<uint8_t>(WalRecord::Type::kEvent) ||
      type > static_cast<uint8_t>(WalRecord::Type::kDeployComposite)) {
    return DataLossError("unknown WAL record type " + std::to_string(type));
  }
  record.type = static_cast<WalRecord::Type>(type);
  EPL_ASSIGN_OR_RETURN(int64_t session, in.ReadI64());
  record.session = static_cast<int>(session);
  switch (record.type) {
    case WalRecord::Type::kEvent: {
      EPL_ASSIGN_OR_RETURN(record.event, DecodeEvent(&in));
      break;
    }
    case WalRecord::Type::kOpenSession:
    case WalRecord::Type::kUndeploy: {
      EPL_ASSIGN_OR_RETURN(record.name, in.ReadString());
      break;
    }
    case WalRecord::Type::kCloseSession:
      break;
    case WalRecord::Type::kDeploy:
    case WalRecord::Type::kDeployComposite: {
      EPL_ASSIGN_OR_RETURN(record.name, in.ReadString());
      EPL_ASSIGN_OR_RETURN(record.definition, in.ReadString());
      break;
    }
  }
  if (!in.done()) {
    return DataLossError("WAL record carries " +
                         std::to_string(in.remaining()) + " trailing bytes");
  }
  return record;
}

void EncodeRunState(const cep::NfaRunState& state, ByteWriter* out) {
  out->PutU64(state.runs.size());
  for (const cep::NfaRunState::Run& run : state.runs) {
    out->PutI64(run.state);
    out->PutU64(run.times.size());
    for (const TimePoint t : run.times) {
      out->PutI64(t);
    }
  }
  out->PutU64(state.stats.events);
  out->PutU64(state.stats.predicate_evaluations);
  out->PutU64(state.stats.predicate_cache_hits);
  out->PutU64(state.stats.matches);
  out->PutU64(state.stats.dropped_runs);
  out->PutU64(state.stats.peak_runs);
}

Result<cep::NfaRunState> DecodeRunState(ByteReader* in) {
  cep::NfaRunState state;
  EPL_ASSIGN_OR_RETURN(uint64_t num_runs, in->ReadU64());
  if (num_runs > in->remaining() / 16) {
    return DataLossError("run count " + std::to_string(num_runs) +
                         " exceeds the remaining input");
  }
  for (uint64_t i = 0; i < num_runs; ++i) {
    cep::NfaRunState::Run run;
    EPL_ASSIGN_OR_RETURN(int64_t run_state, in->ReadI64());
    run.state = static_cast<int>(run_state);
    EPL_ASSIGN_OR_RETURN(uint64_t num_times, in->ReadU64());
    if (num_times > in->remaining() / 8) {
      return DataLossError("run time count " + std::to_string(num_times) +
                           " exceeds the remaining input");
    }
    run.times.reserve(num_times);
    for (uint64_t k = 0; k < num_times; ++k) {
      EPL_ASSIGN_OR_RETURN(TimePoint t, in->ReadI64());
      run.times.push_back(t);
    }
    state.runs.push_back(std::move(run));
  }
  EPL_ASSIGN_OR_RETURN(state.stats.events, in->ReadU64());
  EPL_ASSIGN_OR_RETURN(state.stats.predicate_evaluations, in->ReadU64());
  EPL_ASSIGN_OR_RETURN(state.stats.predicate_cache_hits, in->ReadU64());
  EPL_ASSIGN_OR_RETURN(state.stats.matches, in->ReadU64());
  EPL_ASSIGN_OR_RETURN(state.stats.dropped_runs, in->ReadU64());
  EPL_ASSIGN_OR_RETURN(uint64_t peak, in->ReadU64());
  state.stats.peak_runs = static_cast<size_t>(peak);
  return state;
}

Status WriteSnapshot(FileSystem* fs, const std::string& dir,
                     const Snapshot& snapshot) {
  ByteWriter body;
  EncodeSnapshotBody(snapshot, &body);

  ByteWriter header;
  header.PutU32(kVersion);
  header.PutU32(static_cast<uint32_t>(body.str().size()));
  header.PutU32(Crc32c(body.str()));

  const std::string name = SnapshotName(snapshot.wal_seq);
  const std::string tmp_path = dir + "/" + name + kTmpSuffix;
  const std::string final_path = dir + "/" + name;

  EPL_ASSIGN_OR_RETURN(std::unique_ptr<File> file, fs->OpenAppend(tmp_path));
  EPL_RETURN_IF_ERROR(file->Append(kMagic));
  EPL_RETURN_IF_ERROR(file->Append(header.str()));
  EPL_CRASH_POINT("snapshot_mid_write");
  EPL_RETURN_IF_ERROR(file->Append(body.str()));
  EPL_RETURN_IF_ERROR(file->Sync());
  EPL_RETURN_IF_ERROR(file->Close());
  EPL_CRASH_POINT("snapshot_pre_rename");
  EPL_RETURN_IF_ERROR(fs->Rename(tmp_path, final_path));
  EPL_RETURN_IF_ERROR(fs->SyncDir(dir));
  EPL_CRASH_POINT("snapshot_post_rename");
  return OkStatus();
}

Result<Snapshot> ReadLatestSnapshot(FileSystem* fs, const std::string& dir) {
  EPL_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  // Fixed-width names: ascending listing order is ascending wal_seq.
  Status last_error = NotFoundError("no snapshot in " + dir);
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    uint64_t wal_seq = 0;
    if (!ParseSnapshotName(*it, &wal_seq)) {
      continue;
    }
    const std::string path = dir + "/" + *it;
    EPL_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
    auto parse = [&]() -> Result<Snapshot> {
      const size_t magic = sizeof(kMagic) - 1;
      if (data.size() < magic + 12 ||
          data.compare(0, magic, kMagic) != 0) {
        return DataLossError("bad snapshot magic");
      }
      ByteReader header(std::string_view(data).substr(magic, 12));
      EPL_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
      if (version < 1 || version > kVersion) {
        return DataLossError("unsupported snapshot version " +
                             std::to_string(version));
      }
      EPL_ASSIGN_OR_RETURN(uint32_t body_len, header.ReadU32());
      EPL_ASSIGN_OR_RETURN(uint32_t crc, header.ReadU32());
      const std::string_view body =
          std::string_view(data).substr(magic + 12);
      if (body.size() != body_len || Crc32c(body) != crc) {
        return DataLossError("snapshot body fails its CRC");
      }
      EPL_ASSIGN_OR_RETURN(Snapshot snapshot,
                           DecodeSnapshotBody(body, version));
      if (snapshot.wal_seq != wal_seq) {
        return DataLossError("snapshot name/body wal_seq mismatch");
      }
      return snapshot;
    };
    Result<Snapshot> snapshot = parse();
    if (snapshot.ok()) {
      return snapshot;
    }
    // A corrupt newer snapshot: remember why and fall back to the next
    // older one (the WAL is only truncated after a snapshot is durable,
    // so an older snapshot still has its full replay suffix).
    last_error = snapshot.status().WithContext(path);
  }
  return last_error;
}

Status RemoveStaleSnapshots(FileSystem* fs, const std::string& dir,
                            uint64_t keep_seq) {
  EPL_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    const size_t tmp = sizeof(kTmpSuffix) - 1;
    const bool is_tmp =
        name.size() > tmp &&
        name.compare(name.size() - tmp, tmp, kTmpSuffix) == 0;
    uint64_t wal_seq = 0;
    if (is_tmp && name.compare(0, sizeof(kSnapshotPrefix) - 1,
                               kSnapshotPrefix) == 0) {
      EPL_RETURN_IF_ERROR(fs->Remove(dir + "/" + name));
      continue;
    }
    if (ParseSnapshotName(name, &wal_seq) && wal_seq < keep_seq) {
      EPL_RETURN_IF_ERROR(fs->Remove(dir + "/" + name));
    }
  }
  return OkStatus();
}

}  // namespace epl::durability
