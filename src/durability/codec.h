// Little-endian binary codec and CRC-32C for the durability formats.
//
// ByteWriter/ByteReader are the only (de)serialization primitives the WAL
// and snapshot formats use: fixed-width little-endian integers, bit-cast
// doubles (exact round trip, NaN included), and length-prefixed strings.
// Every ByteReader read is bounds-checked and Status-returning, so a
// truncated or bit-flipped input surfaces as a DataLoss error, never as
// undefined behavior -- the corruption-matrix tests feed these decoders
// every prefix and single-byte flip of valid inputs.

#ifndef EPL_DURABILITY_CODEC_H_
#define EPL_DURABILITY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace epl::durability {

/// CRC-32C (Castagnoli polynomial; hardware-accelerated via SSE4.2 where
/// available, software slicing-by-8 otherwise -- both produce identical
/// checksums). `seed` chains incremental updates:
/// Crc32c(b, Crc32c(a)) == Crc32c(ab).
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_.append(b, sizeof(b));
  }

  void PutU64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_.append(b, sizeof(b));
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Bulk form of PutDouble: identical bytes, one append. The WAL event
  /// payload is almost entirely doubles, so this is the hot encode path.
  void PutDoubles(const double* v, size_t n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    out_.append(reinterpret_cast<const char*>(v), n * sizeof(double));
#else
    for (size_t i = 0; i < n; ++i) {
      PutDouble(v[i]);
    }
#endif
  }

  void PutString(std::string_view s) {
    PutU64(s.size());
    out_.append(s.data(), s.size());
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }
  /// Resets for reuse, keeping the allocated capacity.
  void Clear() { out_.clear(); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) {
      return Truncated("u8");
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) {
      return Truncated("u32");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) {
      return Truncated("u64");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int64_t> ReadI64() {
    EPL_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }

  Result<double> ReadDouble() {
    EPL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> ReadString() {
    EPL_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
    if (size > remaining()) {
      return Truncated("string of " + std::to_string(size) + " bytes");
    }
    std::string s(data_.substr(pos_, size));
    pos_ += size;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Truncated(std::string_view what) const {
    return DataLossError("truncated input: " + std::string(what) +
                         " at offset " + std::to_string(pos_) + " of " +
                         std::to_string(data_.size()));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace epl::durability

#endif  // EPL_DURABILITY_CODEC_H_
