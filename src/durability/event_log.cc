#include "durability/event_log.h"

#include <algorithm>

#include "durability/codec.h"
#include "durability/crash_point.h"

namespace epl::durability {

namespace {

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr size_t kHeaderBytes = 8;  // u32 len + u32 crc
constexpr size_t kSeqBytes = 8;     // u64 seq leading the body

void PutU32At(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32At(std::string_view data, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(std::string_view data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

EventLog::EventLog(FileSystem* fs, std::string dir, EventLogOptions options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {
  options_.segment_bytes = std::max<uint64_t>(1, options_.segment_bytes);
}

EventLog::~EventLog() {
  if (active_ != nullptr) {
    (void)Sync();
    (void)active_->Close();
  }
}

std::string EventLog::SegmentName(uint64_t first_seq) {
  std::string digits = std::to_string(first_seq);
  return kSegmentPrefix + std::string(20 - digits.size(), '0') + digits +
         kSegmentSuffix;
}

std::string EventLog::SegmentPath(const Segment& segment) const {
  return dir_ + "/" + segment.name;
}

Result<std::unique_ptr<EventLog>> EventLog::Open(const std::string& dir,
                                                 EventLogOptions options,
                                                 FileSystem* fs) {
  if (fs == nullptr) {
    fs = DefaultFileSystem();
  }
  EPL_RETURN_IF_ERROR(fs->CreateDir(dir));
  std::unique_ptr<EventLog> log(new EventLog(fs, dir, options));

  EPL_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    const size_t prefix = sizeof(kSegmentPrefix) - 1;
    const size_t suffix = sizeof(kSegmentSuffix) - 1;
    if (name.size() <= prefix + suffix ||
        name.compare(0, prefix, kSegmentPrefix) != 0 ||
        name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
      continue;
    }
    Segment segment;
    segment.name = name;
    segment.first_seq =
        std::strtoull(name.c_str() + prefix, nullptr, 10);
    log->segments_.push_back(std::move(segment));
  }
  // Fixed-width zero-padded names: the sorted listing is sequence order.

  for (size_t i = 0; i < log->segments_.size(); ++i) {
    const bool last = i + 1 == log->segments_.size();
    EPL_RETURN_IF_ERROR(
        log->ScanSegment(&log->segments_[i], last, nullptr));
  }
  EPL_RETURN_IF_ERROR(log->OpenActive());
  return log;
}

Status EventLog::ScanSegment(
    Segment* segment, bool last,
    const std::function<Status(uint64_t, std::string_view)>* fn) {
  const std::string path = SegmentPath(*segment);
  EPL_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(path));
  size_t pos = 0;
  uint64_t expected = segment->first_seq;
  uint64_t records = 0;
  while (pos < data.size()) {
    const size_t remaining = data.size() - pos;
    bool torn = remaining < kHeaderBytes;
    uint32_t len = 0;
    if (!torn) {
      len = ReadU32At(data, pos);
      torn = static_cast<uint64_t>(len) > remaining - kHeaderBytes;
    }
    if (torn) {
      if (!last) {
        return DataLossError("partial record inside closed WAL segment " +
                             path + " at offset " + std::to_string(pos));
      }
      // Torn tail: the process died mid-append. Drop the partial record.
      EPL_RETURN_IF_ERROR(fs_->Truncate(path, pos));
      break;
    }
    const uint32_t crc = ReadU32At(data, pos + 4);
    const std::string_view body(data.data() + pos + kHeaderBytes, len);
    if (len < kSeqBytes || Crc32c(body) != crc) {
      if (last && fn == nullptr) {
        // A CRC-broken record at the tail of the live segment: treat the
        // rest of the file as torn. (During Replay the log was already
        // repaired by Open, so a mismatch there is real corruption.)
        EPL_RETURN_IF_ERROR(fs_->Truncate(path, pos));
        break;
      }
      return DataLossError("corrupt WAL record in " + path + " at offset " +
                           std::to_string(pos));
    }
    const uint64_t seq = ReadU64At(data, pos + kHeaderBytes);
    if (seq != expected) {
      return DataLossError("WAL sequence gap in " + path + ": record " +
                           std::to_string(seq) + " where " +
                           std::to_string(expected) + " was expected");
    }
    if (fn != nullptr) {
      EPL_RETURN_IF_ERROR(
          (*fn)(seq, body.substr(kSeqBytes)));
    }
    ++expected;
    ++records;
    pos += kHeaderBytes + len;
  }
  segment->num_records = records;
  if (fn == nullptr) {
    next_seq_ = std::max(next_seq_, expected);
  }
  return OkStatus();
}

Status EventLog::OpenActive() {
  if (segments_.empty()) {
    Segment segment;
    segment.first_seq = next_seq_;
    segment.name = SegmentName(next_seq_);
    segments_.push_back(std::move(segment));
    EPL_ASSIGN_OR_RETURN(active_,
                         fs_->OpenAppend(SegmentPath(segments_.back())));
    EPL_RETURN_IF_ERROR(fs_->SyncDir(dir_));
    active_bytes_ = 0;
    return OkStatus();
  }
  const Segment& tail = segments_.back();
  EPL_ASSIGN_OR_RETURN(active_bytes_, fs_->FileSize(SegmentPath(tail)));
  EPL_ASSIGN_OR_RETURN(active_, fs_->OpenAppend(SegmentPath(tail)));
  return OkStatus();
}

namespace {

/// Appends the full record frame (header, seq, payload) to `out`.
void FrameRecord(uint64_t seq, std::string_view payload, std::string* out) {
  char seq_bytes[kSeqBytes];
  for (size_t i = 0; i < kSeqBytes; ++i) {
    seq_bytes[i] = static_cast<char>((seq >> (8 * i)) & 0xff);
  }
  PutU32At(out, static_cast<uint32_t>(kSeqBytes + payload.size()));
  const uint32_t crc =
      Crc32c(payload, Crc32c(std::string_view(seq_bytes, kSeqBytes)));
  PutU32At(out, crc);
  out->append(seq_bytes, kSeqBytes);
  out->append(payload);
}

}  // namespace

Result<uint64_t> EventLog::Append(std::string_view payload) {
  EPL_RETURN_IF_ERROR(status_);
  const uint64_t seq = next_seq_;

  if (CrashPointsArmed()) {
    // Split the frame around the crash point so the fork/kill harness can
    // manufacture a genuinely torn record. Drain the batch buffer first to
    // keep the file in record order.
    EPL_RETURN_IF_ERROR(FlushBuffered());
    scratch_.clear();
    FrameRecord(seq, payload, &scratch_);
    Status write_status = active_->Append(
        std::string_view(scratch_).substr(0, kHeaderBytes));
    if (write_status.ok()) {
      EPL_CRASH_POINT("wal_append_mid_record");
      write_status =
          active_->Append(std::string_view(scratch_).substr(kHeaderBytes));
    }
    if (!write_status.ok()) {
      // The file tail is in an unknown state; refuse further appends until
      // a reopen repairs it.
      status_ = write_status.WithContext("WAL append failed, log sealed");
      return status_;
    }
  } else if (options_.buffer_bytes > 0) {
    // Frame straight into the batch buffer: no intermediate copy.
    FrameRecord(seq, payload, &buffer_);
    if (buffer_.size() >= options_.buffer_bytes) {
      EPL_RETURN_IF_ERROR(FlushBuffered());
    }
  } else {
    scratch_.clear();
    FrameRecord(seq, payload, &scratch_);
    Status write_status = active_->Append(scratch_);
    if (!write_status.ok()) {
      status_ = write_status.WithContext("WAL append failed, log sealed");
      return status_;
    }
  }
  EPL_CRASH_POINT("wal_append_post_write");

  ++next_seq_;
  ++segments_.back().num_records;
  active_bytes_ += kHeaderBytes + kSeqBytes + payload.size();

  if (options_.sync_every_records > 0 &&
      ++records_since_sync_ >= options_.sync_every_records) {
    EPL_RETURN_IF_ERROR(Sync());
  } else if (options_.sync_interval_ms > 0 &&
             std::chrono::steady_clock::now() - last_sync_ >=
                 std::chrono::milliseconds(options_.sync_interval_ms)) {
    EPL_RETURN_IF_ERROR(Sync());
  }
  if (active_bytes_ >= options_.segment_bytes) {
    EPL_RETURN_IF_ERROR(RotateSegment());
  }
  return seq;
}

Status EventLog::FlushBuffered() {
  EPL_RETURN_IF_ERROR(status_);
  if (buffer_.empty()) {
    return OkStatus();
  }
  Status status = active_->Append(buffer_);
  if (!status.ok()) {
    status_ = status.WithContext("WAL append failed, log sealed");
    return status_;
  }
  buffer_.clear();
  return OkStatus();
}

Status EventLog::Sync() {
  EPL_RETURN_IF_ERROR(status_);
  EPL_RETURN_IF_ERROR(FlushBuffered());
  records_since_sync_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  Status status = active_->Sync();
  if (!status.ok()) {
    status_ = status.WithContext("WAL sync failed, log sealed");
  }
  return status;
}

Status EventLog::RotateSegment() {
  EPL_RETURN_IF_ERROR(status_);
  if (segments_.back().num_records == 0) {
    return OkStatus();
  }
  EPL_CRASH_POINT("wal_rotate_pre_sync");
  EPL_RETURN_IF_ERROR(Sync());
  EPL_RETURN_IF_ERROR(active_->Close());
  EPL_CRASH_POINT("wal_rotate_pre_open");
  Segment segment;
  segment.first_seq = next_seq_;
  segment.name = SegmentName(next_seq_);
  segments_.push_back(std::move(segment));
  EPL_ASSIGN_OR_RETURN(active_, fs_->OpenAppend(SegmentPath(segments_.back())));
  EPL_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  active_bytes_ = 0;
  return OkStatus();
}

Status EventLog::DropSegmentsBelow(uint64_t seq) {
  bool dropped = false;
  while (segments_.size() > 1) {
    const Segment& first = segments_.front();
    if (first.first_seq + first.num_records > seq) {
      break;
    }
    EPL_RETURN_IF_ERROR(fs_->Remove(SegmentPath(first)));
    segments_.erase(segments_.begin());
    dropped = true;
    EPL_CRASH_POINT("wal_truncate_mid");
  }
  if (dropped) {
    EPL_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  }
  return OkStatus();
}

Status EventLog::Replay(
    uint64_t from_seq,
    const std::function<Status(uint64_t, std::string_view)>& fn) {
  // The scan reads segment files, so buffered records must be on disk.
  EPL_RETURN_IF_ERROR(FlushBuffered());
  auto filtered = [&](uint64_t seq, std::string_view payload) -> Status {
    return seq >= from_seq ? fn(seq, payload) : OkStatus();
  };
  const std::function<Status(uint64_t, std::string_view)> wrapped = filtered;
  for (size_t i = 0; i < segments_.size(); ++i) {
    Segment& segment = segments_[i];
    if (segment.first_seq + segment.num_records <= from_seq) {
      continue;
    }
    EPL_RETURN_IF_ERROR(
        ScanSegment(&segment, i + 1 == segments_.size(), &wrapped));
  }
  return OkStatus();
}

std::vector<std::string> EventLog::SegmentNames() const {
  std::vector<std::string> names;
  names.reserve(segments_.size());
  for (const Segment& segment : segments_) {
    names.push_back(segment.name);
  }
  return names;
}

}  // namespace epl::durability
