#include "durability/codec.h"

namespace epl::durability {

namespace {

// Software fallback: slicing-by-8 tables for the Castagnoli polynomial.
// entries[0] is the classic bytewise table, and entries[t][b] is the CRC
// of byte b followed by t zero bytes, so eight input bytes fold into one
// table round.
struct Crc32cTable {
  uint32_t entries[8][256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : (c >> 1);
      }
      entries[0][i] = c;
    }
    for (int t = 1; t < 8; ++t) {
      for (uint32_t i = 0; i < 256; ++i) {
        entries[t][i] =
            (entries[t - 1][i] >> 8) ^ entries[0][entries[t - 1][i] & 0xff];
      }
    }
  }
};

uint32_t LoadLe32(const char* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
#else
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
#endif
}

uint32_t Crc32cSoftware(uint32_t c, const char* p, size_t n) {
  static const Crc32cTable table;
  const auto& t = table.entries;
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ c;
    const uint32_t hi = LoadLe32(p + 4);
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
        t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ static_cast<uint8_t>(*p)) & 0xff] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EPL_CRC32C_HAS_HW 1

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t c,
                                                          const char* p,
                                                          size_t n) {
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    c64 = __builtin_ia32_crc32di(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
  for (; n > 0; ++p, --n) {
    c = __builtin_ia32_crc32qi(c, static_cast<uint8_t>(*p));
  }
  return c;
}
#endif

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  uint32_t c = seed ^ 0xffffffffu;
#ifdef EPL_CRC32C_HAS_HW
  static const bool has_hw = __builtin_cpu_supports("sse4.2");
  if (has_hw) {
    c = Crc32cHardware(c, data.data(), data.size());
  } else {
    c = Crc32cSoftware(c, data.data(), data.size());
  }
#else
  c = Crc32cSoftware(c, data.data(), data.size());
#endif
  return c ^ 0xffffffffu;
}

}  // namespace epl::durability
