// Injectable filesystem abstraction for the durability layer.
//
// Every byte the WAL and checkpoint writers touch goes through this
// interface, so tests can inject disk faults (short writes, ENOSPC, a
// failing fsync) without a real broken disk, and the recovery paths can be
// proven against them. The default implementation is plain POSIX with the
// exact call sequence crash-consistency needs: append -> fsync(file) for
// data, write-to-temp -> fsync -> rename -> fsync(dir) for atomic
// replacement.

#ifndef EPL_DURABILITY_FILE_H_
#define EPL_DURABILITY_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace epl::durability {

/// An append-only file handle. Append is all-or-nothing from the caller's
/// view: a short write surfaces as an error (the caller treats the file as
/// torn and recovers by reopening, which truncates the partial tail).
class File {
 public:
  virtual ~File() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Durably flushes everything appended so far (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem operations the durability layer needs. All paths are plain
/// strings; directories are created non-recursively.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if missing.
  virtual Result<std::unique_ptr<File>> OpenAppend(const std::string& path) = 0;
  /// Reads the whole file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Sorted names (not paths) of the directory's entries, "." and ".."
  /// excluded.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  /// Creates `dir` if it does not exist (parent must exist).
  virtual Status CreateDir(const std::string& dir) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Atomic replacement (POSIX rename).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Durably flushes the directory entry metadata (fsync on the dir fd),
  /// sealing a preceding rename/create/remove against power loss.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
FileSystem* DefaultFileSystem();

}  // namespace epl::durability

#endif  // EPL_DURABILITY_FILE_H_
