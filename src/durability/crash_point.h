// Crash-fault injection for the durability write paths.
//
// EPL_CRASH_POINT(name) marks a write boundary where a process death must
// leave the on-disk state recoverable. Disarmed (the default) it costs one
// relaxed atomic load; armed -- programmatically via ArmCrashPoint or with
// the environment variable EPL_CRASH_POINT="<name>" /
// EPL_CRASH_POINT="<name>:<nth>" -- the nth execution of the named point
// kills the process with SIGKILL, exactly like `kill -9` landing between
// two writes. The crash-recovery harness (tests/durability_crash_test.cc)
// forks a child per registered point, lets it die there, recovers in the
// parent, and asserts the recovered detection stream is bit-identical to a
// run that never crashed.
//
// Every planted point must be listed in RegisteredCrashPoints(); the
// harness iterates that list and fails if a point never fires, so the
// registry cannot silently drift from the code.

#ifndef EPL_DURABILITY_CRASH_POINT_H_
#define EPL_DURABILITY_CRASH_POINT_H_

#include <atomic>
#include <string>
#include <vector>

namespace epl::durability {

/// Names of every EPL_CRASH_POINT planted in the durability layer, in
/// write-path order.
const std::vector<std::string>& RegisteredCrashPoints();

/// Arms `name`: the `nth` (1-based) execution of its crash point kills the
/// process. Replaces any previously armed point.
void ArmCrashPoint(const std::string& name, int nth = 1);

/// Disarms everything (tests that arm in-process and survive).
void DisarmCrashPoints();

/// True while any crash point is armed. Durability writers may split a
/// single write into two around a crash point only when this is on, so the
/// production path keeps its syscall count.
bool CrashPointsArmed();

namespace internal {

extern std::atomic<bool> g_armed;

/// Slow path of EPL_CRASH_POINT: dies via SIGKILL when `name` is the armed
/// point and its execution count is reached.
void CrashIfArmed(const char* name);

}  // namespace internal

}  // namespace epl::durability

#define EPL_CRASH_POINT(name)                                         \
  do {                                                                \
    if (::epl::durability::internal::g_armed.load(                    \
            std::memory_order_relaxed)) {                             \
      ::epl::durability::internal::CrashIfArmed(name);                \
    }                                                                 \
  } while (false)

#endif  // EPL_DURABILITY_CRASH_POINT_H_
