#include "cep/pattern.h"

#include "common/string_util.h"

namespace epl::cep {

PatternExprPtr PatternExpr::Pose(std::string source, ExprPtr predicate) {
  auto node = PatternExprPtr(new PatternExpr());
  node->kind_ = PatternKind::kPose;
  node->source_ = std::move(source);
  node->predicate_ = std::move(predicate);
  return node;
}

PatternExprPtr PatternExpr::Sequence(std::vector<PatternExprPtr> children,
                                     std::optional<Duration> within,
                                     WithinMode within_mode,
                                     SelectPolicy select,
                                     ConsumePolicy consume) {
  auto node = PatternExprPtr(new PatternExpr());
  node->kind_ = PatternKind::kSequence;
  node->children_ = std::move(children);
  node->within_ = within;
  node->within_mode_ = within_mode;
  node->select_ = select;
  node->consume_ = consume;
  return node;
}

Status PatternExpr::Validate() const {
  if (kind_ == PatternKind::kPose) {
    if (predicate_ == nullptr) {
      return InvalidArgumentError("pose has no predicate");
    }
    if (source_.empty()) {
      return InvalidArgumentError("pose has no source stream");
    }
    return OkStatus();
  }
  if (children_.empty()) {
    return InvalidArgumentError("sequence has no children");
  }
  if (within_.has_value() && *within_ <= 0) {
    return InvalidArgumentError("within duration must be positive");
  }
  for (const PatternExprPtr& child : children_) {
    EPL_RETURN_IF_ERROR(child->Validate());
  }
  // All poses must read the same stream: the match operator subscribes to
  // exactly one stream/view.
  std::vector<const PatternExpr*> poses = Poses();
  for (const PatternExpr* pose : poses) {
    if (pose->source_ != poses[0]->source_) {
      return InvalidArgumentError(StrFormat(
          "pattern mixes source streams '%s' and '%s'",
          poses[0]->source_.c_str(), pose->source_.c_str()));
    }
  }
  return OkStatus();
}

int PatternExpr::NumPoses() const {
  if (kind_ == PatternKind::kPose) {
    return 1;
  }
  int count = 0;
  for (const PatternExprPtr& child : children_) {
    count += child->NumPoses();
  }
  return count;
}

std::vector<const PatternExpr*> PatternExpr::Poses() const {
  std::vector<const PatternExpr*> poses;
  CollectPoses(&poses);
  return poses;
}

void PatternExpr::CollectPoses(std::vector<const PatternExpr*>* out) const {
  if (kind_ == PatternKind::kPose) {
    out->push_back(this);
    return;
  }
  for (const PatternExprPtr& child : children_) {
    child->CollectPoses(out);
  }
}

std::string PatternExpr::SourceStream() const {
  std::vector<const PatternExpr*> poses = Poses();
  return poses.empty() ? std::string() : poses[0]->source_;
}

PatternExprPtr PatternExpr::Clone() const {
  auto node = PatternExprPtr(new PatternExpr());
  node->kind_ = kind_;
  node->source_ = source_;
  node->predicate_ = predicate_ ? predicate_->Clone() : nullptr;
  node->within_ = within_;
  node->within_mode_ = within_mode_;
  node->select_ = select_;
  node->consume_ = consume_;
  node->children_.reserve(children_.size());
  for (const PatternExprPtr& child : children_) {
    node->children_.push_back(child->Clone());
  }
  return node;
}

PatternExprPtr PatternExpr::Rescope(const std::string& source,
                                    const Expr* extra) const {
  auto node = PatternExprPtr(new PatternExpr());
  node->kind_ = kind_;
  node->within_ = within_;
  node->within_mode_ = within_mode_;
  node->select_ = select_;
  node->consume_ = consume_;
  if (kind_ == PatternKind::kPose) {
    node->source_ = source.empty() ? source_ : source;
    if (extra != nullptr && predicate_ != nullptr) {
      std::vector<ExprPtr> terms;
      terms.push_back(extra->Clone());
      terms.push_back(predicate_->Clone());
      node->predicate_ = Expr::And(std::move(terms));
    } else {
      node->predicate_ = predicate_ ? predicate_->Clone() : nullptr;
    }
    return node;
  }
  node->children_.reserve(children_.size());
  for (const PatternExprPtr& child : children_) {
    node->children_.push_back(child->Rescope(source, extra));
  }
  return node;
}

std::string PatternExpr::ToString() const {
  if (kind_ == PatternKind::kPose) {
    return source_ + "(" + predicate_->ToString() + ")";
  }
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) {
      out += " -> ";
    }
    out += children_[i]->ToString();
  }
  if (within_.has_value()) {
    out += " within " + FormatDuration(*within_);
    if (within_mode_ == WithinMode::kSpan) {
      out += " total";
    }
  }
  out += select_ == SelectPolicy::kFirst ? " select first" : " select all";
  out += consume_ == ConsumePolicy::kAll ? " consume all" : " consume none";
  out += ")";
  return out;
}

}  // namespace epl::cep
