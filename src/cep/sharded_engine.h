// ShardedEngine: multi-core gesture matching by partitioning queries
// across worker shards.
//
// One fused MultiMatchOperator (PR 1) removes the O(queries x states)
// per-event predicate cost but still runs on a single thread. This layer
// scales it across cores: N shards each own a full matching stack
// (PredicateBank + MultiMatchOperator) and a private FIFO of fan-out
// batches; deployed queries are partitioned across the shards, so each
// shard evaluates a bank that is ~1/N the size and runs ~1/N of the NFAs.
//
// Dataflow (single producer thread, e.g. a StreamEngine dispatch thread or
// an EngineRunner worker):
//
//   Push(event) --> [batch of B events, one shared copy] --fan-out-->
//     shard 0 FIFO --> some worker: bank eval + NFA advance for shard 0
//     ...
//     shard N-1 FIFO --> some worker
//
// Fan-out is interest-routed when `routing_field` is set: each shard's
// resident queries induce an interest filter (the session keys its
// session-scoped queries can match, plus "everything" for unscoped
// queries), and a fan-out window is split by routing key so a shard only
// receives -- and is only woken for -- the events some resident query
// could match. Skipped shards advance their processed_events watermark
// through a cheap advance-to-seq queue entry (or a direct store when
// idle), so the MinProcessed() merge, and hence delivery order, is
// bit-identical to broadcast at every shard count. This exactness leans
// on the gate-group invariant (see multi_matcher.cc): an event that
// satisfies no state predicate of a query neither seeds, advances,
// completes, nor expires anything, so not delivering it to that query's
// shard cannot change any output.
//
// Execution is scheduled from a shared pool: every shard spawns one
// worker, each worker prefers its own shard's FIFO (cache-hot bank and
// arena), and -- with `work_stealing` on -- an idle worker claims the next
// batch of the deepest-backlog shard instead of sleeping, so one skewed
// shard cannot idle the other cores. A shard's batches always execute one
// at a time in FIFO order (a busy flag makes the shard a unit of mutual
// exclusion), which is why stealing cannot change any shard's event order.
//
// Matches are recorded per shard as (event-seq, query-id, Detection) and
// merged back on the producer thread in deterministic (event-seq,
// query-id) order -- the exact order a single fused operator would emit,
// regardless of shard count, worker timing, stealing, or rebalancing.
// Merging only releases matches up to the fleet-wide watermark (the
// smallest event sequence every shard has fully processed), so delivery is
// totally ordered and reproducible; delivery happens during Push (batch
// boundaries), Flush(), Stop(), and control operations.
//
// The query set is dynamic: AddQuery/RemoveQuery work while the stream is
// live. Control operations quiesce the shards at an exact event boundary
// (a sync token through every shard FIFO), deliver all pending matches,
// mutate, rebalance, and resume -- so every query observes a precise
// prefix/suffix of the stream and surviving queries keep their partial
// runs (rebalancing moves the live NfaMatcher between shards). The same
// mechanism powers Resize(): the worker fleet itself can grow or shrink
// at an event boundary, migrating every doomed shard's queries -- partial
// runs, statistics and all -- onto the survivors; AdaptShardCount() drives
// that from observed per-shard busy time. The equivalence property tests
// in tests/cep_dynamic_queries_test.cc pin these semantics down.
//
// Threading contract: at most one producer may Push at a time, but
// control operations (AddQuery/RemoveQuery/Flush/Stop/ResetMatchers/
// Resize) may come from ANY thread -- a control mutex serializes them
// against the producer, so an application thread can exchange gestures
// while an EngineRunner worker drives the stream. Detection callbacks run
// on whichever thread performed the delivering call and must not call
// back into the engine.

#ifndef EPL_CEP_SHARDED_ENGINE_H_
#define EPL_CEP_SHARDED_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cep/composite.h"
#include "cep/multi_match_operator.h"
#include "stream/operator.h"

namespace epl::cep {

/// Policy knobs for AdaptShardCount(): grow/shrink the shard fleet from
/// observed per-shard busy time (the fraction of wall-clock each worker
/// spent executing batches since the previous check).
struct AdaptiveShardOptions {
  /// Also run the check automatically from Push every
  /// `check_every_events` pushed events (otherwise the application calls
  /// AdaptShardCount() at its own cadence).
  bool enabled = false;
  int min_shards = 1;
  int max_shards = 8;
  /// Events between automatic checks when `enabled`.
  uint64_t check_every_events = 8192;
  /// Grow by one shard when the busiest shard's utilization (busy time /
  /// elapsed wall-clock) exceeds this -- the bottleneck shard is
  /// saturated and splitting its query set buys wall-clock.
  double grow_utilization = 0.75;
  /// Shrink by one shard when the fleet's TOTAL utilization would still
  /// fit under this per-shard average on one fewer shard -- the fleet is
  /// mostly idle and fewer workers mean fewer fan-out copies and wakeups.
  double shrink_utilization = 0.25;
};

/// Placement policy for base queries (see ShardedEngine::AddQuery and
/// Rebalance).
enum class ShardPlacement {
  /// Balance measured query cost across shards (the pre-routing default):
  /// queries of one session spread wherever the weights fall.
  kBalanced,
  /// Pack each session's queries onto the fewest shards that fit under
  /// the measured-cost skew budget, so interest-routed fan-out has
  /// something to exploit: a session event then touches ~1 shard instead
  /// of all of them. Placement falls back to the least-loaded shard (and
  /// rebalancing may split a session) only when packing would exceed the
  /// budget; work stealing absorbs the residual skew.
  kSessionAffinity,
};

struct ShardedEngineOptions {
  /// Number of worker shards (clamped to >= 1).
  int num_shards = 1;
  /// Events per fan-out batch. Batching amortizes queue locking (one
  /// enqueue per shard per batch, sharing a single copy of the events)
  /// AND matcher execution: each worker runs the whole batch as one
  /// MultiPatternMatcher::ProcessBatch sweep -- one bank pass per field
  /// per batch, each pattern advanced across the window in one go.
  /// Larger batches raise throughput, smaller ones lower match delivery
  /// latency (a live 30 Hz stream wants ~1-8, an offline replay 32+).
  size_t batch_size = 32;
  /// Capacity of each shard's input FIFO, in batches. A full FIFO blocks
  /// the producer (backpressure).
  size_t queue_capacity = 64;
  /// Matcher options shared by every shard.
  MatcherOptions matcher;
  /// After every add/remove, queries move from the heaviest to the
  /// lightest shard until per-shard total weights (see QueryCostWeight)
  /// differ by at most this many average query weights. With uniform
  /// queries this is exactly the tolerated query-count skew.
  int max_query_skew = 1;
  /// Makes ShardedMatchOperator::Process Flush() after every pushed event,
  /// so detections are delivered synchronously at the exact event boundary
  /// -- the order a fused single-threaded deployment would produce them in
  /// within the stream dispatch. Interactive workflows (the learning
  /// controller, whose control-gesture detections steer the session) need
  /// this; throughput deployments should leave it off and Flush at
  /// convenient boundaries instead. Only read by ShardedMatchOperator.
  bool sync_delivery = false;
  /// Work stealing: an idle worker executes the next pending batch of the
  /// deepest-backlog shard instead of parking. Pays off when per-shard
  /// costs are skewed (one hot query set); a perfectly balanced fleet
  /// steals nothing. Output is bit-identical either way -- each shard's
  /// batches still run one at a time in FIFO order and the watermark
  /// merge fixes delivery order.
  bool work_stealing = false;
  /// Pin worker i to the i-th CPU of the process affinity mask (see
  /// stream/thread_affinity.h). Keeps each shard's bank and arena
  /// cache-hot under the OS scheduler's migrations; leave off when the
  /// process shares its cores with other loads. Pin failures are counted
  /// (pin_failures()), never fatal.
  bool pin_workers = false;
  /// Iterations an idle worker polls for new work before blocking on the
  /// pool condition variable. Spinning trades idle CPU for wakeup
  /// latency; ~1000s of iterations covers a producer that batches every
  /// few microseconds. 0 parks immediately.
  int spin_wait_iterations = 0;
  /// Adaptive fleet sizing (see AdaptiveShardOptions).
  AdaptiveShardOptions adaptive;
  /// Index into stream::Event::values of the routing key (GestureRuntime
  /// points it at the session id appended to merged session streams).
  /// < 0 (default) broadcasts every batch to every shard, today's
  /// behavior. >= 0 enables interest-routed fan-out: an event is
  /// delivered only to shards hosting a query that could match it -- a
  /// session-scoped query whose session_tag is BITWISE equal to the
  /// event's routing-field value, or any non-session-scoped query.
  /// Producers must therefore write the routing field exactly (the
  /// runtime's session tap stores exact small integers); an event whose
  /// values do not reach the routing field is conservatively broadcast.
  int routing_field = -1;
  /// Base-query placement policy (see ShardPlacement).
  ShardPlacement placement = ShardPlacement::kBalanced;
};

/// Cost heuristic of one deployed query for shard placement: total NFA
/// states plus distinct bank predicates (the two per-event cost drivers of
/// the flattened runtime). Never returns 0, so an engine that cannot
/// derive costs degenerates to balancing query counts.
uint64_t QueryCostWeight(const CompiledPattern& pattern);

/// Measured placement weight of a live query: observed predicate reads per
/// event (from its MatcherStats counters), scaled onto the same unit as
/// the static QueryCostWeight -- a fully active n-state pattern reads ~n
/// predicates per event and has static weight ~2n, hence the factor 2.
/// Falls back to `static_weight` while no events have been observed, so
/// placement of cold queries still follows the structural heuristic. Never
/// returns 0. ShardedEngine refreshes every query's weight from this
/// before rebalancing (and in QueryStats), so a query that is measurably
/// hot -- runs alive, predicates firing -- outweighs a statically heavy
/// one that the stream never wakes up.
uint64_t MeasuredQueryCostWeight(const MatcherStats& stats,
                                 uint64_t static_weight);

/// Pure placement policy behind ShardedEngine::Rebalance, exposed for
/// direct unit testing. `shard_weights` is the total cost per shard;
/// `candidates` lists (query id, weight) of every query on the heaviest
/// shard; `max_skew` is the tolerated heaviest-lightest weight gap.
/// Returns the id of the query to move to the lightest shard, or -1 when
/// the shards are balanced enough or no candidate improves the spread.
/// Deterministic: among the candidates that strictly shrink the gap it
/// picks the one leaving the smallest residual gap, youngest (highest id)
/// on ties -- so every accepted move strictly reduces the sum of squared
/// shard weights and a rebalancing loop terminates.
int PickRebalanceVictim(const std::vector<uint64_t>& shard_weights,
                        const std::vector<std::pair<int, uint64_t>>& candidates,
                        uint64_t max_skew);

/// Pure steal policy behind the worker scheduler, exposed for direct unit
/// testing. `backlogs` is each shard's pending-batch count; `claimable[i]`
/// says shard i may be claimed right now (not busy, not parked at a
/// control barrier, not retired). Returns the claimable shard (excluding
/// `self`, the thief's own shard) with the deepest backlog -- the shard
/// most behind the producer is the one gating the fleet watermark --
/// lowest index on ties, or -1 when no other shard has stealable work.
int PickStealVictim(const std::vector<size_t>& backlogs,
                    const std::vector<uint8_t>& claimable, int self);

/// Pure fleet-sizing policy behind ShardedEngine::AdaptShardCount, exposed
/// for direct unit testing. `busy_ns[i]` is shard i's batch-execution time
/// over the `elapsed_ns` observation window. Returns the recommended shard
/// count within [min_shards, max_shards]: one more than `current_shards`
/// when the busiest shard exceeds `grow_utilization` (the bottleneck is
/// saturated), one fewer when the total utilization still fits under
/// `shrink_utilization` per shard on a fleet of current_shards - 1, and
/// `current_shards` (clamped) otherwise. Single steps keep resizes cheap
/// and the policy hysteretic: grow reacts to one saturated shard, shrink
/// only to a mostly idle fleet.
int RecommendShardCount(int current_shards,
                        const std::vector<uint64_t>& busy_ns,
                        uint64_t elapsed_ns,
                        const AdaptiveShardOptions& options);

class ShardedEngine {
 public:
  using QuerySpec = MultiMatchOperator::QuerySpec;

  explicit ShardedEngine(ShardedEngineOptions options = ShardedEngineOptions());
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Starts the shard workers. Queries may be added before or after.
  Status Start();

  /// Feeds one event (single producer thread). Events reach every
  /// interested shard (every shard, without routing_field); each shard
  /// advances only its own queries. Returns false once stopped.
  /// Completed matches ready for delivery are dispatched from inside Push
  /// at batch boundaries, in (event-seq, query-id) order.
  bool Push(stream::Event event);

  /// Blocks until every shard has processed everything pushed so far and
  /// delivers all pending matches. Error if not running.
  Status Flush();

  /// Drains the FIFOs, joins the workers, delivers all remaining matches,
  /// and returns the first shard error (if any). The engine cannot be
  /// restarted.
  Status Stop();

  /// Adds a query (assigned to the least-loaded shard) and returns its
  /// stable engine-wide id. Callable before Start or while live, from any
  /// thread; when live, the shards are quiesced at an event boundary
  /// first, so the query sees exactly the events pushed after this call
  /// returns.
  ///
  /// Composite queries (spec.level >= 1, see cep/composite.h) do not live
  /// on a shard: they run in an engine-owned CompositeRunner driven from
  /// the watermark merge, so their inputs may span every shard. Each
  /// event sequence number with at least one base detection becomes one
  /// feedback epoch, delivered in (event-seq, level, query-id) order --
  /// bit-identical to the fused operator regardless of shard count, work
  /// stealing, or rebalancing.
  int AddQuery(QuerySpec spec);

  /// Removes a query (any thread). When live, all of its matches up to
  /// the quiesce boundary are delivered before it is discarded.
  Status RemoveQuery(int query_id);

  /// Discards the partial runs of every query (delivering already
  /// completed matches first when live).
  void ResetMatchers();

  /// Grows or shrinks the worker fleet to `num_shards` (clamped to >= 1)
  /// at a quiesced event boundary. Surviving and migrated queries keep
  /// their partial runs, statistics, and stable ids: shrinking extracts
  /// every query from the doomed shards and adopts it on a survivor
  /// before the doomed workers are joined; growing spawns fresh shards
  /// (pre-advanced to the current watermark) and rebalances onto them.
  /// Queries observe an exact prefix/suffix of the stream across the
  /// resize, exactly like AddQuery. Callable from any thread (not a
  /// detection callback), before Start or while live; error once stopped.
  Status Resize(int num_shards);

  /// One adaptive-sizing check: measures each shard's busy time since the
  /// previous check and resizes the fleet per RecommendShardCount (see
  /// ShardedEngineOptions::adaptive). The first call only establishes the
  /// observation baseline. Also runs automatically from Push every
  /// `adaptive.check_every_events` events when `adaptive.enabled`.
  Status AdaptShardCount();

  /// One query's live matcher statistics, as aggregated by QueryStats().
  struct QueryStatsSnapshot {
    int query_id = -1;
    int shard = -1;
    uint64_t weight = 0;
    MatcherStats stats;
    /// Evaluation counters of the query's shard-shared predicate bank
    /// (identical for co-sharded queries): region memo hit rates and the
    /// batch broadcast-vs-recomputed row split that the SIMD row kernel
    /// exploits.
    PredicateBankStats bank;
  };

  /// Quiesces the shards at an exact event boundary, delivers everything
  /// pending, and externalizes every query's live run state and
  /// statistics, keyed by stable query id and ordered by it -- the
  /// consistent cut a checkpoint serializes. Non-destructive: every query
  /// keeps running. Callable from any thread (not a detection callback).
  Result<std::vector<std::pair<int, NfaRunState>>> ExportRunStates();

  /// AddQuery, but the query's matcher is seeded with previously exported
  /// run state (checkpoint recovery). Quiesced like AddQuery; returns the
  /// query's stable engine-wide id, or an error (query not added) when
  /// `runs` does not fit the spec's pattern.
  Result<int> RestoreQuery(QuerySpec spec, const NfaRunState& runs);

  /// Per-query matcher statistics snapshot, ordered by query id. Callable
  /// from any thread; when live, the shards are quiesced at an event
  /// boundary first so the numbers are mutually consistent. Counters
  /// survive rebalancing: a query's stats travel with its matcher across
  /// shards and are never reset by an exchange.
  std::vector<QueryStatsSnapshot> QueryStats();

  int num_shards() const;
  size_t num_queries() const;
  bool running() const;
  /// Events fully processed by every shard.
  uint64_t processed() const;
  /// Shard currently hosting `query_id`, or -1 if unknown.
  int shard_of(int query_id) const;
  /// Queries per shard, in shard order.
  std::vector<size_t> shard_query_counts() const;
  /// Total query cost weight per shard, in shard order.
  std::vector<uint64_t> shard_weights() const;
  /// Queries moved between shards by rebalancing so far.
  uint64_t rebalanced_queries() const;
  /// Batches executed by a worker other than the shard's own (work
  /// stealing). 0 unless options.work_stealing.
  uint64_t stolen_batches() const;
  /// Worker pin attempts that the platform rejected (pin_workers only).
  int pin_failures() const;
  /// Fleet resizes performed (Resize / AdaptShardCount) so far.
  uint64_t resize_count() const;
  /// Cumulative batch-execution time per shard, in shard order.
  std::vector<uint64_t> shard_busy_ns() const;

  /// Fan-out and placement counters, cumulative since construction.
  /// Without routing (routing_field < 0) every window is a full
  /// broadcast: events_routed == window size x shard count and
  /// events_skipped_by_filter stays 0.
  struct EngineStats {
    /// Fan-out windows flushed to the fleet.
    uint64_t fanout_batches = 0;
    /// Per-shard enqueues that carried a strict subset of a window (the
    /// routed sub-batches; full-window shares are not counted here).
    uint64_t fanout_subbatches = 0;
    /// Event copies delivered to shards (the fan-out factor numerator:
    /// events_routed / events pushed = copies per event).
    uint64_t events_routed = 0;
    /// (event, shard) pairs the interest filter proved unnecessary.
    uint64_t events_skipped_by_filter = 0;
    /// Advance-to-seq watermark updates for skipped shards (queue tokens
    /// and direct stores).
    uint64_t advance_tokens = 0;
    /// Queries moved to consolidate a session onto its home shard
    /// (ShardPlacement::kSessionAffinity only).
    uint64_t affinity_moves = 0;
    /// Work-availability wake signals sent to shard workers (excludes
    /// control wakeups: pause/resume/retire/shutdown). With routing, a
    /// window only wakes its destination shards.
    uint64_t worker_wakeups = 0;
  };
  EngineStats engine_stats() const;

  /// TEST ONLY: flips one interest bit -- toggles `shard` in the routed
  /// destination set of routing key `key` -- to prove the differential
  /// harness catches a wrong filter. The corruption lasts until the next
  /// placement change rebuilds the index.
  void TestOnlyFlipInterestBit(double key, int shard);

 private:
  /// One completed match awaiting watermark release. The merge orders by
  /// (seq, level, query_id); shards host only base (level-0) queries, so
  /// recorded matches always carry level 0 -- the level key is what keeps
  /// the order total once composite detections (produced at delivery
  /// time, never enqueued here) are interleaved per epoch.
  struct PendingMatch {
    uint64_t seq = 0;
    int query_id = 0;
    Detection detection;
    int level = 0;
  };

  /// A fan-out unit covering the window [base_seq, end_seq). A full
  /// broadcast batch holds the whole window (`seqs` empty: event i has
  /// sequence base_seq + i, one copy shared by every shard). A routed
  /// sub-batch holds the subset of the window its shard is interested
  /// in, with `seqs[i]` carrying each event's absolute sequence number.
  /// Executing either advances the shard's watermark to end_seq -- the
  /// events the filter skipped are exact no-ops for the shard's queries.
  struct Batch {
    uint64_t base_seq = 0;
    uint64_t end_seq = 0;
    std::vector<stream::Event> events;
    std::vector<uint64_t> seqs;
  };

  /// One shard-FIFO entry. `batch` carries events; with a null batch the
  /// entry is a token: `sync` parks the shard at the control barrier
  /// (PauseWorkers), otherwise it is an advance-to-seq token that lifts
  /// processed_events to `advance_to` for a window the interest filter
  /// skipped entirely. Advance tokens coalesce in place at the queue
  /// tail, so a mostly skipped shard's FIFO stays one entry deep.
  struct QueueEntry {
    std::shared_ptr<const Batch> batch;
    uint64_t advance_to = 0;
    bool sync = false;
  };

  struct Shard {
    explicit Shard(const MatcherOptions& matcher_options)
        : op(matcher_options) {}

    MultiMatchOperator op;
    std::thread worker;

    // Scheduler state, guarded by the engine's pool_mu_. `queue` is the
    // shard's FIFO of fan-out batches and tokens (see QueueEntry);
    // `busy` marks a worker currently executing a batch of this shard
    // (the shard-level mutual exclusion that makes stealing safe);
    // `parked` marks a consumed sync token awaiting ResumeWorkers;
    // `retired` tells the shard's own worker to exit (Resize shrink).
    std::deque<QueueEntry> queue;
    bool busy = false;
    bool parked = false;
    bool retired = false;

    // Per-shard wakeup channel: the shard's own worker spins on
    // wake_epoch and parks on cv (both paired with pool_mu_), so waking
    // one shard does not stampede the rest of the fleet -- a window that
    // routing skips for this shard costs it no wakeup at all. Control
    // paths (pause/resume/retire/shutdown) wake every shard.
    std::condition_variable cv;
    std::atomic<uint64_t> wake_epoch{0};

    // Executor-only state while processing a batch -- exactly one worker
    // executes a shard at a time (the busy flag), and the pool lock
    // orders the handoff between consecutive executors. current_seq is
    // stamped per event by the operator's batch-event hook (batch_seqs
    // for a routed sub-batch, else base_seq + in-batch index) so
    // recorded matches carry exact sequence numbers even though the
    // whole batch runs as one matcher sweep.
    uint64_t batch_base_seq = 0;
    uint64_t current_seq = 0;
    const std::vector<uint64_t>* batch_seqs = nullptr;
    std::vector<PendingMatch> local;

    std::mutex mu;  // guards pending and status
    std::deque<PendingMatch> pending;
    Status status;

    /// Events fully processed (matches published to `pending`).
    std::atomic<uint64_t> processed_events{0};
    /// Cumulative batch-execution wall time.
    std::atomic<uint64_t> busy_ns{0};
    /// busy_ns at the previous AdaptShardCount check (control_mu_).
    uint64_t busy_ns_checkpoint = 0;
  };

  struct QueryInfo {
    /// Hosting shard, or -1 for composite queries (which live in the
    /// engine-owned CompositeRunner, not on any shard -- every placement
    /// and rebalancing path skips shard < 0).
    int shard = -1;
    int local_id = -1;  // id inside the shard's MultiMatchOperator
    /// Active placement weight: MeasuredQueryCostWeight of the latest
    /// stats snapshot, refreshed at every quiesced rebalance.
    uint64_t weight = 1;
    uint64_t static_weight = 1;  // QueryCostWeight of the pattern
    DetectionCallback callback;
    int level = 0;
    /// Derived-event identity feeding composite epochs (base queries).
    double tag = 0;
    double session_tag = 0;
    /// The query provably matches only events whose routing-field value
    /// equals session_tag (see QuerySpec::session_scoped); drives both
    /// the interest filter and kSessionAffinity placement.
    bool session_scoped = false;
  };

  /// Creates a shard with its batch-event hook installed, pre-advanced to
  /// `base_seq` (a shard born mid-stream must not drag the fleet
  /// watermark back to zero).
  std::unique_ptr<Shard> MakeShard(uint64_t base_seq);
  void SpawnWorkerLocked(Shard* shard, int worker_index);
  void WorkerLoop(Shard* primary, int worker_index);
  /// Next shard this worker may execute: its own when runnable, else --
  /// work stealing only -- PickStealVictim over the fleet. pool_mu_ held.
  Shard* PickRunnableLocked(Shard* primary);
  /// Runs one fan-out batch on `shard` (no engine locks held; the
  /// caller claimed the shard via its busy flag).
  void ExecuteBatch(Shard* shard, const Batch& batch);
  /// Flushes the partial batch, sends sync tokens, and waits until every
  /// shard is parked (all prior events fully processed).
  void PauseWorkers();
  void ResumeWorkers();
  /// Routes the pending partial batch: a full-window share to every
  /// interested shard (or a routed sub-batch when only part of the
  /// window is), an advance token to the rest.
  void FlushBatch();
  /// Splits `batch` by routing key and enqueues per-shard work. Computes
  /// destinations from the interest index (control_mu_ held), then
  /// enqueues and wakes only destination shards.
  void DistributeBatch(std::shared_ptr<const Batch> batch);
  /// Advances a skipped shard's watermark to `end_seq`: a direct
  /// processed_events store when the shard is idle (no wakeup at all),
  /// else a coalescing advance token behind its in-flight work
  /// (pool_mu_ held).
  void EnqueueAdvanceLocked(Shard* shard, uint64_t end_seq);
  /// Work-availability wakeup of one shard's worker (pool_mu_ held).
  void WakeShardLocked(Shard* shard);
  /// Wakes every worker (control transitions: pause/resume/retire/
  /// shutdown; not counted in worker_wakeups). pool_mu_ held.
  void WakeAllWorkersLocked();
  /// Wakes workers whose shard has no queued work -- the candidates
  /// parked with nothing of their own to do; work stealing uses it to
  /// recruit thieves when a destination shard has claimable backlog.
  /// pool_mu_ held.
  void WakeIdleWorkersLocked();
  /// Delivers every merged match below the fleet watermark.
  void DrainAndDeliver();
  uint64_t MinProcessed() const;
  /// Resize body (control_mu_ held). `live` quiesce/resume is handled by
  /// the caller when part of a larger quiesced section.
  Status ResizeLocked(int num_shards);
  /// AdaptShardCount body (control_mu_ held).
  Status AdaptShardCountLocked();
  /// Per shard, the map from a query's local id to its current index in
  /// that shard's operator (one walk per operator instead of an O(Q^2)
  /// FindQuery scan per query; control_mu_ held).
  std::vector<std::unordered_map<int, int>> LocalIndexLocked() const;
  /// Re-derives every query's placement weight from its live matcher
  /// statistics (control_mu_ held, workers quiesced when live).
  void RefreshWeightsLocked(
      const std::vector<std::unordered_map<int, int>>& local_index);
  /// Total query cost weight per shard (control_mu_ held).
  std::vector<uint64_t> ShardWeightsLocked() const;
  /// Tolerated heaviest-lightest gap: max_query_skew average weights of
  /// the placement unit -- a query under kBalanced, a whole session group
  /// under kSessionAffinity (a budget sized to single queries could never
  /// admit packing a multi-query session onto one shard).
  uint64_t SkewBudget() const;
  int LeastLoadedShard() const;
  /// Placement of a new base query: the session's home shard under
  /// kSessionAffinity when the skew budget allows, else least-loaded.
  int PlaceQueryLocked(const QueryInfo& info) const;
  /// Moves one base query (live matcher, partial runs, statistics) to
  /// `destination_index`, rebinding its recorder (control_mu_ held,
  /// workers quiesced when live).
  void MoveQueryLocked(int query_id, int destination_index);
  /// Packs each session split across shards back onto its majority shard
  /// when the move keeps the fleet inside the skew budget
  /// (kSessionAffinity only; increments affinity_moves).
  void ConsolidateAffinityLocked(uint64_t budget);
  /// Rebuilds the interest index (interest_ / wildcard_shards_) from the
  /// current placement. Runs at the end of every Rebalance, which every
  /// placement-mutating path funnels through.
  void RebuildInterestLocked();
  void Rebalance();
  DetectionCallback MakeRecorder(Shard* shard, int query_id);
  Status FirstShardError();
  /// The lazily created composite runner (control_mu_ held; only ever
  /// touched under it -- DrainAndDeliver, the sole execution driver, runs
  /// with control_mu_ held, so composite matching never races workers).
  CompositeRunner& EnsureCompositeLocked();

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Serializes the producer (Push) against control operations
  // (Add/Remove/Flush/Stop/Reset/Resize) and guards all state below it.
  mutable std::mutex control_mu_;
  std::unique_ptr<Batch> pending_batch_;
  uint64_t next_seq_ = 0;
  std::vector<PendingMatch> merge_scratch_;
  // Id of the thread currently running user callbacks in DrainAndDeliver
  // (default id: none); guards against re-entrant engine calls from
  // inside a callback on that same thread. Checked before control_mu_
  // (held at delivery time), so other threads simply block on the mutex.
  std::atomic<std::thread::id> delivering_thread_{};

  std::map<int, QueryInfo> queries_;
  // Interest index (control_mu_), rebuilt by RebuildInterestLocked():
  // routing key (bitwise session_tag) -> sorted shard ids hosting a
  // session-scoped query for it, plus the shards hosting at least one
  // non-scoped query (which must see every event).
  std::unordered_map<uint64_t, std::vector<int>> interest_;
  std::vector<int> wildcard_shards_;
  // DistributeBatch scratch (control_mu_): per shard, the window indices
  // it is interested in.
  std::vector<std::vector<uint32_t>> route_scratch_;
  // Fan-out counters (control_mu_; worker_wakeups is the atomic below).
  EngineStats stats_;
  // Composite (level >= 1) queries, keyed by engine query id; null until
  // the first one is deployed (zero flat-path cost without composites).
  std::unique_ptr<CompositeRunner> composite_;
  int next_query_id_ = 0;
  uint64_t rebalanced_queries_ = 0;
  uint64_t resize_count_ = 0;
  // AdaptShardCount observation window (control_mu_).
  std::chrono::steady_clock::time_point last_adapt_time_{};
  uint64_t last_adapt_seq_ = 0;

  bool running_ = false;
  bool stopped_ = false;

  // Shared scheduler pool. pool_mu_ guards every Shard's scheduler state
  // (queue/busy/parked/retired), the shards_ vector shape, and shutdown_.
  // Worker wakeups are per shard (Shard::cv / Shard::wake_epoch, the
  // spin-then-park channel) so a routed window only disturbs the shards
  // it targets; control_cv_ wakes the producer/control side
  // (backpressure space, progress toward a watermark, a shard parking).
  mutable std::mutex pool_mu_;
  std::condition_variable control_cv_;
  bool shutdown_ = false;
  std::atomic<uint64_t> stolen_batches_{0};
  std::atomic<uint64_t> wakeups_signaled_{0};
  std::atomic<int> pin_failures_{0};
  // PickRunnableLocked scratch (pool_mu_ held by every caller).
  std::vector<size_t> steal_backlogs_;
  std::vector<uint8_t> steal_claimable_;
};

/// Stream-operator adapter: deploy a ShardedEngine as a subscriber of a
/// StreamEngine stream (the stream/runner.h ingestion path then feeds it
/// fan-out style). Open/Close map to Start/Stop; every dispatched event is
/// pushed into the sharded engine and forwarded downstream unchanged.
class ShardedMatchOperator : public stream::Operator {
 public:
  explicit ShardedMatchOperator(
      ShardedEngineOptions options = ShardedEngineOptions())
      : engine_(options), sync_delivery_(options.sync_delivery) {}

  ShardedEngine& engine() { return engine_; }
  const ShardedEngine& engine() const { return engine_; }

  Status Open() override { return engine_.Start(); }
  Status Process(const stream::Event& event) override;
  /// Tolerates an engine the caller already stopped by hand.
  Status Close() override {
    return engine_.running() ? engine_.Stop() : OkStatus();
  }

  std::string name() const override {
    return "sharded_match[" + std::to_string(engine_.num_shards()) +
           " shards, " + std::to_string(engine_.num_queries()) + " queries]";
  }

 private:
  ShardedEngine engine_;
  bool sync_delivery_ = false;
};

}  // namespace epl::cep

#endif  // EPL_CEP_SHARDED_ENGINE_H_
