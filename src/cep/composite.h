// CompositeRunner: hierarchical composite queries -- detections re-enter
// the runtime as derived events, so patterns can match over other
// patterns' matches ("one user raises -> a zone sweeps -> the crowd
// erupts", or cross-session aggregates like "50 users swiped right
// within 2 s").
//
// Feedback epochs. Every base query carries a numeric `tag` (a stable
// hash of its gesture name, see GestureTag) and a `session_tag`. When at
// least one composite query is deployed, each source event's detection
// dispatch becomes an EPOCH: the base detections produced by that event
// are converted to derived events on the synthetic `__detections` stream
// (schema: gesture, session, duration; timestamp = the detection time,
// i.e. the source event's timestamp) and collected in epoch order. The
// epoch then runs level by level to a fixed point: level-1 composite
// patterns see every base (level-0) derived event of the epoch, their
// detections become derived events visible to level 2 WITHIN THE SAME
// EPOCH, and so on. A level-k detection at timestamp t is therefore
// visible to level-k+1 patterns at t, not t+1.
//
// Determinism. The total output order of one source event is
// (event-seq, level, query-id): base detections first (they are
// dispatched by the owning operator in stable-id order), then level-1
// composite detections in (derived-event order, query registration
// order), then level 2, ... Because composite levels are evaluated by
// this shared runner in both the fused and the sharded engine -- fed
// with the identical base-detection sequence -- fused, batched, and
// sharded(1, N) executions are bit-identical. Epochs with zero base
// detections are skipped entirely; this is exact because the matcher
// runtime has no eager run expiry (an event satisfying no predicate is a
// pure no-op for every pattern).
//
// Cycles cannot arise here by construction: a composite query's inputs
// must already be deployed when it is added (enforced by the deploy
// layer, see workflow::GestureRuntime::DeployComposite), so the query
// DAG only ever points from older queries to strictly newer ones, and a
// query's level (1 + max over input levels) is fixed at deploy time.
//
// Durability. Derived events are NEVER written to the WAL: recovery
// replays base events and re-derives composite detections through this
// same code path, bit-identical to the uncrashed run. Composite run
// state (partial multi-event composite matches) is checkpointed like any
// other query via ExportRunState/Restore.
//
// Threading: single-threaded, owned either by a MultiMatchOperator
// (fused path, driven inside RunBatch) or by a ShardedEngine (driven
// from DrainAndDeliver under the engine's control mutex -- composite
// patterns never run on shard workers).

#ifndef EPL_CEP_COMPOSITE_H_
#define EPL_CEP_COMPOSITE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cep/detection.h"
#include "cep/multi_matcher.h"
#include "common/result.h"
#include "stream/event.h"
#include "stream/schema.h"

namespace epl::cep {

/// Name of the synthetic stream composite patterns match over. The
/// stream exists only for schema resolution (query compilation); derived
/// events are routed inside the engines and never pushed through a
/// StreamEngine.
inline constexpr char kDetectionStreamName[] = "__detections";

/// Field names of the derived-event schema, in index order.
inline constexpr char kDetectionGestureField[] = "gesture";
inline constexpr char kDetectionSessionField[] = "session";
inline constexpr char kDetectionDurationField[] = "duration";

/// The derived-event schema: {gesture, session, duration}.
const stream::Schema& DetectionSchema();

/// Stable numeric tag of a gesture name (FNV-1a, 32 bit) -- exactly
/// representable as a double, identical across processes and platforms,
/// so composite patterns written against it survive hot-swaps of their
/// inputs and crash recovery.
double GestureTag(std::string_view name);

/// Converts one detection of a query tagged (tag, session_tag) into a
/// derived event: timestamp = detection time (the source event's
/// timestamp), values = {tag, session_tag, duration}.
stream::Event MakeDerivedEvent(double tag, double session_tag,
                               const Detection& detection);

/// One composite query as the runner stores it. Ids live in the owning
/// operator/engine's stable-id space.
struct CompositeQuery {
  int id = 0;
  int level = 1;  // >= 1; inputs have level `level - 1` or lower
  std::string output_name;
  // The NFA matcher holds a pointer to the pattern (compiled against
  // DetectionSchema()), so it is owned by a stable unique_ptr.
  std::unique_ptr<CompiledPattern> pattern;
  std::vector<ExprProgram> measures;
  DetectionCallback callback;
  /// This query's own derived-event identity (tag = GestureTag(name)),
  /// used when ITS detections feed still-higher levels.
  double tag = 0;
  double session_tag = 0;
};

class CompositeRunner {
 public:
  explicit CompositeRunner(MatcherOptions options);

  CompositeRunner(const CompositeRunner&) = delete;
  CompositeRunner& operator=(const CompositeRunner&) = delete;

  /// Registers `query` at its level. The id must be unused.
  void Add(CompositeQuery query);

  /// Removes the query with stable id `id`, discarding partial runs.
  Status Remove(int id);

  bool Has(int id) const;

  /// True when at least one composite query is registered -- the engines'
  /// per-event epoch hooks are no-ops otherwise (flat-path overhead with
  /// zero composites is one null/empty check per event).
  bool active() const { return num_queries_ > 0; }
  size_t num_queries() const { return num_queries_; }

  /// Externalizes the live run state of query `id` (checkpoint path; the
  /// query keeps running).
  Result<NfaRunState> ExportRunState(int id);

  /// Add, but seeded with previously exported run state. Fails without
  /// registering when `runs` does not fit the query's pattern.
  Status Restore(CompositeQuery query, const NfaRunState& runs);

  /// Live matcher statistics of query `id`.
  Result<MatcherStats> QueryStats(int id) const;

  /// Discards every query's partial runs.
  void Reset();

  // --- Epoch API (one epoch per source event) ---

  /// Starts a new epoch: clears the derived-event buffer.
  void BeginEpoch();

  /// Records one base (level-0) detection of the current epoch as a
  /// derived event. Call in base dispatch order. No-op when inactive.
  void CollectBase(double tag, double session_tag,
                   const Detection& detection);

  /// Runs the epoch to its fixed point: for each level in ascending
  /// order, feeds every derived event visible so far to that level's
  /// patterns (per-event, in collection order), dispatches completed
  /// matches (collection order, then registration order) through their
  /// callbacks, and appends the resulting detections as derived events
  /// visible to higher levels. Matcher state persists across epochs, so
  /// composite sequences span source events. Callbacks must not mutate
  /// this runner directly (the owning engine defers mutations, exactly
  /// as for base queries).
  void RunEpoch();

 private:
  struct Level {
    explicit Level(const MatcherOptions& options) : matcher(options) {}
    MultiPatternMatcher matcher;
    std::vector<CompositeQuery> queries;  // index-aligned with matcher
  };

  /// The level hosting queries of composite level `level` (1-based),
  /// growing the ladder as needed.
  Level& LevelFor(int level);
  /// Locates `id`: fills (level index, query index) and returns true.
  bool Find(int id, size_t* level_index, size_t* query_index) const;

  MatcherOptions options_;
  std::vector<std::unique_ptr<Level>> levels_;  // levels_[k] = level k+1
  size_t num_queries_ = 0;
  std::vector<stream::Event> epoch_;  // derived events of this epoch
  std::vector<stream::Event> spill_;  // one level's new derived events
  std::vector<MultiPatternMatcher::MultiMatch> scratch_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_COMPOSITE_H_
