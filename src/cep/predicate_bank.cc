#include "cep/predicate_bank.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace epl::cep {
namespace {

/// e == scale * field + offset (scale != 0), or a plain constant.
struct LinearForm {
  bool is_constant = false;
  double constant = 0.0;
  int field = -1;
  double scale = 1.0;
  double offset = 0.0;
};

bool ExtractLinear(const Expr& e, LinearForm* out) {
  switch (e.kind()) {
    case ExprKind::kConst:
      out->is_constant = true;
      out->constant = e.constant_value();
      return std::isfinite(e.constant_value());
    case ExprKind::kFieldRef:
      if (e.field_index() < 0) {
        return false;  // unbound
      }
      out->is_constant = false;
      out->field = e.field_index();
      out->scale = 1.0;
      out->offset = 0.0;
      return true;
    case ExprKind::kUnary: {
      if (e.unary_op() != UnaryOp::kNegate) {
        return false;
      }
      LinearForm inner;
      if (!ExtractLinear(e.arg(0), &inner)) {
        return false;
      }
      if (inner.is_constant) {
        out->is_constant = true;
        out->constant = -inner.constant;
      } else {
        out->is_constant = false;
        out->field = inner.field;
        out->scale = -inner.scale;
        out->offset = -inner.offset;
      }
      return true;
    }
    case ExprKind::kBinary: {
      BinaryOp op = e.binary_op();
      if (op != BinaryOp::kAdd && op != BinaryOp::kSub) {
        return false;
      }
      LinearForm lhs, rhs;
      if (!ExtractLinear(e.arg(0), &lhs) || !ExtractLinear(e.arg(1), &rhs)) {
        return false;
      }
      double sign = op == BinaryOp::kAdd ? 1.0 : -1.0;
      if (lhs.is_constant && rhs.is_constant) {
        out->is_constant = true;
        out->constant = lhs.constant + sign * rhs.constant;
        return true;
      }
      if (!lhs.is_constant && !rhs.is_constant) {
        return false;  // two field references; not single-field linear
      }
      const LinearForm& linear = lhs.is_constant ? rhs : lhs;
      double constant = lhs.is_constant ? lhs.constant : rhs.constant;
      out->is_constant = false;
      out->field = linear.field;
      if (lhs.is_constant) {
        // constant +/- linear
        out->scale = sign * linear.scale;
        out->offset = constant + sign * linear.offset;
      } else {
        // linear +/- constant
        out->scale = linear.scale;
        out->offset = linear.offset + sign * constant;
      }
      return true;
    }
    case ExprKind::kCall:
      return false;
  }
  return false;
}

using Interval = PredicateBank::Interval;

void AddLowerBound(Interval* interval, double value) {
  interval->lo = std::max(interval->lo, value);
}

void AddUpperBound(Interval* interval, double value) {
  interval->hi = std::min(interval->hi, value);
}

/// Truth of one bound single-field comparison subtree, evaluated with the
/// exact floating-point operation sequence the ExprProgram executes (the
/// tree-walking Eval performs the same operations in the same order), as a
/// function of the constrained field's value.
class AtomTruth {
 public:
  AtomTruth(const Expr* atom, int field) : atom_(atom), field_(field) {
    probe_.values.assign(static_cast<size_t>(field) + 1, 0.0);
  }

  bool operator()(double v) const {
    probe_.values[static_cast<size_t>(field_)] = v;
    return atom_->EvalBool(probe_);
  }

 private:
  const Expr* atom_;
  int field_;
  mutable stream::Event probe_;
};

// Symbolic endpoints like center +/- width match program semantics only up
// to rounding: abs((c+w) - c) < w can evaluate either way near the real
// boundary, and when the endpoint is much smaller in magnitude than the
// center the discrepancy spans many ulps of v (the granularity of
// fl(v - c) is ulp(c), not ulp(v)). The refiners below therefore bracket
// the truth transition by exponential search from the symbolic guess and
// bisect over the ordered-bits representation of doubles, yielding the
// exact largest/smallest satisfying double. Bounds stored this way are
// always inclusive. Refinement failure (e.g. an empty or sub-ulp interval)
// sends the whole predicate to the exact ExprProgram fallback.

/// Monotone mapping of finite doubles onto uint64 (IEEE total order).
uint64_t OrderedFromDouble(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return (u >> 63) != 0 ? ~u : (u | (uint64_t{1} << 63));
}

double DoubleFromOrdered(uint64_t o) {
  uint64_t u = (o >> 63) != 0 ? (o & ~(uint64_t{1} << 63)) : ~o;
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

constexpr int kMaxBracketSteps = 128;

/// Finds the edge of the satisfied set nearest to the algebraic guess *v:
/// the largest satisfying double when `upper`, the smallest otherwise.
bool RefineEdge(const AtomTruth& truth, bool upper, double* v) {
  if (!std::isfinite(*v)) {
    return false;
  }
  const uint64_t limit_hi =
      OrderedFromDouble(std::numeric_limits<double>::max());
  const uint64_t limit_lo =
      OrderedFromDouble(-std::numeric_limits<double>::max());
  const uint64_t guess = OrderedFromDouble(*v);

  // Bracket the transition: sat_point satisfies the atom, unsat_point does
  // not, and exactly one transition lies between them (the satisfied set
  // is an interval). Walking direction depends on which edge we refine and
  // on the truth at the guess.
  uint64_t sat_point = 0;
  uint64_t unsat_point = 0;
  bool walk_up = truth(*v) == upper;
  uint64_t step = 1;
  uint64_t probe = guess;
  bool bracketed = false;
  bool guess_truth = truth(*v);
  if (guess_truth) {
    sat_point = guess;
  } else {
    unsat_point = guess;
  }
  for (int i = 0; i < kMaxBracketSteps; ++i) {
    if (walk_up) {
      probe = limit_hi - probe < step ? limit_hi : probe + step;
    } else {
      probe = probe - limit_lo < step ? limit_lo : probe - step;
    }
    if (truth(DoubleFromOrdered(probe)) != guess_truth) {
      (guess_truth ? unsat_point : sat_point) = probe;
      bracketed = true;
      break;
    }
    (guess_truth ? sat_point : unsat_point) = probe;
    if (probe == (walk_up ? limit_hi : limit_lo)) {
      break;
    }
    step *= 2;
  }
  if (!bracketed) {
    return false;
  }

  // Bisect down to adjacent doubles.
  uint64_t a = std::min(sat_point, unsat_point);
  uint64_t b = std::max(sat_point, unsat_point);
  const bool a_satisfies = a == sat_point;
  while (b - a > 1) {
    uint64_t mid = a + (b - a) / 2;
    if (truth(DoubleFromOrdered(mid)) == a_satisfies) {
      a = mid;
    } else {
      b = mid;
    }
  }
  *v = DoubleFromOrdered(a_satisfies ? a : b);
  return true;
}

bool RefineUpperEdge(const AtomTruth& truth, double* v) {
  return RefineEdge(truth, /*upper=*/true, v);
}

bool RefineLowerEdge(const AtomTruth& truth, double* v) {
  return RefineEdge(truth, /*upper=*/false, v);
}

bool IsAbsCall(const Expr& e) {
  return e.kind() == ExprKind::kCall && e.function_name() == "abs" &&
         e.args().size() == 1;
}

/// Handles a comparison node `lhs op rhs` where exactly one side is a
/// constant. Supports single-field linear atoms and `abs(linear) < c`
/// (the learned range-predicate shape). Boundaries are refined against the
/// atom's own evaluation, so the resulting inclusive interval agrees with
/// ExprProgram semantics for every double.
bool DecomposeComparison(const Expr& cmp, std::map<int, Interval>* out) {
  const Expr* value_side = &cmp.arg(0);
  BinaryOp op = cmp.binary_op();
  LinearForm constant_side;
  // Normalize the constant to the right-hand side.
  if (!(ExtractLinear(cmp.arg(1), &constant_side) &&
        constant_side.is_constant)) {
    if (!(ExtractLinear(cmp.arg(0), &constant_side) &&
          constant_side.is_constant)) {
      return false;
    }
    value_side = &cmp.arg(1);
    switch (op) {  // mirror: c op x  ==  x op' c
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  double bound = constant_side.constant;

  bool two_sided = false;
  LinearForm linear;
  if (IsAbsCall(*value_side)) {
    // abs(x) < c  <=>  -c < x < c. (abs(x) > c is a disjunction; fallback.)
    if (op != BinaryOp::kLt && op != BinaryOp::kLe) {
      return false;
    }
    if (!ExtractLinear(value_side->arg(0), &linear) || linear.is_constant) {
      return false;
    }
    two_sided = true;
  } else {
    if (!ExtractLinear(*value_side, &linear) || linear.is_constant) {
      return false;
    }
  }
  if (linear.scale == 0.0 || !std::isfinite(linear.scale) ||
      !std::isfinite(linear.offset) || !std::isfinite(bound)) {
    return false;
  }

  const AtomTruth truth(&cmp, linear.field);
  Interval& interval = (*out)[linear.field];

  if (two_sided || op == BinaryOp::kEq) {
    double lo = two_sided ? (-bound - linear.offset) / linear.scale
                          : (bound - linear.offset) / linear.scale;
    double hi = two_sided ? (bound - linear.offset) / linear.scale : lo;
    if (lo > hi) {
      std::swap(lo, hi);
    }
    if (!RefineLowerEdge(truth, &lo) || !RefineUpperEdge(truth, &hi)) {
      return false;
    }
    AddLowerBound(&interval, lo);
    AddUpperBound(&interval, hi);
    return true;
  }

  double guess = (bound - linear.offset) / linear.scale;
  bool upper = (op == BinaryOp::kLt || op == BinaryOp::kLe) !=
               (linear.scale < 0.0);
  if (upper) {
    if (!RefineUpperEdge(truth, &guess)) {
      return false;
    }
    AddUpperBound(&interval, guess);
  } else {
    if (!RefineLowerEdge(truth, &guess)) {
      return false;
    }
    AddLowerBound(&interval, guess);
  }
  return true;
}

}  // namespace

bool PredicateBank::Decompose(const Expr& expr,
                              std::map<int, Interval>* out) {
  switch (expr.kind()) {
    case ExprKind::kConst:
      // Conjunction identity (Expr::And of zero terms). Constant false is
      // left to the fallback path.
      return expr.constant_value() != 0.0;
    case ExprKind::kBinary:
      switch (expr.binary_op()) {
        case BinaryOp::kAnd:
          return Decompose(expr.arg(0), out) && Decompose(expr.arg(1), out);
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kEq:
          return DecomposeComparison(expr, out);
        default:
          return false;
      }
    default:
      return false;
  }
}

std::vector<int> PredicateBank::RegisterPattern(
    const CompiledPattern& pattern) {
  EPL_CHECK(!built_) << "RegisterPattern after Build";
  std::vector<int> slot_ids(pattern.num_distinct_predicates(), -1);
  for (int state = 0; state < pattern.num_states(); ++state) {
    int local = pattern.predicate_id(state);
    if (slot_ids[local] >= 0) {
      continue;
    }
    const std::string& key = pattern.predicate_key(local);
    auto [it, inserted] =
        key_to_id_.emplace(key, static_cast<int>(predicates_.size()));
    if (inserted) {
      Predicate predicate;
      predicate.program = &pattern.predicate(state);
      predicate.expr = &pattern.predicate_expr(state);
      predicates_.push_back(predicate);
    }
    slot_ids[local] = it->second;
  }
  registered_states_ += static_cast<size_t>(pattern.num_states());
  return slot_ids;
}

void PredicateBank::Build() {
  if (built_) {
    return;
  }
  built_ = true;

  num_decomposable_ = 0;
  for (Predicate& predicate : predicates_) {
    predicate.intervals.clear();
    if (Decompose(*predicate.expr, &predicate.intervals)) {
      predicate.decomposable = true;
      predicate.slot = num_decomposable_++;
    } else {
      predicate.decomposable = false;
      predicate.slot = static_cast<int>(fallback_programs_.size());
      fallback_programs_.push_back(predicate.program);
    }
  }

  // Group interval constraints by field.
  std::map<int, std::vector<const Predicate*>> by_field;
  for (const Predicate& predicate : predicates_) {
    if (!predicate.decomposable) {
      continue;
    }
    for (const auto& [field, interval] : predicate.intervals) {
      (void)interval;
      by_field[field].push_back(&predicate);
    }
  }

  const size_t num_words = words();
  fields_.clear();
  fields_.reserve(by_field.size());
  for (const auto& [field, constrained_predicates] : by_field) {
    FieldIndex index;
    index.field = field;
    for (const Predicate* predicate : constrained_predicates) {
      const Interval& interval = predicate->intervals.at(field);
      if (std::isfinite(interval.lo)) {
        index.bounds.push_back(interval.lo);
      }
      if (std::isfinite(interval.hi)) {
        index.bounds.push_back(interval.hi);
      }
    }
    std::sort(index.bounds.begin(), index.bounds.end());
    index.bounds.erase(
        std::unique(index.bounds.begin(), index.bounds.end()),
        index.bounds.end());

    // Elementary regions: (-inf,b0), [b0,b0], (b0,b1), ..., (bk-1,+inf).
    // An inclusive interval [lo, hi] holds exactly on the contiguous
    // region range [on, off): on is lo's singleton region (or 0 when
    // lo = -inf), off is one past hi's singleton region (or past the last
    // region when hi = +inf). The index therefore stores one on and one
    // off transition per predicate instead of a bitset per region.
    const size_t num_regions = 2 * index.bounds.size() + 1;
    index.constrained.assign(num_words, 0);
    std::vector<uint64_t> running(num_words, ~uint64_t{0});

    for (const Predicate* predicate : constrained_predicates) {
      const Interval& interval = predicate->intervals.at(field);
      const uint32_t bit = static_cast<uint32_t>(predicate->slot);
      index.constrained[bit >> 6] |= uint64_t{1} << (bit & 63);
      if (interval.lo > interval.hi) {
        // Empty after intersection: never satisfied, no transitions.
        running[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
        continue;
      }
      size_t on = 0;
      if (std::isfinite(interval.lo)) {
        size_t pos = static_cast<size_t>(
            std::lower_bound(index.bounds.begin(), index.bounds.end(),
                             interval.lo) -
            index.bounds.begin());
        on = 2 * pos + 1;
      }
      size_t off = num_regions;
      if (std::isfinite(interval.hi)) {
        size_t pos = static_cast<size_t>(
            std::lower_bound(index.bounds.begin(), index.bounds.end(),
                             interval.hi) -
            index.bounds.begin());
        off = 2 * pos + 2;
      }
      if (on > 0) {
        running[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
        index.deltas.push_back(
            {static_cast<uint32_t>(on), bit, /*on=*/true});
      }
      if (off < num_regions) {
        index.deltas.push_back(
            {static_cast<uint32_t>(off), bit, /*on=*/false});
      }
    }
    std::sort(index.deltas.begin(), index.deltas.end(),
              [](const FieldIndex::RegionDelta& a,
                 const FieldIndex::RegionDelta& b) {
                return a.region < b.region;
              });

    // Walk the regions once, snapshotting an absolute bitset every
    // kCheckpointStride regions and remembering where each checkpoint's
    // trailing deltas start.
    const size_t num_checkpoints =
        (num_regions + kCheckpointStride - 1) / kCheckpointStride;
    index.checkpoints.reserve(num_checkpoints * num_words);
    index.checkpoint_delta_begin.reserve(num_checkpoints);
    size_t next_delta = 0;
    for (size_t region = 0; region < num_regions; ++region) {
      while (next_delta < index.deltas.size() &&
             index.deltas[next_delta].region == region) {
        const FieldIndex::RegionDelta& delta = index.deltas[next_delta];
        if (delta.on) {
          running[delta.bit >> 6] |= uint64_t{1} << (delta.bit & 63);
        } else {
          running[delta.bit >> 6] &= ~(uint64_t{1} << (delta.bit & 63));
        }
        ++next_delta;
      }
      if (region % kCheckpointStride == 0) {
        index.checkpoints.insert(index.checkpoints.end(), running.begin(),
                                 running.end());
        index.checkpoint_delta_begin.push_back(
            static_cast<uint32_t>(next_delta));
      }
    }

    index.memo_words.assign(num_words, 0);
    fields_.push_back(std::move(index));
  }

  result_words_.assign(num_words, 0);
  fallback_values_.assign(fallback_programs_.size(), -1);
}

bool PredicateBank::RegionContains(const FieldIndex& index, size_t region,
                                   double v) {
  if (region % 2 == 1) {
    return v == index.bounds[(region - 1) / 2];
  }
  const size_t slot = region / 2;
  return (slot == 0 || v > index.bounds[slot - 1]) &&
         (slot == index.bounds.size() || v < index.bounds[slot]);
}

void PredicateBank::SeekRegion(FieldIndex* index, size_t region) const {
  const size_t checkpoint = region / kCheckpointStride;
  const size_t num_words = index->memo_words.size();
  std::copy_n(index->checkpoints.begin() +
                  static_cast<ptrdiff_t>(checkpoint * num_words),
              num_words, index->memo_words.begin());
  for (size_t i = index->checkpoint_delta_begin[checkpoint];
       i < index->deltas.size() && index->deltas[i].region <= region; ++i) {
    const FieldIndex::RegionDelta& delta = index->deltas[i];
    if (delta.on) {
      index->memo_words[delta.bit >> 6] |= uint64_t{1} << (delta.bit & 63);
    } else {
      index->memo_words[delta.bit >> 6] &= ~(uint64_t{1} << (delta.bit & 63));
    }
  }
  index->memo_region = region;
  index->memo_valid = true;
}

size_t PredicateBank::index_bytes() const {
  size_t bytes = 0;
  for (const FieldIndex& index : fields_) {
    bytes += index.checkpoints.size() * sizeof(uint64_t) +
             index.deltas.size() * sizeof(FieldIndex::RegionDelta) +
             index.checkpoint_delta_begin.size() * sizeof(uint32_t) +
             (index.constrained.size() + index.memo_words.size()) *
                 sizeof(uint64_t) +
             index.bounds.size() * sizeof(double);
  }
  return bytes;
}

void PredicateBank::Evaluate(const stream::Event& event) {
  if (!built_) {
    Build();
  }
  ++stats_.events;

  const simd::Kernels& kernels = simd::Active();
  const size_t num_words = result_words_.size();
  // Walk the fields updating memos (exactly as before), but defer the
  // bitset arithmetic: the fold kernel ANDs every field's contribution
  // into the result row in ONE pass, so the row is written once per event
  // instead of once per field.
  fold_and_srcs_.clear();
  fold_not_srcs_.clear();
  for (FieldIndex& index : fields_) {
    double v = event.values[index.field];
    if (std::isnan(v)) {
      // No interval contains NaN; clear every predicate constrained here.
      fold_not_srcs_.push_back(index.constrained.data());
      continue;
    }
    if (index.memo_valid && RegionContains(index, index.memo_region, v)) {
      ++stats_.region_memo_hits;
    } else {
      ++stats_.region_searches;
      size_t pos = static_cast<size_t>(
          std::lower_bound(index.bounds.begin(), index.bounds.end(), v) -
          index.bounds.begin());
      size_t region = (pos < index.bounds.size() && index.bounds[pos] == v)
                          ? 2 * pos + 1
                          : 2 * pos;
      SeekRegion(&index, region);
    }
    fold_and_srcs_.push_back(index.memo_words.data());
  }
  simd::FoldInto(kernels, result_words_.data(), fold_and_srcs_.data(),
                 fold_and_srcs_.size(), fold_not_srcs_.data(),
                 fold_not_srcs_.size(), num_words);

  // Fallback predicates are interpreted lazily in value(), so events on
  // which no NFA run consults them skip the program interpretations; the
  // bank keeps a small capacity-reusing event copy for those deferred
  // reads.
  if (!fallback_values_.empty()) {
    std::fill(fallback_values_.begin(), fallback_values_.end(), -1);
    current_event_.timestamp = event.timestamp;
    current_event_.values.assign(event.values.begin(), event.values.end());
  }
}

void PredicateBank::EvaluateBatch(const stream::Event* events, size_t count) {
  if (!built_) {
    Build();
  }
  stats_.events += count;
  batch_events_ = events;

  const simd::Kernels& kernels = simd::Active();
  const size_t num_words = words();
  batch_words_.assign(num_words * count, ~uint64_t{0});
  for (FieldIndex& index : fields_) {
    // One memo walk over the whole window, run-length compressed: event b
    // only searches (and replays deltas) when it leaves the memoized
    // elementary region, and a maximal run of consecutive same-region
    // events is ANDed in ONE row-broadcast kernel call instead of one
    // word loop per event.
    size_t b = 0;
    while (b < count) {
      double v = events[b].values[index.field];
      if (std::isnan(v)) {
        // No interval contains NaN; clear every predicate constrained
        // here. The memo stays valid for the next event.
        simd::AndNotInto(kernels, batch_words_.data() + b * num_words,
                         index.constrained.data(), num_words);
        ++b;
        continue;
      }
      if (index.memo_valid && RegionContains(index, index.memo_region, v)) {
        ++stats_.region_memo_hits;
        ++stats_.batch_broadcast_rows;
      } else {
        ++stats_.region_searches;
        ++stats_.batch_recomputed_rows;
        size_t pos = static_cast<size_t>(
            std::lower_bound(index.bounds.begin(), index.bounds.end(), v) -
            index.bounds.begin());
        size_t region = (pos < index.bounds.size() && index.bounds[pos] == v)
                            ? 2 * pos + 1
                            : 2 * pos;
        SeekRegion(&index, region);
      }
      size_t run_end = b + 1;
      while (run_end < count) {
        const double next = events[run_end].values[index.field];
        if (std::isnan(next) ||
            !RegionContains(index, index.memo_region, next)) {
          break;
        }
        ++run_end;
      }
      const size_t run = run_end - b;
      stats_.region_memo_hits += run - 1;
      stats_.batch_broadcast_rows += run - 1;
      simd::AndRows(kernels, batch_words_.data() + b * num_words, num_words,
                    run, index.memo_words.data(), num_words);
      b = run_end;
    }
  }

  if (!fallback_programs_.empty()) {
    batch_fallback_values_.assign(fallback_programs_.size() * count, -1);
  }
}

bool PredicateBank::batch_value(size_t b, int id) const {
  const Predicate& predicate = predicates_[id];
  if (predicate.decomposable) {
    const size_t bit = static_cast<size_t>(predicate.slot);
    return (batch_words_[b * words() + (bit >> 6)] >> (bit & 63)) & 1;
  }
  int8_t& cached =
      batch_fallback_values_[b * fallback_programs_.size() +
                             static_cast<size_t>(predicate.slot)];
  if (cached < 0) {
    ++stats_.program_evaluations;
    cached =
        fallback_programs_[static_cast<size_t>(predicate.slot)]->EvalBool(
            batch_events_[b])
            ? 1
            : 0;
  }
  return cached == 1;
}

bool PredicateBank::value(int id) const {
  const Predicate& predicate = predicates_[id];
  if (predicate.decomposable) {
    const size_t bit = static_cast<size_t>(predicate.slot);
    return (result_words_[bit >> 6] >> (bit & 63)) & 1;
  }
  int8_t& cached = fallback_values_[predicate.slot];
  if (cached < 0) {
    ++stats_.program_evaluations;
    cached =
        fallback_programs_[static_cast<size_t>(predicate.slot)]->EvalBool(
            current_event_)
            ? 1
            : 0;
  }
  return cached == 1;
}

}  // namespace epl::cep
