#include "cep/simd.h"

#include <cstdlib>

#include "common/logging.h"

namespace epl::cep::simd {
namespace {

void ScalarAndInto(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    dst[w] &= src[w];
  }
}

void ScalarAndNotInto(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    dst[w] &= ~src[w];
  }
}

void ScalarFoldInto(uint64_t* dst, const uint64_t* const* and_srcs,
                    size_t num_and, const uint64_t* const* not_srcs,
                    size_t num_not, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t acc = ~uint64_t{0};
    for (size_t i = 0; i < num_and; ++i) {
      acc &= and_srcs[i][w];
    }
    for (size_t i = 0; i < num_not; ++i) {
      acc &= ~not_srcs[i][w];
    }
    dst[w] = acc;
  }
}

void ScalarAndRows(uint64_t* rows, size_t stride_words, size_t num_rows,
                   const uint64_t* src, size_t words) {
  for (size_t r = 0; r < num_rows; ++r) {
    uint64_t* row = rows + r * stride_words;
    for (size_t w = 0; w < words; ++w) {
      row[w] &= src[w];
    }
  }
}

bool ScalarGateColumn(const uint64_t* rows, size_t stride_words, size_t count,
                      uint32_t word, uint64_t mask, uint64_t* out) {
  const uint64_t* cell = rows + word;
  uint64_t any = 0;
  for (size_t base = 0; base < count; base += 64) {
    const size_t limit = count - base < 64 ? count - base : 64;
    uint64_t bits = 0;
    for (size_t i = 0; i < limit; ++i) {
      bits |= static_cast<uint64_t>((cell[(base + i) * stride_words] & mask) !=
                                    0)
              << i;
    }
    out[base / 64] = bits;
    any |= bits;
  }
  return any != 0;
}

const Kernels kScalarKernels = {
    Dispatch::kScalar, "scalar",      ScalarAndInto,    ScalarAndNotInto,
    ScalarFoldInto,    ScalarAndRows, ScalarGateColumn,
};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool ForceScalarFromEnv() {
  const char* value = std::getenv("EPL_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

/// Process-wide selection, made exactly once (first Active() call).
const Kernels* SelectKernels() {
  if (ForceScalarFromEnv()) {
    return &kScalarKernels;
  }
  const Kernels* avx2 = internal::Avx2KernelsOrNull();
  if (avx2 != nullptr && CpuHasAvx2()) {
    return avx2;
  }
  return &kScalarKernels;
}

/// Test override; nullptr outside SetDispatchForTest sessions.
const Kernels* g_override = nullptr;

}  // namespace

const Kernels& Active() {
  static const Kernels* selected = SelectKernels();
  return g_override != nullptr ? *g_override : *selected;
}

const char* DispatchName() { return Active().name; }

bool Avx2Available() {
  return internal::Avx2KernelsOrNull() != nullptr && CpuHasAvx2();
}

const Kernels& ScalarKernels() { return kScalarKernels; }

const Kernels& Avx2Kernels() {
  EPL_CHECK(Avx2Available()) << "AVX2 kernels unavailable on this machine";
  return *internal::Avx2KernelsOrNull();
}

void SetDispatchForTest(std::optional<Dispatch> dispatch) {
  if (!dispatch.has_value()) {
    g_override = nullptr;
    return;
  }
  g_override =
      *dispatch == Dispatch::kAvx2 ? &Avx2Kernels() : &kScalarKernels;
}

}  // namespace epl::cep::simd
