// AVX2 kernel implementations. This is the ONLY translation unit compiled
// with -mavx2 (see the set_source_files_properties call in CMakeLists.txt):
// confining the ISA flag here guarantees no AVX2 instruction can be emitted
// into code that runs before the CPUID dispatch check in simd.cc. Without
// the flag (non-x86 target, ancient compiler) the TU compiles to a stub and
// dispatch falls back to the scalar kernels.
//
// Bit-exactness: every kernel is pure 64-bit AND/ANDNOT/compare logic --
// no floating point, no horizontal reductions with reassociation -- so the
// scalar and AVX2 tables agree on every input by construction. The unit
// tests in tests/cep_simd_test.cc still compare them exhaustively at
// awkward widths, and the differential fuzz harness pins whole detection
// streams across dispatch modes.

#include "cep/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace epl::cep::simd {
namespace {

void Avx2AndInto(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < words; ++w) {
    dst[w] &= src[w];
  }
}

void Avx2AndNotInto(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    // andnot(b, a) = ~b & a.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_andnot_si256(b, a));
  }
  for (; w < words; ++w) {
    dst[w] &= ~src[w];
  }
}

void Avx2FoldInto(uint64_t* dst, const uint64_t* const* and_srcs,
                  size_t num_and, const uint64_t* const* not_srcs,
                  size_t num_not, size_t words) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i acc = ones;
    for (size_t i = 0; i < num_and; ++i) {
      acc = _mm256_and_si256(
          acc, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(and_srcs[i] + w)));
    }
    for (size_t i = 0; i < num_not; ++i) {
      // andnot(b, a) = ~b & a.
      acc = _mm256_andnot_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(not_srcs[i] + w)),
          acc);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), acc);
  }
  for (; w < words; ++w) {
    uint64_t acc = ~uint64_t{0};
    for (size_t i = 0; i < num_and; ++i) {
      acc &= and_srcs[i][w];
    }
    for (size_t i = 0; i < num_not; ++i) {
      acc &= ~not_srcs[i][w];
    }
    dst[w] = acc;
  }
}

void Avx2AndRows(uint64_t* rows, size_t stride_words, size_t num_rows,
                 const uint64_t* src, size_t words) {
  if (stride_words == words && words > 0 && words <= 2) {
    // Contiguous narrow rows (small banks): the whole block is
    // num_rows * words consecutive words ANDed with a 1- or 2-word
    // pattern, so a broadcast register covers 4 (or 2) rows per op.
    const __m256i pattern =
        words == 1
            ? _mm256_set1_epi64x(static_cast<long long>(src[0]))
            : _mm256_set_epi64x(static_cast<long long>(src[1]),
                                static_cast<long long>(src[0]),
                                static_cast<long long>(src[1]),
                                static_cast<long long>(src[0]));
    const size_t total = num_rows * words;
    size_t w = 0;
    for (; w + 4 <= total; w += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + w));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows + w),
                          _mm256_and_si256(a, pattern));
    }
    for (; w < total; ++w) {
      rows[w] &= src[w % words];
    }
    return;
  }
  for (size_t r = 0; r < num_rows; ++r) {
    Avx2AndInto(rows + r * stride_words, src, words);
  }
}

bool Avx2GateColumn(const uint64_t* rows, size_t stride_words, size_t count,
                    uint32_t word, uint64_t mask, uint64_t* out) {
  const uint64_t* cell = rows + word;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vindex =
      _mm256_set_epi64x(static_cast<long long>(3 * stride_words),
                        static_cast<long long>(2 * stride_words),
                        static_cast<long long>(stride_words), 0);
  uint64_t any = 0;
  size_t b = 0;
  for (size_t base = 0; base < count; base += 64) {
    const size_t limit = count - base < 64 ? count - base : 64;
    uint64_t bits = 0;
    // 4 rows per gather; the movemask inverts the ==0 lanes into the
    // "gate bit set" nibble.
    for (; b + 4 <= base + limit; b += 4) {
      const __m256i gathered = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(cell + b * stride_words), vindex,
          8);
      const __m256i is_zero =
          _mm256_cmpeq_epi64(_mm256_and_si256(gathered, vmask), vzero);
      const uint64_t nibble =
          ~static_cast<uint64_t>(
              _mm256_movemask_pd(_mm256_castsi256_pd(is_zero))) &
          0xF;
      bits |= nibble << (b - base);
    }
    for (; b < base + limit; ++b) {
      bits |= static_cast<uint64_t>((cell[b * stride_words] & mask) != 0)
              << (b - base);
    }
    out[base / 64] = bits;
    any |= bits;
  }
  return any != 0;
}

const Kernels kAvx2Kernels = {
    Dispatch::kAvx2, "avx2",      Avx2AndInto,    Avx2AndNotInto,
    Avx2FoldInto,    Avx2AndRows, Avx2GateColumn,
};

}  // namespace

namespace internal {
const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace epl::cep::simd

#else  // !defined(__AVX2__)

namespace epl::cep::simd::internal {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace epl::cep::simd::internal

#endif  // defined(__AVX2__)
