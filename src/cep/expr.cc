#include "cep/expr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace epl::cep {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

namespace {

/// Larger binds tighter.
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

constexpr int kUnaryPrecedence = 6;

double ApplyBinary(BinaryOp op, double lhs, double rhs) {
  switch (op) {
    case BinaryOp::kAdd:
      return lhs + rhs;
    case BinaryOp::kSub:
      return lhs - rhs;
    case BinaryOp::kMul:
      return lhs * rhs;
    case BinaryOp::kDiv:
      return lhs / rhs;
    case BinaryOp::kLt:
      return lhs < rhs ? 1.0 : 0.0;
    case BinaryOp::kLe:
      return lhs <= rhs ? 1.0 : 0.0;
    case BinaryOp::kGt:
      return lhs > rhs ? 1.0 : 0.0;
    case BinaryOp::kGe:
      return lhs >= rhs ? 1.0 : 0.0;
    case BinaryOp::kEq:
      return lhs == rhs ? 1.0 : 0.0;
    case BinaryOp::kNe:
      return lhs != rhs ? 1.0 : 0.0;
    case BinaryOp::kAnd:
      return (lhs != 0.0 && rhs != 0.0) ? 1.0 : 0.0;
    case BinaryOp::kOr:
      return (lhs != 0.0 || rhs != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace

ExprPtr Expr::Constant(double value) {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = ExprKind::kConst;
  expr->constant_ = value;
  return expr;
}

ExprPtr Expr::Field(std::string name) {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = ExprKind::kFieldRef;
  expr->field_name_ = std::move(name);
  return expr;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = ExprKind::kUnary;
  expr->unary_op_ = op;
  expr->args_.push_back(std::move(operand));
  return expr;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = ExprKind::kBinary;
  expr->binary_op_ = op;
  expr->args_.push_back(std::move(lhs));
  expr->args_.push_back(std::move(rhs));
  return expr;
}

ExprPtr Expr::Call(std::string function, std::vector<ExprPtr> args) {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = ExprKind::kCall;
  expr->function_ = std::move(function);
  expr->args_ = std::move(args);
  return expr;
}

ExprPtr Expr::Abs(ExprPtr operand) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(operand));
  return Call("abs", std::move(args));
}

ExprPtr Expr::RangePredicate(std::string field, double center, double width) {
  // Emitted in the paper's shape: abs(field - center) < width. A negative
  // center renders as "field - -120"; the unparser keeps the canonical
  // "field + 120" by folding the sign into the operator.
  ExprPtr diff;
  if (center >= 0.0) {
    diff = Binary(BinaryOp::kSub, Field(std::move(field)), Constant(center));
  } else {
    diff = Binary(BinaryOp::kAdd, Field(std::move(field)), Constant(-center));
  }
  return Binary(BinaryOp::kLt, Abs(std::move(diff)), Constant(width));
}

ExprPtr Expr::And(std::vector<ExprPtr> terms) {
  if (terms.empty()) {
    return Constant(1.0);
  }
  ExprPtr result = std::move(terms[0]);
  for (size_t i = 1; i < terms.size(); ++i) {
    result = Binary(BinaryOp::kAnd, std::move(result), std::move(terms[i]));
  }
  return result;
}

Status Expr::Bind(const stream::Schema& schema) {
  switch (kind_) {
    case ExprKind::kConst:
      return OkStatus();
    case ExprKind::kFieldRef: {
      EPL_ASSIGN_OR_RETURN(int index, schema.FieldIndex(field_name_));
      field_index_ = index;
      return OkStatus();
    }
    case ExprKind::kUnary:
    case ExprKind::kBinary: {
      for (const ExprPtr& arg : args_) {
        EPL_RETURN_IF_ERROR(arg->Bind(schema));
      }
      return OkStatus();
    }
    case ExprKind::kCall: {
      EPL_ASSIGN_OR_RETURN(FunctionRegistry::Entry entry,
                           FunctionRegistry::Global().Lookup(function_));
      if (entry.arity != static_cast<int>(args_.size())) {
        return InvalidArgumentError(StrFormat(
            "function %s expects %d arguments, got %zu", function_.c_str(),
            entry.arity, args_.size()));
      }
      for (const ExprPtr& arg : args_) {
        EPL_RETURN_IF_ERROR(arg->Bind(schema));
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable expr kind");
}

bool Expr::is_bound() const {
  switch (kind_) {
    case ExprKind::kConst:
      return true;
    case ExprKind::kFieldRef:
      return field_index_ >= 0;
    case ExprKind::kUnary:
    case ExprKind::kBinary:
    case ExprKind::kCall:
      return std::all_of(args_.begin(), args_.end(),
                         [](const ExprPtr& e) { return e->is_bound(); });
  }
  return false;
}

double Expr::Eval(const stream::Event& event) const {
  switch (kind_) {
    case ExprKind::kConst:
      return constant_;
    case ExprKind::kFieldRef:
      EPL_DCHECK(field_index_ >= 0) << "unbound field " << field_name_;
      EPL_DCHECK(static_cast<size_t>(field_index_) < event.values.size());
      return event.values[static_cast<size_t>(field_index_)];
    case ExprKind::kUnary: {
      double v = args_[0]->Eval(event);
      return unary_op_ == UnaryOp::kNegate ? -v : (v == 0.0 ? 1.0 : 0.0);
    }
    case ExprKind::kBinary: {
      // Short-circuit logical operators.
      if (binary_op_ == BinaryOp::kAnd) {
        return (args_[0]->Eval(event) != 0.0 && args_[1]->Eval(event) != 0.0)
                   ? 1.0
                   : 0.0;
      }
      if (binary_op_ == BinaryOp::kOr) {
        return (args_[0]->Eval(event) != 0.0 || args_[1]->Eval(event) != 0.0)
                   ? 1.0
                   : 0.0;
      }
      return ApplyBinary(binary_op_, args_[0]->Eval(event),
                         args_[1]->Eval(event));
    }
    case ExprKind::kCall: {
      Result<FunctionRegistry::Entry> entry =
          FunctionRegistry::Global().Lookup(function_);
      EPL_DCHECK(entry.ok()) << "unbound function " << function_;
      double arg_values[8];
      EPL_DCHECK(args_.size() <= 8);
      for (size_t i = 0; i < args_.size(); ++i) {
        arg_values[i] = args_[i]->Eval(event);
      }
      return entry->fn(arg_values);
    }
  }
  return 0.0;
}

ExprPtr Expr::Clone() const {
  auto expr = ExprPtr(new Expr());
  expr->kind_ = kind_;
  expr->constant_ = constant_;
  expr->field_name_ = field_name_;
  expr->field_index_ = field_index_;
  expr->unary_op_ = unary_op_;
  expr->binary_op_ = binary_op_;
  expr->function_ = function_;
  expr->args_.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    expr->args_.push_back(arg->Clone());
  }
  return expr;
}

std::string Expr::ToString() const {
  std::string out;
  ToStringImpl(&out, 0);
  return out;
}

void Expr::ToStringImpl(std::string* out, int parent_precedence) const {
  switch (kind_) {
    case ExprKind::kConst:
      *out += FormatNumber(constant_);
      return;
    case ExprKind::kFieldRef:
      *out += field_name_;
      return;
    case ExprKind::kUnary: {
      *out += unary_op_ == UnaryOp::kNegate ? "-" : "not ";
      args_[0]->ToStringImpl(out, kUnaryPrecedence);
      return;
    }
    case ExprKind::kBinary: {
      int precedence = Precedence(binary_op_);
      bool parens = precedence < parent_precedence;
      if (parens) {
        *out += "(";
      }
      args_[0]->ToStringImpl(out, precedence);
      *out += " ";
      *out += BinaryOpToString(binary_op_);
      *out += " ";
      // Right operand of a left-associative operator needs parens when it
      // has the same precedence.
      args_[1]->ToStringImpl(out, precedence + 1);
      if (parens) {
        *out += ")";
      }
      return;
    }
    case ExprKind::kCall: {
      *out += function_;
      *out += "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) {
          *out += ", ";
        }
        args_[i]->ToStringImpl(out, 0);
      }
      *out += ")";
      return;
    }
  }
}

std::vector<std::string> Expr::ReferencedFields() const {
  std::vector<std::string> fields;
  CollectFields(&fields);
  std::sort(fields.begin(), fields.end());
  fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
  return fields;
}

void Expr::CollectFields(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kFieldRef) {
    out->push_back(field_name_);
    return;
  }
  for (const ExprPtr& arg : args_) {
    arg->CollectFields(out);
  }
}

namespace {

double FnAbs(const double* a) { return std::abs(a[0]); }
double FnSqrt(const double* a) { return std::sqrt(a[0]); }
double FnMin(const double* a) { return a[0] < a[1] ? a[0] : a[1]; }
double FnMax(const double* a) { return a[0] > a[1] ? a[0] : a[1]; }
double FnFloor(const double* a) { return std::floor(a[0]); }
double FnCeil(const double* a) { return std::ceil(a[0]); }
double FnHypot3(const double* a) {
  return std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
}
double FnDeg(const double* a) { return a[0] * 180.0 / M_PI; }
double FnRad(const double* a) { return a[0] * M_PI / 180.0; }

}  // namespace

FunctionRegistry::FunctionRegistry() {
  Register("abs", 1, FnAbs).ok();
  Register("sqrt", 1, FnSqrt).ok();
  Register("min", 2, FnMin).ok();
  Register("max", 2, FnMax).ok();
  Register("floor", 1, FnFloor).ok();
  Register("ceil", 1, FnCeil).ok();
  Register("hypot3", 3, FnHypot3).ok();
  Register("deg", 1, FnDeg).ok();
  Register("rad", 1, FnRad).ok();
}

FunctionRegistry& FunctionRegistry::Global() {
  static FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

Status FunctionRegistry::Register(const std::string& name, int arity, Fn fn) {
  if (arity < 0 || arity > 8) {
    return InvalidArgumentError("function arity must be in [0, 8]");
  }
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) {
      return AlreadyExistsError("function already registered: " + name);
    }
  }
  entries_.emplace_back(name, Entry{arity, fn});
  return OkStatus();
}

Result<FunctionRegistry::Entry> FunctionRegistry::Lookup(
    const std::string& name) const {
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) {
      return entry;
    }
  }
  return NotFoundError("unknown function: " + name);
}

}  // namespace epl::cep
