#include "cep/match_operator.h"

namespace epl::cep {

MatchOperator::MatchOperator(std::string output_name, CompiledPattern pattern,
                             DetectionCallback callback,
                             std::vector<ExprProgram> measure_programs,
                             MatcherOptions options)
    : output_name_(std::move(output_name)),
      pattern_(std::make_unique<CompiledPattern>(std::move(pattern))),
      matcher_(std::make_unique<NfaMatcher>(pattern_.get(), options)),
      callback_(std::move(callback)),
      measure_programs_(std::move(measure_programs)) {}

Status MatchOperator::Process(const stream::Event& event) {
  scratch_matches_.clear();
  matcher_->Process(event, &scratch_matches_);
  for (const PatternMatch& match : scratch_matches_) {
    Detection detection;
    detection.name = output_name_;
    detection.time = match.end_time();
    detection.pose_times = match.state_times;
    detection.measures.reserve(measure_programs_.size());
    for (const ExprProgram& program : measure_programs_) {
      detection.measures.push_back(program.Eval(event));
    }
    if (callback_) {
      callback_(detection);
    }
  }
  return Forward(event);
}

}  // namespace epl::cep
