#include "cep/matcher.h"

#include <algorithm>

#include "cep/predicate_bank.h"
#include "common/logging.h"

namespace epl::cep {

NfaMatcher::NfaMatcher(const CompiledPattern* pattern, MatcherOptions options)
    : pattern_(pattern), options_(options) {
  EPL_CHECK(pattern_ != nullptr);
  EPL_CHECK(pattern_->num_states() > 0) << "empty pattern";
  const int n = pattern_->num_states();
  dominant_runs_.resize(n);
  for (std::vector<TimePoint>& run : dominant_runs_) {
    // A run holds at most one entry per state; reserving up front keeps
    // ProcessDominant free of heap allocation.
    run.reserve(n);
  }
  dominant_active_.assign(n, false);
  predicate_cache_.assign(pattern_->num_distinct_predicates(), -1);
}

void NfaMatcher::Process(const stream::Event& event,
                         std::vector<PatternMatch>* out) {
  ++stats_.events;
  std::fill(predicate_cache_.begin(), predicate_cache_.end(), -1);
  if (options_.mode == MatcherOptions::Mode::kDominant) {
    ProcessDominant(event, out);
  } else {
    ProcessExhaustive(event, out);
  }
}

void NfaMatcher::ProcessShared(const stream::Event& event,
                               const PredicateBank& bank, const int* bank_ids,
                               std::vector<PatternMatch>* out) {
  shared_bank_ = &bank;
  shared_bank_ids_ = bank_ids;
  // Clear the shared context even if Process throws, so a later plain
  // Process does not read stale bank state.
  struct ClearSharedContext {
    NfaMatcher* matcher;
    ~ClearSharedContext() {
      matcher->shared_bank_ = nullptr;
      matcher->shared_bank_ids_ = nullptr;
    }
  } clear{this};
  Process(event, out);
}

void NfaMatcher::Reset() {
  std::fill(dominant_active_.begin(), dominant_active_.end(), false);
  runs_.clear();
}

NfaRunState NfaMatcher::ExportRunState() const {
  NfaRunState out;
  out.stats = stats_;
  if (options_.mode == MatcherOptions::Mode::kDominant) {
    const int n = pattern_->num_states();
    for (int s = 0; s < n; ++s) {
      if (dominant_active_[static_cast<size_t>(s)]) {
        NfaRunState::Run run;
        run.state = s;
        run.times = dominant_runs_[static_cast<size_t>(s)];
        out.runs.push_back(std::move(run));
      }
    }
  } else {
    for (const Run& run : runs_) {
      NfaRunState::Run exported;
      exported.state = run.state;
      exported.times = run.times;
      out.runs.push_back(std::move(exported));
    }
  }
  return out;
}

Status NfaMatcher::ImportRunState(const NfaRunState& state) {
  Reset();
  const int n = pattern_->num_states();
  const bool dominant = options_.mode == MatcherOptions::Mode::kDominant;
  if (!dominant && state.runs.size() > options_.max_runs) {
    return InvalidArgumentError(
        "run state holds " + std::to_string(state.runs.size()) +
        " runs, above the matcher's cap of " +
        std::to_string(options_.max_runs));
  }
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (const NfaRunState::Run& run : state.runs) {
    if (run.state < 0 || run.state >= n) {
      return InvalidArgumentError("run state references state " +
                                  std::to_string(run.state) + " of a " +
                                  std::to_string(n) + "-state pattern");
    }
    if (run.times.size() != static_cast<size_t>(run.state) + 1) {
      return InvalidArgumentError(
          "run at state " + std::to_string(run.state) + " carries " +
          std::to_string(run.times.size()) + " entry times, expected " +
          std::to_string(run.state + 1));
    }
    if (dominant && seen[static_cast<size_t>(run.state)]) {
      return InvalidArgumentError(
          "dominant run state holds two runs at state " +
          std::to_string(run.state));
    }
    seen[static_cast<size_t>(run.state)] = true;
  }
  for (const NfaRunState::Run& run : state.runs) {
    if (dominant) {
      dominant_runs_[static_cast<size_t>(run.state)] = run.times;
      dominant_active_[static_cast<size_t>(run.state)] = true;
    } else {
      Run imported;
      imported.state = run.state;
      imported.times = run.times;
      runs_.push_back(std::move(imported));
    }
  }
  stats_ = state.stats;
  return OkStatus();
}

size_t NfaMatcher::active_run_count() const {
  if (options_.mode == MatcherOptions::Mode::kExhaustive) {
    return runs_.size();
  }
  return static_cast<size_t>(std::count(dominant_active_.begin(),
                                        dominant_active_.end(), true));
}

bool NfaMatcher::EvalPredicate(int state, const stream::Event& event) {
  const int slot = pattern_->predicate_id(state);
  int8_t& cached = predicate_cache_[slot];
  if (cached < 0) {
    if (shared_bank_ != nullptr) {
      ++stats_.predicate_cache_hits;
      cached = shared_bank_->value(shared_bank_ids_[slot]) ? 1 : 0;
    } else {
      ++stats_.predicate_evaluations;
      cached = pattern_->predicate(state).EvalBool(event) ? 1 : 0;
    }
  } else {
    ++stats_.predicate_cache_hits;
  }
  return cached == 1;
}

bool NfaMatcher::ConstraintsSatisfied(int state,
                                      const std::vector<TimePoint>& times,
                                      TimePoint now) const {
  for (const TimeConstraint& constraint : pattern_->constraints_into(state)) {
    // `times` holds entries for states 0..state-1; `now` is the candidate
    // entry for `state`. from_state < to_state == state always holds.
    TimePoint from = times[constraint.from_state];
    if (now - from > constraint.max_gap) {
      return false;
    }
  }
  return true;
}

void NfaMatcher::ProcessDominant(const stream::Event& event,
                                 std::vector<PatternMatch>* out) {
  const int n = pattern_->num_states();
  const TimePoint now = event.timestamp;
  bool completed = false;

  // Advance existing runs, highest state first so one event advances a
  // given run by at most one state.
  for (int state = n - 1; state >= 1; --state) {
    if (!dominant_active_[state - 1]) {
      continue;
    }
    if (!EvalPredicate(state, event)) {
      continue;
    }
    if (!ConstraintsSatisfied(state, dominant_runs_[state - 1], now)) {
      continue;
    }
    dominant_runs_[state] = dominant_runs_[state - 1];
    dominant_runs_[state].push_back(now);
    dominant_active_[state] = true;
    if (state == n - 1) {
      completed = true;
    }
  }

  if (completed) {
    PatternMatch match;
    match.state_times.reserve(n);
    match.state_times.assign(dominant_runs_[n - 1].begin(),
                             dominant_runs_[n - 1].end());
    out->push_back(std::move(match));
    ++stats_.matches;
    if (pattern_->consume_policy() == ConsumePolicy::kAll) {
      // The match consumed every open partial run including the current
      // event; do not re-seed state 0 from this event.
      Reset();
      stats_.peak_runs = std::max(stats_.peak_runs, active_run_count());
      return;
    }
    dominant_active_[n - 1] = false;
  }

  // Seed a fresh run at state 0.
  if (EvalPredicate(0, event)) {
    dominant_runs_[0].assign(1, now);
    dominant_active_[0] = true;
    if (n == 1) {
      PatternMatch match;
      match.state_times.assign(1, now);
      out->push_back(std::move(match));
      ++stats_.matches;
      if (pattern_->consume_policy() == ConsumePolicy::kAll) {
        Reset();
      } else {
        dominant_active_[0] = false;
      }
    }
  }
  stats_.peak_runs = std::max(stats_.peak_runs, active_run_count());
}

void NfaMatcher::ProcessExhaustive(const stream::Event& event,
                                   std::vector<PatternMatch>* out) {
  const int n = pattern_->num_states();
  const TimePoint now = event.timestamp;
  std::vector<PatternMatch> completions;

  // Branch: every run may either skip this event (stay) or advance.
  size_t existing = runs_.size();
  for (size_t i = 0; i < existing; ++i) {
    Run& run = runs_[i];
    int next_state = run.state + 1;
    if (next_state >= n) {
      continue;  // completed runs are removed below; defensive
    }
    if (!EvalPredicate(next_state, event)) {
      continue;
    }
    if (!ConstraintsSatisfied(next_state, run.times, now)) {
      continue;
    }
    Run advanced;
    advanced.state = next_state;
    advanced.times.reserve(n);
    advanced.times.assign(run.times.begin(), run.times.end());
    advanced.times.push_back(now);
    if (next_state == n - 1) {
      completions.push_back(PatternMatch{advanced.times});
    } else {
      runs_.push_back(std::move(advanced));
    }
  }

  // Seed a new run for every event matching the first predicate.
  if (EvalPredicate(0, event)) {
    Run seeded;
    seeded.state = 0;
    seeded.times.assign(1, now);
    if (n == 1) {
      completions.push_back(PatternMatch{seeded.times});
    } else {
      runs_.push_back(std::move(seeded));
    }
  }

  // Enforce the run cap by dropping the oldest runs.
  while (runs_.size() > options_.max_runs) {
    runs_.pop_front();
    ++stats_.dropped_runs;
  }
  stats_.peak_runs = std::max(stats_.peak_runs, runs_.size());

  if (completions.empty()) {
    return;
  }
  if (pattern_->select_policy() == SelectPolicy::kFirst) {
    out->push_back(completions.front());
    ++stats_.matches;
  } else {
    for (PatternMatch& match : completions) {
      out->push_back(std::move(match));
      ++stats_.matches;
    }
  }
  if (pattern_->consume_policy() == ConsumePolicy::kAll) {
    runs_.clear();
  }
}

}  // namespace epl::cep
