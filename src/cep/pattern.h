// Pattern algebra for CEP gesture queries (paper Sec. 2).
//
// A pattern is a tree: leaves are poses (a predicate over one event of a
// named stream), inner nodes are sequences (`->`) with optional time
// constraints and match policies. The paper's example:
//
//   ( kinect(P1) -> kinect(P2) within 1 seconds select first consume all )
//   -> kinect(P3) within 1 seconds select first consume all
//
// Within semantics (see DESIGN.md 2.3): `WithinMode::kGap` bounds the time
// between the completions of consecutive sequence elements — the reading
// under which the paper's nested `within` annotations all carry meaning.
// `WithinMode::kSpan` bounds first-to-last time of the whole sequence
// (spelled `within ... total` in the query language).

#ifndef EPL_CEP_PATTERN_H_
#define EPL_CEP_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cep/expr.h"
#include "common/time_util.h"

namespace epl::cep {

enum class PatternKind { kPose, kSequence };

/// What to emit when matches complete.
enum class SelectPolicy {
  kFirst,  // emit the first completed match
  kAll,    // emit every completed match combination
};

/// What happens to partial matches after an emission.
enum class ConsumePolicy {
  kAll,   // clear every partial match (the paper's default)
  kNone,  // keep partial matches alive
};

enum class WithinMode {
  kGap,   // bound between completions of consecutive elements
  kSpan,  // bound from the sequence's first event to its last
};

class PatternExpr;
using PatternExprPtr = std::unique_ptr<PatternExpr>;

class PatternExpr {
 public:
  /// Leaf: one pose of stream `source` (e.g. "kinect_t") whose event
  /// satisfies `predicate`.
  static PatternExprPtr Pose(std::string source, ExprPtr predicate);

  /// Inner node: children matched in order.
  static PatternExprPtr Sequence(std::vector<PatternExprPtr> children,
                                 std::optional<Duration> within,
                                 WithinMode within_mode = WithinMode::kGap,
                                 SelectPolicy select = SelectPolicy::kFirst,
                                 ConsumePolicy consume = ConsumePolicy::kAll);

  PatternKind kind() const { return kind_; }

  // Pose accessors.
  const std::string& source() const { return source_; }
  const Expr& predicate() const { return *predicate_; }
  Expr* mutable_predicate() { return predicate_.get(); }

  // Sequence accessors.
  const std::vector<PatternExprPtr>& children() const { return children_; }
  std::optional<Duration> within() const { return within_; }
  WithinMode within_mode() const { return within_mode_; }
  SelectPolicy select_policy() const { return select_; }
  ConsumePolicy consume_policy() const { return consume_; }

  /// Structural checks: sequences are non-empty, within is positive, poses
  /// have predicates. Does not bind expressions.
  Status Validate() const;

  /// Number of pose leaves.
  int NumPoses() const;

  /// All pose leaves in sequence order.
  std::vector<const PatternExpr*> Poses() const;

  /// The source stream name (all poses must agree; checked by Validate).
  std::string SourceStream() const;

  PatternExprPtr Clone() const;

  /// Deep copy with every pose retargeted and/or strengthened: poses read
  /// `source` instead of their original stream (unchanged when `source` is
  /// empty) and, when `extra` is non-null, each pose predicate becomes the
  /// conjunction (extra AND predicate). This is how the session runtime
  /// scopes a gesture query onto a shared multi-user stream: the pattern
  /// is rescoped onto the merged stream and every pose is guarded by the
  /// session's identity predicate, so foreign sessions' events can never
  /// advance it.
  PatternExprPtr Rescope(const std::string& source, const Expr* extra) const;

  /// Debug rendering, e.g. "(kinect(...) -> kinect(...) within 1s)".
  std::string ToString() const;

 private:
  PatternExpr() = default;

  void CollectPoses(std::vector<const PatternExpr*>* out) const;

  PatternKind kind_ = PatternKind::kPose;
  // Pose state.
  std::string source_;
  ExprPtr predicate_;
  // Sequence state.
  std::vector<PatternExprPtr> children_;
  std::optional<Duration> within_;
  WithinMode within_mode_ = WithinMode::kGap;
  SelectPolicy select_ = SelectPolicy::kFirst;
  ConsumePolicy consume_ = ConsumePolicy::kAll;
};

}  // namespace epl::cep

#endif  // EPL_CEP_PATTERN_H_
