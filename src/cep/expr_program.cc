#include "cep/expr_program.h"

#include <array>

#include "common/logging.h"

namespace epl::cep {

Result<ExprProgram> ExprProgram::Compile(const Expr& expr) {
  if (!expr.is_bound()) {
    return FailedPreconditionError(
        "expression must be bound before compilation: " + expr.ToString());
  }
  ExprProgram program;
  int depth = 0;
  EPL_RETURN_IF_ERROR(program.Emit(expr, &depth));
  if (depth != 1) {
    return InternalError("expression compilation left bad stack depth");
  }
  return program;
}

Status ExprProgram::Emit(const Expr& expr, int* depth) {
  auto track_push = [this, depth]() {
    ++*depth;
    if (*depth > max_stack_depth_) {
      max_stack_depth_ = *depth;
    }
  };

  switch (expr.kind()) {
    case ExprKind::kConst: {
      Instruction instr;
      instr.op = Op::kPushConst;
      instr.constant = expr.constant_value();
      instructions_.push_back(instr);
      track_push();
      break;
    }
    case ExprKind::kFieldRef: {
      Instruction instr;
      instr.op = Op::kPushField;
      instr.field_index = expr.field_index();
      instructions_.push_back(instr);
      track_push();
      break;
    }
    case ExprKind::kUnary: {
      EPL_RETURN_IF_ERROR(Emit(expr.arg(0), depth));
      Instruction instr;
      instr.op =
          expr.unary_op() == UnaryOp::kNegate ? Op::kNegate : Op::kNot;
      instructions_.push_back(instr);
      break;
    }
    case ExprKind::kBinary: {
      // Logical operators compile to short-circuit jumps.
      if (expr.binary_op() == BinaryOp::kAnd ||
          expr.binary_op() == BinaryOp::kOr) {
        EPL_RETURN_IF_ERROR(Emit(expr.arg(0), depth));
        size_t jump_index = instructions_.size();
        Instruction jump;
        jump.op = expr.binary_op() == BinaryOp::kAnd ? Op::kAndJump
                                                     : Op::kOrJump;
        instructions_.push_back(jump);
        --*depth;  // the jump pops the lhs on the fall-through path
        EPL_RETURN_IF_ERROR(Emit(expr.arg(1), depth));
        Instruction to_bool;
        to_bool.op = Op::kToBool;
        instructions_.push_back(to_bool);
        instructions_[jump_index].jump_target =
            static_cast<int32_t>(instructions_.size());
        break;
      }
      EPL_RETURN_IF_ERROR(Emit(expr.arg(0), depth));
      EPL_RETURN_IF_ERROR(Emit(expr.arg(1), depth));
      Instruction instr;
      switch (expr.binary_op()) {
        case BinaryOp::kAdd:
          instr.op = Op::kAdd;
          break;
        case BinaryOp::kSub:
          instr.op = Op::kSub;
          break;
        case BinaryOp::kMul:
          instr.op = Op::kMul;
          break;
        case BinaryOp::kDiv:
          instr.op = Op::kDiv;
          break;
        case BinaryOp::kLt:
          instr.op = Op::kLt;
          break;
        case BinaryOp::kLe:
          instr.op = Op::kLe;
          break;
        case BinaryOp::kGt:
          instr.op = Op::kGt;
          break;
        case BinaryOp::kGe:
          instr.op = Op::kGe;
          break;
        case BinaryOp::kEq:
          instr.op = Op::kEq;
          break;
        case BinaryOp::kNe:
          instr.op = Op::kNe;
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return InternalError("logical op reached arithmetic lowering");
      }
      instructions_.push_back(instr);
      --*depth;
      break;
    }
    case ExprKind::kCall: {
      EPL_ASSIGN_OR_RETURN(
          FunctionRegistry::Entry entry,
          FunctionRegistry::Global().Lookup(expr.function_name()));
      for (const ExprPtr& arg : expr.args()) {
        EPL_RETURN_IF_ERROR(Emit(*arg, depth));
      }
      Instruction instr;
      instr.op = Op::kCall;
      instr.arity = static_cast<uint8_t>(expr.args().size());
      instr.fn = entry.fn;
      instructions_.push_back(instr);
      *depth -= static_cast<int>(expr.args().size()) - 1;
      break;
    }
  }
  if (max_stack_depth_ > kMaxStackDepth) {
    return ResourceExhaustedError("expression too deep to compile");
  }
  return OkStatus();
}

double ExprProgram::Eval(const stream::Event& event) const {
  std::array<double, kMaxStackDepth> stack;
  int top = -1;  // index of top-of-stack
  const double* values = event.values.data();
  const size_t count = instructions_.size();
  for (size_t pc = 0; pc < count; ++pc) {
    const Instruction& instr = instructions_[pc];
    switch (instr.op) {
      case Op::kPushConst:
        stack[++top] = instr.constant;
        break;
      case Op::kPushField:
        stack[++top] = values[instr.field_index];
        break;
      case Op::kNegate:
        stack[top] = -stack[top];
        break;
      case Op::kNot:
        stack[top] = stack[top] == 0.0 ? 1.0 : 0.0;
        break;
      case Op::kAdd:
        --top;
        stack[top] += stack[top + 1];
        break;
      case Op::kSub:
        --top;
        stack[top] -= stack[top + 1];
        break;
      case Op::kMul:
        --top;
        stack[top] *= stack[top + 1];
        break;
      case Op::kDiv:
        --top;
        stack[top] /= stack[top + 1];
        break;
      case Op::kLt:
        --top;
        stack[top] = stack[top] < stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kLe:
        --top;
        stack[top] = stack[top] <= stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kGt:
        --top;
        stack[top] = stack[top] > stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kGe:
        --top;
        stack[top] = stack[top] >= stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kEq:
        --top;
        stack[top] = stack[top] == stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kNe:
        --top;
        stack[top] = stack[top] != stack[top + 1] ? 1.0 : 0.0;
        break;
      case Op::kCall: {
        top -= instr.arity - 1;
        stack[top] = instr.fn(&stack[top]);
        break;
      }
      case Op::kAndJump:
        if (stack[top] == 0.0) {
          pc = static_cast<size_t>(instr.jump_target) - 1;  // ++pc follows
        } else {
          --top;
        }
        break;
      case Op::kOrJump:
        if (stack[top] != 0.0) {
          stack[top] = 1.0;
          pc = static_cast<size_t>(instr.jump_target) - 1;
        } else {
          --top;
        }
        break;
      case Op::kToBool:
        stack[top] = stack[top] != 0.0 ? 1.0 : 0.0;
        break;
    }
  }
  EPL_DCHECK(top == 0) << "program left unbalanced stack";
  return stack[0];
}

}  // namespace epl::cep
