// Compilation of a PatternExpr into a linear NFA with time constraints.
//
// Pose leaves become NFA states 0..n-1 in sequence order. Every `within`
// annotation lowers to one or more upper-bound constraints between state
// entry timestamps:
//   * kGap on a sequence: for each pair of consecutive children, the time
//     between the completion of the left child (its last state) and the
//     completion of the right child is bounded.
//   * kSpan on a sequence: the time between the sequence's first state and
//     its last state is bounded.
// All constraints have the form t[to] - t[from] <= max_gap with from < to,
// which is what makes the dominant-run matcher correct (DESIGN.md 2.4).

#ifndef EPL_CEP_NFA_H_
#define EPL_CEP_NFA_H_

#include <string>
#include <vector>

#include "cep/expr_program.h"
#include "cep/pattern.h"
#include "stream/schema.h"

namespace epl::cep {

/// One temporal upper bound between two state-entry timestamps.
struct TimeConstraint {
  int from_state = 0;
  int to_state = 0;
  Duration max_gap = 0;
};

class CompiledPattern {
 public:
  /// Binds all pose predicates against `schema`, compiles them, and lowers
  /// the within annotations. The input pattern is not modified.
  static Result<CompiledPattern> Compile(const PatternExpr& pattern,
                                         const stream::Schema& schema);

  CompiledPattern() = default;

  int num_states() const { return static_cast<int>(predicate_exprs_.size()); }
  const ExprProgram& predicate(int state) const {
    return predicates_[predicate_ids_[state]];
  }
  const Expr& predicate_expr(int state) const {
    return *predicate_exprs_[state];
  }

  /// Distinct-predicate slot of `state`. States whose bound predicates
  /// are structurally bit-identical (exact canonical rendering: hexfloat
  /// constants, bound field indices) share one slot and one compiled
  /// ExprProgram; the matcher memoizes per-event predicate results by slot
  /// and the PredicateBank deduplicates across patterns by the same
  /// canonical key.
  int predicate_id(int state) const { return predicate_ids_[state]; }
  int num_distinct_predicates() const {
    return static_cast<int>(predicates_.size());
  }
  /// Canonical dedup key of distinct predicate `id` (exact, not
  /// human-readable; see predicate_id).
  const std::string& predicate_key(int id) const {
    return predicate_keys_[id];
  }

  const std::vector<TimeConstraint>& constraints() const {
    return constraints_;
  }
  /// Constraints whose `to_state` equals `state` (checked on entry).
  const std::vector<TimeConstraint>& constraints_into(int state) const {
    return constraints_by_state_[state];
  }

  SelectPolicy select_policy() const { return select_; }
  ConsumePolicy consume_policy() const { return consume_; }
  const std::string& source_stream() const { return source_stream_; }

  std::string ToString() const;

 private:
  std::vector<ExprProgram> predicates_;   // one per distinct predicate
  std::vector<std::string> predicate_keys_;  // parallel to predicates_
  std::vector<int> predicate_ids_;        // state -> distinct slot
  // Bound per-state trees: diagnostics (ToString) and the source for
  // PredicateBank interval decomposition -- must stay bound.
  std::vector<ExprPtr> predicate_exprs_;
  std::vector<TimeConstraint> constraints_;
  std::vector<std::vector<TimeConstraint>> constraints_by_state_;
  SelectPolicy select_ = SelectPolicy::kFirst;
  ConsumePolicy consume_ = ConsumePolicy::kAll;
  std::string source_stream_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_NFA_H_
