// NfaMatcher: runs a CompiledPattern over an event stream.
//
// Two execution modes (DESIGN.md 2.4, experiment E10):
//
//  * kDominant (default): keeps exactly one run per NFA state. Because all
//    temporal constraints are upper bounds of the form
//    t[to] - t[from] <= max_gap and predicates are history-free, a run whose
//    entry timestamps are componentwise later satisfies every constraint an
//    older run would. The run produced by always advancing the dominant run
//    of the previous state is itself dominant, so match *existence* is
//    detected exactly. O(num_states) memory, at most one predicate
//    evaluation per state per event.
//
//  * kExhaustive: keeps every partial run and branches on each possible
//    advance (skip-till-any-match semantics). Enumerates all match
//    combinations, which `select all` needs; also the ground truth oracle
//    for the dominance property tests. Run count is capped; overflow drops
//    the oldest run and increments a statistic.
//
// Sequence semantics: states are matched by strictly later events (one
// event advances a given run by at most one state). Events that match no
// predicate are skipped (skip-till-next-match), which is what gesture
// detection over a 30 Hz sensor stream requires.

#ifndef EPL_CEP_MATCHER_H_
#define EPL_CEP_MATCHER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "cep/nfa.h"
#include "stream/event.h"

namespace epl::cep {

class PredicateBank;

/// One completed match: entry timestamp of every state.
struct PatternMatch {
  std::vector<TimePoint> state_times;

  TimePoint start_time() const { return state_times.front(); }
  TimePoint end_time() const { return state_times.back(); }
};

struct MatcherOptions {
  enum class Mode { kDominant, kExhaustive };

  Mode mode = Mode::kDominant;
  /// Maximum live runs in exhaustive mode.
  size_t max_runs = 65536;
};

struct MatcherStats {
  uint64_t events = 0;
  uint64_t predicate_evaluations = 0;
  /// Predicate lookups answered without running an ExprProgram: per-event
  /// memoization hits (states sharing a distinct predicate) and values
  /// served by a shared PredicateBank via ProcessShared.
  uint64_t predicate_cache_hits = 0;
  uint64_t matches = 0;
  uint64_t dropped_runs = 0;
  size_t peak_runs = 0;
};

/// Externalized live run state of one matcher: every partial run plus the
/// accumulated statistics, detached from any matcher instance. This is the
/// unit a checkpoint serializes (durability::Snapshot) and a recovered
/// matcher is reseeded from; ExportRunState/ImportRunState round-trip it
/// exactly.
struct NfaRunState {
  struct Run {
    int state = 0;                 // highest matched state index
    std::vector<TimePoint> times;  // entry timestamps of states 0..state
  };
  /// Dominant mode: at most one run per state. Exhaustive mode: runs in
  /// creation order (ordering is observable through `select all` output).
  std::vector<Run> runs;
  MatcherStats stats;
};

class NfaMatcher {
 public:
  /// `pattern` must outlive the matcher.
  explicit NfaMatcher(const CompiledPattern* pattern,
                      MatcherOptions options = MatcherOptions());

  NfaMatcher(const NfaMatcher&) = delete;
  NfaMatcher& operator=(const NfaMatcher&) = delete;
  NfaMatcher(NfaMatcher&&) = default;

  /// Feeds one event; appends completed matches to `out` (not cleared).
  /// Events must arrive in non-decreasing timestamp order.
  void Process(const stream::Event& event, std::vector<PatternMatch>* out);

  /// Like Process, but predicate truth is read from `bank` (which must
  /// already have Evaluate()d this event) instead of evaluated here:
  /// `bank_ids[i]` is the bank predicate id of distinct predicate `i` (see
  /// CompiledPattern::predicate_id), with num_distinct_predicates()
  /// entries. Lookups stay lazy -- only predicates the NFA actually
  /// consults are read -- and count as predicate_cache_hits. Used by
  /// MultiPatternMatcher, which evaluates one shared PredicateBank per
  /// event for all deployed patterns.
  void ProcessShared(const stream::Event& event, const PredicateBank& bank,
                     const int* bank_ids, std::vector<PatternMatch>* out);

  /// Discards all partial runs.
  void Reset();

  /// Externalizes every partial run and the statistics (non-destructive).
  NfaRunState ExportRunState() const;

  /// Replaces the matcher's run state and statistics with a previously
  /// exported one. Validates `state` against the pattern (state bounds,
  /// times arity, one-run-per-state in dominant mode, the exhaustive run
  /// cap); an invalid import leaves the matcher reset.
  Status ImportRunState(const NfaRunState& state);

  const MatcherStats& stats() const { return stats_; }
  size_t active_run_count() const;
  const CompiledPattern& pattern() const { return *pattern_; }

 private:
  // The flattened multi-pattern runtime externalizes a fused pattern's
  // dominant-mode run state (dominant_runs_/dominant_active_) and
  // statistics into its columnar arena; Extract/Adopt move them back and
  // forth so a standalone NfaMatcher stays the behavioral oracle.
  friend class MultiPatternMatcher;

  struct Run {
    int state = 0;  // highest matched state index
    std::vector<TimePoint> times;
  };

  void ProcessDominant(const stream::Event& event,
                       std::vector<PatternMatch>* out);
  void ProcessExhaustive(const stream::Event& event,
                         std::vector<PatternMatch>* out);

  bool EvalPredicate(int state, const stream::Event& event);
  bool ConstraintsSatisfied(int state, const std::vector<TimePoint>& times,
                            TimePoint now) const;

  const CompiledPattern* pattern_;
  MatcherOptions options_;
  MatcherStats stats_;

  // Shared-bank evaluation context, set for the duration of ProcessShared.
  const PredicateBank* shared_bank_ = nullptr;
  const int* shared_bank_ids_ = nullptr;

  // Dominant mode: one run per state (runs_[k] holds entries 0..k).
  std::vector<std::vector<TimePoint>> dominant_runs_;
  std::vector<bool> dominant_active_;

  // Exhaustive mode.
  std::deque<Run> runs_;

  // Per-event predicate memoization, indexed by distinct predicate id
  // (CompiledPattern::predicate_id): -1 unknown, 0 false, 1 true.
  std::vector<int8_t> predicate_cache_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MATCHER_H_
