// MultiMatchOperator: one fused stream operator serving many gesture
// queries, exchangeable at runtime.
//
// Deploying N gesture queries as N MatchOperator subscribers costs
// O(N x states) predicate evaluations per event. This operator subscribes
// once and routes every event through a MultiPatternMatcher, so all queries
// share one PredicateBank evaluation; detections are dispatched to each
// query's callback exactly as MatchOperator would.
//
// Queries can be added and removed while the stream is live (the paper's
// "exchange gestures during runtime" demo): AddQuery/RemoveQuery between
// events take effect immediately (the shared bank is rebuilt lazily by the
// next event, see MultiPatternMatcher); calls made from inside a detection
// callback are deferred until the current event finishes on the old query
// set, then applied in call order.
//
// Threading contract: this operator is single-threaded like the
// StreamEngine that owns it -- AddQuery/RemoveQuery must be serialized
// with event processing (call them on the dispatch thread, e.g. from a
// detection callback or between EngineRunner batches; an EngineRunner
// producer thread must not mutate a live operator directly). For
// exchanges from arbitrary threads use cep::ShardedEngine, whose control
// operations are internally synchronized.

#ifndef EPL_CEP_MULTI_MATCH_OPERATOR_H_
#define EPL_CEP_MULTI_MATCH_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cep/detection.h"
#include "cep/multi_matcher.h"
#include "common/result.h"
#include "stream/operator.h"

namespace epl::cep {

class MultiMatchOperator : public stream::Operator {
 public:
  explicit MultiMatchOperator(MatcherOptions options = MatcherOptions());

  /// One gesture query: compiled pattern, optional output measures
  /// (evaluated on the completing event), and the detection callback.
  struct QuerySpec {
    std::string output_name;
    CompiledPattern pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
  };

  /// Adds a query and returns its stable id (monotonic, never reused).
  /// Callable at any time, including from a detection callback (applied
  /// after the current event).
  int AddQuery(QuerySpec spec);

  /// Removes the query with stable id `query_id`, discarding its partial
  /// matches. Callable at any time, including from a detection callback
  /// (applied after the current event, which still sees the query).
  Status RemoveQuery(int query_id);

  /// A query detached together with its live matcher state, for adoption
  /// by another MultiMatchOperator (ShardedEngine rebalancing). The
  /// detached matcher keeps its partial runs and statistics.
  struct DetachedQuery {
    int id = 0;
    std::string output_name;
    std::unique_ptr<CompiledPattern> pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
    std::unique_ptr<NfaMatcher> matcher;
  };

  /// Detaches the query with stable id `query_id` without destroying its
  /// run state. Must not be called from inside a detection callback.
  Result<DetachedQuery> ExtractQuery(int query_id);

  /// Adopts a query detached from another MultiMatchOperator, preserving
  /// its partial runs; returns the query's new stable id here.
  int AdoptQuery(DetachedQuery detached);

  Status Process(const stream::Event& event) override;

  std::string name() const override {
    return "multi_match[" + std::to_string(queries_.size()) + " queries]";
  }

  size_t num_queries() const { return queries_.size(); }
  /// Stable id of the query at `query_index` (registration order).
  int query_id(int query_index) const { return queries_[query_index].id; }
  /// Index of the query with stable id `query_id`, or -1.
  int FindQuery(int query_id) const;
  const std::string& output_name(int query_index) const {
    return queries_[query_index].output_name;
  }
  const MatcherStats& matcher_stats(int query_index) const {
    return matcher_.matcher(query_index).stats();
  }
  const MultiPatternMatcher& matcher() const { return matcher_; }

  /// Discards partial matches of every query.
  void ResetMatchers() { matcher_.Reset(); }

 private:
  struct Query {
    int id = 0;
    std::string output_name;
    // The NFA matcher holds a pointer to the pattern, so the pattern is
    // owned by a stable unique_ptr.
    std::unique_ptr<CompiledPattern> pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
  };

  /// One deferred mutation queued from inside a detection callback.
  struct PendingOp {
    bool is_add = false;
    int query_id = 0;   // remove target, or the id pre-assigned to the add
    Query query;        // add payload
  };

  void ApplyAdd(Query query);
  void ApplyRemove(int query_id);
  void ApplyPendingOps();

  MultiPatternMatcher matcher_;
  std::vector<Query> queries_;  // index-aligned with matcher_ entries
  std::vector<MultiPatternMatcher::MultiMatch> scratch_matches_;
  std::vector<PendingOp> pending_ops_;
  int next_query_id_ = 0;
  bool processing_ = false;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCH_OPERATOR_H_
