// MultiMatchOperator: one fused stream operator serving many gesture
// queries.
//
// Deploying N gesture queries as N MatchOperator subscribers costs
// O(N x states) predicate evaluations per event. This operator subscribes
// once and routes every event through a MultiPatternMatcher, so all queries
// share one PredicateBank evaluation; detections are dispatched to each
// query's callback exactly as MatchOperator would.

#ifndef EPL_CEP_MULTI_MATCH_OPERATOR_H_
#define EPL_CEP_MULTI_MATCH_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cep/detection.h"
#include "cep/multi_matcher.h"
#include "stream/operator.h"

namespace epl::cep {

class MultiMatchOperator : public stream::Operator {
 public:
  explicit MultiMatchOperator(MatcherOptions options = MatcherOptions());

  /// One gesture query: compiled pattern, optional output measures
  /// (evaluated on the completing event), and the detection callback.
  struct QuerySpec {
    std::string output_name;
    CompiledPattern pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
  };

  /// Adds a query; returns its index. Must be called before the first
  /// event is processed.
  int AddQuery(QuerySpec spec);

  Status Process(const stream::Event& event) override;

  std::string name() const override {
    return "multi_match[" + std::to_string(queries_.size()) + " queries]";
  }

  size_t num_queries() const { return queries_.size(); }
  const std::string& output_name(int query_index) const {
    return queries_[query_index].output_name;
  }
  const MatcherStats& matcher_stats(int query_index) const {
    return matcher_.matcher(query_index).stats();
  }
  const MultiPatternMatcher& matcher() const { return matcher_; }

  /// Discards partial matches of every query.
  void ResetMatchers() { matcher_.Reset(); }

 private:
  struct Query {
    std::string output_name;
    // The NFA matcher holds a pointer to the pattern, so the pattern is
    // owned by a stable unique_ptr.
    std::unique_ptr<CompiledPattern> pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
  };

  MultiPatternMatcher matcher_;
  std::vector<Query> queries_;
  std::vector<MultiPatternMatcher::MultiMatch> scratch_matches_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCH_OPERATOR_H_
