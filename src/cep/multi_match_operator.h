// MultiMatchOperator: one fused stream operator serving many gesture
// queries, exchangeable at runtime.
//
// Deploying N gesture queries as N MatchOperator subscribers costs
// O(N x states) predicate evaluations per event. This operator subscribes
// once and routes every event through a MultiPatternMatcher, so all queries
// share one PredicateBank evaluation; detections are dispatched to each
// query's callback exactly as MatchOperator would.
//
// Queries can be added and removed while the stream is live (the paper's
// "exchange gestures during runtime" demo): AddQuery/RemoveQuery between
// events take effect immediately (the shared bank is rebuilt lazily by the
// next event, see MultiPatternMatcher); calls made from inside a detection
// callback are deferred until the current event finishes on the old query
// set, then applied in call order.
//
// Batched execution: with batch_size > 1 the operator accumulates incoming
// events and runs them through MultiPatternMatcher::ProcessBatch in one
// sweep, which amortizes the per-pattern loop overhead of the flattened
// runtime (detection callbacks then fire at flush boundaries, still in
// exact per-event order). Every control operation -- AddQuery /
// RemoveQuery / Extract / Adopt / ResetMatchers / Close -- flushes the
// accumulated window first, so query membership boundaries are untouched
// by batching: a query added (removed) between two Process calls sees
// exactly the events pushed after (before) the call. Mutations requested
// from inside a detection callback keep their per-event semantics even
// mid-batch: they apply before the next event of the window, removed
// queries' remaining matches are dropped, and added queries catch up on
// the window's remaining events (MultiPatternMatcher::CatchUpPattern) --
// bit-identical to unbatched processing. ProcessBatch(span) is the
// zero-accumulation entry point used by ShardedEngine workers, which
// already receive events in fan-out batches.
//
// Threading contract: this operator is single-threaded like the
// StreamEngine that owns it -- AddQuery/RemoveQuery must be serialized
// with event processing (call them on the dispatch thread, e.g. from a
// detection callback or between EngineRunner batches; an EngineRunner
// producer thread must not mutate a live operator directly). For
// exchanges from arbitrary threads use cep::ShardedEngine, whose control
// operations are internally synchronized.

#ifndef EPL_CEP_MULTI_MATCH_OPERATOR_H_
#define EPL_CEP_MULTI_MATCH_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cep/composite.h"
#include "cep/detection.h"
#include "cep/multi_matcher.h"
#include "common/logging.h"
#include "common/result.h"
#include "stream/operator.h"

namespace epl::cep {

class MultiMatchOperator : public stream::Operator {
 public:
  /// `batch_size` events are accumulated per matcher sweep (1 = process
  /// every event immediately, today's per-event behavior).
  explicit MultiMatchOperator(MatcherOptions options = MatcherOptions(),
                              size_t batch_size = 1);

  /// One gesture query: compiled pattern, optional output measures
  /// (evaluated on the completing event), and the detection callback.
  /// `gate` (optional) is a single-state pattern implied by every state
  /// predicate of `pattern` (see MultiPatternMatcher::AddPattern); queries
  /// sharing a gate form a group the flat runtime can skip with one
  /// predicate read per event. Shared ownership lets many queries of one
  /// session reference a single compiled gate.
  struct QuerySpec {
    std::string output_name;
    CompiledPattern pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
    std::shared_ptr<const CompiledPattern> gate;
    /// Composite level (see cep/composite.h). 0 = base query matching the
    /// operator's input stream. Level >= 1 queries match over derived
    /// detection events instead: their pattern must be compiled against
    /// DetectionSchema(), `gate` must be null, and each source event's
    /// base detections are fed to them within the same timestamp epoch
    /// in the documented (event-seq, level, query-id) order.
    int level = 0;
    /// Derived-event identity of this query's detections (see
    /// GestureTag); feeds composite levels above this query's own.
    double tag = 0;
    double session_tag = 0;
    /// True when `gate` restricts this query to events whose session
    /// field equals `session_tag` (GestureRuntime's per-session gates).
    /// ShardedEngine uses it to build per-shard interest filters: events
    /// of other sessions are provably no-ops for this query, so routed
    /// fan-out may skip shards hosting only foreign-session queries.
    bool session_scoped = false;
  };

  /// Adds a query and returns its stable id (monotonic, never reused).
  /// Callable at any time, including from a detection callback (applied
  /// after the current event).
  int AddQuery(QuerySpec spec);

  /// Removes the query with stable id `query_id`, discarding its partial
  /// matches. Callable at any time, including from a detection callback
  /// (applied after the current event, which still sees the query).
  Status RemoveQuery(int query_id);

  /// A query detached together with its live matcher state, for adoption
  /// by another MultiMatchOperator (ShardedEngine rebalancing). The
  /// detached matcher keeps its partial runs and statistics.
  struct DetachedQuery {
    int id = 0;
    std::string output_name;
    std::unique_ptr<CompiledPattern> pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
    std::unique_ptr<NfaMatcher> matcher;
    std::shared_ptr<const CompiledPattern> gate;
    double tag = 0;
    double session_tag = 0;
    bool session_scoped = false;
  };

  /// Detaches the query with stable id `query_id` without destroying its
  /// run state. Must not be called from inside a detection callback.
  /// Composite (level >= 1) queries cannot be extracted -- they never
  /// migrate between shards (FailedPrecondition).
  Result<DetachedQuery> ExtractQuery(int query_id);

  /// Adopts a query detached from another MultiMatchOperator, preserving
  /// its partial runs; returns the query's new stable id here.
  int AdoptQuery(DetachedQuery detached);

  /// Externalizes the live run state and statistics of the query with
  /// stable id `query_id` WITHOUT detaching it (the checkpoint path: the
  /// query keeps running). Flushes the accumulated window first so the
  /// state sits at an exact event boundary. Must not be called from
  /// inside a detection callback.
  Result<NfaRunState> ExportQueryRunState(int query_id);

  /// AddQuery, but the new query's matcher is seeded with previously
  /// exported run state (checkpoint recovery) instead of starting empty.
  /// Returns the query's stable id here; fails without adding the query
  /// when `runs` does not fit the spec's pattern.
  Result<int> RestoreQuery(QuerySpec spec, const NfaRunState& runs);

  Status Process(const stream::Event& event) override;

  /// Runs `count` events through the matcher as ONE batch (flushing any
  /// accumulated window first so stream order is kept), then forwards
  /// them downstream. This is the ShardedEngine worker entry point: the
  /// engine's fan-out batches map 1:1 onto matcher sweeps, with no
  /// operator-side accumulation.
  Status ProcessBatch(const stream::Event* events, size_t count);

  /// Processes any accumulated events now. No-op when the window is empty
  /// (always, with batch_size == 1).
  void FlushBatchedEvents();

  /// Called with the in-window event index right before that event's
  /// detections are dispatched during a batch sweep (including
  /// single-event processing, with index 0). ShardedEngine uses it to
  /// stamp recorded matches with exact event sequence numbers.
  using BatchEventHook = std::function<void(size_t)>;
  void set_batch_event_hook(BatchEventHook hook) {
    batch_event_hook_ = std::move(hook);
  }

  /// Flushes the accumulated window so no buffered event outlives the
  /// stream.
  Status Close() override;

  std::string name() const override {
    return "multi_match[" + std::to_string(queries_.size()) + " queries]";
  }

  size_t batch_size() const { return batch_size_; }

  /// Base (level-0) queries only; composite queries live in the runner.
  size_t num_queries() const { return queries_.size(); }
  size_t num_composite_queries() const {
    return composite_ == nullptr ? 0 : composite_->num_queries();
  }
  /// Live matcher statistics of the composite query with stable id
  /// `query_id` (base queries use matcher_stats()).
  Result<MatcherStats> CompositeQueryStats(int query_id) const {
    if (composite_ == nullptr) {
      return NotFoundError("no composite queries");
    }
    return composite_->QueryStats(query_id);
  }
  /// Stable id of the query at `query_index` (registration order).
  int query_id(int query_index) const { return queries_[query_index].id; }
  /// Index of the query with stable id `query_id`, or -1.
  int FindQuery(int query_id) const;
  const std::string& output_name(int query_index) const {
    return queries_[query_index].output_name;
  }
  const MatcherStats& matcher_stats(int query_index) const {
    return matcher_.matcher(query_index).stats();
  }
  /// The shared bank's evaluation counters (memo hit rates, batch
  /// broadcast vs recomputed rows) for this operator's matcher.
  const PredicateBankStats& bank_stats() const {
    return matcher_.bank().stats();
  }
  const MultiPatternMatcher& matcher() const { return matcher_; }

  /// Discards partial matches of every query (flushing the accumulated
  /// window first, so events pushed before the call are fully processed).
  /// Must not be called from inside a detection callback: a batched sweep
  /// has already matched the window's remaining events against the
  /// pre-reset runs, so a mid-dispatch reset could not keep the
  /// batched == per-event guarantee (use a deferred RemoveQuery/AddQuery
  /// pair instead).
  void ResetMatchers() {
    EPL_CHECK(!processing_) << "ResetMatchers from inside a detection "
                               "callback";
    FlushBatchedEvents();
    matcher_.Reset();
    if (composite_ != nullptr) {
      composite_->Reset();
    }
  }

 private:
  struct Query {
    int id = 0;
    std::string output_name;
    // The NFA matcher holds a pointer to the pattern, so the pattern is
    // owned by a stable unique_ptr.
    std::unique_ptr<CompiledPattern> pattern;
    std::vector<ExprProgram> measures;
    DetectionCallback callback;
    std::shared_ptr<const CompiledPattern> gate;
    int level = 0;
    double tag = 0;
    double session_tag = 0;
    bool session_scoped = false;
  };

  /// One deferred mutation queued from inside a detection callback.
  struct PendingOp {
    bool is_add = false;
    int query_id = 0;   // remove target, or the id pre-assigned to the add
    Query query;        // add payload
  };

  void ApplyAdd(Query query);
  void ApplyRemove(int query_id);
  /// The lazily created composite runner (first level >= 1 AddQuery).
  CompositeRunner& EnsureComposite();
  /// Applies pending ops; queries added are also appended to
  /// `catchup_ids_` so an in-flight batch replays its remaining events
  /// for them.
  void ApplyPendingOps();
  /// Runs `events` through the matcher as one sweep and dispatches each
  /// event's detections in order, applying callback-requested mutations
  /// between events.
  void RunBatch(const stream::Event* events, size_t count);
  /// Builds and delivers the detection of one completed match.
  void DispatchToQuery(const Query& query, const PatternMatch& match,
                       const stream::Event& event);
  /// Dispatch resolving the query by stable id -- the slow path once a
  /// mid-batch mutation shifted indices (a query removed mid-batch
  /// silently drops its remaining matches, exactly as if it had stopped
  /// processing).
  void Dispatch(int query_id, const PatternMatch& match,
                const stream::Event& event);

  MultiPatternMatcher matcher_;
  std::vector<Query> queries_;  // index-aligned with matcher_ entries
  // Composite (level >= 1) queries; null until the first one is added.
  // queries_ holds base queries only, so the flat path never pays for
  // the feedback machinery beyond one null/active check per event.
  std::unique_ptr<CompositeRunner> composite_;
  std::vector<MultiPatternMatcher::MultiMatch> scratch_matches_;
  std::vector<MultiPatternMatcher::MultiMatch> catchup_scratch_;
  std::vector<PendingOp> pending_ops_;
  int next_query_id_ = 0;
  bool processing_ = false;

  // Batched-accumulation state: the buffered window, the stable ids of
  // the sweep's pattern-index space (snapshotted at the first mid-sweep
  // mutation), and the queries added mid-sweep that catch up event by
  // event.
  size_t batch_size_ = 1;
  // window_[0, window_count_) holds the buffered events; slots past the
  // count are stale Events kept only for their values capacity (both
  // vectors recycle slots so steady-state buffering never allocates).
  std::vector<stream::Event> window_;
  size_t window_count_ = 0;
  std::vector<stream::Event> flushing_;  // the window being processed
  std::vector<int> batch_ids_;
  std::vector<int> catchup_ids_;
  BatchEventHook batch_event_hook_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCH_OPERATOR_H_
