// Scalar expression AST for CEP pose predicates and output measures.
//
// Expressions are built by the query parser (query/parser.h) or
// programmatically by the query generator (core/query_gen.h). Before
// evaluation an expression must be bound against the schema of the stream
// it reads from, which resolves field names to indices. The tree-walking
// evaluator here is the reference implementation; the hot path uses the
// compiled form in cep/expr_program.h.
//
// Booleans are represented as doubles: 0.0 is false, anything else is true.
// Comparison and logical operators produce exactly 0.0 or 1.0.

#ifndef EPL_CEP_EXPR_H_
#define EPL_CEP_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/event.h"
#include "stream/schema.h"

namespace epl::cep {

enum class ExprKind { kConst, kFieldRef, kUnary, kBinary, kCall };

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// Operator token as it appears in query text, e.g. "<" or "and".
std::string_view BinaryOpToString(BinaryOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Immutable expression tree node.
class Expr {
 public:
  // Factory functions (the only way to create nodes).
  static ExprPtr Constant(double value);
  static ExprPtr Field(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Call(std::string function, std::vector<ExprPtr> args);

  // Convenience builders used heavily by the query generator.
  static ExprPtr Abs(ExprPtr operand);
  /// abs(field - center) < width  (the paper's range predicate shape).
  static ExprPtr RangePredicate(std::string field, double center,
                                double width);
  /// Conjunction of all `terms` (returns Constant(1) for empty input).
  static ExprPtr And(std::vector<ExprPtr> terms);

  ExprKind kind() const { return kind_; }
  double constant_value() const { return constant_; }
  const std::string& field_name() const { return field_name_; }
  int field_index() const { return field_index_; }
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const std::string& function_name() const { return function_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  const Expr& arg(int i) const { return *args_[i]; }

  /// Resolves every field reference against `schema`. Must be called before
  /// Eval. Fails on unknown fields or unknown/wrong-arity functions.
  Status Bind(const stream::Schema& schema);

  bool is_bound() const;

  /// Tree-walking evaluation (reference implementation; the matcher uses
  /// ExprProgram instead). Requires a successful Bind.
  double Eval(const stream::Event& event) const;
  bool EvalBool(const stream::Event& event) const {
    return Eval(event) != 0.0;
  }

  /// Deep copy (unbound state is preserved).
  ExprPtr Clone() const;

  /// Renders query-language text, e.g. "abs(rHand_x - torso_x - 0) < 50".
  std::string ToString() const;

  /// All distinct field names referenced by this expression.
  std::vector<std::string> ReferencedFields() const;

 private:
  Expr() = default;

  void ToStringImpl(std::string* out, int parent_precedence) const;
  void CollectFields(std::vector<std::string>* out) const;

  ExprKind kind_ = ExprKind::kConst;
  double constant_ = 0.0;
  std::string field_name_;
  int field_index_ = -1;
  UnaryOp unary_op_ = UnaryOp::kNegate;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  std::string function_;
  std::vector<ExprPtr> args_;
};

/// Built-in scalar function registry ("user-defined operators" in AnduIN
/// terms, paper Sec. 3.2). Thread-compatible: registration happens at
/// startup, lookups afterwards.
class FunctionRegistry {
 public:
  using Fn = double (*)(const double* args);

  struct Entry {
    int arity;
    Fn fn;
  };

  /// Global singleton with builtins preregistered: abs, sqrt, min, max,
  /// floor, ceil, hypot3, deg, rad.
  static FunctionRegistry& Global();

  Status Register(const std::string& name, int arity, Fn fn);
  Result<Entry> Lookup(const std::string& name) const;

 private:
  FunctionRegistry();
  std::vector<std::pair<std::string, Entry>> entries_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_EXPR_H_
