// MultiPatternMatcher: many concurrent patterns over one shared
// PredicateBank.
//
// Each registered CompiledPattern keeps its own NfaMatcher (so run state,
// policies and statistics behave exactly as if deployed standalone), but
// per-event predicate evaluation happens once in the shared bank: the bank
// produces a satisfied-predicate bitset, and every NFA lazily reads its
// slice of it via NfaMatcher::ProcessShared. Match output is therefore
// identical to N independent matchers -- the equivalence property tests in
// tests/cep_multi_matcher_test.cc assert exactly that.

#ifndef EPL_CEP_MULTI_MATCHER_H_
#define EPL_CEP_MULTI_MATCHER_H_

#include <memory>
#include <vector>

#include "cep/matcher.h"
#include "cep/predicate_bank.h"
#include "stream/event.h"

namespace epl::cep {

class MultiPatternMatcher {
 public:
  explicit MultiPatternMatcher(MatcherOptions options = MatcherOptions());

  MultiPatternMatcher(const MultiPatternMatcher&) = delete;
  MultiPatternMatcher& operator=(const MultiPatternMatcher&) = delete;

  /// Registers `pattern` (must outlive the matcher and share the schema of
  /// every other registered pattern); returns the pattern's index. Must be
  /// called before the first Process().
  int AddPattern(const CompiledPattern* pattern);

  /// One completed match of one registered pattern.
  struct MultiMatch {
    int pattern_index = 0;
    PatternMatch match;
  };

  /// Feeds one event to every pattern; appends completed matches to `out`
  /// (not cleared), grouped by pattern index in registration order.
  void Process(const stream::Event& event, std::vector<MultiMatch>* out);

  /// Discards all partial runs of every pattern.
  void Reset();

  size_t num_patterns() const { return entries_.size(); }
  const NfaMatcher& matcher(int pattern_index) const {
    return *entries_[pattern_index].matcher;
  }
  const PredicateBank& bank() const { return bank_; }

 private:
  struct Entry {
    std::unique_ptr<NfaMatcher> matcher;
    /// Local distinct predicate id -> bank predicate id.
    std::vector<int> bank_ids;
  };

  MatcherOptions options_;
  PredicateBank bank_;
  std::vector<Entry> entries_;
  std::vector<PatternMatch> scratch_matches_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCHER_H_
