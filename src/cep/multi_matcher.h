// MultiPatternMatcher: many concurrent patterns over one shared
// PredicateBank, with runtime add/remove.
//
// Per-event predicate evaluation happens once in the shared bank: the bank
// produces a satisfied-predicate bitset and every pattern reads its slice
// of it. In the default dominant mode the per-pattern execution layer is
// FLATTENED into a columnar (struct-of-arrays) runtime owned by this
// class: the dominant run state of all patterns lives in one arena --
// entry timestamps in a flat `times_` block per (pattern, state) row plus
// one active bitset -- advanced by a single tight loop that reads the
// bank's satisfied-predicate words directly. No per-pattern predicate
// cache clears, no ProcessShared indirection, no per-run heap vectors.
//
// Each registered CompiledPattern still keeps an NfaMatcher object: it is
// the behavioral oracle (the arena loop reproduces ProcessDominant
// bit-exactly; the equivalence property tests in
// tests/cep_multi_matcher_test.cc assert that), it carries the pattern's
// MatcherStats, and it is the vehicle for moving a live pattern between
// matchers -- ExtractPattern materializes the arena rows back into the
// matcher, AdoptPattern ingests them, so ShardedEngine rebalancing never
// loses partial runs. In kExhaustive mode every pattern runs on its own
// NfaMatcher via ProcessShared (run branching is per-pattern by nature),
// which keeps `select all` semantics untouched.
//
// The pattern set is mutable at runtime. Add/Remove/Adopt/Extract mark the
// bank dirty; the next Process() swaps in a freshly built bank (generation
// counter incremented) and rebuilds the arena before evaluating the event,
// so the event that is currently in flight -- and any event processed
// before the mutation -- finishes entirely on the old bank. Surviving
// patterns keep their partial runs across rebuilds (their arena rows are
// carried over), which makes a pattern's match stream independent of its
// neighbours being exchanged (the churn property tests in
// tests/cep_dynamic_queries_test.cc assert exactly that).

#ifndef EPL_CEP_MULTI_MATCHER_H_
#define EPL_CEP_MULTI_MATCHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cep/matcher.h"
#include "cep/predicate_bank.h"
#include "stream/event.h"

namespace epl::cep {

class MultiPatternMatcher {
 public:
  explicit MultiPatternMatcher(MatcherOptions options = MatcherOptions());

  MultiPatternMatcher(const MultiPatternMatcher&) = delete;
  MultiPatternMatcher& operator=(const MultiPatternMatcher&) = delete;

  /// Registers `pattern` (must outlive the matcher and share the schema of
  /// every other registered pattern); returns the pattern's index. May be
  /// called at any time between Process() calls; the shared bank and the
  /// run-state arena are rebuilt lazily by the next Process().
  ///
  /// `gate` (optional, caller-owned, must outlive the matcher) is a
  /// single-state pattern whose only predicate the matcher ENFORCES as an
  /// extra conjunct on every state of `pattern`: the gated pattern behaves
  /// exactly as if the gate predicate were conjoined into each pose, i.e.
  /// a transition (or seed) requires gate AND pose predicate. Keeping the
  /// gate OUT of the pattern's own predicates is deliberate: identical
  /// patterns deployed under different gates (the multi-session runtime's
  /// per-session copies of one gesture) then share their pose predicates
  /// in the bank, so predicate evaluation cost does not grow with the
  /// number of sessions.
  ///
  /// Execution: patterns whose gates share one bank predicate (same
  /// canonical key) form a group; the dominant flat loop decides a whole
  /// group with ONE predicate read per event -- gate unsatisfied skips
  /// every member outright (output-exact: this runtime has no eager run
  /// expiry, so an event that can satisfy no effective state predicate is
  /// a pure no-op for the pattern), gate satisfied runs the members on
  /// their pose predicates alone (equivalent, since the gate conjunct is
  /// known true). Per-event cost is therefore sub-linear in the number of
  /// foreign sessions. Exhaustive mode enforces the gate with a per-entry
  /// check. The differential fuzz harness pins gated execution against an
  /// NfaMatcher oracle running the explicitly conjoined pattern.
  int AddPattern(const CompiledPattern* pattern,
                 const CompiledPattern* gate = nullptr);

  /// Removes the pattern at `index`, discarding its partial runs. Indices
  /// of subsequent patterns shift down by one (callers keep their own
  /// stable ids; see MultiMatchOperator).
  void RemovePattern(int index);

  /// Detaches the pattern at `index` together with its live matcher (run
  /// state, statistics), for adoption by another MultiPatternMatcher --
  /// this is how ShardedEngine rebalances queries across shards without
  /// losing partial matches. The pattern's arena rows and accumulated
  /// statistics are materialized back into the matcher first. Indices of
  /// subsequent patterns shift down. The returned matcher still points at
  /// the caller-owned pattern.
  std::unique_ptr<NfaMatcher> ExtractPattern(int index);

  /// Appends a matcher detached from another MultiPatternMatcher (its run
  /// state is preserved and ingested into the arena by the next
  /// Process()); returns the pattern's index here. `gate` as in
  /// AddPattern (a detached query's gate travels with it across shards).
  int AdoptPattern(std::unique_ptr<NfaMatcher> matcher,
                   const CompiledPattern* gate = nullptr);

  /// One completed match of one registered pattern.
  struct MultiMatch {
    int pattern_index = 0;
    PatternMatch match;
    /// Index of the completing event inside the window passed to
    /// ProcessBatch (always 0 for single-event Process), so batched
    /// output can be merged in per-event order.
    int batch_index = 0;
  };

  /// Feeds one event to every pattern; appends completed matches to `out`
  /// (not cleared), grouped by pattern index in registration order.
  /// Rebuilds the shared bank and the arena first if the pattern set
  /// changed.
  void Process(const stream::Event& event, std::vector<MultiMatch>* out);

  /// Batched Process: feeds the `count` events of `events` (in stream
  /// order) to every pattern, appending exactly the matches `count`
  /// single-event Process calls would produce, in the same order --
  /// ascending batch_index, and within one event grouped by pattern index
  /// -- each tagged with the in-batch index of its completing event. In
  /// dominant mode the bank answers the whole window in one pass per field
  /// (EvaluateBatch) and the flattened loop advances each (pattern, state)
  /// arena row across all `count` events before touching the next pattern,
  /// so per-pattern loop overhead is paid once per batch instead of once
  /// per event. The batched loop is a separate code path from ProcessFlat;
  /// tests/cep_differential_fuzz_test.cc asserts they stay bit-identical.
  void ProcessBatch(const stream::Event* events, size_t count,
                    std::vector<MultiMatch>* out);

  /// Feeds `event` to ONLY the pattern at `index`, which must have been
  /// added (or adopted) since the last Process/ProcessBatch call and
  /// therefore is not arena-resident yet. This is how a query added from
  /// inside a detection callback catches up on the remaining events of a
  /// batch its neighbours already consumed (see MultiMatchOperator);
  /// predicate truth is evaluated by the pattern's own matcher, bit-exact
  /// with the shared bank by construction.
  void CatchUpPattern(int index, const stream::Event& event,
                      std::vector<MultiMatch>* out);

  /// Discards all partial runs of every pattern.
  void Reset();

  size_t num_patterns() const { return entries_.size(); }
  const MatcherOptions& options() const { return options_; }
  /// The pattern's matcher, with run state and statistics synchronized
  /// from the arena (a fused dominant-mode pattern's live state is
  /// arena-resident between syncs).
  const NfaMatcher& matcher(int pattern_index) const;
  const PredicateBank& bank() const { return *bank_; }
  /// Number of bank swaps so far. Each mutation batch between two
  /// Process() calls costs exactly one rebuild.
  uint64_t bank_generation() const { return bank_generation_; }

 private:
  /// Per-pattern statistic deltas accumulated by the arena loop since the
  /// last sync into the matcher's MatcherStats. `events` and the
  /// one-per-event seed predicate read are derived from the global arena
  /// event counter instead of per-pattern writes.
  struct ArenaCounters {
    uint64_t events_synced = 0;  // arena_events_ at the last sync
    uint64_t matches = 0;
    /// Bank reads by the advance loop (states with an active predecessor).
    uint64_t advance_reads = 0;
    /// Events whose seed read was skipped (consume-all completion).
    uint64_t seed_skips = 0;
    size_t peak_runs = 0;  // max live rows observed since the last sync
  };

  struct Entry {
    std::unique_ptr<NfaMatcher> matcher;
    /// Local distinct predicate id -> bank predicate id.
    std::vector<int> bank_ids;
    /// Optional group gate (see AddPattern); caller-owned.
    const CompiledPattern* gate = nullptr;
    /// Bank predicate id of the gate (rebuilt with the bank).
    int gate_bank_id = -1;
    /// Index into groups_, or -1 (rebuilt with the arena).
    int32_t gate_group = -1;
    /// Dominant-mode arena residency. While true, the pattern's live run
    /// state is the arena rows below, not the matcher's own buffers.
    bool in_arena = false;
    int num_states = 0;
    bool consume_all = false;
    size_t row_offset = 0;    // first (pattern, state) row / active bit
    size_t times_offset = 0;  // first TimePoint of the n*n times block
    /// Rows currently active (dominant runs alive).
    uint32_t live_rows = 0;
    mutable ArenaCounters counters;
  };

  /// Per-row (pattern, state) predicate access, precomputed against the
  /// current bank: a (word, mask) pair into the bank's satisfied-predicate
  /// words for decomposable predicates, or the bank id for fallback
  /// lookups; plus this state's slice of the flattened time constraints.
  struct StateRef {
    int32_t word = -1;
    uint64_t mask = 0;
    int32_t fallback_id = -1;
    uint32_t constraint_begin = 0;
    uint32_t constraint_count = 0;
  };

  struct FlatConstraint {
    int32_t from_state = 0;
    Duration max_gap = 0;
  };

  /// Patterns sharing one gate predicate (same bank id), skipped together
  /// by the flat loop when the gate is unsatisfied. Rebuilt by BuildArena.
  struct GateGroup {
    StateRef gate;  // constraint fields unused
    std::vector<uint32_t> members;  // entry indices
  };

  bool RowActive(size_t row) const {
    return (active_[row >> 6] >> (row & 63)) & 1;
  }
  // Callers keep the owning entry's live_rows counter in step.
  void SetRow(size_t row) { active_[row >> 6] |= uint64_t{1} << (row & 63); }
  void ClearRow(size_t row) {
    active_[row >> 6] &= ~(uint64_t{1} << (row & 63));
  }

  /// Re-registers every live pattern into a fresh bank and swaps it in.
  void RebuildBank();
  /// Lays the flat arena out against the current (built) bank, carrying
  /// over arena-resident run state and ingesting matcher-resident state.
  void BuildArena();
  /// The flattened dominant-mode hot loop.
  void ProcessFlat(const stream::Event& event, std::vector<MultiMatch>* out);
  /// One entry's advance+seed step of ProcessFlat (`words` are the bank's
  /// satisfied-predicate words for the current event).
  void AdvanceEntryFlat(size_t i, TimePoint now, const uint64_t* words,
                        std::vector<MultiMatch>* out);
  /// Truth of the entry's gate for the last Evaluate()d event (true when
  /// ungated). Used by the exhaustive path; the dominant paths read gate
  /// truth group-wise.
  bool GateOpen(const Entry& entry) const;
  /// The batched flattened loop: pattern-major over the event window (the
  /// bank must already have EvaluateBatch()d it). Emits matches sorted by
  /// (batch_index, pattern_index).
  void ProcessFlatBatch(const stream::Event* events, size_t count,
                        std::vector<MultiMatch>* out);
  /// Folds the entry's arena counters into its matcher's MatcherStats.
  void SyncStats(const Entry& entry) const;
  /// Copies the entry's arena rows into its matcher's dominant-run
  /// buffers (the arena stays authoritative unless the entry leaves it).
  void SyncRunState(const Entry& entry) const;

  /// Raised for the duration of one Process/ProcessBatch sweep. A matcher
  /// sweep is a single-executor work unit: ShardedEngine's work stealing
  /// may run CONSECUTIVE sweeps on different threads (the handoff is
  /// ordered by its pool lock), but never two sweeps at once -- this
  /// trips immediately if a scheduler bug ever violates that, instead of
  /// silently corrupting the arena.
  std::atomic<bool> sweeping_{false};

  MatcherOptions options_;
  std::unique_ptr<PredicateBank> bank_;
  bool bank_dirty_ = false;
  bool arena_dirty_ = false;
  uint64_t bank_generation_ = 0;
  std::vector<Entry> entries_;
  std::vector<PatternMatch> scratch_matches_;
  std::vector<MultiMatch> batch_scratch_;

  // The dominant-mode arena: row (entry.row_offset + state) is one NFA
  // state of one pattern; its run's entry timestamps for states 0..s live
  // at times_[entry.times_offset + s * n .. + s].
  uint64_t arena_events_ = 0;
  std::vector<TimePoint> times_;
  std::vector<uint64_t> active_;
  std::vector<StateRef> states_;
  std::vector<FlatConstraint> flat_constraints_;

  // Gate groups (empty unless some pattern registered with a gate; the
  // ungated flat paths are byte-for-byte the pre-gate loops).
  bool has_gates_ = false;
  std::vector<GateGroup> groups_;
  std::vector<uint32_t> ungated_members_;
  std::vector<MultiMatch> flat_scratch_;
  // Per-batch gate truth as bitmask columns: groups_ x ceil(count / 64)
  // words, bit b of a group's column = gate open for in-batch event b.
  // Extracted from the bank's result-word rows by the SIMD gate kernel;
  // members then visit only the SET bits (ctz iteration), so a pattern's
  // per-window cost is O(open events), not O(count). group_open_ keeps the
  // per-group any-event-open summary for whole-window skips.
  std::vector<uint64_t> gate_truth_;
  std::vector<uint8_t> group_open_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCHER_H_
