// MultiPatternMatcher: many concurrent patterns over one shared
// PredicateBank, with runtime add/remove.
//
// Each registered CompiledPattern keeps its own NfaMatcher (so run state,
// policies and statistics behave exactly as if deployed standalone), but
// per-event predicate evaluation happens once in the shared bank: the bank
// produces a satisfied-predicate bitset, and every NFA lazily reads its
// slice of it via NfaMatcher::ProcessShared. Match output is therefore
// identical to N independent matchers -- the equivalence property tests in
// tests/cep_multi_matcher_test.cc assert exactly that.
//
// The pattern set is mutable at runtime. Add/Remove/Adopt/Extract mark the
// bank dirty; the next Process() swaps in a freshly built bank (generation
// counter incremented) before evaluating the event, so the event that is
// currently in flight -- and any event processed before the mutation --
// finishes entirely on the old bank. Matchers of surviving patterns keep
// their partial runs across rebuilds, which makes a pattern's match stream
// independent of its neighbours being exchanged (the churn property tests
// in tests/cep_dynamic_queries_test.cc assert exactly that).

#ifndef EPL_CEP_MULTI_MATCHER_H_
#define EPL_CEP_MULTI_MATCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cep/matcher.h"
#include "cep/predicate_bank.h"
#include "stream/event.h"

namespace epl::cep {

class MultiPatternMatcher {
 public:
  explicit MultiPatternMatcher(MatcherOptions options = MatcherOptions());

  MultiPatternMatcher(const MultiPatternMatcher&) = delete;
  MultiPatternMatcher& operator=(const MultiPatternMatcher&) = delete;

  /// Registers `pattern` (must outlive the matcher and share the schema of
  /// every other registered pattern); returns the pattern's index. May be
  /// called at any time between Process() calls; the shared bank is
  /// rebuilt lazily by the next Process().
  int AddPattern(const CompiledPattern* pattern);

  /// Removes the pattern at `index`, discarding its partial runs. Indices
  /// of subsequent patterns shift down by one (callers keep their own
  /// stable ids; see MultiMatchOperator).
  void RemovePattern(int index);

  /// Detaches the pattern at `index` together with its live matcher (run
  /// state, statistics), for adoption by another MultiPatternMatcher --
  /// this is how ShardedEngine rebalances queries across shards without
  /// losing partial matches. Indices of subsequent patterns shift down.
  /// The returned matcher still points at the caller-owned pattern.
  std::unique_ptr<NfaMatcher> ExtractPattern(int index);

  /// Appends a matcher detached from another MultiPatternMatcher (its run
  /// state is preserved); returns the pattern's index here.
  int AdoptPattern(std::unique_ptr<NfaMatcher> matcher);

  /// One completed match of one registered pattern.
  struct MultiMatch {
    int pattern_index = 0;
    PatternMatch match;
  };

  /// Feeds one event to every pattern; appends completed matches to `out`
  /// (not cleared), grouped by pattern index in registration order.
  /// Rebuilds the shared bank first if the pattern set changed.
  void Process(const stream::Event& event, std::vector<MultiMatch>* out);

  /// Discards all partial runs of every pattern.
  void Reset();

  size_t num_patterns() const { return entries_.size(); }
  const NfaMatcher& matcher(int pattern_index) const {
    return *entries_[pattern_index].matcher;
  }
  const PredicateBank& bank() const { return *bank_; }
  /// Number of bank swaps so far. Each mutation batch between two
  /// Process() calls costs exactly one rebuild.
  uint64_t bank_generation() const { return bank_generation_; }

 private:
  struct Entry {
    std::unique_ptr<NfaMatcher> matcher;
    /// Local distinct predicate id -> bank predicate id.
    std::vector<int> bank_ids;
  };

  /// Re-registers every live pattern into a fresh bank and swaps it in.
  void RebuildBank();

  MatcherOptions options_;
  std::unique_ptr<PredicateBank> bank_;
  bool bank_dirty_ = false;
  uint64_t bank_generation_ = 0;
  std::vector<Entry> entries_;
  std::vector<PatternMatch> scratch_matches_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MULTI_MATCHER_H_
