#include "cep/sharded_engine.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace epl::cep {

uint64_t QueryCostWeight(const CompiledPattern& pattern) {
  const uint64_t weight =
      static_cast<uint64_t>(pattern.num_states()) +
      static_cast<uint64_t>(pattern.num_distinct_predicates());
  return std::max<uint64_t>(1, weight);
}

uint64_t MeasuredQueryCostWeight(const MatcherStats& stats,
                                 uint64_t static_weight) {
  if (stats.events == 0) {
    return std::max<uint64_t>(1, static_weight);
  }
  // Per-event predicate reads, whether served by the shared bank
  // (predicate_cache_hits: seed + advance reads of the flattened loop) or
  // interpreted directly (predicate_evaluations). The factor 2 puts the
  // result on the static states+predicates scale; ceil keeps any observed
  // activity above the floor.
  const uint64_t reads =
      stats.predicate_evaluations + stats.predicate_cache_hits;
  return std::max<uint64_t>(1, (2 * reads + stats.events - 1) / stats.events);
}

int PickRebalanceVictim(
    const std::vector<uint64_t>& shard_weights,
    const std::vector<std::pair<int, uint64_t>>& candidates,
    uint64_t max_skew) {
  if (shard_weights.size() < 2) {
    return -1;
  }
  uint64_t heaviest = shard_weights[0];
  uint64_t lightest = shard_weights[0];
  for (uint64_t weight : shard_weights) {
    heaviest = std::max(heaviest, weight);
    lightest = std::min(lightest, weight);
  }
  const uint64_t gap = heaviest - lightest;
  if (gap <= max_skew) {
    return -1;
  }
  // Moving weight w from the heaviest to the lightest shard leaves a
  // |gap - 2w| pair gap; only w < gap strictly shrinks it (and the sum of
  // squared weights, which is what guarantees loop termination).
  int victim = -1;
  uint64_t best_residual = gap;
  for (const auto& [query_id, weight] : candidates) {
    if (weight == 0 || weight >= gap) {
      continue;  // moving it cannot shrink the gap
    }
    const uint64_t residual =
        2 * weight > gap ? 2 * weight - gap : gap - 2 * weight;
    if (residual < best_residual ||
        (residual == best_residual && query_id > victim)) {
      victim = query_id;
      best_residual = residual;
    }
  }
  return victim;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.max_query_skew = std::max(1, options_.max_query_skew);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(options_.matcher, options_.queue_capacity));
    // The worker runs each fan-out batch as one matcher sweep; the hook
    // stamps current_seq per event so the recorders still tag matches
    // with exact sequence numbers.
    Shard* raw = shards_.back().get();
    raw->op.set_batch_event_hook([raw](size_t index) {
      raw->current_seq = raw->batch_base_seq + index;
    });
  }
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
}

ShardedEngine::~ShardedEngine() {
  if (running()) {
    Stop().ok();
  }
}

Status ShardedEngine::Start() {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_) {
    return FailedPreconditionError("sharded engine already started");
  }
  if (stopped_) {
    return FailedPreconditionError("sharded engine cannot be restarted");
  }
  running_ = true;
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->worker =
        std::thread([this, raw = shard.get()] { WorkerLoop(raw); });
  }
  return OkStatus();
}

bool ShardedEngine::Push(stream::Event event) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Push from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return false;
  }
  pending_batch_->events.push_back(std::move(event));
  if (pending_batch_->events.size() >= options_.batch_size) {
    FlushBatch();
  }
  return true;
}

Status ShardedEngine::Flush() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Flush from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  const uint64_t target = next_seq_;
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [this, target] { return MinProcessed() >= target; });
  }
  DrainAndDeliver();
  return FirstShardError();
}

Status ShardedEngine::Stop() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Stop from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Close();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
  running_ = false;
  stopped_ = true;
  DrainAndDeliver();
  return FirstShardError();
}

int ShardedEngine::AddQuery(QuerySpec spec) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "AddQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  const int id = next_query_id_++;
  QueryInfo info;
  info.callback = std::move(spec.callback);
  info.static_weight = QueryCostWeight(spec.pattern);
  info.weight = info.static_weight;
  info.shard = LeastLoadedShard();
  Shard* shard = shards_[static_cast<size_t>(info.shard)].get();
  spec.callback = MakeRecorder(shard, id);
  info.local_id = shard->op.AddQuery(std::move(spec));
  queries_.emplace(id, std::move(info));
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return id;
}

Status ShardedEngine::RemoveQuery(int query_id) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "RemoveQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  const bool live = running_;
  if (live) {
    PauseWorkers();
    // Deliver every match the query completed before this boundary.
    DrainAndDeliver();
  }
  Shard* shard = shards_[static_cast<size_t>(it->second.shard)].get();
  Status status = shard->op.RemoveQuery(it->second.local_id);
  queries_.erase(it);
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return status;
}

void ShardedEngine::ResetMatchers() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "ResetMatchers from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->op.ResetMatchers();
  }
  if (live) {
    ResumeWorkers();
  }
}

Result<std::vector<std::pair<int, NfaRunState>>>
ShardedEngine::ExportRunStates() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "ExportRunStates from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    // Deliver every completed match first, so the cut is exactly "all
    // pushed events processed, all their detections delivered".
    DrainAndDeliver();
  }
  std::vector<std::pair<int, NfaRunState>> states;
  states.reserve(queries_.size());
  Status status;
  for (const auto& [query_id, info] : queries_) {
    MultiMatchOperator& op = shards_[static_cast<size_t>(info.shard)]->op;
    Result<NfaRunState> state = op.ExportQueryRunState(info.local_id);
    if (!state.ok()) {
      status = state.status().WithContext("query " + std::to_string(query_id));
      break;
    }
    states.emplace_back(query_id, std::move(*state));
  }
  if (live) {
    ResumeWorkers();
  }
  if (!status.ok()) {
    return status;
  }
  return states;
}

Result<int> ShardedEngine::RestoreQuery(QuerySpec spec,
                                        const NfaRunState& runs) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "RestoreQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  const int id = next_query_id_;
  QueryInfo info;
  info.callback = std::move(spec.callback);
  info.static_weight = QueryCostWeight(spec.pattern);
  info.weight = info.static_weight;
  info.shard = LeastLoadedShard();
  Shard* shard = shards_[static_cast<size_t>(info.shard)].get();
  spec.callback = MakeRecorder(shard, id);
  Result<int> local = shard->op.RestoreQuery(std::move(spec), runs);
  if (local.ok()) {
    ++next_query_id_;
    info.local_id = *local;
    queries_.emplace(id, std::move(info));
    Rebalance();
  }
  if (live) {
    ResumeWorkers();
  }
  if (!local.ok()) {
    return local.status();
  }
  return id;
}

std::vector<ShardedEngine::QueryStatsSnapshot> ShardedEngine::QueryStats() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "QueryStats from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    // Quiesce so no worker is mid-event while stats are read.
    PauseWorkers();
  }
  const std::vector<std::unordered_map<int, int>> local_index =
      LocalIndexLocked();
  std::vector<QueryStatsSnapshot> snapshots;
  snapshots.reserve(queries_.size());
  for (auto& [query_id, info] : queries_) {
    QueryStatsSnapshot snapshot;
    snapshot.query_id = query_id;
    snapshot.shard = info.shard;
    MultiMatchOperator& op = shards_[static_cast<size_t>(info.shard)]->op;
    // One stats sync per query serves both the snapshot and the
    // measured-weight refresh (the snapshot is the natural moment to fold
    // observed cost back into placement weights: workers are quiesced, so
    // the numbers are mutually consistent).
    snapshot.stats = op.matcher_stats(
        local_index[static_cast<size_t>(info.shard)].at(info.local_id));
    info.weight = MeasuredQueryCostWeight(snapshot.stats, info.static_weight);
    snapshot.weight = info.weight;
    snapshots.push_back(snapshot);
  }
  if (live) {
    ResumeWorkers();
  }
  return snapshots;
}

uint64_t ShardedEngine::processed() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "processed from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return MinProcessed();
}

size_t ShardedEngine::num_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "num_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return queries_.size();
}

bool ShardedEngine::running() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "running from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return running_;
}

uint64_t ShardedEngine::rebalanced_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "rebalanced_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return rebalanced_queries_;
}

int ShardedEngine::shard_of(int query_id) const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_of from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? -1 : it->second.shard;
}

std::vector<uint64_t> ShardedEngine::shard_weights() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_weights from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return ShardWeightsLocked();
}

std::vector<size_t> ShardedEngine::shard_query_counts() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_query_counts from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    counts.push_back(shard->op.num_queries());
  }
  return counts;
}

void ShardedEngine::WorkerLoop(Shard* shard) {
  while (true) {
    std::optional<Command> command = shard->queue.Pop();
    if (!command.has_value()) {
      return;  // closed and drained
    }
    if (command->batch == nullptr) {
      ParkAtBarrier();
      continue;
    }
    const Batch& batch = *command->batch;
    // The whole fan-out batch runs as ONE matcher sweep: the shard's bank
    // answers all events in one pass per field and every pattern advances
    // across the window before the next pattern is touched. The operator's
    // batch-event hook keeps current_seq exact per event.
    shard->batch_base_seq = batch.base_seq;
    Status status =
        shard->op.ProcessBatch(batch.events.data(), batch.events.size());
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->status.ok()) {
        shard->status = status;
      }
    }
    if (!shard->local.empty()) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (PendingMatch& match : shard->local) {
        shard->pending.push_back(std::move(match));
      }
      shard->local.clear();
    }
    shard->processed_events.store(batch.base_seq + batch.events.size(),
                                  std::memory_order_release);
    {
      // Lock/unlock pairs the notify with the waiter's predicate check.
      std::lock_guard<std::mutex> lock(progress_mu_);
    }
    progress_cv_.notify_all();
  }
}

void ShardedEngine::ParkAtBarrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  ++parked_;
  barrier_cv_.notify_all();
  const uint64_t generation = resume_generation_;
  barrier_cv_.wait(
      lock, [this, generation] { return resume_generation_ != generation; });
  --parked_;
  barrier_cv_.notify_all();
}

void ShardedEngine::PauseWorkers() {
  FlushBatch();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Push(Command{});  // sync token
  }
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [this] {
    return parked_ == static_cast<int>(shards_.size());
  });
}

void ShardedEngine::ResumeWorkers() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  ++resume_generation_;
  barrier_cv_.notify_all();
  // Wait for the full release so a back-to-back pause cannot mistake these
  // parks for its own quiesce point.
  barrier_cv_.wait(lock, [this] { return parked_ == 0; });
}

void ShardedEngine::FlushBatch() {
  if (pending_batch_->events.empty()) {
    return;
  }
  pending_batch_->base_seq = next_seq_;
  next_seq_ += pending_batch_->events.size();
  std::shared_ptr<const Batch> batch = std::move(pending_batch_);
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Push(Command{batch});
  }
  DrainAndDeliver();
}

void ShardedEngine::DrainAndDeliver() {
  const uint64_t watermark = MinProcessed();
  merge_scratch_.clear();
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (!shard->pending.empty() && shard->pending.front().seq < watermark) {
      merge_scratch_.push_back(std::move(shard->pending.front()));
      shard->pending.pop_front();
    }
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // Stable: matches of one query for one event (exhaustive mode can emit
  // several) come from a single shard in emission order.
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const PendingMatch& a, const PendingMatch& b) {
                     return std::tie(a.seq, a.query_id) <
                            std::tie(b.seq, b.query_id);
                   });
  delivering_thread_.store(std::this_thread::get_id(),
                           std::memory_order_relaxed);
  for (PendingMatch& match : merge_scratch_) {
    auto it = queries_.find(match.query_id);
    if (it != queries_.end() && it->second.callback) {
      it->second.callback(match.detection);
    }
  }
  delivering_thread_.store(std::thread::id(), std::memory_order_relaxed);
  merge_scratch_.clear();
}

uint64_t ShardedEngine::MinProcessed() const {
  uint64_t watermark = next_seq_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    watermark = std::min(
        watermark, shard->processed_events.load(std::memory_order_acquire));
  }
  return watermark;
}

std::vector<std::unordered_map<int, int>> ShardedEngine::LocalIndexLocked()
    const {
  std::vector<std::unordered_map<int, int>> local_index(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const MultiMatchOperator& op = shards_[s]->op;
    for (size_t q = 0; q < op.num_queries(); ++q) {
      local_index[s].emplace(op.query_id(static_cast<int>(q)),
                             static_cast<int>(q));
    }
  }
  return local_index;
}

void ShardedEngine::RefreshWeightsLocked(
    const std::vector<std::unordered_map<int, int>>& local_index) {
  for (auto& [query_id, info] : queries_) {
    (void)query_id;
    MultiMatchOperator& op = shards_[static_cast<size_t>(info.shard)]->op;
    const MatcherStats& stats = op.matcher_stats(
        local_index[static_cast<size_t>(info.shard)].at(info.local_id));
    info.weight = MeasuredQueryCostWeight(stats, info.static_weight);
  }
}

std::vector<uint64_t> ShardedEngine::ShardWeightsLocked() const {
  std::vector<uint64_t> weights(shards_.size(), 0);
  for (const auto& [query_id, info] : queries_) {
    (void)query_id;
    weights[static_cast<size_t>(info.shard)] += info.weight;
  }
  return weights;
}

uint64_t ShardedEngine::SkewBudget() const {
  if (queries_.empty()) {
    return static_cast<uint64_t>(options_.max_query_skew);
  }
  uint64_t total = 0;
  for (const auto& [query_id, info] : queries_) {
    (void)query_id;
    total += info.weight;
  }
  const uint64_t average =
      (total + queries_.size() - 1) / queries_.size();  // ceil
  return static_cast<uint64_t>(options_.max_query_skew) *
         std::max<uint64_t>(1, average);
}

int ShardedEngine::LeastLoadedShard() const {
  const std::vector<uint64_t> weights = ShardWeightsLocked();
  int best = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] < weights[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void ShardedEngine::Rebalance() {
  // Rebalancing always runs quiesced (callers pause the workers when
  // live), so the matcher statistics are mutually consistent: re-derive
  // every weight from measured per-event cost before picking victims.
  RefreshWeightsLocked(LocalIndexLocked());
  // Loop-invariant: moves change shard assignment, not the query set.
  const uint64_t budget = SkewBudget();
  while (true) {
    const std::vector<uint64_t> weights = ShardWeightsLocked();
    int min_shard = 0;
    int max_shard = 0;
    for (int i = 1; i < num_shards(); ++i) {
      const size_t s = static_cast<size_t>(i);
      if (weights[s] < weights[static_cast<size_t>(min_shard)]) {
        min_shard = i;
      }
      if (weights[s] > weights[static_cast<size_t>(max_shard)]) {
        max_shard = i;
      }
    }
    std::vector<std::pair<int, uint64_t>> candidates;
    for (const auto& [query_id, info] : queries_) {
      if (info.shard == max_shard) {
        candidates.emplace_back(query_id, info.weight);
      }
    }
    const int victim = PickRebalanceVictim(weights, candidates, budget);
    if (victim < 0) {
      return;
    }
    // The victim's live matcher (and partial runs, and statistics) travel
    // with it.
    QueryInfo& info = queries_[victim];
    Result<MultiMatchOperator::DetachedQuery> detached =
        shards_[static_cast<size_t>(max_shard)]->op.ExtractQuery(
            info.local_id);
    EPL_CHECK(detached.ok()) << detached.status();
    // The recorder points at the old shard's buffers; rebind it.
    Shard* destination = shards_[static_cast<size_t>(min_shard)].get();
    detached->callback = MakeRecorder(destination, victim);
    info.local_id = destination->op.AdoptQuery(std::move(detached).value());
    info.shard = min_shard;
    ++rebalanced_queries_;
  }
}

DetectionCallback ShardedEngine::MakeRecorder(Shard* shard, int query_id) {
  return [shard, query_id](const Detection& detection) {
    shard->local.push_back(
        PendingMatch{shard->current_seq, query_id, detection});
  };
}

Status ShardedEngine::FirstShardError() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->status.ok()) {
      return shard->status;
    }
  }
  return OkStatus();
}

Status ShardedMatchOperator::Process(const stream::Event& event) {
  if (!engine_.Push(event)) {
    return FailedPreconditionError("sharded engine is stopped");
  }
  if (sync_delivery_) {
    // Quiesce and deliver inside the dispatch, so every detection of this
    // event fires before any downstream operator sees it.
    EPL_RETURN_IF_ERROR(engine_.Flush());
  }
  return Forward(event);
}

}  // namespace epl::cep
