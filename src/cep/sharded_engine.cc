#include "cep/sharded_engine.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace epl::cep {

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.max_query_skew = std::max(1, options_.max_query_skew);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(options_.matcher, options_.queue_capacity));
  }
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
}

ShardedEngine::~ShardedEngine() {
  if (running()) {
    Stop().ok();
  }
}

Status ShardedEngine::Start() {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_) {
    return FailedPreconditionError("sharded engine already started");
  }
  if (stopped_) {
    return FailedPreconditionError("sharded engine cannot be restarted");
  }
  running_ = true;
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->worker =
        std::thread([this, raw = shard.get()] { WorkerLoop(raw); });
  }
  return OkStatus();
}

bool ShardedEngine::Push(stream::Event event) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Push from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return false;
  }
  pending_batch_->events.push_back(std::move(event));
  if (pending_batch_->events.size() >= options_.batch_size) {
    FlushBatch();
  }
  return true;
}

Status ShardedEngine::Flush() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Flush from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  const uint64_t target = next_seq_;
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [this, target] { return MinProcessed() >= target; });
  }
  DrainAndDeliver();
  return FirstShardError();
}

Status ShardedEngine::Stop() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Stop from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Close();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
  running_ = false;
  stopped_ = true;
  DrainAndDeliver();
  return FirstShardError();
}

int ShardedEngine::AddQuery(QuerySpec spec) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "AddQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  const int id = next_query_id_++;
  QueryInfo info;
  info.callback = std::move(spec.callback);
  info.shard = LeastLoadedShard();
  Shard* shard = shards_[static_cast<size_t>(info.shard)].get();
  spec.callback = MakeRecorder(shard, id);
  info.local_id = shard->op.AddQuery(std::move(spec));
  queries_.emplace(id, std::move(info));
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return id;
}

Status ShardedEngine::RemoveQuery(int query_id) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "RemoveQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  const bool live = running_;
  if (live) {
    PauseWorkers();
    // Deliver every match the query completed before this boundary.
    DrainAndDeliver();
  }
  Shard* shard = shards_[static_cast<size_t>(it->second.shard)].get();
  Status status = shard->op.RemoveQuery(it->second.local_id);
  queries_.erase(it);
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return status;
}

void ShardedEngine::ResetMatchers() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "ResetMatchers from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->op.ResetMatchers();
  }
  if (live) {
    ResumeWorkers();
  }
}

uint64_t ShardedEngine::processed() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "processed from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return MinProcessed();
}

size_t ShardedEngine::num_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "num_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return queries_.size();
}

bool ShardedEngine::running() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "running from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return running_;
}

uint64_t ShardedEngine::rebalanced_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "rebalanced_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return rebalanced_queries_;
}

int ShardedEngine::shard_of(int query_id) const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_of from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? -1 : it->second.shard;
}

std::vector<size_t> ShardedEngine::shard_query_counts() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_query_counts from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    counts.push_back(shard->op.num_queries());
  }
  return counts;
}

void ShardedEngine::WorkerLoop(Shard* shard) {
  while (true) {
    std::optional<Command> command = shard->queue.Pop();
    if (!command.has_value()) {
      return;  // closed and drained
    }
    if (command->batch == nullptr) {
      ParkAtBarrier();
      continue;
    }
    const Batch& batch = *command->batch;
    for (size_t i = 0; i < batch.events.size(); ++i) {
      shard->current_seq = batch.base_seq + i;
      Status status = shard->op.Process(batch.events[i]);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->status.ok()) {
          shard->status = status;
        }
      }
    }
    if (!shard->local.empty()) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (PendingMatch& match : shard->local) {
        shard->pending.push_back(std::move(match));
      }
      shard->local.clear();
    }
    shard->processed_events.store(batch.base_seq + batch.events.size(),
                                  std::memory_order_release);
    {
      // Lock/unlock pairs the notify with the waiter's predicate check.
      std::lock_guard<std::mutex> lock(progress_mu_);
    }
    progress_cv_.notify_all();
  }
}

void ShardedEngine::ParkAtBarrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  ++parked_;
  barrier_cv_.notify_all();
  const uint64_t generation = resume_generation_;
  barrier_cv_.wait(
      lock, [this, generation] { return resume_generation_ != generation; });
  --parked_;
  barrier_cv_.notify_all();
}

void ShardedEngine::PauseWorkers() {
  FlushBatch();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Push(Command{});  // sync token
  }
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [this] {
    return parked_ == static_cast<int>(shards_.size());
  });
}

void ShardedEngine::ResumeWorkers() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  ++resume_generation_;
  barrier_cv_.notify_all();
  // Wait for the full release so a back-to-back pause cannot mistake these
  // parks for its own quiesce point.
  barrier_cv_.wait(lock, [this] { return parked_ == 0; });
}

void ShardedEngine::FlushBatch() {
  if (pending_batch_->events.empty()) {
    return;
  }
  pending_batch_->base_seq = next_seq_;
  next_seq_ += pending_batch_->events.size();
  std::shared_ptr<const Batch> batch = std::move(pending_batch_);
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue.Push(Command{batch});
  }
  DrainAndDeliver();
}

void ShardedEngine::DrainAndDeliver() {
  const uint64_t watermark = MinProcessed();
  merge_scratch_.clear();
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (!shard->pending.empty() && shard->pending.front().seq < watermark) {
      merge_scratch_.push_back(std::move(shard->pending.front()));
      shard->pending.pop_front();
    }
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // Stable: matches of one query for one event (exhaustive mode can emit
  // several) come from a single shard in emission order.
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const PendingMatch& a, const PendingMatch& b) {
                     return std::tie(a.seq, a.query_id) <
                            std::tie(b.seq, b.query_id);
                   });
  delivering_thread_.store(std::this_thread::get_id(),
                           std::memory_order_relaxed);
  for (PendingMatch& match : merge_scratch_) {
    auto it = queries_.find(match.query_id);
    if (it != queries_.end() && it->second.callback) {
      it->second.callback(match.detection);
    }
  }
  delivering_thread_.store(std::thread::id(), std::memory_order_relaxed);
  merge_scratch_.clear();
}

uint64_t ShardedEngine::MinProcessed() const {
  uint64_t watermark = next_seq_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    watermark = std::min(
        watermark, shard->processed_events.load(std::memory_order_acquire));
  }
  return watermark;
}

int ShardedEngine::LeastLoadedShard() const {
  int best = 0;
  size_t best_count = shards_[0]->op.num_queries();
  for (size_t i = 1; i < shards_.size(); ++i) {
    size_t count = shards_[i]->op.num_queries();
    if (count < best_count) {
      best = static_cast<int>(i);
      best_count = count;
    }
  }
  return best;
}

void ShardedEngine::Rebalance() {
  while (true) {
    int min_shard = 0;
    int max_shard = 0;
    for (int i = 1; i < num_shards(); ++i) {
      size_t count = shards_[static_cast<size_t>(i)]->op.num_queries();
      if (count < shards_[static_cast<size_t>(min_shard)]->op.num_queries()) {
        min_shard = i;
      }
      if (count > shards_[static_cast<size_t>(max_shard)]->op.num_queries()) {
        max_shard = i;
      }
    }
    size_t max_count =
        shards_[static_cast<size_t>(max_shard)]->op.num_queries();
    size_t min_count =
        shards_[static_cast<size_t>(min_shard)]->op.num_queries();
    if (max_count - min_count <= static_cast<size_t>(options_.max_query_skew)) {
      return;
    }
    // Move the youngest query of the fullest shard; its live matcher (and
    // partial runs) travel with it.
    int victim = -1;
    for (const auto& [query_id, info] : queries_) {
      if (info.shard == max_shard) {
        victim = std::max(victim, query_id);
      }
    }
    EPL_CHECK(victim >= 0);
    QueryInfo& info = queries_[victim];
    Result<MultiMatchOperator::DetachedQuery> detached =
        shards_[static_cast<size_t>(max_shard)]->op.ExtractQuery(
            info.local_id);
    EPL_CHECK(detached.ok()) << detached.status();
    // The recorder points at the old shard's buffers; rebind it.
    Shard* destination = shards_[static_cast<size_t>(min_shard)].get();
    detached->callback = MakeRecorder(destination, victim);
    info.local_id = destination->op.AdoptQuery(std::move(detached).value());
    info.shard = min_shard;
    ++rebalanced_queries_;
  }
}

DetectionCallback ShardedEngine::MakeRecorder(Shard* shard, int query_id) {
  return [shard, query_id](const Detection& detection) {
    shard->local.push_back(
        PendingMatch{shard->current_seq, query_id, detection});
  };
}

Status ShardedEngine::FirstShardError() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->status.ok()) {
      return shard->status;
    }
  }
  return OkStatus();
}

Status ShardedMatchOperator::Process(const stream::Event& event) {
  if (!engine_.Push(event)) {
    return FailedPreconditionError("sharded engine is stopped");
  }
  return Forward(event);
}

}  // namespace epl::cep
