#include "cep/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "stream/thread_affinity.h"

namespace epl::cep {

namespace {

/// Bitwise routing key of a session-tag / routing-field double. +0.0 and
/// -0.0 compare equal but differ bitwise; canonicalize so a producer
/// writing -0.0 still reaches session 0's shards.
uint64_t RoutingKey(double value) {
  if (value == 0.0) {
    value = 0.0;
  }
  uint64_t key = 0;
  static_assert(sizeof(key) == sizeof(value));
  std::memcpy(&key, &value, sizeof(key));
  return key;
}

}  // namespace

uint64_t QueryCostWeight(const CompiledPattern& pattern) {
  const uint64_t weight =
      static_cast<uint64_t>(pattern.num_states()) +
      static_cast<uint64_t>(pattern.num_distinct_predicates());
  return std::max<uint64_t>(1, weight);
}

uint64_t MeasuredQueryCostWeight(const MatcherStats& stats,
                                 uint64_t static_weight) {
  if (stats.events == 0) {
    return std::max<uint64_t>(1, static_weight);
  }
  // Per-event predicate reads, whether served by the shared bank
  // (predicate_cache_hits: seed + advance reads of the flattened loop) or
  // interpreted directly (predicate_evaluations). The factor 2 puts the
  // result on the static states+predicates scale; ceil keeps any observed
  // activity above the floor.
  const uint64_t reads =
      stats.predicate_evaluations + stats.predicate_cache_hits;
  return std::max<uint64_t>(1, (2 * reads + stats.events - 1) / stats.events);
}

int PickRebalanceVictim(
    const std::vector<uint64_t>& shard_weights,
    const std::vector<std::pair<int, uint64_t>>& candidates,
    uint64_t max_skew) {
  if (shard_weights.size() < 2) {
    return -1;
  }
  uint64_t heaviest = shard_weights[0];
  uint64_t lightest = shard_weights[0];
  for (uint64_t weight : shard_weights) {
    heaviest = std::max(heaviest, weight);
    lightest = std::min(lightest, weight);
  }
  const uint64_t gap = heaviest - lightest;
  if (gap <= max_skew) {
    return -1;
  }
  // Moving weight w from the heaviest to the lightest shard leaves a
  // |gap - 2w| pair gap; only w < gap strictly shrinks it (and the sum of
  // squared weights, which is what guarantees loop termination).
  int victim = -1;
  uint64_t best_residual = gap;
  for (const auto& [query_id, weight] : candidates) {
    if (weight == 0 || weight >= gap) {
      continue;  // moving it cannot shrink the gap
    }
    const uint64_t residual =
        2 * weight > gap ? 2 * weight - gap : gap - 2 * weight;
    if (residual < best_residual ||
        (residual == best_residual && query_id > victim)) {
      victim = query_id;
      best_residual = residual;
    }
  }
  return victim;
}

int PickStealVictim(const std::vector<size_t>& backlogs,
                    const std::vector<uint8_t>& claimable, int self) {
  int victim = -1;
  size_t deepest = 0;
  for (size_t i = 0; i < backlogs.size(); ++i) {
    if (static_cast<int>(i) == self || i >= claimable.size() ||
        claimable[i] == 0) {
      continue;
    }
    if (backlogs[i] > deepest) {
      deepest = backlogs[i];
      victim = static_cast<int>(i);
    }
  }
  return victim;
}

int RecommendShardCount(int current_shards,
                        const std::vector<uint64_t>& busy_ns,
                        uint64_t elapsed_ns,
                        const AdaptiveShardOptions& options) {
  const int min_shards = std::max(1, options.min_shards);
  const int max_shards = std::max(min_shards, options.max_shards);
  const int current = std::clamp(current_shards, min_shards, max_shards);
  if (elapsed_ns == 0 || busy_ns.empty()) {
    return current;
  }
  const double elapsed = static_cast<double>(elapsed_ns);
  double peak = 0.0;
  double total = 0.0;
  for (uint64_t ns : busy_ns) {
    const double utilization = static_cast<double>(ns) / elapsed;
    peak = std::max(peak, utilization);
    total += utilization;
  }
  if (peak > options.grow_utilization && current < max_shards) {
    return current + 1;
  }
  // Shrink only when the whole fleet's work would still average below the
  // shrink threshold spread over one fewer shard -- the gap between the
  // grow and shrink thresholds is the hysteresis band. A saturated shard
  // vetoes shrinking even if the rest of the fleet idles (the common shape
  // at max_shards with a skewed fleet): removing capacity under a hot
  // bottleneck only deepens it.
  if (current > min_shards && peak <= options.grow_utilization &&
      total <= options.shrink_utilization * (current - 1)) {
    return current - 1;
  }
  return current;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.max_query_skew = std::max(1, options_.max_query_skew);
  options_.spin_wait_iterations = std::max(0, options_.spin_wait_iterations);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(MakeShard(0));
  }
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
}

ShardedEngine::~ShardedEngine() {
  if (running()) {
    Stop().ok();
  }
}

std::unique_ptr<ShardedEngine::Shard> ShardedEngine::MakeShard(
    uint64_t base_seq) {
  auto shard = std::make_unique<Shard>(options_.matcher);
  // The worker runs each fan-out batch as one matcher sweep; the hook
  // stamps current_seq per event so the recorders still tag matches with
  // exact sequence numbers. A routed sub-batch carries its events'
  // absolute sequence numbers explicitly (they are a non-contiguous
  // subset of the window).
  Shard* raw = shard.get();
  raw->op.set_batch_event_hook([raw](size_t index) {
    raw->current_seq = raw->batch_seqs != nullptr
                           ? (*raw->batch_seqs)[index]
                           : raw->batch_base_seq + index;
  });
  raw->processed_events.store(base_seq, std::memory_order_release);
  return shard;
}

void ShardedEngine::SpawnWorkerLocked(Shard* shard, int worker_index) {
  shard->worker = std::thread(
      [this, shard, worker_index] { WorkerLoop(shard, worker_index); });
}

Status ShardedEngine::Start() {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_) {
    return FailedPreconditionError("sharded engine already started");
  }
  if (stopped_) {
    return FailedPreconditionError("sharded engine cannot be restarted");
  }
  running_ = true;
  last_adapt_time_ = std::chrono::steady_clock::now();
  for (size_t i = 0; i < shards_.size(); ++i) {
    // The affinity slot is the shard's fleet position: shrink always
    // retires from the back, so a surviving shard keeps its slot and a
    // later grow re-fills the freed CPUs.
    SpawnWorkerLocked(shards_[i].get(), static_cast<int>(i));
  }
  return OkStatus();
}

bool ShardedEngine::Push(stream::Event event) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Push from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return false;
  }
  pending_batch_->events.push_back(std::move(event));
  if (pending_batch_->events.size() >= options_.batch_size) {
    FlushBatch();
  }
  if (options_.adaptive.enabled &&
      next_seq_ - last_adapt_seq_ >= options_.adaptive.check_every_events) {
    last_adapt_seq_ = next_seq_;
    // Sizing is advisory on the hot path: a failed resize (a shard error
    // surfacing mid-migration) is reported by the next Flush/Stop, not by
    // Push.
    AdaptShardCountLocked().ok();
  }
  return true;
}

Status ShardedEngine::Flush() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Flush from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  const uint64_t target = next_seq_;
  {
    std::unique_lock<std::mutex> pool_lock(pool_mu_);
    control_cv_.wait(pool_lock,
                     [this, target] { return MinProcessed() >= target; });
  }
  DrainAndDeliver();
  return FirstShardError();
}

Status ShardedEngine::Stop() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Stop from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_) {
    return FailedPreconditionError("sharded engine not running");
  }
  FlushBatch();
  const uint64_t target = next_seq_;
  {
    std::unique_lock<std::mutex> pool_lock(pool_mu_);
    control_cv_.wait(pool_lock,
                     [this, target] { return MinProcessed() >= target; });
    shutdown_ = true;
    WakeAllWorkersLocked();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
  running_ = false;
  stopped_ = true;
  DrainAndDeliver();
  return FirstShardError();
}

int ShardedEngine::AddQuery(QuerySpec spec) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "AddQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  const int id = next_query_id_++;
  QueryInfo info;
  info.level = spec.level;
  info.tag = spec.tag;
  info.session_tag = spec.session_tag;
  info.session_scoped = spec.level == 0 && spec.session_scoped;
  info.static_weight = QueryCostWeight(spec.pattern);
  info.weight = info.static_weight;
  if (spec.level > 0) {
    // Composite queries run in the engine-owned runner, fed from the
    // watermark merge -- no shard, no recorder, and the user callback
    // fires directly from the epoch fixed point (delivery thread).
    info.shard = -1;
    CompositeQuery composite;
    composite.id = id;
    composite.level = spec.level;
    composite.output_name = std::move(spec.output_name);
    composite.pattern =
        std::make_unique<CompiledPattern>(std::move(spec.pattern));
    composite.measures = std::move(spec.measures);
    composite.callback = std::move(spec.callback);
    composite.tag = spec.tag;
    composite.session_tag = spec.session_tag;
    EnsureCompositeLocked().Add(std::move(composite));
    queries_.emplace(id, std::move(info));
    if (live) {
      ResumeWorkers();
    }
    return id;
  }
  info.callback = std::move(spec.callback);
  info.shard = PlaceQueryLocked(info);
  Shard* shard = shards_[static_cast<size_t>(info.shard)].get();
  spec.callback = MakeRecorder(shard, id);
  info.local_id = shard->op.AddQuery(std::move(spec));
  queries_.emplace(id, std::move(info));
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return id;
}

Status ShardedEngine::RemoveQuery(int query_id) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "RemoveQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  const bool live = running_;
  if (live) {
    PauseWorkers();
    // Deliver every match the query completed before this boundary.
    DrainAndDeliver();
  }
  Status status;
  if (it->second.shard < 0) {
    status = composite_->Remove(query_id);
    queries_.erase(it);
    if (live) {
      ResumeWorkers();
    }
    return status;
  }
  Shard* shard = shards_[static_cast<size_t>(it->second.shard)].get();
  status = shard->op.RemoveQuery(it->second.local_id);
  queries_.erase(it);
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return status;
}

void ShardedEngine::ResetMatchers() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "ResetMatchers from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->op.ResetMatchers();
  }
  if (composite_ != nullptr) {
    composite_->Reset();
  }
  if (live) {
    ResumeWorkers();
  }
}

Status ShardedEngine::Resize(int num_shards) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "Resize from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return ResizeLocked(num_shards);
}

Status ShardedEngine::ResizeLocked(int num_shards) {
  if (stopped_) {
    return FailedPreconditionError("sharded engine is stopped");
  }
  const size_t target = static_cast<size_t>(std::max(1, num_shards));
  if (target == shards_.size()) {
    return OkStatus();
  }
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  if (target > shards_.size()) {
    // Grow: fresh shards are born at the quiesce boundary. Pre-advancing
    // them to next_seq_ keeps the fleet watermark exact -- they have by
    // definition processed every event pushed so far (none of their
    // queries existed earlier).
    const size_t old_count = shards_.size();
    std::vector<std::unique_ptr<Shard>> born;
    while (old_count + born.size() < target) {
      std::unique_ptr<Shard> shard = MakeShard(next_seq_);
      // Born parked: ResumeWorkers releases the whole fleet uniformly.
      shard->parked = live;
      born.push_back(std::move(shard));
    }
    {
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      for (std::unique_ptr<Shard>& shard : born) {
        shards_.push_back(std::move(shard));
      }
    }
    if (live) {
      for (size_t i = old_count; i < shards_.size(); ++i) {
        SpawnWorkerLocked(shards_[i].get(), static_cast<int>(i));
      }
    }
  } else {
    // Shrink: migrate every query off the doomed shards [target, size)
    // onto a survivor, live matcher and all -- identical mechanics to
    // Rebalance, just with a forced source set.
    Status migrate_status;
    for (auto& [query_id, info] : queries_) {
      if (info.shard < 0 || static_cast<size_t>(info.shard) < target) {
        continue;  // composite queries live off-shard; survivors stay put
      }
      const std::vector<uint64_t> weights = ShardWeightsLocked();
      uint64_t lightest = UINT64_MAX;
      int destination_index = 0;
      for (size_t s = 0; s < target; ++s) {
        if (weights[s] < lightest) {
          lightest = weights[s];
          destination_index = static_cast<int>(s);
        }
      }
      if (options_.placement == ShardPlacement::kSessionAffinity &&
          info.session_scoped) {
        // Affinity survives the shrink: prefer a surviving shard already
        // hosting this session, budget permitting (the closing Rebalance
        // consolidates whatever this pass leaves split).
        const uint64_t key = RoutingKey(info.session_tag);
        for (const auto& [other_id, other] : queries_) {
          if (other_id == query_id || !other.session_scoped ||
              other.shard < 0 ||
              static_cast<size_t>(other.shard) >= target ||
              RoutingKey(other.session_tag) != key) {
            continue;
          }
          const size_t s = static_cast<size_t>(other.shard);
          if (weights[s] + info.weight <= lightest + SkewBudget()) {
            destination_index = other.shard;
            break;
          }
        }
      }
      MoveQueryLocked(query_id, destination_index);
    }
    std::vector<std::unique_ptr<Shard>> doomed;
    {
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      while (shards_.size() > target) {
        shards_.back()->retired = true;
        doomed.push_back(std::move(shards_.back()));
        shards_.pop_back();
      }
      for (std::unique_ptr<Shard>& shard : doomed) {
        shard->wake_epoch.fetch_add(1, std::memory_order_release);
        shard->cv.notify_all();
      }
    }
    for (std::unique_ptr<Shard>& shard : doomed) {
      if (shard->worker.joinable()) {
        shard->worker.join();
      }
      // Quiesce delivered everything below the watermark == next_seq_, so
      // a doomed shard can have no match left to lose.
      EPL_CHECK(shard->pending.empty())
          << "retired shard still held undelivered matches";
      if (migrate_status.ok() && !shard->status.ok()) {
        migrate_status = shard->status;
      }
    }
    if (!migrate_status.ok()) {
      if (live) {
        Rebalance();
        ResumeWorkers();
      }
      return migrate_status;
    }
  }
  ++resize_count_;
  Rebalance();
  if (live) {
    ResumeWorkers();
  }
  return OkStatus();
}

Status ShardedEngine::AdaptShardCount() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "AdaptShardCount from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return AdaptShardCountLocked();
}

Status ShardedEngine::AdaptShardCountLocked() {
  if (stopped_) {
    return FailedPreconditionError("sharded engine is stopped");
  }
  const auto now = std::chrono::steady_clock::now();
  const bool first_check =
      last_adapt_time_ == std::chrono::steady_clock::time_point{};
  const uint64_t elapsed_ns = first_check
      ? 0
      : static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - last_adapt_time_)
                .count());
  last_adapt_time_ = now;
  std::vector<uint64_t> busy;
  busy.reserve(shards_.size());
  for (std::unique_ptr<Shard>& shard : shards_) {
    const uint64_t total = shard->busy_ns.load(std::memory_order_relaxed);
    busy.push_back(total - shard->busy_ns_checkpoint);
    shard->busy_ns_checkpoint = total;
  }
  if (first_check || elapsed_ns == 0) {
    return OkStatus();  // baseline established; nothing to recommend yet
  }
  const int target =
      RecommendShardCount(static_cast<int>(shards_.size()), busy, elapsed_ns,
                          options_.adaptive);
  if (target == static_cast<int>(shards_.size())) {
    return OkStatus();
  }
  Status status = ResizeLocked(target);
  // The resize quiesce itself consumed wall-clock; restart the window so
  // the pause is not billed as idle time to the new fleet.
  last_adapt_time_ = std::chrono::steady_clock::now();
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->busy_ns_checkpoint = shard->busy_ns.load(std::memory_order_relaxed);
  }
  return status;
}

Result<std::vector<std::pair<int, NfaRunState>>>
ShardedEngine::ExportRunStates() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "ExportRunStates from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    // Deliver every completed match first, so the cut is exactly "all
    // pushed events processed, all their detections delivered".
    DrainAndDeliver();
  }
  std::vector<std::pair<int, NfaRunState>> states;
  states.reserve(queries_.size());
  Status status;
  for (const auto& [query_id, info] : queries_) {
    Result<NfaRunState> state =
        info.shard < 0
            ? composite_->ExportRunState(query_id)
            : shards_[static_cast<size_t>(info.shard)]->op.ExportQueryRunState(
                  info.local_id);
    if (!state.ok()) {
      status = state.status().WithContext("query " + std::to_string(query_id));
      break;
    }
    states.emplace_back(query_id, std::move(*state));
  }
  if (live) {
    ResumeWorkers();
  }
  if (!status.ok()) {
    return status;
  }
  return states;
}

Result<int> ShardedEngine::RestoreQuery(QuerySpec spec,
                                        const NfaRunState& runs) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "RestoreQuery from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    PauseWorkers();
    DrainAndDeliver();
  }
  const int id = next_query_id_;
  QueryInfo info;
  info.level = spec.level;
  info.tag = spec.tag;
  info.session_tag = spec.session_tag;
  info.session_scoped = spec.level == 0 && spec.session_scoped;
  info.static_weight = QueryCostWeight(spec.pattern);
  info.weight = info.static_weight;
  if (spec.level > 0) {
    info.shard = -1;
    CompositeQuery composite;
    composite.id = id;
    composite.level = spec.level;
    composite.output_name = std::move(spec.output_name);
    composite.pattern =
        std::make_unique<CompiledPattern>(std::move(spec.pattern));
    composite.measures = std::move(spec.measures);
    composite.callback = std::move(spec.callback);
    composite.tag = spec.tag;
    composite.session_tag = spec.session_tag;
    Status restored =
        EnsureCompositeLocked().Restore(std::move(composite), runs);
    if (restored.ok()) {
      ++next_query_id_;
      queries_.emplace(id, std::move(info));
    }
    if (live) {
      ResumeWorkers();
    }
    if (!restored.ok()) {
      return restored;
    }
    return id;
  }
  info.callback = std::move(spec.callback);
  info.shard = PlaceQueryLocked(info);
  Shard* shard = shards_[static_cast<size_t>(info.shard)].get();
  spec.callback = MakeRecorder(shard, id);
  Result<int> local = shard->op.RestoreQuery(std::move(spec), runs);
  if (local.ok()) {
    ++next_query_id_;
    info.local_id = *local;
    queries_.emplace(id, std::move(info));
    Rebalance();
  }
  if (live) {
    ResumeWorkers();
  }
  if (!local.ok()) {
    return local.status();
  }
  return id;
}

std::vector<ShardedEngine::QueryStatsSnapshot> ShardedEngine::QueryStats() {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "QueryStats from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  const bool live = running_;
  if (live) {
    // Quiesce so no worker is mid-event while stats are read.
    PauseWorkers();
  }
  const std::vector<std::unordered_map<int, int>> local_index =
      LocalIndexLocked();
  std::vector<QueryStatsSnapshot> snapshots;
  snapshots.reserve(queries_.size());
  for (auto& [query_id, info] : queries_) {
    QueryStatsSnapshot snapshot;
    snapshot.query_id = query_id;
    snapshot.shard = info.shard;
    if (info.shard < 0) {
      // Composite queries: matcher stats from the engine-owned runner
      // (bank stats stay default -- composites share no shard bank).
      Result<MatcherStats> stats = composite_->QueryStats(query_id);
      EPL_CHECK(stats.ok()) << stats.status();
      snapshot.stats = *stats;
      snapshot.weight = info.weight;
      snapshots.push_back(snapshot);
      continue;
    }
    MultiMatchOperator& op = shards_[static_cast<size_t>(info.shard)]->op;
    // One stats sync per query serves both the snapshot and the
    // measured-weight refresh (the snapshot is the natural moment to fold
    // observed cost back into placement weights: workers are quiesced, so
    // the numbers are mutually consistent).
    snapshot.stats = op.matcher_stats(
        local_index[static_cast<size_t>(info.shard)].at(info.local_id));
    snapshot.bank = op.bank_stats();
    info.weight = MeasuredQueryCostWeight(snapshot.stats, info.static_weight);
    snapshot.weight = info.weight;
    snapshots.push_back(snapshot);
  }
  if (live) {
    ResumeWorkers();
  }
  return snapshots;
}

uint64_t ShardedEngine::processed() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "processed from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return MinProcessed();
}

size_t ShardedEngine::num_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "num_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return queries_.size();
}

bool ShardedEngine::running() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "running from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return running_;
}

uint64_t ShardedEngine::rebalanced_queries() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "rebalanced_queries from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return rebalanced_queries_;
}

uint64_t ShardedEngine::stolen_batches() const {
  return stolen_batches_.load(std::memory_order_relaxed);
}

int ShardedEngine::pin_failures() const {
  return pin_failures_.load(std::memory_order_relaxed);
}

uint64_t ShardedEngine::resize_count() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "resize_count from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return resize_count_;
}

ShardedEngine::EngineStats ShardedEngine::engine_stats() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "engine_stats from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  EngineStats stats = stats_;
  stats.worker_wakeups = wakeups_signaled_.load(std::memory_order_relaxed);
  return stats;
}

void ShardedEngine::TestOnlyFlipInterestBit(double key, int shard) {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "TestOnlyFlipInterestBit from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  std::vector<int>& shards = interest_[RoutingKey(key)];
  auto it = std::find(shards.begin(), shards.end(), shard);
  if (it == shards.end()) {
    shards.push_back(shard);
    std::sort(shards.begin(), shards.end());
  } else {
    shards.erase(it);
  }
}

int ShardedEngine::num_shards() const {
  // pool_mu_, not control_mu_: the shard vector's shape only changes under
  // both, and pool_mu_ is never held while user callbacks run -- so this
  // stays callable from a detection callback (e.g. operator name()).
  std::lock_guard<std::mutex> lock(pool_mu_);
  return static_cast<int>(shards_.size());
}

std::vector<uint64_t> ShardedEngine::shard_busy_ns() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  std::vector<uint64_t> busy;
  busy.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    busy.push_back(shard->busy_ns.load(std::memory_order_relaxed));
  }
  return busy;
}

int ShardedEngine::shard_of(int query_id) const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_of from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? -1 : it->second.shard;
}

std::vector<uint64_t> ShardedEngine::shard_weights() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_weights from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  return ShardWeightsLocked();
}

std::vector<size_t> ShardedEngine::shard_query_counts() const {
  EPL_CHECK(delivering_thread_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id())
      << "shard_query_counts from inside a detection callback";
  std::lock_guard<std::mutex> lock(control_mu_);
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    counts.push_back(shard->op.num_queries());
  }
  return counts;
}

void ShardedEngine::WorkerLoop(Shard* primary, int worker_index) {
  if (options_.pin_workers &&
      !stream::PinCurrentThreadToAffinitySlot(worker_index)) {
    pin_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(pool_mu_);
  while (true) {
    if (primary->retired) {
      return;
    }
    Shard* victim = PickRunnableLocked(primary);
    if (victim == nullptr) {
      if (shutdown_) {
        return;
      }
      const uint64_t epoch =
          primary->wake_epoch.load(std::memory_order_acquire);
      if (options_.spin_wait_iterations > 0) {
        // Spin-then-park: poll the shard's own epoch outside the lock --
        // a producer batching every few microseconds usually wakes this
        // shard before the spin budget runs out, saving the futex round
        // trip. Routed windows that skip the shard never bump its epoch,
        // so the spin is also undisturbed by foreign-session traffic.
        lock.unlock();
        bool republished = false;
        for (int i = 0; i < options_.spin_wait_iterations; ++i) {
          if (primary->wake_epoch.load(std::memory_order_acquire) != epoch) {
            republished = true;
            break;
          }
          stream::CpuRelax();
        }
        lock.lock();
        if (republished ||
            primary->wake_epoch.load(std::memory_order_acquire) != epoch) {
          continue;
        }
      }
      primary->cv.wait(lock, [this, primary, epoch] {
        return primary->wake_epoch.load(std::memory_order_relaxed) != epoch ||
               shutdown_ || primary->retired;
      });
      continue;
    }
    QueueEntry entry = std::move(victim->queue.front());
    victim->queue.pop_front();
    if (entry.batch == nullptr) {
      if (entry.sync) {
        // Sync token: the shard parks at the control barrier. Consuming
        // it required the shard idle (not busy), so every prior batch of
        // the shard is fully processed -- the quiesce invariant.
        victim->parked = true;
      } else {
        // Advance token: the interest filter skipped this whole window
        // for the shard; lift the watermark without touching the
        // matcher. Safe under pool_mu_: the shard was claimable, so no
        // executor is concurrently publishing a smaller value.
        victim->processed_events.store(entry.advance_to,
                                       std::memory_order_release);
      }
      control_cv_.notify_all();
      continue;
    }
    victim->busy = true;
    if (victim != primary) {
      stolen_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.unlock();
    ExecuteBatch(victim, *entry.batch);
    entry.batch.reset();
    lock.lock();
    victim->busy = false;
    if (!victim->queue.empty()) {
      // The shard is claimable again and still has work: republish it to
      // its own worker (possibly this one, next iteration) and -- when
      // stealing -- to whichever workers idle with nothing of their own.
      WakeShardLocked(victim);
      if (options_.work_stealing) {
        WakeIdleWorkersLocked();
      }
    }
    control_cv_.notify_all();
  }
}

void ShardedEngine::WakeShardLocked(Shard* shard) {
  shard->wake_epoch.fetch_add(1, std::memory_order_release);
  shard->cv.notify_one();
  wakeups_signaled_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::WakeAllWorkersLocked() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->wake_epoch.fetch_add(1, std::memory_order_release);
    shard->cv.notify_all();
  }
}

void ShardedEngine::WakeIdleWorkersLocked() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->queue.empty() && !shard->busy) {
      WakeShardLocked(shard.get());
    }
  }
}

ShardedEngine::Shard* ShardedEngine::PickRunnableLocked(Shard* primary) {
  const auto claimable = [](const Shard& shard) {
    return !shard.busy && !shard.parked && !shard.retired;
  };
  if (claimable(*primary) && !primary->queue.empty()) {
    return primary;  // own shard first: its bank and arena are cache-hot
  }
  if (!options_.work_stealing) {
    return nullptr;
  }
  steal_backlogs_.clear();
  steal_claimable_.clear();
  int self = -1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard* shard = shards_[i].get();
    if (shard == primary) {
      self = static_cast<int>(i);
    }
    steal_backlogs_.push_back(shard->queue.size());
    steal_claimable_.push_back(claimable(*shard) ? 1 : 0);
  }
  const int victim = PickStealVictim(steal_backlogs_, steal_claimable_, self);
  return victim < 0 ? nullptr : shards_[static_cast<size_t>(victim)].get();
}

void ShardedEngine::ExecuteBatch(Shard* shard, const Batch& batch) {
  const auto started = std::chrono::steady_clock::now();
  // The whole fan-out batch runs as ONE matcher sweep: the shard's bank
  // answers all events in one pass per field and every pattern advances
  // across the window before the next pattern is touched. The operator's
  // batch-event hook keeps current_seq exact per event.
  shard->batch_base_seq = batch.base_seq;
  shard->batch_seqs = batch.seqs.empty() ? nullptr : &batch.seqs;
  Status status =
      shard->op.ProcessBatch(batch.events.data(), batch.events.size());
  shard->batch_seqs = nullptr;
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->status.ok()) {
      shard->status = status;
    }
  }
  if (!shard->local.empty()) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (PendingMatch& match : shard->local) {
      shard->pending.push_back(std::move(match));
    }
    shard->local.clear();
  }
  // The watermark advances over the whole window, not just the delivered
  // subset: the filtered-out events are exact no-ops for this shard.
  shard->processed_events.store(batch.end_seq, std::memory_order_release);
  shard->busy_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count()),
      std::memory_order_relaxed);
}

void ShardedEngine::PauseWorkers() {
  FlushBatch();
  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    for (std::unique_ptr<Shard>& shard : shards_) {
      shard->queue.push_back(QueueEntry{nullptr, 0, true});  // sync token
    }
    // Control wakeups reach every shard: sync tokens traverse all FIFOs
    // regardless of routing.
    WakeAllWorkersLocked();
    control_cv_.wait(lock, [this] {
      for (const std::unique_ptr<Shard>& shard : shards_) {
        if (!shard->parked || shard->busy) {
          return false;
        }
      }
      return true;
    });
  }
}

void ShardedEngine::ResumeWorkers() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->parked = false;
  }
  WakeAllWorkersLocked();
}

void ShardedEngine::FlushBatch() {
  if (pending_batch_->events.empty()) {
    return;
  }
  pending_batch_->base_seq = next_seq_;
  next_seq_ += pending_batch_->events.size();
  pending_batch_->end_seq = next_seq_;
  std::shared_ptr<const Batch> batch = std::move(pending_batch_);
  pending_batch_ = std::make_unique<Batch>();
  pending_batch_->events.reserve(options_.batch_size);
  ++stats_.fanout_batches;
  DistributeBatch(std::move(batch));
  DrainAndDeliver();
}

void ShardedEngine::EnqueueAdvanceLocked(Shard* shard, uint64_t end_seq) {
  ++stats_.advance_tokens;
  if (shard->queue.empty() && !shard->busy && !shard->parked) {
    // The shard is idle with nothing in flight: advance the watermark
    // directly, with no queue traffic and -- crucially -- no wakeup.
    // Safe: the last executor published its store before clearing busy
    // under pool_mu_.
    shard->processed_events.store(end_seq, std::memory_order_release);
    return;
  }
  if (!shard->queue.empty() && shard->queue.back().batch == nullptr &&
      !shard->queue.back().sync) {
    // Coalesce into the trailing advance token: per-shard FIFO order
    // makes end_seq monotone, so the later target subsumes the earlier.
    shard->queue.back().advance_to = end_seq;
    return;
  }
  // The shard has work in flight; park the token behind it. No wakeup is
  // needed: a worker is either processing the queue already or has a
  // pending wake signal from the entry before this one, and the
  // post-execution republish covers the stolen-batch case.
  shard->queue.push_back(QueueEntry{nullptr, end_seq, false});
}

void ShardedEngine::DistributeBatch(std::shared_ptr<const Batch> batch) {
  const size_t window = batch->events.size();
  const size_t num_shards = shards_.size();
  const bool routed = options_.routing_field >= 0;
  route_scratch_.resize(num_shards);
  for (std::vector<uint32_t>& indices : route_scratch_) {
    indices.clear();
  }
  if (routed) {
    const size_t field = static_cast<size_t>(options_.routing_field);
    for (size_t i = 0; i < window; ++i) {
      const stream::Event& event = batch->events[i];
      if (field >= event.values.size()) {
        // No routing key on this event: conservatively broadcast it.
        for (std::vector<uint32_t>& indices : route_scratch_) {
          indices.push_back(static_cast<uint32_t>(i));
        }
        continue;
      }
      for (int s : wildcard_shards_) {
        route_scratch_[static_cast<size_t>(s)].push_back(
            static_cast<uint32_t>(i));
      }
      const auto it = interest_.find(RoutingKey(event.values[field]));
      if (it == interest_.end()) {
        continue;  // only session-scoped queries of other sessions exist
      }
      for (int s : it->second) {
        std::vector<uint32_t>& indices = route_scratch_[static_cast<size_t>(s)];
        // A shard can be both wildcard and key-interested; indices for
        // one event arrive adjacently, so dedup is a tail check.
        if (indices.empty() || indices.back() != static_cast<uint32_t>(i)) {
          indices.push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }
  // Build routed sub-batches outside pool_mu_ (copying events under the
  // pool lock would stall the workers).
  std::vector<std::shared_ptr<const Batch>> to_enqueue(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t count = routed ? route_scratch_[s].size() : window;
    if (!routed || count == window) {
      to_enqueue[s] = batch;  // full window: share the one copy
      stats_.events_routed += window;
      continue;
    }
    stats_.events_routed += count;
    stats_.events_skipped_by_filter += window - count;
    if (count == 0) {
      continue;  // advance token below
    }
    auto sub = std::make_shared<Batch>();
    sub->base_seq = batch->base_seq;
    sub->end_seq = batch->end_seq;
    sub->events.reserve(count);
    sub->seqs.reserve(count);
    for (uint32_t index : route_scratch_[s]) {
      sub->events.push_back(batch->events[index]);
      sub->seqs.push_back(batch->base_seq + index);
    }
    ++stats_.fanout_subbatches;
    to_enqueue[s] = std::move(sub);
  }
  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    // Backpressure: block until every destination FIFO has room. Waiting
    // for the slowest destination before enqueueing anywhere keeps
    // per-shard backlog spread bounded by the capacity, which is what
    // makes the deepest-backlog steal heuristic meaningful. Skipped
    // shards only receive a coalescing token, which needs no room.
    control_cv_.wait(lock, [this, &to_enqueue] {
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (to_enqueue[s] != nullptr &&
            shards_[s]->queue.size() >= options_.queue_capacity) {
          return false;
        }
      }
      return true;
    });
    bool stealable_backlog = false;
    for (size_t s = 0; s < num_shards; ++s) {
      Shard* shard = shards_[s].get();
      if (to_enqueue[s] == nullptr) {
        EnqueueAdvanceLocked(shard, batch->end_seq);
        continue;
      }
      if (shard->busy || !shard->queue.empty()) {
        // The shard cannot start this batch immediately: with stealing
        // on, an idle worker elsewhere could.
        stealable_backlog = true;
      }
      shard->queue.push_back(QueueEntry{std::move(to_enqueue[s]), 0, false});
      WakeShardLocked(shard);
    }
    if (options_.work_stealing && stealable_backlog) {
      WakeIdleWorkersLocked();
    }
  }
}

void ShardedEngine::DrainAndDeliver() {
  const uint64_t watermark = MinProcessed();
  merge_scratch_.clear();
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (!shard->pending.empty() && shard->pending.front().seq < watermark) {
      merge_scratch_.push_back(std::move(shard->pending.front()));
      shard->pending.pop_front();
    }
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // Stable: matches of one query for one event (exhaustive mode can emit
  // several) come from a single shard in emission order. The (seq, level,
  // query_id) key is the documented total order -- shards only record
  // level 0, composite detections are produced below in level order.
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const PendingMatch& a, const PendingMatch& b) {
                     return std::tie(a.seq, a.level, a.query_id) <
                            std::tie(b.seq, b.level, b.query_id);
                   });
  delivering_thread_.store(std::this_thread::get_id(),
                           std::memory_order_relaxed);
  // With composites deployed, each event sequence number with base
  // detections becomes one feedback epoch: base callbacks fire first (in
  // query-id order), their detections re-enter as derived events, and the
  // runner drives the level fixed point before the next sequence number.
  // Sequence numbers without base detections never appear here, and an
  // empty epoch is a no-op for every composite pattern (no eager run
  // expiry), so skipping them is exact.
  const bool feedback = composite_ != nullptr && composite_->active();
  size_t i = 0;
  while (i < merge_scratch_.size()) {
    const uint64_t seq = merge_scratch_[i].seq;
    if (feedback) {
      composite_->BeginEpoch();
    }
    for (; i < merge_scratch_.size() && merge_scratch_[i].seq == seq; ++i) {
      PendingMatch& match = merge_scratch_[i];
      auto it = queries_.find(match.query_id);
      if (it == queries_.end()) {
        continue;
      }
      if (it->second.callback) {
        it->second.callback(match.detection);
      }
      if (feedback) {
        composite_->CollectBase(it->second.tag, it->second.session_tag,
                                match.detection);
      }
    }
    if (feedback) {
      composite_->RunEpoch();
    }
  }
  delivering_thread_.store(std::thread::id(), std::memory_order_relaxed);
  merge_scratch_.clear();
}

uint64_t ShardedEngine::MinProcessed() const {
  uint64_t watermark = next_seq_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    watermark = std::min(
        watermark, shard->processed_events.load(std::memory_order_acquire));
  }
  return watermark;
}

std::vector<std::unordered_map<int, int>> ShardedEngine::LocalIndexLocked()
    const {
  std::vector<std::unordered_map<int, int>> local_index(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const MultiMatchOperator& op = shards_[s]->op;
    for (size_t q = 0; q < op.num_queries(); ++q) {
      local_index[s].emplace(op.query_id(static_cast<int>(q)),
                             static_cast<int>(q));
    }
  }
  return local_index;
}

void ShardedEngine::RefreshWeightsLocked(
    const std::vector<std::unordered_map<int, int>>& local_index) {
  for (auto& [query_id, info] : queries_) {
    (void)query_id;
    if (info.shard < 0) {
      continue;  // composite queries never participate in placement
    }
    MultiMatchOperator& op = shards_[static_cast<size_t>(info.shard)]->op;
    const MatcherStats& stats = op.matcher_stats(
        local_index[static_cast<size_t>(info.shard)].at(info.local_id));
    info.weight = MeasuredQueryCostWeight(stats, info.static_weight);
  }
}

std::vector<uint64_t> ShardedEngine::ShardWeightsLocked() const {
  std::vector<uint64_t> weights(shards_.size(), 0);
  for (const auto& [query_id, info] : queries_) {
    (void)query_id;
    if (info.shard < 0) {
      continue;  // composite queries never participate in placement
    }
    weights[static_cast<size_t>(info.shard)] += info.weight;
  }
  return weights;
}

uint64_t ShardedEngine::SkewBudget() const {
  if (queries_.empty()) {
    return static_cast<uint64_t>(options_.max_query_skew);
  }
  uint64_t total = 0;
  // The budget tolerates one average PLACEMENT UNIT of imbalance. Under
  // kSessionAffinity that unit is a whole session group (unscoped
  // queries stay individual units): sizing it to single queries would
  // forbid ever packing a multi-query session onto its home shard.
  const bool affinity =
      options_.placement == ShardPlacement::kSessionAffinity;
  std::unordered_set<uint64_t> session_units;
  uint64_t single_units = 0;
  for (const auto& [query_id, info] : queries_) {
    (void)query_id;
    total += info.weight;
    if (affinity && info.session_scoped) {
      session_units.insert(RoutingKey(info.session_tag));
    } else {
      ++single_units;
    }
  }
  const uint64_t units =
      std::max<uint64_t>(1, session_units.size() + single_units);
  const uint64_t average = (total + units - 1) / units;  // ceil
  return static_cast<uint64_t>(options_.max_query_skew) *
         std::max<uint64_t>(1, average);
}

int ShardedEngine::LeastLoadedShard() const {
  const std::vector<uint64_t> weights = ShardWeightsLocked();
  int best = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] < weights[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int ShardedEngine::PlaceQueryLocked(const QueryInfo& info) const {
  if (options_.placement != ShardPlacement::kSessionAffinity ||
      !info.session_scoped) {
    return LeastLoadedShard();
  }
  // Home shard: the one already hosting the most of this session's
  // weight. Packing there is what lets routed fan-out skip the rest of
  // the fleet -- accept it whenever the result stays inside the skew
  // budget over the lightest shard.
  const uint64_t key = RoutingKey(info.session_tag);
  std::vector<uint64_t> session_weight(shards_.size(), 0);
  for (const auto& [query_id, other] : queries_) {
    (void)query_id;
    if (other.shard >= 0 && other.session_scoped &&
        RoutingKey(other.session_tag) == key) {
      session_weight[static_cast<size_t>(other.shard)] += other.weight;
    }
  }
  int home = -1;
  uint64_t resident = 0;
  for (size_t s = 0; s < session_weight.size(); ++s) {
    if (session_weight[s] > resident) {
      resident = session_weight[s];
      home = static_cast<int>(s);
    }
  }
  if (home < 0) {
    return LeastLoadedShard();  // first query of this session
  }
  const std::vector<uint64_t> weights = ShardWeightsLocked();
  const uint64_t lightest = *std::min_element(weights.begin(), weights.end());
  if (weights[static_cast<size_t>(home)] + info.weight <=
      lightest + SkewBudget()) {
    return home;
  }
  return LeastLoadedShard();
}

void ShardedEngine::MoveQueryLocked(int query_id, int destination_index) {
  // The query's live matcher (and partial runs, and statistics) travel
  // with it.
  QueryInfo& info = queries_[query_id];
  Result<MultiMatchOperator::DetachedQuery> detached =
      shards_[static_cast<size_t>(info.shard)]->op.ExtractQuery(
          info.local_id);
  EPL_CHECK(detached.ok()) << detached.status();
  // The recorder points at the old shard's buffers; rebind it.
  Shard* destination = shards_[static_cast<size_t>(destination_index)].get();
  detached->callback = MakeRecorder(destination, query_id);
  info.local_id = destination->op.AdoptQuery(std::move(detached).value());
  info.shard = destination_index;
}

void ShardedEngine::Rebalance() {
  // Rebalancing always runs quiesced (callers pause the workers when
  // live), so the matcher statistics are mutually consistent: re-derive
  // every weight from measured per-event cost before picking victims.
  RefreshWeightsLocked(LocalIndexLocked());
  const bool affinity =
      options_.placement == ShardPlacement::kSessionAffinity;
  // Loop-invariant: moves change shard assignment, not the query set.
  const uint64_t budget = SkewBudget();
  while (true) {
    const std::vector<uint64_t> weights = ShardWeightsLocked();
    int min_shard = 0;
    int max_shard = 0;
    for (int i = 1; i < static_cast<int>(shards_.size()); ++i) {
      const size_t s = static_cast<size_t>(i);
      if (weights[s] < weights[static_cast<size_t>(min_shard)]) {
        min_shard = i;
      }
      if (weights[s] > weights[static_cast<size_t>(max_shard)]) {
        max_shard = i;
      }
    }
    // Under affinity, a session's queries on the overloaded shard move
    // as one unit (candidate weight = the session's resident total,
    // represented by its smallest query id), so balancing does not split
    // sessions. PickRebalanceVictim's termination argument is unchanged:
    // moving any unit of weight w < gap strictly shrinks the squared
    // weight sum.
    std::vector<std::pair<int, uint64_t>> candidates;
    std::unordered_map<uint64_t, std::pair<int, uint64_t>> groups;
    for (const auto& [query_id, info] : queries_) {
      if (info.shard != max_shard) {
        continue;
      }
      if (affinity && info.session_scoped) {
        auto [it, inserted] = groups.emplace(
            RoutingKey(info.session_tag),
            std::make_pair(query_id, info.weight));
        if (!inserted) {
          it->second.first = std::min(it->second.first, query_id);
          it->second.second += info.weight;
        }
      } else {
        candidates.emplace_back(query_id, info.weight);
      }
    }
    bool group_phase = false;
    if (affinity) {
      group_phase = true;
      for (const auto& [key, group] : groups) {
        (void)key;
        candidates.push_back(group);
      }
    }
    int victim = PickRebalanceVictim(weights, candidates, budget);
    if (victim < 0 && affinity && !groups.empty()) {
      // No whole-session (or unscoped) move fits the gap: fall back to
      // splitting a session query by query, the same policy kBalanced
      // runs -- fewest shards per session SUBJECT TO the skew budget.
      group_phase = false;
      candidates.clear();
      for (const auto& [query_id, info] : queries_) {
        if (info.shard == max_shard) {
          candidates.emplace_back(query_id, info.weight);
        }
      }
      victim = PickRebalanceVictim(weights, candidates, budget);
    }
    if (victim < 0) {
      break;
    }
    const QueryInfo& picked = queries_[victim];
    if (group_phase && picked.session_scoped) {
      // Move the victim's whole session group.
      const uint64_t key = RoutingKey(picked.session_tag);
      std::vector<int> moving;
      for (const auto& [query_id, info] : queries_) {
        if (info.shard == max_shard && info.session_scoped &&
            RoutingKey(info.session_tag) == key) {
          moving.push_back(query_id);
        }
      }
      for (int query_id : moving) {
        MoveQueryLocked(query_id, min_shard);
        ++rebalanced_queries_;
      }
    } else {
      MoveQueryLocked(victim, min_shard);
      ++rebalanced_queries_;
    }
  }
  if (affinity) {
    ConsolidateAffinityLocked(budget);
  }
  RebuildInterestLocked();
}

void ShardedEngine::ConsolidateAffinityLocked(uint64_t budget) {
  // Sessions split across shards (by kBalanced history, a Resize, or a
  // budget-forced split that later cheapened) are packed back onto their
  // majority shard whenever the move keeps the fleet inside the skew
  // budget -- so the balance loop above, which only acts beyond the
  // budget, never undoes a consolidation and the pair cannot thrash.
  struct SessionPart {
    int query_id = 0;
    int shard = 0;
    uint64_t weight = 0;
  };
  std::map<uint64_t, std::vector<SessionPart>> sessions;
  for (const auto& [query_id, info] : queries_) {
    if (info.shard >= 0 && info.session_scoped) {
      sessions[RoutingKey(info.session_tag)].push_back(
          SessionPart{query_id, info.shard, info.weight});
    }
  }
  std::vector<uint64_t> weights = ShardWeightsLocked();
  for (const auto& [key, parts] : sessions) {
    (void)key;
    std::vector<uint64_t> session_weight(shards_.size(), 0);
    for (const SessionPart& part : parts) {
      session_weight[static_cast<size_t>(part.shard)] += part.weight;
    }
    int home = 0;
    size_t spread = 0;
    for (size_t s = 0; s < session_weight.size(); ++s) {
      if (session_weight[s] > 0) {
        ++spread;
      }
      if (session_weight[s] > session_weight[static_cast<size_t>(home)]) {
        home = static_cast<int>(s);
      }
    }
    if (spread <= 1) {
      continue;  // already packed
    }
    std::vector<uint64_t> tentative = weights;
    for (size_t s = 0; s < session_weight.size(); ++s) {
      if (static_cast<int>(s) != home) {
        tentative[s] -= session_weight[s];
        tentative[static_cast<size_t>(home)] += session_weight[s];
      }
    }
    const uint64_t heaviest =
        *std::max_element(tentative.begin(), tentative.end());
    const uint64_t lightest =
        *std::min_element(tentative.begin(), tentative.end());
    if (heaviest - lightest > budget) {
      continue;  // packing would exceed the budget; stay split
    }
    for (const SessionPart& part : parts) {
      if (part.shard != home) {
        MoveQueryLocked(part.query_id, home);
        ++stats_.affinity_moves;
      }
    }
    weights = std::move(tentative);
  }
}

void ShardedEngine::RebuildInterestLocked() {
  interest_.clear();
  wildcard_shards_.clear();
  for (const auto& [query_id, info] : queries_) {
    (void)query_id;
    if (info.shard < 0) {
      continue;  // composite queries are fed from the merge, not fan-out
    }
    if (info.session_scoped) {
      interest_[RoutingKey(info.session_tag)].push_back(info.shard);
    } else {
      wildcard_shards_.push_back(info.shard);
    }
  }
  auto dedup = [](std::vector<int>& shards) {
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  };
  dedup(wildcard_shards_);
  for (auto& [key, shards] : interest_) {
    (void)key;
    dedup(shards);
  }
}

CompositeRunner& ShardedEngine::EnsureCompositeLocked() {
  if (composite_ == nullptr) {
    composite_ = std::make_unique<CompositeRunner>(options_.matcher);
  }
  return *composite_;
}

DetectionCallback ShardedEngine::MakeRecorder(Shard* shard, int query_id) {
  return [shard, query_id](const Detection& detection) {
    shard->local.push_back(
        PendingMatch{shard->current_seq, query_id, detection});
  };
}

Status ShardedEngine::FirstShardError() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->status.ok()) {
      return shard->status;
    }
  }
  return OkStatus();
}

Status ShardedMatchOperator::Process(const stream::Event& event) {
  if (!engine_.Push(event)) {
    return FailedPreconditionError("sharded engine is stopped");
  }
  if (sync_delivery_) {
    // Quiesce and deliver inside the dispatch, so every detection of this
    // event fires before any downstream operator sees it.
    EPL_RETURN_IF_ERROR(engine_.Flush());
  }
  return Forward(event);
}

}  // namespace epl::cep
