#include "cep/nfa.h"

#include "common/string_util.h"

namespace epl::cep {
namespace {

// Walks the pattern tree assigning state indices to poses and collecting
// time constraints. Returns the [first, last] state range of the subtree.
struct StateRange {
  int first;
  int last;
};

StateRange LowerNode(const PatternExpr& node, int* next_state,
                     std::vector<const PatternExpr*>* poses,
                     std::vector<TimeConstraint>* constraints) {
  if (node.kind() == PatternKind::kPose) {
    int state = (*next_state)++;
    poses->push_back(&node);
    return {state, state};
  }
  std::vector<StateRange> child_ranges;
  child_ranges.reserve(node.children().size());
  for (const PatternExprPtr& child : node.children()) {
    child_ranges.push_back(LowerNode(*child, next_state, poses, constraints));
  }
  StateRange range{child_ranges.front().first, child_ranges.back().last};
  if (node.within().has_value()) {
    if (node.within_mode() == WithinMode::kGap) {
      for (size_t i = 0; i + 1 < child_ranges.size(); ++i) {
        constraints->push_back(TimeConstraint{child_ranges[i].last,
                                              child_ranges[i + 1].last,
                                              *node.within()});
      }
    } else {
      if (range.last != range.first) {
        constraints->push_back(
            TimeConstraint{range.first, range.last, *node.within()});
      }
    }
  }
  return range;
}

}  // namespace

Result<CompiledPattern> CompiledPattern::Compile(
    const PatternExpr& pattern, const stream::Schema& schema) {
  EPL_RETURN_IF_ERROR(pattern.Validate());

  CompiledPattern compiled;
  int next_state = 0;
  std::vector<const PatternExpr*> poses;
  LowerNode(pattern, &next_state, &poses, &compiled.constraints_);

  compiled.predicates_.reserve(poses.size());
  compiled.predicate_exprs_.reserve(poses.size());
  for (const PatternExpr* pose : poses) {
    ExprPtr bound = pose->predicate().Clone();
    EPL_RETURN_IF_ERROR(bound->Bind(schema));
    EPL_ASSIGN_OR_RETURN(ExprProgram program, ExprProgram::Compile(*bound));
    compiled.predicates_.push_back(std::move(program));
    compiled.predicate_exprs_.push_back(std::move(bound));
  }

  compiled.constraints_by_state_.resize(poses.size());
  for (const TimeConstraint& constraint : compiled.constraints_) {
    if (constraint.from_state >= constraint.to_state) {
      return InternalError("constraint lowering produced non-forward edge");
    }
    compiled.constraints_by_state_[constraint.to_state].push_back(constraint);
  }

  compiled.select_ = pattern.kind() == PatternKind::kSequence
                         ? pattern.select_policy()
                         : SelectPolicy::kFirst;
  compiled.consume_ = pattern.kind() == PatternKind::kSequence
                          ? pattern.consume_policy()
                          : ConsumePolicy::kAll;
  compiled.source_stream_ = pattern.SourceStream();
  return compiled;
}

std::string CompiledPattern::ToString() const {
  std::string out = StrFormat("NFA with %d states\n", num_states());
  for (int i = 0; i < num_states(); ++i) {
    out += StrFormat("  state %d: %s\n", i,
                     predicate_exprs_[i]->ToString().c_str());
  }
  for (const TimeConstraint& c : constraints_) {
    out += StrFormat("  constraint: t[%d] - t[%d] <= %s\n", c.to_state,
                     c.from_state, FormatDuration(c.max_gap).c_str());
  }
  out += StrFormat("  policy: select %s consume %s\n",
                   select_ == SelectPolicy::kFirst ? "first" : "all",
                   consume_ == ConsumePolicy::kAll ? "all" : "none");
  return out;
}

}  // namespace epl::cep
