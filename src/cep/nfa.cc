#include "cep/nfa.h"

#include <cstdio>

#include "common/string_util.h"

namespace epl::cep {
namespace {

// Walks the pattern tree assigning state indices to poses and collecting
// time constraints. Returns the [first, last] state range of the subtree.
struct StateRange {
  int first;
  int last;
};

StateRange LowerNode(const PatternExpr& node, int* next_state,
                     std::vector<const PatternExpr*>* poses,
                     std::vector<TimeConstraint>* constraints) {
  if (node.kind() == PatternKind::kPose) {
    int state = (*next_state)++;
    poses->push_back(&node);
    return {state, state};
  }
  std::vector<StateRange> child_ranges;
  child_ranges.reserve(node.children().size());
  for (const PatternExprPtr& child : node.children()) {
    child_ranges.push_back(LowerNode(*child, next_state, poses, constraints));
  }
  StateRange range{child_ranges.front().first, child_ranges.back().last};
  if (node.within().has_value()) {
    if (node.within_mode() == WithinMode::kGap) {
      for (size_t i = 0; i + 1 < child_ranges.size(); ++i) {
        constraints->push_back(TimeConstraint{child_ranges[i].last,
                                              child_ranges[i + 1].last,
                                              *node.within()});
      }
    } else {
      if (range.last != range.first) {
        constraints->push_back(
            TimeConstraint{range.first, range.last, *node.within()});
      }
    }
  }
  return range;
}

// Exact canonical rendering of a bound predicate, used as the dedup key.
// Unlike Expr::ToString (which truncates constants to 6 decimals for
// readability), constants render as hexfloats and fields as bound indices,
// so predicates merge only when they are bit-identical.
void AppendCanonicalKey(const Expr& expr, std::string* out) {
  switch (expr.kind()) {
    case ExprKind::kConst: {
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%a", expr.constant_value());
      out->append(buffer);
      return;
    }
    case ExprKind::kFieldRef:
      out->push_back('f');
      out->append(std::to_string(expr.field_index()));
      return;
    case ExprKind::kUnary:
      out->push_back('u');
      out->append(std::to_string(static_cast<int>(expr.unary_op())));
      out->push_back('(');
      AppendCanonicalKey(expr.arg(0), out);
      out->push_back(')');
      return;
    case ExprKind::kBinary:
      out->push_back('b');
      out->append(std::to_string(static_cast<int>(expr.binary_op())));
      out->push_back('(');
      AppendCanonicalKey(expr.arg(0), out);
      out->push_back(',');
      AppendCanonicalKey(expr.arg(1), out);
      out->push_back(')');
      return;
    case ExprKind::kCall:
      out->push_back('c');
      out->append(expr.function_name());
      out->push_back('(');
      for (size_t i = 0; i < expr.args().size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        AppendCanonicalKey(expr.arg(static_cast<int>(i)), out);
      }
      out->push_back(')');
      return;
  }
}

std::string CanonicalKey(const Expr& expr) {
  std::string key;
  AppendCanonicalKey(expr, &key);
  return key;
}

}  // namespace

Result<CompiledPattern> CompiledPattern::Compile(
    const PatternExpr& pattern, const stream::Schema& schema) {
  EPL_RETURN_IF_ERROR(pattern.Validate());

  CompiledPattern compiled;
  int next_state = 0;
  std::vector<const PatternExpr*> poses;
  LowerNode(pattern, &next_state, &poses, &compiled.constraints_);

  compiled.predicate_exprs_.reserve(poses.size());
  compiled.predicate_ids_.reserve(poses.size());
  for (const PatternExpr* pose : poses) {
    ExprPtr bound = pose->predicate().Clone();
    EPL_RETURN_IF_ERROR(bound->Bind(schema));
    // States with structurally identical predicates share one compiled
    // program (and one memoization slot in the matcher).
    std::string key = CanonicalKey(*bound);
    int slot = -1;
    for (size_t i = 0; i < compiled.predicate_keys_.size(); ++i) {
      if (compiled.predicate_keys_[i] == key) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      EPL_ASSIGN_OR_RETURN(ExprProgram program, ExprProgram::Compile(*bound));
      slot = static_cast<int>(compiled.predicates_.size());
      compiled.predicates_.push_back(std::move(program));
      compiled.predicate_keys_.push_back(std::move(key));
    }
    compiled.predicate_ids_.push_back(slot);
    compiled.predicate_exprs_.push_back(std::move(bound));
  }

  compiled.constraints_by_state_.resize(poses.size());
  for (const TimeConstraint& constraint : compiled.constraints_) {
    if (constraint.from_state >= constraint.to_state) {
      return InternalError("constraint lowering produced non-forward edge");
    }
    compiled.constraints_by_state_[constraint.to_state].push_back(constraint);
  }

  compiled.select_ = pattern.kind() == PatternKind::kSequence
                         ? pattern.select_policy()
                         : SelectPolicy::kFirst;
  compiled.consume_ = pattern.kind() == PatternKind::kSequence
                          ? pattern.consume_policy()
                          : ConsumePolicy::kAll;
  compiled.source_stream_ = pattern.SourceStream();
  return compiled;
}

std::string CompiledPattern::ToString() const {
  std::string out = StrFormat("NFA with %d states\n", num_states());
  for (int i = 0; i < num_states(); ++i) {
    out += StrFormat("  state %d: %s\n", i,
                     predicate_exprs_[i]->ToString().c_str());
  }
  for (const TimeConstraint& c : constraints_) {
    out += StrFormat("  constraint: t[%d] - t[%d] <= %s\n", c.to_state,
                     c.from_state, FormatDuration(c.max_gap).c_str());
  }
  out += StrFormat("  policy: select %s consume %s\n",
                   select_ == SelectPolicy::kFirst ? "first" : "all",
                   consume_ == ConsumePolicy::kAll ? "all" : "none");
  return out;
}

}  // namespace epl::cep
