// Detection: the output tuple produced when a gesture pattern matches.

#ifndef EPL_CEP_DETECTION_H_
#define EPL_CEP_DETECTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/time_util.h"

namespace epl::cep {

/// Sent to the listening application when a gesture query fires
/// (paper Sec. 2: "a result tuple is produced ... which can be used to
/// trigger arbitrary actions in any listening application").
struct Detection {
  /// The query's output value, e.g. "swipe_right".
  std::string name;
  /// Timestamp of the event that completed the match.
  TimePoint time = 0;
  /// Entry timestamp of every matched pose, in order.
  std::vector<TimePoint> pose_times;
  /// Optional measures computed on the completing event (paper Sec. 3.3.4:
  /// "some measures that are calculated directly on the stream").
  std::vector<double> measures;

  Duration duration() const {
    return pose_times.empty() ? 0 : pose_times.back() - pose_times.front();
  }
};

using DetectionCallback = std::function<void(const Detection&)>;

}  // namespace epl::cep

#endif  // EPL_CEP_DETECTION_H_
