#include "cep/multi_matcher.h"

#include <utility>

#include "common/logging.h"

namespace epl::cep {

MultiPatternMatcher::MultiPatternMatcher(MatcherOptions options)
    : options_(options), bank_(std::make_unique<PredicateBank>()) {}

int MultiPatternMatcher::AddPattern(const CompiledPattern* pattern) {
  EPL_CHECK(pattern != nullptr);
  Entry entry;
  entry.matcher = std::make_unique<NfaMatcher>(pattern, options_);
  if (!bank_->built() && !bank_dirty_) {
    // Bank not frozen yet (no event processed since the last rebuild):
    // register incrementally instead of scheduling a full rebuild.
    entry.bank_ids = bank_->RegisterPattern(*pattern);
  } else {
    bank_dirty_ = true;
  }
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void MultiPatternMatcher::RemovePattern(int index) {
  ExtractPattern(index);
}

std::unique_ptr<NfaMatcher> MultiPatternMatcher::ExtractPattern(int index) {
  EPL_CHECK(index >= 0 && static_cast<size_t>(index) < entries_.size());
  std::unique_ptr<NfaMatcher> matcher = std::move(entries_[index].matcher);
  entries_.erase(entries_.begin() + index);
  // The bank still references the removed pattern's predicates; it must be
  // rebuilt before it is consulted (or built) again.
  bank_dirty_ = true;
  return matcher;
}

int MultiPatternMatcher::AdoptPattern(std::unique_ptr<NfaMatcher> matcher) {
  EPL_CHECK(matcher != nullptr);
  Entry entry;
  entry.matcher = std::move(matcher);
  if (!bank_->built() && !bank_dirty_) {
    entry.bank_ids = bank_->RegisterPattern(entry.matcher->pattern());
  } else {
    bank_dirty_ = true;
  }
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void MultiPatternMatcher::RebuildBank() {
  auto bank = std::make_unique<PredicateBank>();
  for (Entry& entry : entries_) {
    entry.bank_ids = bank->RegisterPattern(entry.matcher->pattern());
  }
  // Swap: the old bank (and the predicate truth it served to in-flight
  // events) stays untouched until this point; from the next event on,
  // lookups hit the new generation.
  bank_ = std::move(bank);
  bank_dirty_ = false;
  ++bank_generation_;
}

void MultiPatternMatcher::Process(const stream::Event& event,
                                  std::vector<MultiMatch>* out) {
  if (bank_dirty_) {
    RebuildBank();
  }
  bank_->Evaluate(event);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    scratch_matches_.clear();
    entry.matcher->ProcessShared(event, *bank_, entry.bank_ids.data(),
                                 &scratch_matches_);
    for (PatternMatch& match : scratch_matches_) {
      out->push_back(MultiMatch{static_cast<int>(i), std::move(match)});
    }
  }
}

void MultiPatternMatcher::Reset() {
  for (Entry& entry : entries_) {
    entry.matcher->Reset();
  }
}

}  // namespace epl::cep
