#include "cep/multi_matcher.h"

#include <utility>

#include "common/logging.h"

namespace epl::cep {

MultiPatternMatcher::MultiPatternMatcher(MatcherOptions options)
    : options_(options) {}

int MultiPatternMatcher::AddPattern(const CompiledPattern* pattern) {
  EPL_CHECK(pattern != nullptr);
  EPL_CHECK(!bank_.built()) << "AddPattern after the first Process";
  Entry entry;
  entry.matcher = std::make_unique<NfaMatcher>(pattern, options_);
  entry.bank_ids = bank_.RegisterPattern(*pattern);
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void MultiPatternMatcher::Process(const stream::Event& event,
                                  std::vector<MultiMatch>* out) {
  bank_.Evaluate(event);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    scratch_matches_.clear();
    entry.matcher->ProcessShared(event, bank_, entry.bank_ids.data(),
                                 &scratch_matches_);
    for (PatternMatch& match : scratch_matches_) {
      out->push_back(MultiMatch{static_cast<int>(i), std::move(match)});
    }
  }
}

void MultiPatternMatcher::Reset() {
  for (Entry& entry : entries_) {
    entry.matcher->Reset();
  }
}

}  // namespace epl::cep
