#include "cep/multi_matcher.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "cep/simd.h"
#include "common/logging.h"

namespace epl::cep {
namespace {

// RAII wrapper around MultiPatternMatcher::sweeping_ (see its comment):
// asserts that sweeps never overlap across threads.
class ScopedSweep {
 public:
  explicit ScopedSweep(std::atomic<bool>& flag) : flag_(flag) {
    EPL_CHECK(!flag_.exchange(true, std::memory_order_acquire))
        << "concurrent MultiPatternMatcher sweep: a stolen work unit ran "
           "without shard mutual exclusion";
  }
  ~ScopedSweep() { flag_.store(false, std::memory_order_release); }

  ScopedSweep(const ScopedSweep&) = delete;
  ScopedSweep& operator=(const ScopedSweep&) = delete;

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

MultiPatternMatcher::MultiPatternMatcher(MatcherOptions options)
    : options_(options), bank_(std::make_unique<PredicateBank>()) {}

int MultiPatternMatcher::AddPattern(const CompiledPattern* pattern,
                                    const CompiledPattern* gate) {
  EPL_CHECK(pattern != nullptr);
  EPL_CHECK(gate == nullptr || gate->num_states() == 1)
      << "a gate is a single-state pattern";
  Entry entry;
  entry.matcher = std::make_unique<NfaMatcher>(pattern, options_);
  entry.gate = gate;
  if (!bank_->built() && !bank_dirty_) {
    // Bank not frozen yet (no event processed since the last rebuild):
    // register incrementally instead of scheduling a full rebuild.
    entry.bank_ids = bank_->RegisterPattern(*pattern);
    if (gate != nullptr) {
      entry.gate_bank_id = bank_->RegisterPattern(*gate)[0];
    }
  } else {
    bank_dirty_ = true;
  }
  entry.counters.events_synced = arena_events_;
  arena_dirty_ = true;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void MultiPatternMatcher::RemovePattern(int index) {
  ExtractPattern(index);
}

std::unique_ptr<NfaMatcher> MultiPatternMatcher::ExtractPattern(int index) {
  EPL_CHECK(index >= 0 && static_cast<size_t>(index) < entries_.size());
  Entry& entry = entries_[static_cast<size_t>(index)];
  if (entry.in_arena) {
    // The live run state and pending statistics move back into the
    // matcher, which again becomes self-contained.
    SyncRunState(entry);
  }
  SyncStats(entry);
  std::unique_ptr<NfaMatcher> matcher = std::move(entry.matcher);
  entries_.erase(entries_.begin() + index);
  // The bank still references the removed pattern's predicates; it must be
  // rebuilt (and the arena with it) before it is consulted again.
  bank_dirty_ = true;
  arena_dirty_ = true;
  return matcher;
}

int MultiPatternMatcher::AdoptPattern(std::unique_ptr<NfaMatcher> matcher,
                                      const CompiledPattern* gate) {
  EPL_CHECK(matcher != nullptr);
  EPL_CHECK(gate == nullptr || gate->num_states() == 1)
      << "a gate is a single-state pattern";
  // The arena would execute the pattern under THIS matcher's mode and read
  // only its dominant-run state; adopting across modes would silently drop
  // exhaustive runs_ and coerce semantics, so fail loudly instead.
  EPL_CHECK(matcher->options_.mode == options_.mode)
      << "adopted matcher's mode differs from this MultiPatternMatcher's";
  Entry entry;
  entry.matcher = std::move(matcher);
  entry.gate = gate;
  if (!bank_->built() && !bank_dirty_) {
    entry.bank_ids = bank_->RegisterPattern(entry.matcher->pattern());
    if (gate != nullptr) {
      entry.gate_bank_id = bank_->RegisterPattern(*gate)[0];
    }
  } else {
    bank_dirty_ = true;
  }
  entry.counters.events_synced = arena_events_;
  arena_dirty_ = true;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void MultiPatternMatcher::RebuildBank() {
  auto bank = std::make_unique<PredicateBank>();
  for (Entry& entry : entries_) {
    entry.bank_ids = bank->RegisterPattern(entry.matcher->pattern());
    entry.gate_bank_id =
        entry.gate != nullptr ? bank->RegisterPattern(*entry.gate)[0] : -1;
  }
  // Swap: the old bank (and the predicate truth it served to in-flight
  // events) stays untouched until this point; from the next event on,
  // lookups hit the new generation.
  bank_ = std::move(bank);
  bank_dirty_ = false;
  arena_dirty_ = true;
  ++bank_generation_;
}

void MultiPatternMatcher::BuildArena() {
  EPL_CHECK(bank_->built());
  size_t num_rows = 0;
  size_t num_times = 0;
  size_t num_constraints = 0;
  for (Entry& entry : entries_) {
    const CompiledPattern& pattern = entry.matcher->pattern();
    const size_t n = static_cast<size_t>(pattern.num_states());
    entry.num_states = static_cast<int>(n);
    entry.consume_all = pattern.consume_policy() == ConsumePolicy::kAll;
    num_rows += n;
    num_times += n * n;
    num_constraints += pattern.constraints().size();
  }

  std::vector<TimePoint> times(num_times, 0);
  std::vector<uint64_t> active((num_rows + 63) / 64, 0);
  std::vector<StateRef> states(num_rows);
  std::vector<FlatConstraint> constraints;
  constraints.reserve(num_constraints);

  size_t row = 0;
  size_t times_offset = 0;
  for (Entry& entry : entries_) {
    const CompiledPattern& pattern = entry.matcher->pattern();
    const size_t n = static_cast<size_t>(entry.num_states);
    for (size_t s = 0; s < n; ++s) {
      StateRef& ref = states[row + s];
      const int bank_id = entry.bank_ids[static_cast<size_t>(
          pattern.predicate_id(static_cast<int>(s)))];
      if (bank_->decomposable(bank_id)) {
        const int slot = bank_->slot_of(bank_id);
        ref.word = slot >> 6;
        ref.mask = uint64_t{1} << (slot & 63);
      } else {
        ref.word = -1;
        ref.fallback_id = bank_id;
      }
      ref.constraint_begin = static_cast<uint32_t>(constraints.size());
      for (const TimeConstraint& constraint :
           pattern.constraints_into(static_cast<int>(s))) {
        constraints.push_back(
            FlatConstraint{constraint.from_state, constraint.max_gap});
      }
      ref.constraint_count =
          static_cast<uint32_t>(constraints.size()) - ref.constraint_begin;
    }

    entry.live_rows = 0;
    if (entry.in_arena) {
      // Carry the surviving pattern's rows over from the old arena.
      for (size_t s = 0; s < n; ++s) {
        if (!RowActive(entry.row_offset + s)) {
          continue;
        }
        std::copy_n(times_.begin() +
                        static_cast<ptrdiff_t>(entry.times_offset + s * n),
                    s + 1,
                    times.begin() +
                        static_cast<ptrdiff_t>(times_offset + s * n));
        active[(row + s) >> 6] |= uint64_t{1} << ((row + s) & 63);
        ++entry.live_rows;
      }
    } else {
      // Ingest matcher-resident run state (fresh, adopted, or exhaustive
      // leftovers after a mode is reused); the arena becomes authoritative.
      NfaMatcher* matcher = entry.matcher.get();
      for (size_t s = 0; s < n; ++s) {
        if (!matcher->dominant_active_[s]) {
          continue;
        }
        std::copy_n(matcher->dominant_runs_[s].begin(), s + 1,
                    times.begin() +
                        static_cast<ptrdiff_t>(times_offset + s * n));
        active[(row + s) >> 6] |= uint64_t{1} << ((row + s) & 63);
        ++entry.live_rows;
      }
      std::fill(matcher->dominant_active_.begin(),
                matcher->dominant_active_.end(), false);
      entry.in_arena = true;
    }
    entry.row_offset = row;
    entry.times_offset = times_offset;
    row += n;
    times_offset += n * n;
  }

  times_ = std::move(times);
  active_ = std::move(active);
  states_ = std::move(states);
  flat_constraints_ = std::move(constraints);

  // Gate groups: one per distinct gate bank predicate (the bank dedups by
  // canonical key, so sessions sharing a gate expression group together
  // even across separately compiled gate objects).
  groups_.clear();
  ungated_members_.clear();
  has_gates_ = false;
  std::unordered_map<int, size_t> group_of;
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.gate == nullptr) {
      entry.gate_group = -1;
      ungated_members_.push_back(static_cast<uint32_t>(i));
      continue;
    }
    has_gates_ = true;
    auto [it, inserted] = group_of.emplace(entry.gate_bank_id, groups_.size());
    if (inserted) {
      GateGroup group;
      if (bank_->decomposable(entry.gate_bank_id)) {
        const int slot = bank_->slot_of(entry.gate_bank_id);
        group.gate.word = slot >> 6;
        group.gate.mask = uint64_t{1} << (slot & 63);
      } else {
        group.gate.word = -1;
        group.gate.fallback_id = entry.gate_bank_id;
      }
      groups_.push_back(std::move(group));
    }
    entry.gate_group = static_cast<int32_t>(it->second);
    groups_[it->second].members.push_back(static_cast<uint32_t>(i));
  }
  arena_dirty_ = false;
}

void MultiPatternMatcher::ProcessFlat(const stream::Event& event,
                                      std::vector<MultiMatch>* out) {
  ++arena_events_;
  const TimePoint now = event.timestamp;
  const uint64_t* words = bank_->result_words();
  if (!has_gates_) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      AdvanceEntryFlat(i, now, words, out);
    }
    return;
  }
  // Grouped execution: ONE gate read decides a whole group. Skipping a
  // group whose gate is unsatisfied is output-exact even while members
  // hold live runs -- an unsatisfied gate implies every member state
  // predicate is unsatisfied (the gate is conjoined into each), and an
  // event that satisfies no state predicate neither seeds, advances,
  // completes, nor expires anything in this runtime (constraints are
  // checked at transition time only).
  flat_scratch_.clear();
  for (uint32_t member : ungated_members_) {
    AdvanceEntryFlat(member, now, words, &flat_scratch_);
  }
  for (const GateGroup& group : groups_) {
    const bool open = group.gate.word >= 0
                          ? (words[group.gate.word] & group.gate.mask) != 0
                          : bank_->value(group.gate.fallback_id);
    if (!open) {
      continue;
    }
    for (uint32_t member : group.members) {
      AdvanceEntryFlat(member, now, words, &flat_scratch_);
    }
  }
  // Group-major execution visited patterns out of registration order;
  // restore the per-event contract (dominant mode emits at most one match
  // per pattern per event, so pattern_index is unique).
  std::sort(flat_scratch_.begin(), flat_scratch_.end(),
            [](const MultiMatch& a, const MultiMatch& b) {
              return a.pattern_index < b.pattern_index;
            });
  for (MultiMatch& match : flat_scratch_) {
    out->push_back(std::move(match));
  }
  flat_scratch_.clear();
}

void MultiPatternMatcher::AdvanceEntryFlat(size_t i, const TimePoint now,
                                           const uint64_t* words,
                                           std::vector<MultiMatch>* out) {
  Entry& entry = entries_[i];
  const int n = entry.num_states;
  const size_t row0 = entry.row_offset;
  const StateRef* refs = &states_[row0];
  TimePoint* tbase = &times_[entry.times_offset];
  bool completed = false;
  bool activity = false;

  // Advance existing runs, highest state first so one event advances a
  // given run by at most one state (mirrors NfaMatcher::ProcessDominant
  // exactly; that standalone path is the behavioral oracle).
  if (entry.live_rows > 0) {
    for (int s = n - 1; s >= 1; --s) {
      if (!RowActive(row0 + static_cast<size_t>(s) - 1)) {
        continue;
      }
      ++entry.counters.advance_reads;
      const StateRef& ref = refs[s];
      const bool satisfied = ref.word >= 0
                                 ? (words[ref.word] & ref.mask) != 0
                                 : bank_->value(ref.fallback_id);
      if (!satisfied) {
        continue;
      }
      const TimePoint* prev = tbase + (s - 1) * n;
      bool within = true;
      for (uint32_t c = 0; c < ref.constraint_count; ++c) {
        const FlatConstraint& constraint =
            flat_constraints_[ref.constraint_begin + c];
        if (now - prev[constraint.from_state] > constraint.max_gap) {
          within = false;
          break;
        }
      }
      if (!within) {
        continue;
      }
      TimePoint* cur = tbase + s * n;
      std::copy_n(prev, s, cur);
      cur[s] = now;
      const size_t target = row0 + static_cast<size_t>(s);
      if (!RowActive(target)) {
        SetRow(target);
        ++entry.live_rows;
      }
      activity = true;
      if (s == n - 1) {
        completed = true;
      }
    }
  }

  if (completed) {
    PatternMatch match;
    const TimePoint* last = tbase + (n - 1) * n;
    match.state_times.assign(last, last + n);
    out->push_back(MultiMatch{static_cast<int>(i), std::move(match)});
    ++entry.counters.matches;
    if (entry.consume_all) {
      // The match consumed every open partial run including the current
      // event; do not re-seed state 0 from this event (the oracle skips
      // its seed predicate read here, so the stats do too).
      for (int s = 0; s < n; ++s) {
        ClearRow(row0 + static_cast<size_t>(s));
      }
      entry.live_rows = 0;
      ++entry.counters.seed_skips;
      return;
    }
    ClearRow(row0 + static_cast<size_t>(n) - 1);
    --entry.live_rows;
  }

  // Seed a fresh run at state 0.
  const StateRef& seed = refs[0];
  const bool seeded = seed.word >= 0 ? (words[seed.word] & seed.mask) != 0
                                     : bank_->value(seed.fallback_id);
  if (seeded) {
    tbase[0] = now;
    if (!RowActive(row0)) {
      SetRow(row0);
      ++entry.live_rows;
    }
    activity = true;
    if (n == 1) {
      PatternMatch match;
      match.state_times.assign(1, now);
      out->push_back(MultiMatch{static_cast<int>(i), std::move(match)});
      ++entry.counters.matches;
      ClearRow(row0);
      entry.live_rows = 0;
    }
  }
  if (activity && entry.live_rows > entry.counters.peak_runs) {
    entry.counters.peak_runs = entry.live_rows;
  }
}

void MultiPatternMatcher::ProcessFlatBatch(const stream::Event* events,
                                           size_t count,
                                           std::vector<MultiMatch>* out) {
  arena_events_ += count;
  batch_scratch_.clear();
  const simd::Kernels& kernels = simd::Active();
  // Base pointer + stride into the bank's batch result rows: event b's
  // satisfied-predicate words are rows + b * stride, and the gate kernel
  // strides over the same grid directly.
  const uint64_t* rows = bank_->batch_result_words(0);
  const size_t stride = bank_->row_words();
  const size_t gate_words = (count + 63) / 64;
  if (has_gates_) {
    // One gate-column extraction per group for the whole window: the SIMD
    // kernel packs (row word & mask) != 0 into a bitmask column straight
    // from the bank's result rows; members then visit only the set bits
    // (or skip the entire window) without touching their arena rows --
    // exact for the same reason as ProcessFlat's group skip.
    gate_truth_.assign(groups_.size() * gate_words, 0);
    group_open_.assign(groups_.size(), 0);
    for (size_t g = 0; g < groups_.size(); ++g) {
      const GateGroup& group = groups_[g];
      uint64_t* column = gate_truth_.data() + g * gate_words;
      if (group.gate.word >= 0) {
        group_open_[g] = simd::GateColumn(
                             kernels, rows, stride, count,
                             static_cast<uint32_t>(group.gate.word),
                             group.gate.mask, column)
                             ? 1
                             : 0;
        continue;
      }
      for (size_t b = 0; b < count; ++b) {
        if (bank_->batch_value(b, group.gate.fallback_id)) {
          column[b >> 6] |= uint64_t{1} << (b & 63);
          group_open_[g] = 1;
        }
      }
    }
  }
  // Group-major sweep, mirroring ProcessFlat: a closed group skips ALL of
  // its member patterns with one flag check. (Iterating entries directly
  // and testing group_open_ per entry kept the sweep O(entries) per
  // window however many sessions were idle -- at 64 mostly-idle sessions
  // that bookkeeping alone outweighed the batch amortization.)
  // always_inline like step below: an outlined entry sweep puts a call on
  // the per-(pattern, window) edge, which B=1 windows cannot amortize
  // (~10% on ProcessBatch(count=1) at small query counts).
  const auto sweep_entry = [&](size_t i, const uint64_t* gate_column)
      __attribute__((always_inline)) {
    Entry& entry = entries_[i];
    const int n = entry.num_states;
    const size_t row0 = entry.row_offset;
    const StateRef* refs = &states_[row0];
    TimePoint* tbase = &times_[entry.times_offset];

    // The whole B-event window for this pattern before the next pattern:
    // its times block, active bits, and state refs stay hot across the
    // window, so the per-pattern setup above is paid once per batch.
    // always_inline: with two call sites (gated ctz walk, ungated loop) the
    // compiler outlines this body, which puts a real call on the innermost
    // per-(pattern, event) edge and costs ~15% of the batched path.
    const auto step = [&](size_t b) __attribute__((always_inline)) {
      const TimePoint now = events[b].timestamp;
      const uint64_t* words = rows + b * stride;
      bool completed = false;
      bool activity = false;

      // Advance existing runs, highest state first (mirrors ProcessFlat,
      // which mirrors NfaMatcher::ProcessDominant -- the oracle chain the
      // differential fuzz harness pins down).
      if (entry.live_rows > 0) {
        for (int s = n - 1; s >= 1; --s) {
          if (!RowActive(row0 + static_cast<size_t>(s) - 1)) {
            continue;
          }
          ++entry.counters.advance_reads;
          const StateRef& ref = refs[s];
          const bool satisfied =
              ref.word >= 0 ? (words[ref.word] & ref.mask) != 0
                            : bank_->batch_value(b, ref.fallback_id);
          if (!satisfied) {
            continue;
          }
          const TimePoint* prev = tbase + (s - 1) * n;
          bool within = true;
          for (uint32_t c = 0; c < ref.constraint_count; ++c) {
            const FlatConstraint& constraint =
                flat_constraints_[ref.constraint_begin + c];
            if (now - prev[constraint.from_state] > constraint.max_gap) {
              within = false;
              break;
            }
          }
          if (!within) {
            continue;
          }
          TimePoint* cur = tbase + s * n;
          std::copy_n(prev, s, cur);
          cur[s] = now;
          const size_t target = row0 + static_cast<size_t>(s);
          if (!RowActive(target)) {
            SetRow(target);
            ++entry.live_rows;
          }
          activity = true;
          if (s == n - 1) {
            completed = true;
          }
        }
      }

      if (completed) {
        PatternMatch match;
        const TimePoint* last = tbase + (n - 1) * n;
        match.state_times = std::vector<TimePoint>(last, last + n);
        batch_scratch_.push_back(MultiMatch{static_cast<int>(i),
                                            std::move(match),
                                            static_cast<int>(b)});
        ++entry.counters.matches;
        if (entry.consume_all) {
          for (int s = 0; s < n; ++s) {
            ClearRow(row0 + static_cast<size_t>(s));
          }
          entry.live_rows = 0;
          ++entry.counters.seed_skips;
          return;
        }
        ClearRow(row0 + static_cast<size_t>(n) - 1);
        --entry.live_rows;
      }

      // Seed a fresh run at state 0.
      const StateRef& seed = refs[0];
      const bool seeded = seed.word >= 0
                              ? (words[seed.word] & seed.mask) != 0
                              : bank_->batch_value(b, seed.fallback_id);
      if (seeded) {
        tbase[0] = now;
        if (!RowActive(row0)) {
          SetRow(row0);
          ++entry.live_rows;
        }
        activity = true;
        if (n == 1) {
          PatternMatch match;
          match.state_times.assign(1, now);
          batch_scratch_.push_back(MultiMatch{static_cast<int>(i),
                                              std::move(match),
                                              static_cast<int>(b)});
          ++entry.counters.matches;
          ClearRow(row0);
          entry.live_rows = 0;
        }
      }
      if (activity && entry.live_rows > entry.counters.peak_runs) {
        entry.counters.peak_runs = entry.live_rows;
      }
    };

    if (gate_column != nullptr) {
      // Visit only gate-open events: ctz over the bitmask column makes the
      // member cost proportional to open events, not window size (a
      // foreign session's pattern pays ~nothing for a 32-event window).
      for (size_t wi = 0; wi < gate_words; ++wi) {
        uint64_t bits = gate_column[wi];
        while (bits != 0) {
          const size_t b =
              wi * 64 + static_cast<size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          step(b);
        }
      }
    } else {
      for (size_t b = 0; b < count; ++b) {
        step(b);
      }
    }
  };

  for (uint32_t member : ungated_members_) {
    sweep_entry(member, nullptr);
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!group_open_[g]) {
      continue;  // gate shut for the whole window, for every member
    }
    const uint64_t* column = gate_truth_.data() + g * gate_words;
    for (uint32_t member : groups_[g].members) {
      sweep_entry(member, column);
    }
  }

  // Pattern-major execution produced matches grouped by pattern; the
  // contract is per-event order with registration order within one event
  // (gate groups may visit patterns out of registration order, so the
  // pattern index is part of the key; dominant mode emits at most one
  // match per pattern per event, making the order total).
  std::stable_sort(batch_scratch_.begin(), batch_scratch_.end(),
                   [](const MultiMatch& a, const MultiMatch& b) {
                     return a.batch_index != b.batch_index
                                ? a.batch_index < b.batch_index
                                : a.pattern_index < b.pattern_index;
                   });
  for (MultiMatch& match : batch_scratch_) {
    out->push_back(std::move(match));
  }
  batch_scratch_.clear();
}

bool MultiPatternMatcher::GateOpen(const Entry& entry) const {
  if (entry.gate_bank_id < 0) {
    return true;
  }
  if (bank_->decomposable(entry.gate_bank_id)) {
    const int slot = bank_->slot_of(entry.gate_bank_id);
    return (bank_->result_words()[slot >> 6] >> (slot & 63)) & 1;
  }
  return bank_->value(entry.gate_bank_id);
}

void MultiPatternMatcher::SyncStats(const Entry& entry) const {
  NfaMatcher* matcher = entry.matcher.get();
  ArenaCounters& counters = entry.counters;
  const uint64_t events = arena_events_ - counters.events_synced;
  matcher->stats_.events += events;
  // Every arena bank read is a shared-bank cache hit in oracle terms: one
  // seed read per event (minus consume-all completions that skip it) plus
  // the advance-loop reads.
  matcher->stats_.predicate_cache_hits +=
      events - counters.seed_skips + counters.advance_reads;
  matcher->stats_.matches += counters.matches;
  matcher->stats_.peak_runs =
      std::max(matcher->stats_.peak_runs, counters.peak_runs);
  counters = ArenaCounters{};
  counters.events_synced = arena_events_;
}

void MultiPatternMatcher::SyncRunState(const Entry& entry) const {
  NfaMatcher* matcher = entry.matcher.get();
  const size_t n = static_cast<size_t>(entry.num_states);
  for (size_t s = 0; s < n; ++s) {
    if (RowActive(entry.row_offset + s)) {
      const TimePoint* times =
          times_.data() + entry.times_offset + s * n;
      matcher->dominant_runs_[s].assign(times, times + s + 1);
      matcher->dominant_active_[s] = true;
    } else {
      matcher->dominant_active_[s] = false;
    }
  }
}

const NfaMatcher& MultiPatternMatcher::matcher(int pattern_index) const {
  const Entry& entry = entries_[static_cast<size_t>(pattern_index)];
  if (entry.in_arena) {
    SyncRunState(entry);
  }
  SyncStats(entry);
  return *entry.matcher;
}

void MultiPatternMatcher::Process(const stream::Event& event,
                                  std::vector<MultiMatch>* out) {
  ScopedSweep sweep(sweeping_);
  if (bank_dirty_) {
    RebuildBank();
  }
  if (options_.mode == MatcherOptions::Mode::kDominant) {
    if (!bank_->built()) {
      bank_->Build();
    }
    if (arena_dirty_) {
      BuildArena();
    }
    bank_->Evaluate(event);
    ProcessFlat(event, out);
    return;
  }
  // Exhaustive mode: per-pattern matchers own their (branching) run sets;
  // only predicate evaluation is shared. A shut gate makes every effective
  // state predicate (gate AND pose) false, so the entry is skipped whole.
  bank_->Evaluate(event);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (!GateOpen(entry)) {
      continue;
    }
    scratch_matches_.clear();
    entry.matcher->ProcessShared(event, *bank_, entry.bank_ids.data(),
                                 &scratch_matches_);
    for (PatternMatch& match : scratch_matches_) {
      out->push_back(MultiMatch{static_cast<int>(i), std::move(match)});
    }
  }
}

void MultiPatternMatcher::ProcessBatch(const stream::Event* events,
                                       size_t count,
                                       std::vector<MultiMatch>* out) {
  if (count == 0) {
    return;
  }
  ScopedSweep sweep(sweeping_);
  if (bank_dirty_) {
    RebuildBank();
  }
  if (options_.mode == MatcherOptions::Mode::kDominant) {
    if (!bank_->built()) {
      bank_->Build();
    }
    if (arena_dirty_) {
      BuildArena();
    }
    bank_->EvaluateBatch(events, count);
    ProcessFlatBatch(events, count, out);
    return;
  }
  // Exhaustive mode: runs branch per pattern, so only predicate
  // evaluation is shared; the batch degenerates to per-event processing.
  for (size_t b = 0; b < count; ++b) {
    bank_->Evaluate(events[b]);
    for (size_t i = 0; i < entries_.size(); ++i) {
      Entry& entry = entries_[i];
      if (!GateOpen(entry)) {
        continue;
      }
      scratch_matches_.clear();
      entry.matcher->ProcessShared(events[b], *bank_, entry.bank_ids.data(),
                                   &scratch_matches_);
      for (PatternMatch& match : scratch_matches_) {
        out->push_back(MultiMatch{static_cast<int>(i), std::move(match),
                                  static_cast<int>(b)});
      }
    }
  }
}

void MultiPatternMatcher::CatchUpPattern(int index, const stream::Event& event,
                                         std::vector<MultiMatch>* out) {
  EPL_CHECK(index >= 0 && static_cast<size_t>(index) < entries_.size());
  Entry& entry = entries_[static_cast<size_t>(index)];
  // Arena residency would mean the pattern already consumed the batch the
  // caller is replaying for it.
  EPL_CHECK(!entry.in_arena) << "catch-up on an arena-resident pattern";
  // The gate conjunct is enforced here too; the bank may be mid-swap
  // during a catch-up, so the gate's own program answers directly.
  if (entry.gate != nullptr &&
      !entry.gate->predicate(0).EvalBool(event)) {
    return;
  }
  scratch_matches_.clear();
  entry.matcher->Process(event, &scratch_matches_);
  for (PatternMatch& match : scratch_matches_) {
    out->push_back(MultiMatch{index, std::move(match), 0});
  }
}

void MultiPatternMatcher::Reset() {
  for (Entry& entry : entries_) {
    entry.matcher->Reset();
    entry.live_rows = 0;
  }
  std::fill(active_.begin(), active_.end(), 0);
}

}  // namespace epl::cep
