// ExprProgram: expressions compiled to a flat postfix program.
//
// The NFA matcher evaluates pose predicates for every event, so predicate
// evaluation is EPL's hottest code path. Compiling the Expr tree into a
// linear instruction sequence removes per-node virtual dispatch and pointer
// chasing. bench_expr measures the gain over the tree-walking evaluator
// (experiment E10 in DESIGN.md).

#ifndef EPL_CEP_EXPR_PROGRAM_H_
#define EPL_CEP_EXPR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cep/expr.h"
#include "common/result.h"
#include "stream/event.h"

namespace epl::cep {

class ExprProgram {
 public:
  /// Compiles a bound expression. Fails if the expression is unbound or
  /// its stack depth exceeds kMaxStackDepth.
  static Result<ExprProgram> Compile(const Expr& expr);

  ExprProgram() = default;

  /// Evaluates against one event. The event must have at least as many
  /// values as the schema the expression was bound to.
  double Eval(const stream::Event& event) const;
  bool EvalBool(const stream::Event& event) const {
    return Eval(event) != 0.0;
  }

  size_t num_instructions() const { return instructions_.size(); }
  int max_stack_depth() const { return max_stack_depth_; }

  /// Maximum operand stack depth supported (compile-time rejected above).
  static constexpr int kMaxStackDepth = 128;

 private:
  enum class Op : uint8_t {
    kPushConst,
    kPushField,
    kNegate,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kLt,
    kLe,
    kGt,
    kGe,
    kEq,
    kNe,
    kCall,
    // Short-circuit logic. kAndJump: when the top of stack is falsy, leave
    // 0.0 and jump; otherwise pop and continue with the right operand.
    // kOrJump: when truthy, leave 1.0 and jump; otherwise pop. kToBool
    // normalizes the right operand to 0/1.
    kAndJump,
    kOrJump,
    kToBool,
  };

  struct Instruction {
    Op op;
    uint8_t arity = 0;            // kCall only
    int32_t field_index = 0;      // kPushField only
    int32_t jump_target = 0;      // kAndJump / kOrJump
    double constant = 0.0;        // kPushConst only
    FunctionRegistry::Fn fn = nullptr;  // kCall only
  };

  Status Emit(const Expr& expr, int* depth);

  std::vector<Instruction> instructions_;
  int max_stack_depth_ = 0;
};

}  // namespace epl::cep

#endif  // EPL_CEP_EXPR_PROGRAM_H_
