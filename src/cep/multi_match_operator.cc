#include "cep/multi_match_operator.h"

namespace epl::cep {

MultiMatchOperator::MultiMatchOperator(MatcherOptions options)
    : matcher_(options) {}

int MultiMatchOperator::AddQuery(QuerySpec spec) {
  Query query;
  query.output_name = std::move(spec.output_name);
  query.pattern = std::make_unique<CompiledPattern>(std::move(spec.pattern));
  query.measures = std::move(spec.measures);
  query.callback = std::move(spec.callback);
  int index = matcher_.AddPattern(query.pattern.get());
  queries_.push_back(std::move(query));
  return index;
}

Status MultiMatchOperator::Process(const stream::Event& event) {
  scratch_matches_.clear();
  matcher_.Process(event, &scratch_matches_);
  for (const MultiPatternMatcher::MultiMatch& multi_match : scratch_matches_) {
    const Query& query = queries_[multi_match.pattern_index];
    Detection detection;
    detection.name = query.output_name;
    detection.time = multi_match.match.end_time();
    detection.pose_times = multi_match.match.state_times;
    detection.measures.reserve(query.measures.size());
    for (const ExprProgram& program : query.measures) {
      detection.measures.push_back(program.Eval(event));
    }
    if (query.callback) {
      query.callback(detection);
    }
  }
  return Forward(event);
}

}  // namespace epl::cep
