#include "cep/multi_match_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace epl::cep {

MultiMatchOperator::MultiMatchOperator(MatcherOptions options,
                                      size_t batch_size)
    : matcher_(options), batch_size_(std::max<size_t>(1, batch_size)) {
  window_.reserve(batch_size_);
}

int MultiMatchOperator::FindQuery(int query_id) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].id == query_id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int MultiMatchOperator::AddQuery(QuerySpec spec) {
  EPL_CHECK(spec.level == 0 || spec.gate == nullptr)
      << "composite queries cannot be gated";
  Query query;
  query.id = next_query_id_++;
  query.output_name = std::move(spec.output_name);
  query.pattern = std::make_unique<CompiledPattern>(std::move(spec.pattern));
  query.measures = std::move(spec.measures);
  query.callback = std::move(spec.callback);
  query.gate = std::move(spec.gate);
  query.level = spec.level;
  query.tag = spec.tag;
  query.session_tag = spec.session_tag;
  query.session_scoped = spec.session_scoped;
  int id = query.id;
  if (processing_) {
    PendingOp op;
    op.is_add = true;
    op.query_id = id;
    op.query = std::move(query);
    pending_ops_.push_back(std::move(op));
  } else {
    // The accumulated window predates this call; the new query must not
    // see it.
    FlushBatchedEvents();
    ApplyAdd(std::move(query));
  }
  return id;
}

Status MultiMatchOperator::RemoveQuery(int query_id) {
  bool known = FindQuery(query_id) >= 0 ||
               (composite_ != nullptr && composite_->Has(query_id));
  if (!known) {
    // The target may be an add deferred earlier in the same callback.
    for (const PendingOp& op : pending_ops_) {
      if (op.is_add && op.query_id == query_id) {
        known = true;
        break;
      }
    }
  }
  if (!known) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  if (processing_) {
    PendingOp op;
    op.query_id = query_id;
    pending_ops_.push_back(std::move(op));
  } else {
    // The accumulated window predates this call; the query still sees it.
    FlushBatchedEvents();
    ApplyRemove(query_id);
  }
  return OkStatus();
}

Result<MultiMatchOperator::DetachedQuery> MultiMatchOperator::ExtractQuery(
    int query_id) {
  EPL_CHECK(!processing_) << "ExtractQuery from inside a detection callback";
  FlushBatchedEvents();
  int index = FindQuery(query_id);
  if (index < 0) {
    if (composite_ != nullptr && composite_->Has(query_id)) {
      return FailedPreconditionError(
          "composite query " + std::to_string(query_id) +
          " cannot be extracted (composites do not migrate)");
    }
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  Query& query = queries_[index];
  DetachedQuery detached;
  detached.id = query.id;
  detached.output_name = std::move(query.output_name);
  detached.pattern = std::move(query.pattern);
  detached.measures = std::move(query.measures);
  detached.callback = std::move(query.callback);
  detached.gate = std::move(query.gate);
  detached.tag = query.tag;
  detached.session_tag = query.session_tag;
  detached.session_scoped = query.session_scoped;
  detached.matcher = matcher_.ExtractPattern(index);
  queries_.erase(queries_.begin() + index);
  return detached;
}

int MultiMatchOperator::AdoptQuery(DetachedQuery detached) {
  EPL_CHECK(!processing_) << "AdoptQuery from inside a detection callback";
  EPL_CHECK(detached.pattern != nullptr && detached.matcher != nullptr);
  FlushBatchedEvents();
  Query query;
  query.id = next_query_id_++;
  query.output_name = std::move(detached.output_name);
  query.pattern = std::move(detached.pattern);
  query.measures = std::move(detached.measures);
  query.callback = std::move(detached.callback);
  query.gate = std::move(detached.gate);
  query.tag = detached.tag;
  query.session_tag = detached.session_tag;
  query.session_scoped = detached.session_scoped;
  int id = query.id;
  matcher_.AdoptPattern(std::move(detached.matcher), query.gate.get());
  queries_.push_back(std::move(query));
  return id;
}

Result<NfaRunState> MultiMatchOperator::ExportQueryRunState(int query_id) {
  EPL_CHECK(!processing_) << "ExportQueryRunState from inside a detection "
                             "callback";
  FlushBatchedEvents();
  const int index = FindQuery(query_id);
  if (index < 0) {
    if (composite_ != nullptr && composite_->Has(query_id)) {
      return composite_->ExportRunState(query_id);
    }
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  // matcher(index) synchronizes arena-resident run state and statistics
  // back into the query's NfaMatcher without detaching it.
  return matcher_.matcher(index).ExportRunState();
}

Result<int> MultiMatchOperator::RestoreQuery(QuerySpec spec,
                                             const NfaRunState& runs) {
  EPL_CHECK(!processing_) << "RestoreQuery from inside a detection callback";
  FlushBatchedEvents();
  if (spec.level > 0) {
    CompositeQuery composite;
    composite.level = spec.level;
    composite.output_name = std::move(spec.output_name);
    composite.pattern =
        std::make_unique<CompiledPattern>(std::move(spec.pattern));
    composite.measures = std::move(spec.measures);
    composite.callback = std::move(spec.callback);
    composite.tag = spec.tag;
    composite.session_tag = spec.session_tag;
    composite.id = next_query_id_;
    EPL_RETURN_IF_ERROR(
        EnsureComposite().Restore(std::move(composite), runs));
    return next_query_id_++;
  }
  Query query;
  query.output_name = std::move(spec.output_name);
  query.pattern = std::make_unique<CompiledPattern>(std::move(spec.pattern));
  query.measures = std::move(spec.measures);
  query.callback = std::move(spec.callback);
  query.gate = std::move(spec.gate);
  // Keep the derived-event identity: composites restored from the same
  // snapshot re-derive from this query by its tag.
  query.tag = spec.tag;
  query.session_tag = spec.session_tag;
  query.session_scoped = spec.session_scoped;
  auto matcher =
      std::make_unique<NfaMatcher>(query.pattern.get(), matcher_.options());
  EPL_RETURN_IF_ERROR(matcher->ImportRunState(runs));
  query.id = next_query_id_++;
  const int id = query.id;
  matcher_.AdoptPattern(std::move(matcher), query.gate.get());
  queries_.push_back(std::move(query));
  return id;
}

CompositeRunner& MultiMatchOperator::EnsureComposite() {
  if (composite_ == nullptr) {
    composite_ = std::make_unique<CompositeRunner>(matcher_.options());
  }
  return *composite_;
}

void MultiMatchOperator::ApplyAdd(Query query) {
  if (query.level > 0) {
    CompositeQuery composite;
    composite.id = query.id;
    composite.level = query.level;
    composite.output_name = std::move(query.output_name);
    composite.pattern = std::move(query.pattern);
    composite.measures = std::move(query.measures);
    composite.callback = std::move(query.callback);
    composite.tag = query.tag;
    composite.session_tag = query.session_tag;
    EnsureComposite().Add(std::move(composite));
    return;
  }
  matcher_.AddPattern(query.pattern.get(), query.gate.get());
  queries_.push_back(std::move(query));
}

void MultiMatchOperator::ApplyRemove(int query_id) {
  if (composite_ != nullptr && composite_->Has(query_id)) {
    (void)composite_->Remove(query_id);
    return;
  }
  int index = FindQuery(query_id);
  if (index < 0) {
    return;  // already removed by an earlier deferred op
  }
  matcher_.RemovePattern(index);
  queries_.erase(queries_.begin() + index);
}

void MultiMatchOperator::ApplyPendingOps() {
  for (PendingOp& op : pending_ops_) {
    if (op.is_add) {
      // If a batch sweep is in flight, the new query catches up on the
      // window's remaining events (RunBatch feeds them one by one).
      catchup_ids_.push_back(op.query_id);
      ApplyAdd(std::move(op.query));
    } else {
      ApplyRemove(op.query_id);
    }
  }
  pending_ops_.clear();
}

void MultiMatchOperator::DispatchToQuery(const Query& query,
                                         const PatternMatch& match,
                                         const stream::Event& event) {
  Detection detection;
  detection.name = query.output_name;
  detection.time = match.end_time();
  detection.pose_times = match.state_times;
  detection.measures.reserve(query.measures.size());
  for (const ExprProgram& program : query.measures) {
    detection.measures.push_back(program.Eval(event));
  }
  if (query.callback) {
    query.callback(detection);
  }
  // Base detections feed the composite epoch (see RunBatch) in exactly
  // the order they are dispatched.
  if (composite_ != nullptr) {
    composite_->CollectBase(query.tag, query.session_tag, detection);
  }
}

void MultiMatchOperator::Dispatch(int query_id, const PatternMatch& match,
                                  const stream::Event& event) {
  const int index = FindQuery(query_id);
  if (index < 0) {
    return;  // removed mid-batch: its remaining matches are dropped
  }
  DispatchToQuery(queries_[index], match, event);
}

void MultiMatchOperator::RunBatch(const stream::Event* events, size_t count) {
  if (count == 0) {
    return;
  }
  processing_ = true;
  scratch_matches_.clear();
  if (count == 1) {
    // Single events keep today's per-event matcher path (ProcessFlat);
    // batch_index defaults to 0.
    matcher_.Process(events[0], &scratch_matches_);
  } else {
    matcher_.ProcessBatch(events, count, &scratch_matches_);
  }
  catchup_ids_.clear();
  // Until the first mid-batch mutation, pattern indices are live and
  // dispatch is a direct lookup; afterwards matches resolve through their
  // stable id (dropped if the query was removed).
  bool indices_stale = false;
  size_t next = 0;
  for (size_t b = 0; b < count; ++b) {
    if (batch_event_hook_) {
      batch_event_hook_(b);
    }
    // One composite epoch per source event: base detections collected
    // during dispatch below, then RunEpoch drives the level fixed point
    // before this event's deferred mutations apply. Re-checked per event
    // so a composite added mid-batch sees epochs from the next event on,
    // exactly as in per-event processing.
    const bool epochs = composite_ != nullptr && composite_->active();
    if (epochs) {
      composite_->BeginEpoch();
    }
    // Matches the sweep computed for this event.
    for (; next < scratch_matches_.size() &&
           static_cast<size_t>(scratch_matches_[next].batch_index) == b;
         ++next) {
      const MultiPatternMatcher::MultiMatch& match = scratch_matches_[next];
      if (indices_stale) {
        Dispatch(batch_ids_[match.pattern_index], match.match, events[b]);
      } else {
        DispatchToQuery(queries_[match.pattern_index], match.match,
                        events[b]);
      }
    }
    // Queries added mid-batch replay the window's tail event by event.
    for (size_t c = 0; c < catchup_ids_.size(); ++c) {
      const int index = FindQuery(catchup_ids_[c]);
      if (index < 0) {
        continue;  // removed again before this event
      }
      catchup_scratch_.clear();
      matcher_.CatchUpPattern(index, events[b], &catchup_scratch_);
      for (const MultiPatternMatcher::MultiMatch& match : catchup_scratch_) {
        Dispatch(catchup_ids_[c], match.match, events[b]);
      }
    }
    // Composite levels run after ALL base detections of this event --
    // same timestamp epoch, deterministic (event-seq, level, query-id)
    // order. Composite callbacks may request mutations; processing_ is
    // still set, so they defer like any other callback.
    if (epochs) {
      composite_->RunEpoch();
    }
    // Mutations requested by this event's callbacks take effect before
    // the next event, exactly as in per-event processing.
    if (!pending_ops_.empty()) {
      if (!indices_stale) {
        // First mutation of the sweep: snapshot the stable ids of the
        // sweep's index space (queries_ is still unmutated, so this is
        // the mapping the matches were tagged against) and dispatch by
        // id from here on. Mutation-free sweeps -- the common case --
        // never pay for the snapshot.
        batch_ids_.clear();
        for (const Query& query : queries_) {
          batch_ids_.push_back(query.id);
        }
        indices_stale = true;
      }
      ApplyPendingOps();
    }
  }
  processing_ = false;
}

void MultiMatchOperator::FlushBatchedEvents() {
  // While a sweep runs (processing_), the window is necessarily empty:
  // every RunBatch caller drains it first (Process flushes on overflow
  // before returning, ProcessBatch and the control paths flush before
  // sweeping), and only Process fills it. The guard therefore never skips
  // real events; it exists so a control call issued from inside a
  // detection callback (e.g. Close on first detection) cannot re-enter
  // RunBatch on the window that is already being dispatched.
  if (window_count_ == 0 || processing_) {
    return;
  }
  // Swap the filled slots out so a detection callback can refill window_
  // while the sweep runs. Neither vector is cleared: slots keep their
  // values capacity and are overwritten in place on the next fill, so the
  // steady state buffers a window with zero allocations.
  flushing_.swap(window_);
  const size_t count = window_count_;
  window_count_ = 0;
  RunBatch(flushing_.data(), count);
}

Status MultiMatchOperator::Process(const stream::Event& event) {
  if (batch_size_ <= 1) {
    RunBatch(&event, 1);
    return Forward(event);
  }
  if (window_count_ < window_.size()) {
    stream::Event& slot = window_[window_count_];
    slot.timestamp = event.timestamp;
    slot.values.assign(event.values.begin(), event.values.end());
  } else {
    window_.push_back(event);
  }
  ++window_count_;
  if (window_count_ >= batch_size_) {
    FlushBatchedEvents();
  }
  return Forward(event);
}

Status MultiMatchOperator::ProcessBatch(const stream::Event* events,
                                        size_t count) {
  // Re-entering from a detection callback would clobber the in-flight
  // sweep's scratch state; fail loudly like the other non-deferrable
  // entry points.
  EPL_CHECK(!processing_) << "ProcessBatch from inside a detection callback";
  FlushBatchedEvents();
  RunBatch(events, count);
  Status status = OkStatus();
  for (size_t i = 0; i < count && status.ok(); ++i) {
    status = Forward(events[i]);
  }
  return status;
}

Status MultiMatchOperator::Close() {
  FlushBatchedEvents();
  return OkStatus();
}

}  // namespace epl::cep
