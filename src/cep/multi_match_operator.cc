#include "cep/multi_match_operator.h"

#include "common/logging.h"

namespace epl::cep {

MultiMatchOperator::MultiMatchOperator(MatcherOptions options)
    : matcher_(options) {}

int MultiMatchOperator::FindQuery(int query_id) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].id == query_id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int MultiMatchOperator::AddQuery(QuerySpec spec) {
  Query query;
  query.id = next_query_id_++;
  query.output_name = std::move(spec.output_name);
  query.pattern = std::make_unique<CompiledPattern>(std::move(spec.pattern));
  query.measures = std::move(spec.measures);
  query.callback = std::move(spec.callback);
  int id = query.id;
  if (processing_) {
    PendingOp op;
    op.is_add = true;
    op.query_id = id;
    op.query = std::move(query);
    pending_ops_.push_back(std::move(op));
  } else {
    ApplyAdd(std::move(query));
  }
  return id;
}

Status MultiMatchOperator::RemoveQuery(int query_id) {
  bool known = FindQuery(query_id) >= 0;
  if (!known) {
    // The target may be an add deferred earlier in the same callback.
    for (const PendingOp& op : pending_ops_) {
      if (op.is_add && op.query_id == query_id) {
        known = true;
        break;
      }
    }
  }
  if (!known) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  if (processing_) {
    PendingOp op;
    op.query_id = query_id;
    pending_ops_.push_back(std::move(op));
  } else {
    ApplyRemove(query_id);
  }
  return OkStatus();
}

Result<MultiMatchOperator::DetachedQuery> MultiMatchOperator::ExtractQuery(
    int query_id) {
  EPL_CHECK(!processing_) << "ExtractQuery from inside a detection callback";
  int index = FindQuery(query_id);
  if (index < 0) {
    return NotFoundError("unknown query id " + std::to_string(query_id));
  }
  Query& query = queries_[index];
  DetachedQuery detached;
  detached.id = query.id;
  detached.output_name = std::move(query.output_name);
  detached.pattern = std::move(query.pattern);
  detached.measures = std::move(query.measures);
  detached.callback = std::move(query.callback);
  detached.matcher = matcher_.ExtractPattern(index);
  queries_.erase(queries_.begin() + index);
  return detached;
}

int MultiMatchOperator::AdoptQuery(DetachedQuery detached) {
  EPL_CHECK(!processing_) << "AdoptQuery from inside a detection callback";
  EPL_CHECK(detached.pattern != nullptr && detached.matcher != nullptr);
  Query query;
  query.id = next_query_id_++;
  query.output_name = std::move(detached.output_name);
  query.pattern = std::move(detached.pattern);
  query.measures = std::move(detached.measures);
  query.callback = std::move(detached.callback);
  int id = query.id;
  matcher_.AdoptPattern(std::move(detached.matcher));
  queries_.push_back(std::move(query));
  return id;
}

void MultiMatchOperator::ApplyAdd(Query query) {
  matcher_.AddPattern(query.pattern.get());
  queries_.push_back(std::move(query));
}

void MultiMatchOperator::ApplyRemove(int query_id) {
  int index = FindQuery(query_id);
  if (index < 0) {
    return;  // already removed by an earlier deferred op
  }
  matcher_.RemovePattern(index);
  queries_.erase(queries_.begin() + index);
}

void MultiMatchOperator::ApplyPendingOps() {
  for (PendingOp& op : pending_ops_) {
    if (op.is_add) {
      ApplyAdd(std::move(op.query));
    } else {
      ApplyRemove(op.query_id);
    }
  }
  pending_ops_.clear();
}

Status MultiMatchOperator::Process(const stream::Event& event) {
  processing_ = true;
  scratch_matches_.clear();
  matcher_.Process(event, &scratch_matches_);
  for (const MultiPatternMatcher::MultiMatch& multi_match : scratch_matches_) {
    const Query& query = queries_[multi_match.pattern_index];
    Detection detection;
    detection.name = query.output_name;
    detection.time = multi_match.match.end_time();
    detection.pose_times = multi_match.match.state_times;
    detection.measures.reserve(query.measures.size());
    for (const ExprProgram& program : query.measures) {
      detection.measures.push_back(program.Eval(event));
    }
    if (query.callback) {
      query.callback(detection);
    }
  }
  processing_ = false;
  ApplyPendingOps();
  return Forward(event);
}

}  // namespace epl::cep
