// Runtime-dispatched SIMD kernels for the flat multi-pattern path.
//
// The three hot loops of the flat runtime share one word-AND shape:
// PredicateBank::Evaluate ANDs per-field memo bitsets into one result row,
// EvaluateBatch materializes B result-word rows from run-length-compressed
// memo words, and MultiPatternMatcher::ProcessFlatBatch derives the
// per-(gate group, event) gate grid from those rows. All three call the
// kernel table below instead of open-coding scalar loops.
//
// Dispatch model: the kernel set is selected ONCE, at the first Active()
// call, by checking CPUID for AVX2 support; every later call returns the
// same table, so the hot paths pay one pointer load. Setting the
// EPL_FORCE_SCALAR environment variable (non-empty, not "0") pins the
// portable scalar kernels regardless of hardware -- CI runs the tier-1
// suite once in that mode so the fallback can never rot, and the
// differential fuzz harness runs the same seeds under both dispatch modes
// and requires bit-identical match streams.
//
// Every kernel is pure 64-bit bitwise arithmetic: the AVX2 and scalar
// implementations are bit-exact by construction (no floating point, no
// reassociation hazards), which is what lets the dispatch mode be invisible
// to every determinism guarantee in this codebase.
//
// The AVX2 implementations live in exactly one translation unit
// (simd_avx2.cc, the only file compiled with -mavx2), so the ISA flag
// cannot leak vector instructions into code that might execute before the
// CPUID check. On toolchains or targets without AVX2 that TU compiles to a
// stub and the scalar kernels are the only table.

#ifndef EPL_CEP_SIMD_H_
#define EPL_CEP_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <vector>

namespace epl::cep::simd {

enum class Dispatch { kScalar, kAvx2 };

/// The kernel table. Function pointers rather than virtuals: the table is
/// immutable after selection and callers cache one reference per sweep.
struct Kernels {
  Dispatch dispatch = Dispatch::kScalar;
  const char* name = "scalar";

  /// dst[w] &= src[w] for w in [0, words).
  void (*and_into)(uint64_t* dst, const uint64_t* src, size_t words);

  /// dst[w] &= ~src[w] for w in [0, words) (the NaN clear:
  /// result &= ~constrained).
  void (*andnot_into)(uint64_t* dst, const uint64_t* src, size_t words);

  /// Fused fold: dst[w] = AND of and_srcs[i][w], further ANDed with the
  /// complement of every not_srcs[j][w] (all-ones when both lists are
  /// empty). This is Evaluate's kernel: ONE dispatched call folds every
  /// constrained field's memo bitset (and the ~constrained clear of every
  /// NaN field) into the result row, so the destination chunk stays in
  /// registers across all fields instead of being re-read and re-written
  /// once per field.
  void (*fold_into)(uint64_t* dst, const uint64_t* const* and_srcs,
                    size_t num_and, const uint64_t* const* not_srcs,
                    size_t num_not, size_t words);

  /// Row broadcast: rows[r * stride_words + w] &= src[w] for every
  /// r in [0, num_rows), w in [0, words). This is EvaluateBatch's kernel:
  /// a run of consecutive in-batch events that stay inside one elementary
  /// region share one memoized region bitset, so the bitset is broadcast
  /// once and ANDed across the whole row block.
  void (*and_rows)(uint64_t* rows, size_t stride_words, size_t num_rows,
                   const uint64_t* src, size_t words);

  /// Gate-grid extraction: packs bit b of `out` (out[b / 64], bit b % 64)
  /// with (rows[b * stride_words + word] & mask) != 0 for b in [0, count);
  /// tail bits of the last out word are zeroed. Returns true when any bit
  /// is set (the group-open summary). `out` must hold (count + 63) / 64
  /// words.
  bool (*gate_column)(const uint64_t* rows, size_t stride_words, size_t count,
                      uint32_t word, uint64_t mask, uint64_t* out);
};

/// The selected kernel table (CPUID once, EPL_FORCE_SCALAR honored).
const Kernels& Active();

/// Name of the active dispatch ("avx2" or "scalar"), for logs and
/// benchmark context blocks.
const char* DispatchName();

/// True when AVX2 kernels exist in this build AND the CPU supports them,
/// regardless of EPL_FORCE_SCALAR. Tests use this to decide whether a
/// scalar-vs-AVX2 differential leg is meaningful on this machine.
bool Avx2Available();

/// The portable kernel table, always available (unit tests compare the
/// vector kernels against it directly).
const Kernels& ScalarKernels();

/// The AVX2 kernel table; EPL_CHECK-fails unless Avx2Available().
const Kernels& Avx2Kernels();

/// Test hook: pins Active() to the given dispatch until called with
/// std::nullopt (which restores the process-wide selection). Fails loudly
/// when kAvx2 is requested but unavailable. Not thread-safe; for
/// single-threaded differential tests only.
void SetDispatchForTest(std::optional<Dispatch> dispatch);

namespace internal {
/// Defined in simd_avx2.cc (the only -mavx2 TU). Returns nullptr when the
/// build carries no AVX2 code paths.
const Kernels* Avx2KernelsOrNull();
}  // namespace internal

// Call-site helpers: below a per-kernel threshold of total words of work,
// an out-of-line dispatched call costs more than the AND loop it replaces,
// so the loop runs inline (the compiler auto-vectorizes it with the
// baseline ISA, which is what the pre-SIMD code paths effectively did);
// bigger jobs go through the dispatched table. The inline loops are
// bitwise-identical to the scalar kernels, so the thresholds are invisible
// to every determinism guarantee -- they only move the inline/dispatch
// boundary.

inline constexpr size_t kInlineFoldWords = 32;
inline constexpr size_t kInlineRowWords = 256;

/// andnot_into with an inline fast path for narrow rows.
inline void AndNotInto(const Kernels& kernels, uint64_t* dst,
                       const uint64_t* src, size_t words) {
  if (words <= kInlineFoldWords) {
    for (size_t w = 0; w < words; ++w) {
      dst[w] &= ~src[w];
    }
    return;
  }
  kernels.andnot_into(dst, src, words);
}

/// and_rows with an inline fast path for small row blocks (a short run of
/// narrow rows is a handful of ANDs; the broadcast kernel pays off on
/// long runs or wide banks, where the per-call cost amortizes).
inline void AndRows(const Kernels& kernels, uint64_t* rows,
                    size_t stride_words, size_t num_rows, const uint64_t* src,
                    size_t words) {
  if (num_rows * words <= kInlineRowWords) {
    for (size_t r = 0; r < num_rows; ++r) {
      uint64_t* row = rows + r * stride_words;
      for (size_t w = 0; w < words; ++w) {
        row[w] &= src[w];
      }
    }
    return;
  }
  kernels.and_rows(rows, stride_words, num_rows, src, words);
}

/// gate_column with an inline fast path for small windows (one indirect
/// call per gate group per window only amortizes once the column spans
/// more than a word of events).
inline bool GateColumn(const Kernels& kernels, const uint64_t* rows,
                       size_t stride_words, size_t count, uint32_t word,
                       uint64_t mask, uint64_t* out) {
  if (count == 0) {
    return false;  // no column words to write
  }
  if (count <= 64) {
    uint64_t bits = 0;
    const uint64_t* cell = rows + word;
    for (size_t b = 0; b < count; ++b) {
      bits |= static_cast<uint64_t>((cell[b * stride_words] & mask) != 0)
              << b;
    }
    out[0] = bits;
    return bits != 0;
  }
  return kernels.gate_column(rows, stride_words, count, word, mask, out);
}

/// fold_into with an inline fast path for tiny folds (a couple of fields
/// over a narrow bank).
inline void FoldInto(const Kernels& kernels, uint64_t* dst,
                     const uint64_t* const* and_srcs, size_t num_and,
                     const uint64_t* const* not_srcs, size_t num_not,
                     size_t words) {
  if ((num_and + num_not) * words <= kInlineFoldWords) {
    for (size_t w = 0; w < words; ++w) {
      uint64_t acc = ~uint64_t{0};
      for (size_t i = 0; i < num_and; ++i) {
        acc &= and_srcs[i][w];
      }
      for (size_t i = 0; i < num_not; ++i) {
        acc &= ~not_srcs[i][w];
      }
      dst[w] = acc;
    }
    return;
  }
  kernels.fold_into(dst, and_srcs, num_and, not_srcs, num_not, words);
}

/// Minimal 32-byte-aligned allocator so bitset storage (batch result rows,
/// per-field memo words) starts on a vector-register boundary. The kernels
/// use unaligned loads regardless -- alignment is a throughput courtesy,
/// never a correctness requirement (rows whose word count is not a
/// multiple of 4 start mid-register).
template <typename T, std::size_t kAlign>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kAlign});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 32-byte-aligned uint64 storage for result rows and memo bitsets.
using WordVector = std::vector<uint64_t, AlignedAllocator<uint64_t, 32>>;

}  // namespace epl::cep::simd

#endif  // EPL_CEP_SIMD_H_
