// MatchOperator: wraps an NfaMatcher as a stream operator.
//
// This is the AnduIN `match` operator of paper Sec. 2. Deploy one instance
// per gesture query on the stream/view the pattern reads from; on every
// completed match it invokes the detection callback with the query's output
// tuple.

#ifndef EPL_CEP_MATCH_OPERATOR_H_
#define EPL_CEP_MATCH_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cep/detection.h"
#include "cep/matcher.h"
#include "stream/operator.h"

namespace epl::cep {

class MatchOperator : public stream::Operator {
 public:
  /// `measure_programs` are evaluated on the completing event and shipped
  /// in Detection::measures.
  MatchOperator(std::string output_name, CompiledPattern pattern,
                DetectionCallback callback,
                std::vector<ExprProgram> measure_programs = {},
                MatcherOptions options = MatcherOptions());

  Status Process(const stream::Event& event) override;

  std::string name() const override { return "match[" + output_name_ + "]"; }

  const std::string& output_name() const { return output_name_; }
  const MatcherStats& matcher_stats() const { return matcher_->stats(); }
  const CompiledPattern& pattern() const { return *pattern_; }

  /// Discards partial matches (e.g. when the application loses focus).
  void ResetMatcher() { matcher_->Reset(); }

 private:
  std::string output_name_;
  // The matcher holds a pointer to the pattern, so the pattern is owned by
  // a stable unique_ptr.
  std::unique_ptr<CompiledPattern> pattern_;
  std::unique_ptr<NfaMatcher> matcher_;
  DetectionCallback callback_;
  std::vector<ExprProgram> measure_programs_;
  std::vector<PatternMatch> scratch_matches_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_MATCH_OPERATOR_H_
