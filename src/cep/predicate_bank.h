// PredicateBank: shared per-event predicate evaluation for many patterns.
//
// Deploying hundreds of learned gesture queries naively costs
// O(patterns x states) ExprProgram interpretations per event even though
// learned predicates all share one shape: conjunctions of range predicates
// `abs(field - center) < width` (core/query_gen.h). The bank exploits that:
//
//  1. Dedup: state predicates of every registered CompiledPattern are
//     collected and deduplicated by exact canonical key
//     (CompiledPattern::predicate_key), so structurally identical
//     predicates are evaluated once per event no matter how many patterns
//     and states reference them.
//  2. Interval decomposition: each distinct predicate is decomposed, when
//     possible, into per-field interval constraints (a conjunction of
//     range/comparison atoms has at most one interval per field after
//     intersection). Non-decomposable predicates fall back to their
//     ExprProgram.
//  3. Interval index: per referenced field the bank knows, for every
//     elementary region between sorted interval endpoints, the bitset over
//     decomposable predicates whose constraint on that field holds there.
//     Because every constraint is one interval, a predicate's bit is set on
//     a CONTIGUOUS range of regions, so the index is stored as a
//     delta-vs-neighbor encoding: absolute bitsets only every
//     kCheckpointStride regions, plus per-region on/off transitions (two
//     per predicate in total). Build time and memory are
//     O(P^2 / stride + P log P) per field instead of the dense O(P^2).
//  4. Cross-event region memo: a 30 Hz skeleton field usually stays inside
//     the previous event's elementary region, so each field caches its
//     last region together with the materialized bitset; when the new
//     value still lies inside the region's bounds, both the binary search
//     and the checkpoint+delta replay are skipped and the cached words are
//     ANDed directly.
//
//     Evaluating an event is then, per referenced field, a bounds check
//     (memo hit) or a binary search plus O(D/stride + stride) replay, and
//     one bitset AND -- instead of O(patterns x states) program
//     interpretations.
//
// All registered patterns must be compiled against the same schema (they
// are subscribers of one stream); the canonical-key dedup assumes field
// names resolve to the same indices.
//
// A bank is write-once: registration freezes at the first Evaluate(). When
// the deployed pattern set changes at runtime, the owner constructs a
// fresh bank, re-registers the surviving patterns, and swaps it in between
// events (MultiPatternMatcher::bank_generation counts the swaps); the
// retired bank -- including the predicate truth it served for the event in
// flight -- is never mutated by the exchange.

#ifndef EPL_CEP_PREDICATE_BANK_H_
#define EPL_CEP_PREDICATE_BANK_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/nfa.h"
#include "cep/simd.h"
#include "stream/event.h"

namespace epl::cep {

struct PredicateBankStats {
  uint64_t events = 0;
  /// ExprProgram interpretations of fallback (non-decomposable) predicates.
  uint64_t program_evaluations = 0;
  /// Field evaluations answered by the cross-event region memo (no binary
  /// search, no delta replay).
  uint64_t region_memo_hits = 0;
  /// Field evaluations that had to binary-search and replay deltas.
  uint64_t region_searches = 0;
  /// EvaluateBatch (field, event) rows whose region bitset came straight
  /// from the still-valid cross-event memo, i.e. rows ANDed by broadcasting
  /// one memo word run across the row block. The ~70% memo-hit claim is
  /// batch_broadcast_rows / (batch_broadcast_rows + batch_recomputed_rows).
  uint64_t batch_broadcast_rows = 0;
  /// EvaluateBatch (field, event) rows whose event left the previous
  /// elementary region, forcing a binary search + delta replay before the
  /// broadcast run restarts.
  uint64_t batch_recomputed_rows = 0;
};

class PredicateBank {
 public:
  PredicateBank() = default;

  PredicateBank(const PredicateBank&) = delete;
  PredicateBank& operator=(const PredicateBank&) = delete;

  /// Registers every state predicate of `pattern` (which must outlive the
  /// bank) and returns the bank predicate id for each distinct predicate
  /// slot of the pattern, i.e. `result[pattern.predicate_id(state)]` is the
  /// bank id of `state`'s predicate. Must not be called after Build().
  std::vector<int> RegisterPattern(const CompiledPattern& pattern);

  /// Decomposes predicates and builds the per-field interval indexes.
  /// Called automatically by the first Evaluate().
  void Build();
  bool built() const { return built_; }

  /// Evaluates the interval index against `event`; results are read back
  /// with value() / CopyValues(). Fallback (non-decomposable) predicates
  /// are interpreted lazily on first read (the bank keeps its own copy of
  /// the event, reusing capacity). Thread-compatible, not thread-safe:
  /// the lazy fallback cache mutates under value().
  void Evaluate(const stream::Event& event);

  /// Batched Evaluate: answers `count` events in one pass per field. Each
  /// field performs ONE region-memo walk over the whole window -- the
  /// binary search and checkpoint+delta replay happen only when an event
  /// leaves the previous event's elementary region, so consecutive
  /// same-region events (the common 30 Hz case) cost a bounds check and a
  /// bitset AND each. Results are read back per in-batch index with
  /// batch_result_words(b) / batch_value(b, id). `events` is borrowed, not
  /// copied: it must stay valid until the next Evaluate/EvaluateBatch
  /// (batch_value interprets fallback predicates lazily against it).
  void EvaluateBatch(const stream::Event* events, size_t count);

  /// Truth of bank predicate `id` for the last evaluated event.
  bool value(int id) const;

  /// Satisfied-predicate words of in-batch event `b` of the last
  /// EvaluateBatch (num_decomposable() bits; same layout as
  /// result_words()).
  const uint64_t* batch_result_words(size_t b) const {
    return batch_words_.data() + b * words();
  }

  /// Stride, in uint64 words, between consecutive batch_result_words rows.
  /// The flat matcher uses base pointer + b * row_words() arithmetic (and
  /// hands both straight to the SIMD gate kernel) instead of re-calling
  /// batch_result_words per event.
  size_t row_words() const { return words(); }

  /// Truth of bank predicate `id` for in-batch event `b` of the last
  /// EvaluateBatch. Fallback predicates are interpreted lazily per
  /// (event, predicate), exactly like value().
  bool batch_value(size_t b, int id) const;

  /// Columnar read surface for the flattened multi-pattern runtime: the
  /// truth of a decomposable predicate for the last evaluated event is bit
  /// `slot_of(id)` of result_words() (num_decomposable() bits); fallback
  /// predicates must go through value(). result_words() is stable once the
  /// bank is built.
  bool decomposable(int id) const { return predicates_[id].decomposable; }
  int slot_of(int id) const { return predicates_[id].slot; }
  const uint64_t* result_words() const { return result_words_.data(); }

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  /// Predicates served by the interval index.
  int num_decomposable() const { return num_decomposable_; }
  /// Predicates evaluated via their ExprProgram.
  int num_fallback() const {
    return num_predicates() - num_decomposable_;
  }
  /// Total states registered across all patterns (before dedup).
  size_t registered_states() const { return registered_states_; }
  /// Bytes held by the per-field interval indexes. The checkpoint term is
  /// O(P^2 / kCheckpointStride) in num_decomposable() -- a 1/stride
  /// fraction of the dense per-region index -- plus O(P) deltas/bounds.
  size_t index_bytes() const;

  const PredicateBankStats& stats() const { return stats_; }

  /// One per-field interval constraint: lo <= v <= hi. Bounds are always
  /// inclusive -- refinement stores the exact largest/smallest satisfying
  /// double (see predicate_bank.cc). Exposed for tests.
  struct Interval {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
  };

  /// Decomposes a bound predicate into per-field intervals (field index ->
  /// intersected interval). Returns false when the expression is not a
  /// conjunction of single-field range/comparison atoms. Exposed for tests.
  static bool Decompose(const Expr& expr, std::map<int, Interval>* out);

 private:
  struct Predicate {
    const ExprProgram* program = nullptr;  // owned by a registered pattern
    const Expr* expr = nullptr;            // bound tree, for decomposition
    bool decomposable = false;
    int slot = -1;  // bit index (decomposable) or fallback_values_ index
    std::map<int, Interval> intervals;     // filled by Build()
  };

  /// Absolute region bitsets are materialized only every this many
  /// elementary regions; the regions in between are reached by replaying
  /// their on/off deltas. Governs the build/memory vs replay trade-off.
  static constexpr size_t kCheckpointStride = 64;

  /// Sorted-endpoint stabbing index for one field over the 2k+1 elementary
  /// regions of k sorted endpoints ((-inf,b0), [b0,b0], (b0,b1), ...). The
  /// region bitset (bit d set iff predicate d has no constraint on the
  /// field or its constraint holds everywhere in the region) is encoded
  /// delta-vs-neighbor: each predicate's constraint holds on a contiguous
  /// region range [on_region, off_region), so neighbouring regions differ
  /// only in the predicates whose range starts or ends between them.
  struct FieldIndex {
    /// One bit transition between region `region - 1` and `region`.
    struct RegionDelta {
      uint32_t region = 0;
      uint32_t bit = 0;
      bool on = false;
    };

    int field = -1;
    std::vector<double> bounds;        // sorted unique finite endpoints
    simd::WordVector constrained;      // bit d: predicate d constrains field
    /// Absolute bitset of region c * kCheckpointStride at
    /// checkpoints[c * words].
    std::vector<uint64_t> checkpoints;
    std::vector<RegionDelta> deltas;   // sorted by region
    /// Per checkpoint, index of the first delta with region beyond it.
    std::vector<uint32_t> checkpoint_delta_begin;

    /// Cross-event memo: the last resolved region and its materialized
    /// bitset. Valid until the field value leaves the region's bounds.
    bool memo_valid = false;
    size_t memo_region = 0;
    simd::WordVector memo_words;
  };

  size_t words() const { return (num_decomposable_ + 63) / 64; }

  /// True when `v` lies inside elementary region `region` of `index`.
  static bool RegionContains(const FieldIndex& index, size_t region,
                             double v);
  /// Materializes `region`'s bitset into the field memo (checkpoint copy
  /// plus delta replay).
  void SeekRegion(FieldIndex* index, size_t region) const;

  std::unordered_map<std::string, int> key_to_id_;
  std::vector<Predicate> predicates_;
  size_t registered_states_ = 0;

  bool built_ = false;
  int num_decomposable_ = 0;
  std::vector<FieldIndex> fields_;
  std::vector<const ExprProgram*> fallback_programs_;

  // Last Evaluate() results. Fallback values are memoized lazily:
  // -1 unknown, 0 false, 1 true. current_event_ is a capacity-reusing
  // copy for those lazy interpretations.
  simd::WordVector result_words_;
  mutable std::vector<int8_t> fallback_values_;
  stream::Event current_event_;

  // Evaluate() scratch: per-event source lists for the fused fold kernel
  // (memo bitsets to AND, constrained bitsets of NaN fields to clear).
  // Members so the capacity survives across events.
  std::vector<const uint64_t*> fold_and_srcs_;
  std::vector<const uint64_t*> fold_not_srcs_;

  // Last EvaluateBatch() results: one words()-sized row per in-batch
  // event (32-byte aligned for the SIMD kernels), plus a
  // (event x fallback slot) lazy truth grid over the borrowed window.
  simd::WordVector batch_words_;
  mutable std::vector<int8_t> batch_fallback_values_;
  const stream::Event* batch_events_ = nullptr;

  mutable PredicateBankStats stats_;
};

}  // namespace epl::cep

#endif  // EPL_CEP_PREDICATE_BANK_H_
