#include "cep/composite.h"

#include <utility>

#include "common/logging.h"

namespace epl::cep {

const stream::Schema& DetectionSchema() {
  static const stream::Schema* schema = [] {
    auto* s = new stream::Schema(std::vector<std::string>{
        kDetectionGestureField, kDetectionSessionField,
        kDetectionDurationField});
    return s;
  }();
  return *schema;
}

double GestureTag(std::string_view name) {
  uint32_t hash = 2166136261u;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 16777619u;
  }
  // A 32-bit integer is exactly representable as a double, so the tag
  // survives event-value round-trips and range-predicate comparisons.
  return static_cast<double>(hash);
}

stream::Event MakeDerivedEvent(double tag, double session_tag,
                               const Detection& detection) {
  stream::Event event;
  event.timestamp = detection.time;
  event.values = {tag, session_tag,
                  static_cast<double>(detection.duration())};
  return event;
}

CompositeRunner::CompositeRunner(MatcherOptions options)
    : options_(options) {}

CompositeRunner::Level& CompositeRunner::LevelFor(int level) {
  EPL_CHECK(level >= 1) << "composite level must be >= 1, got " << level;
  const size_t index = static_cast<size_t>(level - 1);
  while (levels_.size() <= index) {
    levels_.push_back(std::make_unique<Level>(options_));
  }
  return *levels_[index];
}

bool CompositeRunner::Find(int id, size_t* level_index,
                           size_t* query_index) const {
  for (size_t k = 0; k < levels_.size(); ++k) {
    const Level& level = *levels_[k];
    for (size_t q = 0; q < level.queries.size(); ++q) {
      if (level.queries[q].id == id) {
        *level_index = k;
        *query_index = q;
        return true;
      }
    }
  }
  return false;
}

bool CompositeRunner::Has(int id) const {
  size_t k, q;
  return Find(id, &k, &q);
}

void CompositeRunner::Add(CompositeQuery query) {
  EPL_CHECK(query.pattern != nullptr);
  EPL_CHECK(!Has(query.id)) << "duplicate composite query id " << query.id;
  Level& level = LevelFor(query.level);
  level.matcher.AddPattern(query.pattern.get());
  level.queries.push_back(std::move(query));
  ++num_queries_;
}

Status CompositeRunner::Remove(int id) {
  size_t k, q;
  if (!Find(id, &k, &q)) {
    return NotFoundError("unknown composite query id " + std::to_string(id));
  }
  Level& level = *levels_[k];
  level.matcher.RemovePattern(static_cast<int>(q));
  level.queries.erase(level.queries.begin() + static_cast<long>(q));
  --num_queries_;
  return OkStatus();
}

Result<NfaRunState> CompositeRunner::ExportRunState(int id) {
  size_t k, q;
  if (!Find(id, &k, &q)) {
    return NotFoundError("unknown composite query id " + std::to_string(id));
  }
  return levels_[k]->matcher.matcher(static_cast<int>(q)).ExportRunState();
}

Status CompositeRunner::Restore(CompositeQuery query,
                                const NfaRunState& runs) {
  EPL_CHECK(query.pattern != nullptr);
  EPL_CHECK(!Has(query.id)) << "duplicate composite query id " << query.id;
  auto matcher = std::make_unique<NfaMatcher>(query.pattern.get(), options_);
  EPL_RETURN_IF_ERROR(matcher->ImportRunState(runs));
  Level& level = LevelFor(query.level);
  level.matcher.AdoptPattern(std::move(matcher));
  level.queries.push_back(std::move(query));
  ++num_queries_;
  return OkStatus();
}

Result<MatcherStats> CompositeRunner::QueryStats(int id) const {
  size_t k, q;
  if (!Find(id, &k, &q)) {
    return NotFoundError("unknown composite query id " + std::to_string(id));
  }
  return levels_[k]->matcher.matcher(static_cast<int>(q)).stats();
}

void CompositeRunner::Reset() {
  for (auto& level : levels_) {
    level->matcher.Reset();
  }
}

void CompositeRunner::BeginEpoch() { epoch_.clear(); }

void CompositeRunner::CollectBase(double tag, double session_tag,
                                  const Detection& detection) {
  if (!active()) {
    return;
  }
  epoch_.push_back(MakeDerivedEvent(tag, session_tag, detection));
}

void CompositeRunner::RunEpoch() {
  // An epoch with no base detections is a pure no-op for every composite
  // pattern (no eager run expiry in the matcher runtime), so skipping it
  // is exact -- this is what keeps flat-path overhead near zero.
  if (epoch_.empty() || num_queries_ == 0) {
    return;
  }
  for (size_t k = 0; k < levels_.size(); ++k) {
    Level& level = *levels_[k];
    // Derived events appended by THIS level become visible to the next
    // level only; the cutoff freezes this level's input set.
    const size_t visible = epoch_.size();
    spill_.clear();
    if (!level.queries.empty()) {
      const bool feeds_higher = k + 1 < levels_.size();
      for (size_t i = 0; i < visible; ++i) {
        scratch_.clear();
        level.matcher.Process(epoch_[i], &scratch_);
        // Matches arrive grouped by pattern index in registration order;
        // combined with the outer loop this realizes the documented
        // (event-seq, level, query-id) total order.
        for (const MultiPatternMatcher::MultiMatch& mm : scratch_) {
          const CompositeQuery& query =
              level.queries[static_cast<size_t>(mm.pattern_index)];
          Detection detection;
          detection.name = query.output_name;
          detection.time = mm.match.end_time();
          detection.pose_times = mm.match.state_times;
          detection.measures.reserve(query.measures.size());
          for (const ExprProgram& program : query.measures) {
            detection.measures.push_back(program.Eval(epoch_[i]));
          }
          if (query.callback) {
            query.callback(detection);
          }
          if (feeds_higher) {
            spill_.push_back(
                MakeDerivedEvent(query.tag, query.session_tag, detection));
          }
        }
      }
    }
    for (stream::Event& event : spill_) {
      epoch_.push_back(std::move(event));
    }
  }
}

}  // namespace epl::cep
