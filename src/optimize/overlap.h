// Overlap validation (paper Sec. 3.3.3): "Intersection tests can be
// performed on windows to determine if the overlap problem occurs" — two
// gestures overlap when one gesture's pose sequence can be traversed while
// staying inside the other's windows, so the same movement fires both.

#ifndef EPL_OPTIMIZE_OVERLAP_H_
#define EPL_OPTIMIZE_OVERLAP_H_

#include <string>
#include <vector>

#include "core/gesture_definition.h"

namespace epl::optimize {

struct OverlapReport {
  std::string gesture_a;
  std::string gesture_b;
  /// True when every pose of A intersects a monotone subsequence of B's
  /// poses (A's path can fire while performing B).
  bool sequence_overlap = false;
  /// Pairs (pose of A, pose of B) whose windows intersect.
  std::vector<std::pair<int, int>> intersecting_poses;
  /// Mean pairwise containment over the matched subsequence in [0, 1].
  double severity = 0.0;

  std::string ToString() const;
};

/// Directional check: can gesture A's sequence be matched inside B's
/// windows?
OverlapReport CheckOverlap(const core::GestureDefinition& a,
                           const core::GestureDefinition& b);

/// Pairwise validation of a gesture vocabulary; returns one report per
/// ordered pair (a != b) that has sequence_overlap (the paper's warning
/// situation).
std::vector<OverlapReport> ValidateVocabulary(
    const std::vector<core::GestureDefinition>& gestures);

}  // namespace epl::optimize

#endif  // EPL_OPTIMIZE_OVERLAP_H_
