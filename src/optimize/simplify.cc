#include "optimize/simplify.h"

#include <algorithm>

namespace epl::optimize {

using core::GestureDefinition;
using core::JointWindow;
using core::PoseWindow;

namespace {

/// Union of two joint windows (MBR of both boxes), axis flags ANDed.
JointWindow UnionWindows(const JointWindow& a, const JointWindow& b) {
  JointWindow result;
  for (int axis = 0; axis < 3; ++axis) {
    double lo = std::min(a.center[axis] - a.half_width[axis],
                         b.center[axis] - b.half_width[axis]);
    double hi = std::max(a.center[axis] + a.half_width[axis],
                         b.center[axis] + b.half_width[axis]);
    result.center[axis] = (lo + hi) / 2.0;
    result.half_width[axis] = (hi - lo) / 2.0;
    size_t index = static_cast<size_t>(axis);
    result.active[index] = a.active[index] && b.active[index];
  }
  return result;
}

bool MutualOverlap(const PoseWindow& a, const PoseWindow& b,
                   double threshold) {
  return a.ContainmentIn(b) >= threshold && b.ContainmentIn(a) >= threshold;
}

}  // namespace

SimplifyStats MergeAdjacentPoses(GestureDefinition* definition,
                                 const SimplifyConfig& config) {
  SimplifyStats stats;
  stats.poses_before = static_cast<int>(definition->poses.size());
  bool merged = true;
  while (merged &&
         static_cast<int>(definition->poses.size()) > config.min_poses) {
    merged = false;
    for (size_t i = 0; i + 1 < definition->poses.size(); ++i) {
      if (!MutualOverlap(definition->poses[i], definition->poses[i + 1],
                         config.merge_containment)) {
        continue;
      }
      PoseWindow combined;
      combined.max_gap = definition->poses[i].max_gap;
      // The merged pose absorbs the successor's budget: timing feasibility
      // is preserved.
      if (i + 2 < definition->poses.size()) {
        definition->poses[i + 2].max_gap +=
            definition->poses[i + 1].max_gap;
      }
      for (const auto& [joint, window] : definition->poses[i].joints) {
        auto it = definition->poses[i + 1].joints.find(joint);
        combined.joints[joint] =
            it != definition->poses[i + 1].joints.end()
                ? UnionWindows(window, it->second)
                : window;
      }
      definition->poses[i] = std::move(combined);
      definition->poses.erase(definition->poses.begin() +
                              static_cast<long>(i) + 1);
      merged = true;
      break;
    }
  }
  stats.poses_after = static_cast<int>(definition->poses.size());
  return stats;
}

SimplifyStats EliminateIrrelevantAxes(GestureDefinition* definition,
                                      const AxisEliminationConfig& config) {
  SimplifyStats stats;
  stats.poses_before = static_cast<int>(definition->poses.size());
  stats.poses_after = stats.poses_before;
  for (kinect::JointId joint : definition->joints) {
    // Span of the pose centers along each axis.
    double span[3] = {0.0, 0.0, 0.0};
    for (int axis = 0; axis < 3; ++axis) {
      double lo = 1e300;
      double hi = -1e300;
      for (const PoseWindow& pose : definition->poses) {
        const JointWindow& window = pose.joints.at(joint);
        lo = std::min(lo, window.center[axis]);
        hi = std::max(hi, window.center[axis]);
      }
      span[axis] = hi - lo;
    }
    // Candidate axes to deactivate, keeping the largest-span ones active.
    int active_axes = 3;
    while (active_axes > config.min_axes_per_joint) {
      // Smallest-span still-active axis below the threshold.
      int candidate = -1;
      for (int axis = 0; axis < 3; ++axis) {
        if (!definition->poses.front()
                 .joints.at(joint)
                 .active[static_cast<size_t>(axis)]) {
          continue;
        }
        if (span[axis] >= config.min_center_span_mm) {
          continue;
        }
        if (candidate < 0 || span[axis] < span[candidate]) {
          candidate = axis;
        }
      }
      if (candidate < 0) {
        break;
      }
      for (PoseWindow& pose : definition->poses) {
        pose.joints.at(joint).active[static_cast<size_t>(candidate)] =
            false;
      }
      ++stats.axes_deactivated;
      --active_axes;
    }
  }
  return stats;
}

}  // namespace epl::optimize
