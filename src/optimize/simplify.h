// Pattern optimization (paper Sec. 3.3.3): "patterns can be optimized,
// e.g., by merging windows to decrease the detection effort or by
// eliminating certain coordinates that are not relevant for the recorded
// gesture". Experiment E7 measures the effect of both on NFA size,
// throughput, and accuracy.

#ifndef EPL_OPTIMIZE_SIMPLIFY_H_
#define EPL_OPTIMIZE_SIMPLIFY_H_

#include "core/gesture_definition.h"

namespace epl::optimize {

struct SimplifyConfig {
  /// Adjacent poses are merged when their windows mutually overlap by at
  /// least this containment fraction. Containment is the product over the
  /// active axes, so 0.2 corresponds to roughly 60% overlap per axis.
  double merge_containment = 0.2;
  /// Never reduce a gesture below this many poses.
  int min_poses = 2;
};

struct AxisEliminationConfig {
  /// An axis is irrelevant when the pose centers move less than this along
  /// it over the whole gesture.
  double min_center_span_mm = 120.0;
  /// Always keep at least this many active axes per joint (the axis with
  /// the largest span survives).
  int min_axes_per_joint = 1;
};

struct SimplifyStats {
  int poses_before = 0;
  int poses_after = 0;
  int axes_deactivated = 0;
};

/// Merges adjacent poses whose windows mutually overlap. Gap budgets of
/// merged poses are added so timing stays feasible.
SimplifyStats MergeAdjacentPoses(core::GestureDefinition* definition,
                                 const SimplifyConfig& config =
                                     SimplifyConfig());

/// Deactivates axes along which the gesture barely moves (their window
/// predicates are dropped from generated queries).
SimplifyStats EliminateIrrelevantAxes(core::GestureDefinition* definition,
                                      const AxisEliminationConfig& config =
                                          AxisEliminationConfig());

}  // namespace epl::optimize

#endif  // EPL_OPTIMIZE_SIMPLIFY_H_
