#include "optimize/overlap.h"

#include "common/string_util.h"

namespace epl::optimize {

using core::GestureDefinition;

std::string OverlapReport::ToString() const {
  return StrFormat(
      "%s vs %s: %s (%zu intersecting pose pairs, severity %.2f)",
      gesture_a.c_str(), gesture_b.c_str(),
      sequence_overlap ? "SEQUENCE OVERLAP" : "no sequence overlap",
      intersecting_poses.size(), severity);
}

OverlapReport CheckOverlap(const GestureDefinition& a,
                           const GestureDefinition& b) {
  OverlapReport report;
  report.gesture_a = a.name;
  report.gesture_b = b.name;

  const size_t n = a.poses.size();
  const size_t m = b.poses.size();
  std::vector<std::vector<bool>> intersects(n, std::vector<bool>(m, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (a.poses[i].Intersects(b.poses[j])) {
        intersects[i][j] = true;
        report.intersecting_poses.emplace_back(static_cast<int>(i),
                                               static_cast<int>(j));
      }
    }
  }

  // Greedy monotone matching: each pose of A must intersect a B pose at a
  // non-decreasing index. Non-decreasing (rather than strictly increasing)
  // because a single wide B window can cover several A poses.
  size_t j = 0;
  bool feasible = true;
  double severity_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    while (j < m && !intersects[i][j]) {
      ++j;
    }
    if (j >= m) {
      feasible = false;
      break;
    }
    severity_sum += a.poses[i].ContainmentIn(b.poses[j]);
  }
  report.sequence_overlap = feasible;
  report.severity = feasible && n > 0 ? severity_sum / static_cast<double>(n)
                                      : 0.0;
  return report;
}

std::vector<OverlapReport> ValidateVocabulary(
    const std::vector<GestureDefinition>& gestures) {
  std::vector<OverlapReport> reports;
  for (size_t i = 0; i < gestures.size(); ++i) {
    for (size_t j = 0; j < gestures.size(); ++j) {
      if (i == j) {
        continue;
      }
      OverlapReport report = CheckOverlap(gestures[i], gestures[j]);
      if (report.sequence_overlap) {
        reports.push_back(std::move(report));
      }
    }
  }
  return reports;
}

}  // namespace epl::optimize
