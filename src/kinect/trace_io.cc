#include "kinect/trace_io.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace epl::kinect {

Status WriteTrace(const std::string& path,
                  const std::vector<SkeletonFrame>& frames) {
  CsvTable table;
  table.header.push_back("timestamp_us");
  const stream::Schema& schema = KinectSchema();
  for (const std::string& field : schema.field_names()) {
    table.header.push_back(field);
  }
  table.rows.reserve(frames.size());
  for (const SkeletonFrame& frame : frames) {
    stream::Event event = FrameToEvent(frame);
    std::vector<double> row;
    row.reserve(1 + event.values.size());
    row.push_back(static_cast<double>(event.timestamp));
    row.insert(row.end(), event.values.begin(), event.values.end());
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

Result<std::vector<SkeletonFrame>> ReadTrace(const std::string& path) {
  EPL_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  const stream::Schema& schema = KinectSchema();
  if (table.header.size() !=
      static_cast<size_t>(schema.num_fields()) + 1) {
    return DataLossError("trace has wrong column count: " + path);
  }
  std::vector<SkeletonFrame> frames;
  frames.reserve(table.rows.size());
  for (const std::vector<double>& row : table.rows) {
    stream::Event event;
    event.timestamp = static_cast<TimePoint>(row[0]);
    event.values.assign(row.begin() + 1, row.end());
    EPL_ASSIGN_OR_RETURN(SkeletonFrame frame, FrameFromEvent(event));
    frames.push_back(frame);
  }
  return frames;
}

const stream::Schema& PaperTraceSchema() {
  static const stream::Schema* schema = [] {
    auto* built = new stream::Schema(std::vector<std::string>{
        "torso_x", "torso_y", "torso_z", "rHand_x", "rHand_y", "rHand_z"});
    EPL_CHECK(built->Validate().ok());
    return built;
  }();
  return *schema;
}

Result<std::vector<stream::Event>> ParsePaperTrace(const std::string& text) {
  EPL_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text));
  if (table.header.size() != 6) {
    return DataLossError("paper trace must have 6 columns");
  }
  std::vector<stream::Event> events;
  events.reserve(table.rows.size());
  TimePoint timestamp = 0;
  for (const std::vector<double>& row : table.rows) {
    events.emplace_back(timestamp, row);
    timestamp += kFramePeriod;
  }
  return events;
}

Result<std::vector<stream::Event>> ReadPaperTrace(const std::string& path) {
  EPL_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  Result<std::vector<stream::Event>> events = ParsePaperTrace(text);
  if (!events.ok()) {
    return events.status().WithContext(path);
  }
  return events;
}

}  // namespace epl::kinect
