#include "kinect/sensor.h"

namespace epl::kinect {

SessionBuilder::SessionBuilder(const UserProfile& profile, uint64_t seed,
                               MotionParams params)
    : synth_(profile, seed, params) {}

void SessionBuilder::Append(std::vector<SkeletonFrame> part) {
  frames_.insert(frames_.end(), part.begin(), part.end());
}

SessionBuilder& SessionBuilder::Still(double seconds) {
  Append(synth_.Still(seconds));
  return *this;
}

SessionBuilder& SessionBuilder::Idle(double seconds) {
  Append(synth_.Idle(seconds));
  return *this;
}

SessionBuilder& SessionBuilder::Perform(const GestureShape& shape,
                                        double dwell_s) {
  Append(synth_.MoveTo(shape.right_path(0.0), shape.left_path(0.0)));
  if (dwell_s > 0.0) {
    Append(synth_.Still(dwell_s));
  }
  Append(synth_.PerformGesture(shape));
  if (dwell_s > 0.0) {
    Append(synth_.Still(dwell_s));
  }
  return *this;
}

SessionBuilder& SessionBuilder::Distract(double seconds) {
  Append(synth_.Distract(seconds));
  return *this;
}

Status RegisterKinectStream(stream::StreamEngine* engine) {
  return RegisterKinectStream(engine, "kinect");
}

Status RegisterKinectStream(stream::StreamEngine* engine,
                            const std::string& name) {
  return engine->RegisterStream(name, KinectSchema());
}

Status PlayFrames(stream::StreamEngine* engine,
                  const std::vector<SkeletonFrame>& frames,
                  const std::string& stream_name) {
  for (const SkeletonFrame& frame : frames) {
    EPL_RETURN_IF_ERROR(engine->Push(stream_name, FrameToEvent(frame)));
  }
  return OkStatus();
}

}  // namespace epl::kinect
