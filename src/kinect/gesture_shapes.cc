#include "kinect/gesture_shapes.h"

#include <cmath>

namespace epl::kinect {

std::vector<JointId> GestureShape::InvolvedJoints() const {
  std::vector<JointId> joints;
  if (uses_right_hand) {
    joints.push_back(JointId::kRightHand);
  }
  if (uses_left_hand) {
    joints.push_back(JointId::kLeftHand);
  }
  return joints;
}

Vec3 NeutralRightHandOffset() { return Vec3(185, -195, 0); }
Vec3 NeutralLeftHandOffset() { return Vec3(-185, -195, 0); }

namespace {

GestureShape RightHandShape(std::string name,
                            std::function<Vec3(double)> path,
                            double duration_s) {
  GestureShape shape;
  shape.name = std::move(name);
  shape.uses_right_hand = true;
  shape.uses_left_hand = false;
  shape.right_path = std::move(path);
  shape.left_path = [](double) { return NeutralLeftHandOffset(); };
  shape.nominal_duration_s = duration_s;
  return shape;
}

}  // namespace

GestureShape GestureShapes::SwipeRight() {
  // Lateral sweep with the arm reaching forward mid-path (Fig. 2 left:
  // x 0 -> 640, constant height above the torso, z dipping forward).
  return RightHandShape(
      "swipe_right",
      [](double t) {
        return Vec3(640.0 * t - 0.0, 150.0,
                    -120.0 - 200.0 * std::sin(M_PI * t));
      },
      1.0);
}

GestureShape GestureShapes::SwipeLeft() {
  return RightHandShape(
      "swipe_left",
      [](double t) {
        return Vec3(640.0 * (1.0 - t), 150.0,
                    -120.0 - 200.0 * std::sin(M_PI * t));
      },
      1.0);
}

GestureShape GestureShapes::PushForward() {
  return RightHandShape(
      "push_forward",
      [](double t) {
        return Vec3(160.0, 80.0 + 40.0 * t, -140.0 - 380.0 * t);
      },
      1.0);
}

GestureShape GestureShapes::RaiseHand() {
  return RightHandShape(
      "raise_hand",
      [](double t) {
        return Vec3(210.0, -250.0 + 750.0 * t, -130.0 - 60.0 * t);
      },
      1.0);
}

GestureShape GestureShapes::Circle() {
  // Large clockwise circle in the frontal plane, starting at the top
  // (Fig. 2 right).
  return RightHandShape(
      "circle",
      [](double t) {
        double angle = 2.0 * M_PI * t;
        return Vec3(330.0 * std::sin(angle),
                    250.0 + 330.0 * std::cos(angle), -140.0);
      },
      1.8);
}

GestureShape GestureShapes::Wave() {
  // Oscillation above the shoulder: two full periods (paper Sec. 3.1:
  // wave starts the recording of a new sample).
  return RightHandShape(
      "wave",
      [](double t) {
        return Vec3(260.0 + 140.0 * std::sin(4.0 * M_PI * t),
                    380.0 + 30.0 * std::sin(2.0 * M_PI * t), -160.0);
      },
      1.6);
}

GestureShape GestureShapes::HandsUp() {
  GestureShape shape;
  shape.name = "hands_up";
  shape.uses_right_hand = true;
  shape.uses_left_hand = true;
  shape.right_path = [](double t) {
    return Vec3(230.0, -220.0 + 700.0 * t, -140.0);
  };
  shape.left_path = [](double t) {
    return Vec3(-230.0, -220.0 + 700.0 * t, -140.0);
  };
  shape.nominal_duration_s = 1.0;
  return shape;
}

GestureShape GestureShapes::TwoHandSwipe() {
  GestureShape shape;
  shape.name = "two_hand_swipe";
  shape.uses_right_hand = true;
  shape.uses_left_hand = true;
  shape.right_path = [](double t) {
    return Vec3(120.0 + 430.0 * t, 140.0, -150.0 - 120.0 * std::sin(M_PI * t));
  };
  shape.left_path = [](double t) {
    return Vec3(-120.0 - 430.0 * t, 140.0,
                -150.0 - 120.0 * std::sin(M_PI * t));
  };
  shape.nominal_duration_s = 1.0;
  return shape;
}

Result<GestureShape> GestureShapes::ByName(const std::string& name) {
  if (name == "swipe_right") {
    return SwipeRight();
  }
  if (name == "swipe_left") {
    return SwipeLeft();
  }
  if (name == "push_forward") {
    return PushForward();
  }
  if (name == "raise_hand") {
    return RaiseHand();
  }
  if (name == "circle") {
    return Circle();
  }
  if (name == "wave") {
    return Wave();
  }
  if (name == "hands_up") {
    return HandsUp();
  }
  if (name == "two_hand_swipe") {
    return TwoHandSwipe();
  }
  return NotFoundError("unknown gesture shape: " + name);
}

std::vector<std::string> GestureShapes::Names() {
  return {"swipe_right", "swipe_left",  "push_forward", "raise_hand",
          "circle",      "wave",        "hands_up",     "two_hand_swipe"};
}

}  // namespace epl::kinect
