// Parametric human body model used by the gesture synthesizer.
//
// The model produces anatomically plausible skeleton frames for users of
// different heights, arm lengths, positions and orientations — exactly the
// user-to-user variation the paper's data transformation stage (Sec. 3.2)
// must normalize away. Arm bone lengths are rigid: elbows are placed by
// two-bone inverse kinematics, so the forearm length (the paper's scale
// factor) stays constant throughout a gesture.

#ifndef EPL_KINECT_BODY_MODEL_H_
#define EPL_KINECT_BODY_MODEL_H_

#include "common/vec3.h"
#include "kinect/skeleton.h"

namespace epl::kinect {

/// Who is standing in front of the camera and where.
struct UserProfile {
  /// Body height in millimeters (reference adult: 1750).
  double height_mm = 1750.0;
  /// Extra arm length factor on top of height scaling (children vs adults
  /// have slightly different proportions).
  double arm_scale = 1.0;
  /// Torso position in camera space (paper trace: roughly (45, 165, 1960)).
  Vec3 torso_position = Vec3(0.0, 150.0, 2000.0);
  /// Rotation about the vertical axis; 0 = facing the camera.
  double yaw_rad = 0.0;
};

/// Reference proportions (height 1750 mm).
inline constexpr double kReferenceHeightMm = 1750.0;
inline constexpr double kReferenceUpperArmMm = 300.0;
inline constexpr double kReferenceForearmMm = 280.0;

class BodyModel {
 public:
  explicit BodyModel(const UserProfile& profile);

  const UserProfile& profile() const { return profile_; }

  /// Overall body scale factor (height / reference height).
  double size_factor() const { return size_factor_; }
  /// Rigid forearm length of this user (the paper's scale factor).
  double forearm_length() const { return forearm_length_; }
  double upper_arm_length() const { return upper_arm_length_; }

  /// Joint offset from the torso in *user space* for the neutral standing
  /// pose (arms hanging). User space: X lateral, Y up, Z behind the user.
  Vec3 NeutralOffset(JointId joint) const;

  /// Full frame for the neutral pose, in camera space.
  SkeletonFrame NeutralFrame(TimePoint timestamp) const;

  /// Builds a camera-space frame with the hands at the given *user-space*
  /// offsets from the torso (reference-sized coordinates: the same shape
  /// values work for every user; they are scaled by size internally).
  /// Elbows follow by IK; hands beyond reach are clamped to full extension.
  /// Other joints take their neutral pose.
  SkeletonFrame PoseFrame(TimePoint timestamp, const Vec3& right_hand_offset,
                          const Vec3& left_hand_offset) const;

  /// Converts a user-space offset from the torso to camera space.
  Vec3 UserToCamera(const Vec3& user_offset) const;

 private:
  /// Two-bone IK: elbow position for a hand at `hand` (user space, this
  /// user's scale) relative to shoulder at `shoulder`.
  Vec3 SolveElbow(const Vec3& shoulder, Vec3* hand, bool right_side) const;

  UserProfile profile_;
  double size_factor_;
  double upper_arm_length_;
  double forearm_length_;
};

}  // namespace epl::kinect

#endif  // EPL_KINECT_BODY_MODEL_H_
