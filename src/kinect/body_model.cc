#include "kinect/body_model.h"

#include <cmath>

#include "common/logging.h"
#include "common/mat3.h"

namespace epl::kinect {
namespace {

// Neutral-pose joint offsets from the torso for the reference body
// (1750 mm), user space: X lateral (toward the camera's right when facing
// it), Y up, Z behind the user.
Vec3 ReferenceNeutralOffset(JointId joint) {
  switch (joint) {
    case JointId::kHead:
      return Vec3(0, 577, 0);
    case JointId::kNeck:
      return Vec3(0, 437, 0);
    case JointId::kTorso:
      return Vec3(0, 0, 0);
    case JointId::kLeftShoulder:
      return Vec3(-165, 385, 0);
    case JointId::kLeftElbow:
      return Vec3(-175, 85, 0);
    case JointId::kLeftHand:
      return Vec3(-185, -195, 0);
    case JointId::kRightShoulder:
      return Vec3(165, 385, 0);
    case JointId::kRightElbow:
      return Vec3(175, 85, 0);
    case JointId::kRightHand:
      return Vec3(185, -195, 0);
    case JointId::kLeftHip:
      return Vec3(-90, -140, 0);
    case JointId::kLeftKnee:
      return Vec3(-95, -560, 0);
    case JointId::kLeftFoot:
      return Vec3(-100, -1000, 30);
    case JointId::kRightHip:
      return Vec3(90, -140, 0);
    case JointId::kRightKnee:
      return Vec3(95, -560, 0);
    case JointId::kRightFoot:
      return Vec3(100, -1000, 30);
  }
  return Vec3();
}

}  // namespace

BodyModel::BodyModel(const UserProfile& profile) : profile_(profile) {
  EPL_CHECK(profile.height_mm > 500.0) << "implausible height";
  size_factor_ = profile.height_mm / kReferenceHeightMm;
  upper_arm_length_ =
      kReferenceUpperArmMm * size_factor_ * profile.arm_scale;
  forearm_length_ = kReferenceForearmMm * size_factor_ * profile.arm_scale;
}

Vec3 BodyModel::NeutralOffset(JointId joint) const {
  return ReferenceNeutralOffset(joint) * size_factor_;
}

Vec3 BodyModel::UserToCamera(const Vec3& user_offset) const {
  // User space equals camera space for a user facing the camera (yaw 0);
  // yaw rotates the body about the vertical axis.
  Mat3 rotation = Mat3::RotationY(profile_.yaw_rad);
  return profile_.torso_position + rotation.Apply(user_offset);
}

SkeletonFrame BodyModel::NeutralFrame(TimePoint timestamp) const {
  SkeletonFrame frame;
  frame.timestamp = timestamp;
  for (JointId joint : AllJoints()) {
    frame.joint(joint) = UserToCamera(NeutralOffset(joint));
  }
  return frame;
}

Vec3 BodyModel::SolveElbow(const Vec3& shoulder, Vec3* hand,
                           bool right_side) const {
  const double l1 = upper_arm_length_;
  const double l2 = forearm_length_;
  Vec3 to_hand = *hand - shoulder;
  double d = to_hand.Norm();
  const double max_reach = l1 + l2 - 1e-6;
  const double min_reach = std::abs(l1 - l2) + 1e-6;
  if (d < 1e-9) {
    // Degenerate: hand on the shoulder. Drop the arm straight down.
    *hand = shoulder + Vec3(0, -min_reach, 0);
    to_hand = *hand - shoulder;
    d = to_hand.Norm();
  }
  if (d > max_reach) {
    *hand = shoulder + to_hand * (max_reach / d);
    to_hand = *hand - shoulder;
    d = max_reach;
  } else if (d < min_reach) {
    *hand = shoulder + to_hand * (min_reach / d);
    to_hand = *hand - shoulder;
    d = min_reach;
  }
  Vec3 along = to_hand / d;
  // Law of cosines: distance from the shoulder to the elbow's projection
  // onto the shoulder-hand axis.
  double a = (l1 * l1 - l2 * l2 + d * d) / (2.0 * d);
  double r_sq = l1 * l1 - a * a;
  double r = r_sq > 0.0 ? std::sqrt(r_sq) : 0.0;
  // Bend direction: biased down and slightly outward, orthogonalized
  // against the shoulder-hand axis.
  Vec3 bias(right_side ? 0.35 : -0.35, -1.0, 0.1);
  Vec3 bend = bias - along * bias.Dot(along);
  double bend_norm = bend.Norm();
  if (bend_norm < 1e-9) {
    // Arm points straight down: bend backward.
    bend = Vec3(0, 0, 1) - along * along.z;
    bend_norm = bend.Norm();
    if (bend_norm < 1e-9) {
      bend = Vec3(0, 0, 1);
      bend_norm = 1.0;
    }
  }
  bend = bend / bend_norm;
  return shoulder + along * a + bend * r;
}

SkeletonFrame BodyModel::PoseFrame(TimePoint timestamp,
                                   const Vec3& right_hand_offset,
                                   const Vec3& left_hand_offset) const {
  SkeletonFrame frame;
  frame.timestamp = timestamp;

  // Gesture shapes are authored for the reference body; scale them to this
  // user so that movement amplitude tracks body size.
  double shape_scale = size_factor_ * profile_.arm_scale;
  Vec3 right_hand = right_hand_offset * shape_scale;
  Vec3 left_hand = left_hand_offset * shape_scale;

  Vec3 right_shoulder = NeutralOffset(JointId::kRightShoulder);
  Vec3 left_shoulder = NeutralOffset(JointId::kLeftShoulder);
  Vec3 right_elbow = SolveElbow(right_shoulder, &right_hand, true);
  Vec3 left_elbow = SolveElbow(left_shoulder, &left_hand, false);

  for (JointId joint : AllJoints()) {
    Vec3 offset;
    switch (joint) {
      case JointId::kRightHand:
        offset = right_hand;
        break;
      case JointId::kRightElbow:
        offset = right_elbow;
        break;
      case JointId::kLeftHand:
        offset = left_hand;
        break;
      case JointId::kLeftElbow:
        offset = left_elbow;
        break;
      default:
        offset = NeutralOffset(joint);
        break;
    }
    frame.joint(joint) = UserToCamera(offset);
  }
  return frame;
}

}  // namespace epl::kinect
