// Trace I/O: persists skeleton streams as CSV, and reads the paper's
// Fig. 1 six-column trace format.

#ifndef EPL_KINECT_TRACE_IO_H_
#define EPL_KINECT_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "kinect/skeleton.h"

namespace epl::kinect {

/// Full-skeleton trace: "timestamp_us;player;head_x;...;rFoot_z".
Status WriteTrace(const std::string& path,
                  const std::vector<SkeletonFrame>& frames);
Result<std::vector<SkeletonFrame>> ReadTrace(const std::string& path);

/// Schema of the paper's Fig. 1 sample trace (torso + right hand only):
/// torso_x, torso_y, torso_z, rHand_x, rHand_y, rHand_z.
const stream::Schema& PaperTraceSchema();

/// Parses the paper's trace format (header "torsoX;torsoY;...;rHandZ",
/// one row per 30 Hz frame) into events of PaperTraceSchema(), stamped at
/// the sensor frame period.
Result<std::vector<stream::Event>> ReadPaperTrace(const std::string& path);
Result<std::vector<stream::Event>> ParsePaperTrace(const std::string& text);

}  // namespace epl::kinect

#endif  // EPL_KINECT_TRACE_IO_H_
