// Parametric gesture shape catalog.
//
// A shape defines, for t in [0,1], the user-space offset of each hand from
// the torso for the *reference* body (1750 mm, forearm 280 mm); the body
// model rescales for other users. The catalog covers the gestures the
// paper uses (swipe, circle, wave, two-hand swipe as the control gesture)
// plus additional vocabulary for the selectivity experiments.

#ifndef EPL_KINECT_GESTURE_SHAPES_H_
#define EPL_KINECT_GESTURE_SHAPES_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/vec3.h"
#include "kinect/skeleton.h"

namespace epl::kinect {

/// Hand trajectory of one gesture. Offsets are from the torso, user space
/// (X lateral, Y up, Z behind; "in front of the user" is negative Z).
struct GestureShape {
  std::string name;
  bool uses_right_hand = true;
  bool uses_left_hand = false;
  /// Hand offset at path position t in [0,1].
  std::function<Vec3(double)> right_path;
  std::function<Vec3(double)> left_path;
  /// Nominal duration of one performance, seconds.
  double nominal_duration_s = 1.2;

  /// Joints that move: the involved hands (what the learner should mine).
  std::vector<JointId> InvolvedJoints() const;
};

/// Reference neutral hand offsets (arms hanging).
Vec3 NeutralRightHandOffset();
Vec3 NeutralLeftHandOffset();

/// Catalog of built-in shapes.
class GestureShapes {
 public:
  /// Right hand sweeps laterally (the paper's running example, Fig. 1/2).
  static GestureShape SwipeRight();
  /// Mirror of SwipeRight.
  static GestureShape SwipeLeft();
  /// Right hand pushes straight toward the camera.
  static GestureShape PushForward();
  /// Right hand rises from hip to over the shoulder.
  static GestureShape RaiseHand();
  /// Right hand draws a large circle (paper Fig. 2 right).
  static GestureShape Circle();
  /// Right hand waves above the shoulder (the paper's control gesture for
  /// starting a recording).
  static GestureShape Wave();
  /// Both hands rise simultaneously.
  static GestureShape HandsUp();
  /// Both hands sweep outward (the paper's control gesture for finishing
  /// the learning phase).
  static GestureShape TwoHandSwipe();

  /// Lookup by name ("swipe_right", ...).
  static Result<GestureShape> ByName(const std::string& name);
  /// All catalog names.
  static std::vector<std::string> Names();
};

}  // namespace epl::kinect

#endif  // EPL_KINECT_GESTURE_SHAPES_H_
