// Scripted sensor sessions: composes synthesizer segments into a full
// simulated Kinect session and plays it into a StreamEngine.
//
// Used by the interactive-workflow simulation (paper Sec. 3.1): a "user"
// waves to start recording, holds still, performs the gesture, holds
// still, and so on.

#ifndef EPL_KINECT_SENSOR_H_
#define EPL_KINECT_SENSOR_H_

#include <string>
#include <vector>

#include "kinect/synthesizer.h"
#include "stream/engine.h"

namespace epl::kinect {

/// Accumulates a frame script.
class SessionBuilder {
 public:
  SessionBuilder(const UserProfile& profile, uint64_t seed,
                 MotionParams params = MotionParams());

  /// Holds the current pose.
  SessionBuilder& Still(double seconds);
  /// Returns to neutral and idles.
  SessionBuilder& Idle(double seconds);
  /// Moves to the start pose of `shape`, optionally holds still (dwell),
  /// performs the gesture, optionally holds again.
  SessionBuilder& Perform(const GestureShape& shape, double dwell_s = 0.0);
  /// Random hand wandering (negative control).
  SessionBuilder& Distract(double seconds);

  const std::vector<SkeletonFrame>& frames() const { return frames_; }
  std::vector<SkeletonFrame> TakeFrames() { return std::move(frames_); }

 private:
  void Append(std::vector<SkeletonFrame> part);

  FrameSynthesizer synth_;
  std::vector<SkeletonFrame> frames_;
};

/// Registers the raw "kinect" stream in `engine` (no view).
Status RegisterKinectStream(stream::StreamEngine* engine);

/// Registers a raw kinect stream under a custom name (e.g. the
/// per-session "alice/kinect" streams of the multi-user runtime).
Status RegisterKinectStream(stream::StreamEngine* engine,
                            const std::string& name);

/// Pushes every frame into `stream_name` (default "kinect") synchronously.
Status PlayFrames(stream::StreamEngine* engine,
                  const std::vector<SkeletonFrame>& frames,
                  const std::string& stream_name = "kinect");

}  // namespace epl::kinect

#endif  // EPL_KINECT_SENSOR_H_
