#include "kinect/skeleton.h"

#include "common/logging.h"

namespace epl::kinect {
namespace {

constexpr std::string_view kJointNames[kNumJoints] = {
    "head",      "neck",   "torso",  "lShoulder", "lElbow",
    "lHand",     "rShoulder", "rElbow", "rHand",  "lHip",
    "lKnee",     "lFoot",  "rHip",   "rKnee",     "rFoot",
};

}  // namespace

std::string_view JointName(JointId joint) {
  return kJointNames[static_cast<size_t>(joint)];
}

Result<JointId> JointFromName(std::string_view name) {
  for (int i = 0; i < kNumJoints; ++i) {
    if (kJointNames[i] == name) {
      return static_cast<JointId>(i);
    }
  }
  return NotFoundError("unknown joint: " + std::string(name));
}

const std::array<JointId, kNumJoints>& AllJoints() {
  static const std::array<JointId, kNumJoints>* joints = [] {
    auto* array = new std::array<JointId, kNumJoints>();
    for (int i = 0; i < kNumJoints; ++i) {
      (*array)[i] = static_cast<JointId>(i);
    }
    return array;
  }();
  return *joints;
}

const stream::Schema& KinectSchema() {
  static const stream::Schema* schema = [] {
    auto* built = new stream::Schema();
    built->AddField("player");
    for (JointId joint : AllJoints()) {
      std::string prefix(JointName(joint));
      built->AddField(prefix + "_x");
      built->AddField(prefix + "_y");
      built->AddField(prefix + "_z");
    }
    EPL_CHECK(built->Validate().ok());
    return built;
  }();
  return *schema;
}

stream::Event FrameToEvent(const SkeletonFrame& frame) {
  stream::Event event;
  event.timestamp = frame.timestamp;
  event.values.reserve(1 + 3 * kNumJoints);
  event.values.push_back(static_cast<double>(frame.player));
  for (const Vec3& joint : frame.joints) {
    event.values.push_back(joint.x);
    event.values.push_back(joint.y);
    event.values.push_back(joint.z);
  }
  return event;
}

Result<SkeletonFrame> FrameFromEvent(const stream::Event& event) {
  if (event.values.size() != 1 + 3 * kNumJoints) {
    return InvalidArgumentError("event is not a kinect frame");
  }
  SkeletonFrame frame;
  frame.timestamp = event.timestamp;
  frame.player = static_cast<int>(event.values[0]);
  for (int i = 0; i < kNumJoints; ++i) {
    frame.joints[i] = Vec3(event.values[1 + 3 * i], event.values[2 + 3 * i],
                           event.values[3 + 3 * i]);
  }
  return frame;
}

}  // namespace epl::kinect
