// Gesture synthesizer: produces 30 Hz skeleton frame sequences for a
// parameterized user performing parametric gesture shapes, with sensor
// noise, body sway, and per-performance amplitude/timing variation.
//
// This module replaces the physical Kinect camera + human demonstrator of
// the paper (see DESIGN.md "Substitutions"). All randomness is seeded.

#ifndef EPL_KINECT_SYNTHESIZER_H_
#define EPL_KINECT_SYNTHESIZER_H_

#include <vector>

#include "common/rng.h"
#include "kinect/body_model.h"
#include "kinect/gesture_shapes.h"

namespace epl::kinect {

struct MotionParams {
  /// Gesture duration; 0 uses the shape's nominal duration.
  double duration_s = 0.0;
  /// Sensor frame rate.
  double fps = kSensorFps;
  /// Per-joint, per-axis Gaussian sensor noise (mm).
  double noise_stddev_mm = 5.0;
  /// Std-dev of the per-performance amplitude factor (0.05 = +-5%).
  double amplitude_jitter = 0.05;
  /// Strength of the per-performance timing skew.
  double time_warp = 0.08;
  /// Low-frequency whole-body sway amplitude (mm).
  double sway_mm = 3.0;
};

/// Stateful frame generator: keeps track of simulated time, current hand
/// pose and the noise stream, so consecutive segments join smoothly.
class FrameSynthesizer {
 public:
  FrameSynthesizer(const UserProfile& profile, uint64_t seed,
                   MotionParams params = MotionParams());

  const BodyModel& body() const { return body_; }
  const MotionParams& params() const { return params_; }
  TimePoint now() const { return now_; }

  /// Holds the current pose for `seconds` (noise and sway continue).
  std::vector<SkeletonFrame> Still(double seconds);

  /// Smoothly moves the hands to the given user-space offsets over
  /// `seconds` (default transition time if <= 0).
  std::vector<SkeletonFrame> MoveTo(const Vec3& right_offset,
                                    const Vec3& left_offset,
                                    double seconds = 0.0);

  /// Moves to the shape's start pose, then performs the gesture once.
  /// The performance gets a random amplitude factor and timing skew.
  std::vector<SkeletonFrame> PerformGesture(const GestureShape& shape);

  /// Returns to neutral and stays there (with sway/noise).
  std::vector<SkeletonFrame> Idle(double seconds);

  /// Random smooth hand wandering (negative-control motion for
  /// false-positive experiments).
  std::vector<SkeletonFrame> Distract(double seconds);

 private:
  SkeletonFrame EmitFrame();
  std::vector<SkeletonFrame> Interpolate(const Vec3& right_to,
                                         const Vec3& left_to, double seconds);

  BodyModel body_;
  MotionParams params_;
  Rng rng_;
  TimePoint now_ = 0;
  Duration frame_period_;
  Vec3 right_offset_;
  Vec3 left_offset_;
};

/// Convenience: one gesture performance for `profile` starting at t=0 with
/// `lead_s` of stillness before and after (what a recorded sample looks
/// like).
std::vector<SkeletonFrame> SynthesizeSample(const UserProfile& profile,
                                            const GestureShape& shape,
                                            uint64_t seed,
                                            MotionParams params = {},
                                            double lead_s = 0.0);

}  // namespace epl::kinect

#endif  // EPL_KINECT_SYNTHESIZER_H_
