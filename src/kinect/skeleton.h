// Skeleton model: the 15 OpenNI joints tracked by the (simulated) Kinect.
//
// Coordinate system (camera space, millimeters, matching the paper's
// Fig. 1 sensor trace): origin at the camera, X to the camera's right,
// Y up, Z depth away from the camera. A user standing in front of the
// camera and facing it has "in front of the user" at decreasing Z.

#ifndef EPL_KINECT_SKELETON_H_
#define EPL_KINECT_SKELETON_H_

#include <array>
#include <string>

#include "common/result.h"
#include "common/time_util.h"
#include "common/vec3.h"
#include "stream/event.h"
#include "stream/schema.h"

namespace epl::kinect {

enum class JointId : int {
  kHead = 0,
  kNeck,
  kTorso,
  kLeftShoulder,
  kLeftElbow,
  kLeftHand,
  kRightShoulder,
  kRightElbow,
  kRightHand,
  kLeftHip,
  kLeftKnee,
  kLeftFoot,
  kRightHip,
  kRightKnee,
  kRightFoot,
};

inline constexpr int kNumJoints = 15;

/// Field-name prefix used in schemas and queries, e.g. "rHand" (paper
/// naming: rHand_x, torso_z, ...).
std::string_view JointName(JointId joint);

/// Inverse of JointName.
Result<JointId> JointFromName(std::string_view name);

/// All joints in enum order.
const std::array<JointId, kNumJoints>& AllJoints();

/// One sensor reading: positions of all joints at one instant.
struct SkeletonFrame {
  TimePoint timestamp = 0;
  int player = 1;
  std::array<Vec3, kNumJoints> joints;

  const Vec3& joint(JointId id) const {
    return joints[static_cast<size_t>(id)];
  }
  Vec3& joint(JointId id) { return joints[static_cast<size_t>(id)]; }
};

/// Schema of the raw `kinect` stream: "player", then "<joint>_x|y|z" for
/// every joint in enum order (46 fields).
const stream::Schema& KinectSchema();

/// Converts a frame to an event of KinectSchema().
stream::Event FrameToEvent(const SkeletonFrame& frame);

/// Parses an event of KinectSchema() back into a frame.
Result<SkeletonFrame> FrameFromEvent(const stream::Event& event);

/// The paper streams at 30 Hz.
inline constexpr double kSensorFps = 30.0;
inline constexpr Duration kFramePeriod =
    static_cast<Duration>(kSecond / kSensorFps);

}  // namespace epl::kinect

#endif  // EPL_KINECT_SKELETON_H_
