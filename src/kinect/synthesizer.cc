#include "kinect/synthesizer.h"

#include <cmath>

#include "common/logging.h"

namespace epl::kinect {
namespace {

double SmoothStep(double u) { return u * u * (3.0 - 2.0 * u); }

double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

FrameSynthesizer::FrameSynthesizer(const UserProfile& profile, uint64_t seed,
                                   MotionParams params)
    : body_(profile),
      params_(params),
      rng_(seed),
      frame_period_(static_cast<Duration>(kSecond / params.fps)),
      right_offset_(NeutralRightHandOffset()),
      left_offset_(NeutralLeftHandOffset()) {
  EPL_CHECK(params.fps > 0.0);
}

SkeletonFrame FrameSynthesizer::EmitFrame() {
  SkeletonFrame frame = body_.PoseFrame(now_, right_offset_, left_offset_);
  // Whole-body sway: slow drift of every joint.
  double t = ToSeconds(now_);
  Vec3 sway(params_.sway_mm * std::sin(2.0 * M_PI * 0.31 * t), 0.0,
            params_.sway_mm * std::cos(2.0 * M_PI * 0.23 * t));
  for (Vec3& joint : frame.joints) {
    joint += sway;
    joint.x += rng_.Gaussian(0.0, params_.noise_stddev_mm);
    joint.y += rng_.Gaussian(0.0, params_.noise_stddev_mm);
    joint.z += rng_.Gaussian(0.0, params_.noise_stddev_mm);
  }
  now_ += frame_period_;
  return frame;
}

std::vector<SkeletonFrame> FrameSynthesizer::Still(double seconds) {
  int n = std::max(1, static_cast<int>(std::lround(seconds * params_.fps)));
  std::vector<SkeletonFrame> frames;
  frames.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    frames.push_back(EmitFrame());
  }
  return frames;
}

std::vector<SkeletonFrame> FrameSynthesizer::Interpolate(const Vec3& right_to,
                                                         const Vec3& left_to,
                                                         double seconds) {
  int n = std::max(1, static_cast<int>(std::lround(seconds * params_.fps)));
  Vec3 right_from = right_offset_;
  Vec3 left_from = left_offset_;
  std::vector<SkeletonFrame> frames;
  frames.reserve(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    double u = SmoothStep(static_cast<double>(i) / n);
    right_offset_ = Vec3::Lerp(right_from, right_to, u);
    left_offset_ = Vec3::Lerp(left_from, left_to, u);
    frames.push_back(EmitFrame());
  }
  return frames;
}

std::vector<SkeletonFrame> FrameSynthesizer::MoveTo(const Vec3& right_offset,
                                                    const Vec3& left_offset,
                                                    double seconds) {
  if (seconds <= 0.0) {
    seconds = 0.35;
  }
  return Interpolate(right_offset, left_offset, seconds);
}

std::vector<SkeletonFrame> FrameSynthesizer::PerformGesture(
    const GestureShape& shape) {
  std::vector<SkeletonFrame> frames =
      MoveTo(shape.right_path(0.0), shape.left_path(0.0));

  double duration =
      params_.duration_s > 0.0 ? params_.duration_s : shape.nominal_duration_s;
  int n = std::max(2, static_cast<int>(std::lround(duration * params_.fps)));
  double amplitude = 1.0 + rng_.Gaussian(0.0, params_.amplitude_jitter);
  double warp = rng_.Gaussian(0.0, params_.time_warp);
  for (int i = 1; i <= n; ++i) {
    double u = SmoothStep(static_cast<double>(i) / n);
    double t = Clamp01(u + warp * std::sin(M_PI * u));
    right_offset_ = shape.right_path(t) * amplitude;
    left_offset_ = shape.left_path(t) * amplitude;
    frames.push_back(EmitFrame());
  }
  return frames;
}

std::vector<SkeletonFrame> FrameSynthesizer::Idle(double seconds) {
  std::vector<SkeletonFrame> frames =
      MoveTo(NeutralRightHandOffset(), NeutralLeftHandOffset());
  double transition = static_cast<double>(frames.size()) / params_.fps;
  if (seconds > transition) {
    std::vector<SkeletonFrame> rest = Still(seconds - transition);
    frames.insert(frames.end(), rest.begin(), rest.end());
  }
  return frames;
}

std::vector<SkeletonFrame> FrameSynthesizer::Distract(double seconds) {
  std::vector<SkeletonFrame> frames;
  double remaining = seconds;
  while (remaining > 0.05) {
    double segment = std::min(remaining, rng_.Uniform(0.5, 0.9));
    Vec3 target(rng_.Uniform(-350.0, 650.0), rng_.Uniform(-300.0, 600.0),
                rng_.Uniform(-450.0, 0.0));
    std::vector<SkeletonFrame> part =
        Interpolate(target, left_offset_, segment);
    frames.insert(frames.end(), part.begin(), part.end());
    remaining -= segment;
  }
  return frames;
}

std::vector<SkeletonFrame> SynthesizeSample(const UserProfile& profile,
                                            const GestureShape& shape,
                                            uint64_t seed, MotionParams params,
                                            double lead_s) {
  FrameSynthesizer synth(profile, seed, params);
  // Jump to the start pose quickly; these frames are discarded so that the
  // sample contains only the gesture (what the recorder delivers to the
  // learner), optionally padded with stillness.
  synth.MoveTo(shape.right_path(0.0), shape.left_path(0.0), 0.05);
  std::vector<SkeletonFrame> frames;
  auto append = [&frames](std::vector<SkeletonFrame> part) {
    frames.insert(frames.end(), part.begin(), part.end());
  };
  if (lead_s > 0.0) {
    append(synth.Still(lead_s));
  }
  append(synth.PerformGesture(shape));
  if (lead_s > 0.0) {
    append(synth.Still(lead_s));
  }
  return frames;
}

}  // namespace epl::kinect
