#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "test_util.h"

namespace epl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = NotFoundError("file.csv").WithContext("loading trace");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "loading trace: file.csv");
}

TEST(StatusTest, WithContextIsNoOpOnOk) {
  Status s = OkStatus().WithContext("context");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

Status FailingFunction() { return InternalError("inner"); }

Status PropagatingFunction() {
  EPL_RETURN_IF_ERROR(FailingFunction());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagatingFunction();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> QuarterOf(int x) {
  EPL_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  EPL_ASSERT_OK_AND_ASSIGN(int q, QuarterOf(8));
  EXPECT_EQ(q, 2);
  Result<int> failure = QuarterOf(6);  // 6/2 = 3 is odd.
  ASSERT_FALSE(failure.ok());
  EXPECT_EQ(failure.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(LoggingTest, CaptureRecordsMessages) {
  ScopedLogCapture capture;
  EPL_LOG(Info) << "hello " << 42;
  EXPECT_TRUE(capture.Contains("hello 42"));
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].level, LogLevel::kInfo);
}

TEST(LoggingTest, WarningLevelRecorded) {
  ScopedLogCapture capture;
  EPL_LOG(Warning) << "careful";
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].level, LogLevel::kWarning);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  EPL_CHECK(1 + 1 == 2) << "should not fire";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ EPL_CHECK(false) << "boom"; }, "boom");
}

}  // namespace
}  // namespace epl
