// Equivalence properties of the shared multi-pattern engine: a
// MultiPatternMatcher / MultiMatchOperator fed a synthesized kinect
// workload must produce exactly the matches of N independent NfaMatchers /
// MatchOperators, in both dominant and exhaustive mode.

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cep/multi_match_operator.h"
#include "cep/multi_matcher.h"
#include "cep_workload_test_util.h"
#include "core/query_gen.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "query/compiler.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using testing::CompileDefinitions;
using testing::TrainedDefinitions;
using testing::Workload;


/// A minimal 2-pose definition for deployment plumbing tests (does not
/// need to fire on the workload).
core::GestureDefinition SyntheticDefinition(const std::string& name,
                                            const std::string& source) {
  core::GestureDefinition definition;
  definition.name = name;
  definition.source_stream = source;
  definition.joints = {kinect::JointId::kRightHand};
  for (int i = 0; i < 2; ++i) {
    core::PoseWindow pose;
    core::JointWindow window;
    window.center = Vec3(640.0 * i, 150.0, -150.0);
    window.half_width = Vec3(60, 60, 60);
    pose.joints[kinect::JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    definition.poses.push_back(pose);
  }
  return definition;
}

/// A pattern whose first pose is NOT interval-decomposable (a disjunction
/// of two lateral zones), exercising the bank's fallback path.
query::CompiledQuery CompileFancyQuery() {
  ExprPtr zones = Expr::Binary(
      BinaryOp::kOr, Expr::RangePredicate("rHand_x", -300, 150),
      Expr::RangePredicate("rHand_x", 300, 150));
  std::vector<PatternExprPtr> children;
  children.push_back(PatternExpr::Pose("kinect", std::move(zones)));
  children.push_back(PatternExpr::Pose(
      "kinect", Expr::RangePredicate("rHand_y", 150, 120)));
  query::ParsedQuery parsed;
  parsed.name = "fancy";
  parsed.pattern =
      PatternExpr::Sequence(std::move(children), 2 * kSecond);
  Result<query::CompiledQuery> query =
      query::CompileQuery(parsed, kinect::KinectSchema());
  EPL_CHECK(query.ok()) << query.status();
  return std::move(query).value();
}

std::vector<TimePoint> Flatten(const std::vector<PatternMatch>& matches) {
  std::vector<TimePoint> flat;
  for (const PatternMatch& match : matches) {
    flat.insert(flat.end(), match.state_times.begin(),
                match.state_times.end());
    flat.push_back(-1);  // separator
  }
  return flat;
}

class MultiMatcherEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiMatcherEquivalence, MatchesIndependentMatchers) {
  const int seed = std::get<0>(GetParam());
  const bool exhaustive = std::get<1>(GetParam()) != 0;

  std::vector<query::CompiledQuery> queries =
      CompileDefinitions(TrainedDefinitions(12));
  queries.push_back(CompileFancyQuery());

  MatcherOptions options;
  options.mode = exhaustive ? MatcherOptions::Mode::kExhaustive
                            : MatcherOptions::Mode::kDominant;
  MultiPatternMatcher multi(options);
  std::vector<std::unique_ptr<NfaMatcher>> independent;
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
    independent.push_back(
        std::make_unique<NfaMatcher>(&query.pattern, options));
  }

  std::vector<std::vector<PatternMatch>> multi_matches(queries.size());
  std::vector<std::vector<PatternMatch>> independent_matches(queries.size());
  std::vector<MultiPatternMatcher::MultiMatch> scratch;
  for (const Event& event : Workload(static_cast<uint64_t>(seed))) {
    scratch.clear();
    multi.Process(event, &scratch);
    for (MultiPatternMatcher::MultiMatch& match : scratch) {
      multi_matches[match.pattern_index].push_back(std::move(match.match));
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      independent[q]->Process(event, &independent_matches[q]);
    }
  }

  // The chain queries are all served by the interval index; only the
  // disjunction pose of the fancy query falls back to its program.
  EXPECT_EQ(multi.bank().num_fallback(), 1);
  EXPECT_GT(multi.bank().num_decomposable(), 0);

  size_t total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Flatten(multi_matches[q]), Flatten(independent_matches[q]))
        << "query " << queries[q].name;
    // The fused matchers never ran an ExprProgram themselves.
    EXPECT_EQ(multi.matcher(static_cast<int>(q)).stats()
                  .predicate_evaluations,
              0u);
    total += multi_matches[q].size();
  }
  // The workload must actually trigger matches for the test to mean
  // anything.
  EXPECT_GT(total, 0u);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndModes, MultiMatcherEquivalence,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(0, 1)));

// The flattened arena keeps per-pattern MatcherStats faithful: a fused
// pattern reports exactly the run-state statistics of a standalone
// matcher, both through the live accessor and after ExtractPattern (the
// path ShardedEngine rebalancing takes).
TEST(MultiMatcherStatsTest, MirrorsStandaloneMatcherStats) {
  std::vector<query::CompiledQuery> queries =
      CompileDefinitions(TrainedDefinitions(6));

  MultiPatternMatcher multi;
  std::vector<std::unique_ptr<NfaMatcher>> independent;
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
    independent.push_back(std::make_unique<NfaMatcher>(&query.pattern));
  }

  std::vector<MultiPatternMatcher::MultiMatch> scratch;
  std::vector<PatternMatch> sink;
  for (const Event& event : Workload(21)) {
    multi.Process(event, &scratch);
    for (auto& matcher : independent) {
      matcher->Process(event, &sink);
    }
  }

  for (size_t q = 0; q < queries.size(); ++q) {
    const MatcherStats& expected = independent[q]->stats();
    const MatcherStats& fused = multi.matcher(static_cast<int>(q)).stats();
    EXPECT_EQ(fused.events, expected.events) << queries[q].name;
    EXPECT_EQ(fused.matches, expected.matches) << queries[q].name;
    EXPECT_EQ(fused.peak_runs, expected.peak_runs) << queries[q].name;
    // Every predicate read the standalone matcher performs (programs plus
    // per-event memo hits) is a shared-bank hit in the fused runtime.
    EXPECT_EQ(fused.predicate_cache_hits,
              expected.predicate_evaluations + expected.predicate_cache_hits)
        << queries[q].name;
    EXPECT_EQ(fused.predicate_evaluations, 0u) << queries[q].name;
  }

  // Extraction (how rebalancing moves a query between shards) carries the
  // same numbers out with the matcher.
  std::unique_ptr<NfaMatcher> extracted = multi.ExtractPattern(2);
  EXPECT_EQ(extracted->stats().events, independent[2]->stats().events);
  EXPECT_EQ(extracted->stats().matches, independent[2]->stats().matches);
  EXPECT_EQ(extracted->active_run_count(),
            independent[2]->active_run_count());
}

using testing::DetectionRecord;

TEST(MultiMatchOperatorTest, FusedDeploymentMatchesPerQueryDeployment) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(8);
  std::vector<Event> events = Workload(11);

  std::vector<DetectionRecord> per_query;
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    for (const core::GestureDefinition& definition : definitions) {
      EPL_ASSERT_OK(core::DeployGesture(
                        &engine, definition,
                        [&per_query](const Detection& detection) {
                          per_query.push_back({detection.name,
                                               detection.time,
                                               detection.pose_times});
                        })
                        .status());
    }
    EXPECT_EQ(engine.deployment_count(), definitions.size());
    for (const Event& event : events) {
      EPL_ASSERT_OK(engine.Push("kinect", event));
    }
  }

  std::vector<DetectionRecord> fused;
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    EPL_ASSERT_OK(core::DeployGesturesFused(
                      &engine, definitions,
                      [&fused](const Detection& detection) {
                        fused.push_back({detection.name, detection.time,
                                         detection.pose_times});
                      })
                      .status());
    // One subscriber serves all queries.
    EXPECT_EQ(engine.deployment_count(), 1u);
    for (const Event& event : events) {
      EPL_ASSERT_OK(engine.Push("kinect", event));
    }
  }

  EXPECT_GT(per_query.size(), 0u);
  EXPECT_EQ(per_query.size(), fused.size());
  ASSERT_TRUE(per_query == fused);
}

TEST(MultiMatchOperatorTest, RejectsMixedSourceStreams) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  std::vector<query::ParsedQuery> parsed;
  core::GestureDefinition a = SyntheticDefinition("a", "kinect");
  core::GestureDefinition b = SyntheticDefinition("b", "other");
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery qa, core::GenerateQuery(a));
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery qb, core::GenerateQuery(b));
  parsed.push_back(std::move(qa));
  parsed.push_back(std::move(qb));
  Result<query::FusedDeployment> deployed =
      query::DeployQueriesFused(&engine, parsed, nullptr);
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), StatusCode::kInvalidArgument);
}

// Gate groups (the multi-session runtime's sub-linear session skip): a
// matcher fed UNCONJOINED patterns plus their session gates must produce
// exactly the matches of the explicitly conjoined patterns run ungated,
// in both the per-event and the batched flat path, with gated and ungated
// patterns mixed in one matcher.
TEST(MultiPatternMatcherTest, GateGroupsAreOutputExact) {
  // A merged multi-session stream: kinect fields plus a session id that
  // cycles per event, so every gate flips open/shut throughout the run.
  stream::Schema merged = kinect::KinectSchema();
  merged.AddField("session");
  constexpr int kSessions = 3;
  std::vector<Event> events = Workload(123);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].values.push_back(static_cast<double>(i % kSessions));
  }

  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(6);
  std::vector<ExprPtr> gate_exprs;
  std::vector<CompiledPattern> gates;
  for (int k = 0; k < kSessions; ++k) {
    gate_exprs.push_back(
        Expr::RangePredicate("session", static_cast<double>(k), 0.5));
    PatternExprPtr pose =
        PatternExpr::Pose("kinect", gate_exprs.back()->Clone());
    EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern gate,
                             CompiledPattern::Compile(*pose, merged));
    gates.push_back(std::move(gate));
  }
  std::vector<CompiledPattern> conjoined;  // oracle form: gate in the poses
  std::vector<CompiledPattern> bare;       // runtime form: gate separate
  for (size_t q = 0; q < definitions.size(); ++q) {
    EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery parsed,
                             core::GenerateQuery(definitions[q]));
    PatternExprPtr scoped = parsed.pattern->Rescope(
        "", gate_exprs[q % kSessions].get());
    EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern pattern,
                             CompiledPattern::Compile(*scoped, merged));
    conjoined.push_back(std::move(pattern));
    EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern plain_pattern,
                             CompiledPattern::Compile(*parsed.pattern,
                                                      merged));
    bare.push_back(std::move(plain_pattern));
  }
  // Half the patterns run as (bare pattern + enforced gate), half run the
  // conjoined form ungated; mixing exercises group-major ordering against
  // the ungated list.
  auto gate_of = [&](size_t q) -> const CompiledPattern* {
    return q % 2 == 0 ? &gates[q % kSessions] : nullptr;
  };
  auto runtime_pattern = [&](size_t q) -> const CompiledPattern* {
    return q % 2 == 0 ? &bare[q] : &conjoined[q];
  };

  size_t total = 0;
  {
    MultiPatternMatcher plain{MatcherOptions()};
    MultiPatternMatcher gated{MatcherOptions()};
    for (size_t q = 0; q < conjoined.size(); ++q) {
      plain.AddPattern(&conjoined[q]);
      gated.AddPattern(runtime_pattern(q), gate_of(q));
    }
    std::vector<MultiPatternMatcher::MultiMatch> expected, actual;
    for (const Event& event : events) {
      expected.clear();
      actual.clear();
      plain.Process(event, &expected);
      gated.Process(event, &actual);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t m = 0; m < expected.size(); ++m) {
        EXPECT_EQ(actual[m].pattern_index, expected[m].pattern_index);
        EXPECT_EQ(actual[m].match.state_times, expected[m].match.state_times);
      }
      total += expected.size();
    }
  }
  {
    // Batched path, uneven chunks spanning gate flips.
    MultiPatternMatcher plain{MatcherOptions()};
    MultiPatternMatcher gated{MatcherOptions()};
    for (size_t q = 0; q < conjoined.size(); ++q) {
      plain.AddPattern(&conjoined[q]);
      gated.AddPattern(runtime_pattern(q), gate_of(q));
    }
    std::vector<MultiPatternMatcher::MultiMatch> expected, actual;
    size_t pos = 0;
    size_t chunk = 1;
    while (pos < events.size()) {
      const size_t n = std::min(chunk, events.size() - pos);
      expected.clear();
      actual.clear();
      plain.ProcessBatch(events.data() + pos, n, &expected);
      gated.ProcessBatch(events.data() + pos, n, &actual);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t m = 0; m < expected.size(); ++m) {
        EXPECT_EQ(actual[m].pattern_index, expected[m].pattern_index);
        EXPECT_EQ(actual[m].batch_index, expected[m].batch_index);
        EXPECT_EQ(actual[m].match.state_times, expected[m].match.state_times);
      }
      pos += n;
      chunk = chunk % 7 + 2;  // 1,3,5,7,2,4,... varied chunking
    }
  }
  // The workload must actually fire through the cycling session ids.
  EXPECT_GT(total, 0u);
}

TEST(MultiMatchOperatorTest, UndeployRemovesAllQueries) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  std::vector<core::GestureDefinition> definitions = {
      SyntheticDefinition("a", "kinect"), SyntheticDefinition("b", "kinect")};
  EPL_ASSERT_OK_AND_ASSIGN(
      query::FusedDeployment deployment,
      core::DeployGesturesFused(&engine, definitions, nullptr));
  EXPECT_EQ(engine.deployment_count(), 1u);
  EPL_ASSERT_OK(engine.Undeploy(deployment.id));
  EXPECT_EQ(engine.deployment_count(), 0u);
}

}  // namespace
}  // namespace epl::cep
