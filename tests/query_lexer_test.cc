#include <gtest/gtest.h>

#include "query/lexer.h"
#include "test_util.h"

namespace epl::query {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> types;
  for (const Token& token : tokens) {
    types.push_back(token.type);
  }
  return types;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize(""));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("SELECT select SeLeCt MATCHING wiThIn"));
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{TokenType::kSelect, TokenType::kSelect,
                                    TokenType::kSelect, TokenType::kMatching,
                                    TokenType::kWithin, TokenType::kEof}));
}

TEST(LexerTest, IdentifiersKeepCase) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("rHand_x torso_z kinect_t"));
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "rHand_x");
  EXPECT_EQ(tokens[2].text, "kinect_t");
}

TEST(LexerTest, NumbersIncludingFloatsAndExponents) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("42 3.14 0.5 1e3 2.5e-2"));
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.14);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.5);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.025);
}

TEST(LexerTest, StringLiterals) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("\"swipe_right\""));
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "swipe_right");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
  EXPECT_FALSE(Tokenize("\"oops\nnext\"").ok());
}

TEST(LexerTest, OperatorsAndArrow) {
  EPL_ASSERT_OK_AND_ASSIGN(
      std::vector<Token> tokens,
      Tokenize("( ) , ; -> + - * / < <= > >= == = != "));
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kLParen, TokenType::kRParen, TokenType::kComma,
                TokenType::kSemicolon, TokenType::kArrow, TokenType::kPlus,
                TokenType::kMinus, TokenType::kStar, TokenType::kSlash,
                TokenType::kLt, TokenType::kLe, TokenType::kGt, TokenType::kGe,
                TokenType::kEq, TokenType::kEq, TokenType::kNe,
                TokenType::kEof}));
}

TEST(LexerTest, ArrowVersusMinus) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("a->b a-b"));
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kIdentifier, TokenType::kArrow,
                TokenType::kIdentifier, TokenType::kIdentifier,
                TokenType::kMinus, TokenType::kIdentifier, TokenType::kEof}));
}

TEST(LexerTest, CommentsSkipped) {
  EPL_ASSERT_OK_AND_ASSIGN(
      std::vector<Token> tokens,
      Tokenize("select -- a comment\n# another\nmatching"));
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{TokenType::kSelect, TokenType::kMatching,
                                    TokenType::kEof}));
}

TEST(LexerTest, TracksLineNumbers) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("select\nmatching\n  within"));
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  Result<std::vector<Token>> r = Tokenize("a $ b");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(LexerTest, TimeUnitAliases) {
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("seconds second sec ms milliseconds"));
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kSeconds, TokenType::kSeconds, TokenType::kSeconds,
                TokenType::kMilliseconds, TokenType::kMilliseconds,
                TokenType::kEof}));
}

}  // namespace
}  // namespace epl::query
