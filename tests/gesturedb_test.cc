#include <gtest/gtest.h>

#include "common/csv.h"
#include "gesturedb/serialization.h"
#include "gesturedb/store.h"
#include "kinect/synthesizer.h"
#include "test_util.h"

namespace epl::gesturedb {
namespace {

using core::GestureDefinition;
using core::JointWindow;
using core::PoseWindow;
using kinect::JointId;

GestureDefinition SampleDefinition() {
  GestureDefinition def;
  def.name = "swipe_right";
  def.source_stream = "kinect_t";
  def.sample_count = 4;
  def.joints = {JointId::kRightHand, JointId::kLeftHand};
  def.notes = "learned from 4 samples";
  for (int i = 0; i < 3; ++i) {
    PoseWindow pose;
    JointWindow right;
    right.center = Vec3(i * 400.0, 150.0, -120.5);
    right.half_width = Vec3(50, 60, 70);
    if (i == 1) {
      right.active[2] = false;  // exercise axis flags
    }
    pose.joints[JointId::kRightHand] = right;
    JointWindow left;
    left.center = Vec3(-185, -195, 0);
    left.half_width = Vec3(80, 80, 80);
    pose.joints[JointId::kLeftHand] = left;
    pose.max_gap = i == 0 ? 0 : kSecond;
    def.poses.push_back(pose);
  }
  return def;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  GestureDefinition def = SampleDefinition();
  std::string text = Serialize(def);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition loaded, Deserialize(text));
  EXPECT_EQ(loaded.name, def.name);
  EXPECT_EQ(loaded.source_stream, def.source_stream);
  EXPECT_EQ(loaded.sample_count, def.sample_count);
  EXPECT_EQ(loaded.joints, def.joints);
  EXPECT_EQ(loaded.notes, def.notes);
  ASSERT_EQ(loaded.poses.size(), def.poses.size());
  for (size_t i = 0; i < def.poses.size(); ++i) {
    EXPECT_EQ(loaded.poses[i].max_gap, def.poses[i].max_gap);
    for (JointId joint : def.joints) {
      const JointWindow& original = def.poses[i].joints.at(joint);
      const JointWindow& restored = loaded.poses[i].joints.at(joint);
      EXPECT_TRUE(restored.center.ApproxEquals(original.center, 1e-6));
      EXPECT_TRUE(
          restored.half_width.ApproxEquals(original.half_width, 1e-6));
      EXPECT_EQ(restored.active, original.active);
    }
  }
}

TEST(SerializationTest, RejectsMissingHeader) {
  Result<GestureDefinition> r = Deserialize("name: x\nend\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, RejectsTruncatedFile) {
  std::string text = Serialize(SampleDefinition());
  // Drop the trailing "end\n".
  text.resize(text.size() - 4);
  Result<GestureDefinition> r = Deserialize(text);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST(SerializationTest, RejectsMalformedJointLine) {
  std::string text =
      "epl-gesture v1\nname: g\njoints: rHand\n"
      "pose gap_us=0\n  joint rHand center 1 2\nend\n";
  EXPECT_FALSE(Deserialize(text).ok());
}

TEST(SerializationTest, RejectsUnknownJoint) {
  std::string text =
      "epl-gesture v1\nname: g\njoints: tentacle\nend\n";
  EXPECT_FALSE(Deserialize(text).ok());
}

TEST(SerializationTest, RejectsGarbageLine) {
  std::string text = "epl-gesture v1\nname: g\nflux capacitor\nend\n";
  EXPECT_FALSE(Deserialize(text).ok());
}

TEST(SerializationTest, ValidatesDeserializedDefinition) {
  // Structurally parseable but semantically invalid (no poses).
  std::string text = "epl-gesture v1\nname: g\njoints: rHand\nend\n";
  Result<GestureDefinition> r = Deserialize(text);
  ASSERT_FALSE(r.ok());
}

TEST(StoreTest, PutGetListRemove) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  GestureDefinition def = SampleDefinition();
  EPL_ASSERT_OK(store.Put(def));
  EXPECT_TRUE(store.Exists("swipe_right"));

  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition loaded,
                           store.Get("swipe_right"));
  EXPECT_EQ(loaded.name, "swipe_right");
  EXPECT_EQ(loaded.poses.size(), 3u);

  GestureDefinition second = def;
  second.name = "circle";
  EPL_ASSERT_OK(store.Put(second));
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, store.List());
  EXPECT_EQ(names, (std::vector<std::string>{"circle", "swipe_right"}));

  EPL_ASSERT_OK(store.Remove("circle"));
  EXPECT_FALSE(store.Exists("circle"));
  EPL_ASSERT_OK_AND_ASSIGN(names, store.List());
  EXPECT_EQ(names, (std::vector<std::string>{"swipe_right"}));
}

TEST(StoreTest, GetMissingFails) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  Result<GestureDefinition> r = store.Get("ghost");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Remove("ghost").code(), StatusCode::kNotFound);
}

TEST(StoreTest, RejectsBadNames) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  GestureDefinition def = SampleDefinition();
  def.name = "../evil";
  EXPECT_EQ(store.Put(def).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Get("a b").status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreTest, OverwriteUpdatesDefinition) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  GestureDefinition def = SampleDefinition();
  EPL_ASSERT_OK(store.Put(def));
  def.sample_count = 9;
  EPL_ASSERT_OK(store.Put(def));
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition loaded,
                           store.Get("swipe_right"));
  EXPECT_EQ(loaded.sample_count, 9);
}

TEST(StoreTest, CorruptFileSurfacesParseError) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  EPL_ASSERT_OK(WriteStringToFile(dir.path() + "/broken.gesture",
                                  "not a gesture file"));
  Result<GestureDefinition> r = store.Get("broken");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(StoreTest, SamplesRoundTrip) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  kinect::UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 21);
  std::vector<kinect::SkeletonFrame> frames = synth.Still(0.3);

  EPL_ASSERT_OK_AND_ASSIGN(int index0, store.AddSample("swipe_right", frames));
  EXPECT_EQ(index0, 0);
  EPL_ASSERT_OK_AND_ASSIGN(int index1, store.AddSample("swipe_right", frames));
  EXPECT_EQ(index1, 1);
  EPL_ASSERT_OK_AND_ASSIGN(int count, store.SampleCount("swipe_right"));
  EXPECT_EQ(count, 2);

  EPL_ASSERT_OK_AND_ASSIGN(std::vector<kinect::SkeletonFrame> loaded,
                           store.GetSample("swipe_right", 0));
  ASSERT_EQ(loaded.size(), frames.size());
  EXPECT_EQ(loaded[0].timestamp, frames[0].timestamp);
}

TEST(StoreTest, RemoveDropsSamplesToo) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(GestureStore store, GestureStore::Open(dir.path()));
  EPL_ASSERT_OK(store.Put(SampleDefinition()));
  kinect::UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 22);
  EPL_ASSERT_OK(store.AddSample("swipe_right", synth.Still(0.2)).status());
  EPL_ASSERT_OK(store.Remove("swipe_right"));
  EPL_ASSERT_OK_AND_ASSIGN(int count, store.SampleCount("swipe_right"));
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace epl::gesturedb
