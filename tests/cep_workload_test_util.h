// Shared workload/fixture helpers for the sharded-engine and dynamic-query
// tests: synthesized kinect event streams and learned gesture definitions
// (same construction as tests/cep_multi_matcher_test.cc).

#ifndef EPL_TESTS_CEP_WORKLOAD_TEST_UTIL_H_
#define EPL_TESTS_CEP_WORKLOAD_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "core/learner.h"
#include "core/query_gen.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "query/compiler.h"
#include "transform/transform.h"

namespace epl::cep::testing {

/// Pre-rendered kinect workload: swipes interleaved with idle and
/// distractor motion, in raw sensor space (queries read "kinect").
inline std::vector<stream::Event> Workload(uint64_t seed) {
  kinect::SessionBuilder builder(kinect::UserProfile(), seed);
  for (int i = 0; i < 3; ++i) {
    builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
    builder.Idle(0.2);
    builder.Perform(kinect::GestureShapes::RaiseHand(), 0.1);
    builder.Distract(0.3);
  }
  transform::TransformConfig config;
  std::vector<stream::Event> events;
  events.reserve(builder.frames().size());
  for (const kinect::SkeletonFrame& frame : builder.frames()) {
    events.push_back(
        kinect::FrameToEvent(transform::TransformFrame(frame, config)));
  }
  return events;
}

/// Learns a gesture definition from synthesized recordings, reading the
/// raw "kinect" stream (the workload above is already transformed).
inline core::GestureDefinition Train(const kinect::GestureShape& shape,
                                     uint64_t seed) {
  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  for (int i = 0; i < 3; ++i) {
    std::vector<kinect::SkeletonFrame> frames = kinect::SynthesizeSample(
        kinect::UserProfile(), shape, seed + static_cast<uint64_t>(i));
    for (kinect::SkeletonFrame& frame : frames) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    Status status = learner.AddSample(frames);
    EPL_CHECK(status.ok()) << status;
  }
  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok()) << definition.status();
  definition->source_stream = "kinect";
  return std::move(definition).value();
}

/// `count` gesture definitions with unique names: jittered variants of two
/// learned base gestures, so queries are mostly distinct yet all fire on
/// the workload. Trained bases are cached across calls.
inline std::vector<core::GestureDefinition> TrainedDefinitions(int count) {
  static const std::vector<core::GestureDefinition>* bases = [] {
    auto* out = new std::vector<core::GestureDefinition>();
    out->push_back(Train(kinect::GestureShapes::SwipeRight(), 100));
    out->push_back(Train(kinect::GestureShapes::RaiseHand(), 200));
    return out;
  }();
  std::vector<core::GestureDefinition> definitions;
  definitions.reserve(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    core::GestureDefinition variant = (*bases)[q % bases->size()];
    variant.name = variant.name + "_" + std::to_string(q);
    double jitter = 4.0 * ((q / 2) % 3);
    for (core::PoseWindow& pose : variant.poses) {
      for (auto& [joint, window] : pose.joints) {
        (void)joint;
        window.center.y += jitter;
      }
    }
    definitions.push_back(std::move(variant));
  }
  return definitions;
}

/// Compiles the generated query of every definition against the kinect
/// schema.
inline std::vector<query::CompiledQuery> CompileDefinitions(
    const std::vector<core::GestureDefinition>& definitions) {
  std::vector<query::CompiledQuery> compiled;
  compiled.reserve(definitions.size());
  for (const core::GestureDefinition& definition : definitions) {
    Result<query::ParsedQuery> parsed = core::GenerateQuery(definition);
    EPL_CHECK(parsed.ok()) << parsed.status();
    Result<query::CompiledQuery> query =
        query::CompileQuery(*parsed, kinect::KinectSchema());
    EPL_CHECK(query.ok()) << query.status();
    compiled.push_back(std::move(query).value());
  }
  return compiled;
}

/// One recorded detection, comparable across deployments.
struct DetectionRecord {
  std::string name;
  TimePoint time = 0;
  std::vector<TimePoint> pose_times;

  bool operator==(const DetectionRecord& other) const {
    return name == other.name && time == other.time &&
           pose_times == other.pose_times;
  }
};

/// Callback appending (name, time, pose_times) records to `out`.
inline DetectionCallback Recorder(std::vector<DetectionRecord>* out) {
  return [out](const Detection& detection) {
    out->push_back(DetectionRecord{detection.name, detection.time,
                                   detection.pose_times});
  };
}

/// QuerySpec consuming a compiled query (CompiledPattern is move-only, so
/// deployments that need the same query twice compile it twice).
inline MultiMatchOperator::QuerySpec MakeSpec(query::CompiledQuery compiled,
                                              DetectionCallback callback) {
  MultiMatchOperator::QuerySpec spec;
  spec.output_name = std::move(compiled.name);
  spec.pattern = std::move(compiled.pattern);
  spec.measures = std::move(compiled.measures);
  spec.callback = std::move(callback);
  return spec;
}

}  // namespace epl::cep::testing

#endif  // EPL_TESTS_CEP_WORKLOAD_TEST_UTIL_H_
