#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/sampler.h"
#include "kinect/gesture_shapes.h"
#include "kinect/synthesizer.h"
#include "test_util.h"
#include "transform/transform.h"

namespace epl::core {
namespace {

using kinect::JointId;

JointPose HandAt(double x, double y, double z) {
  return {{JointId::kRightHand, Vec3(x, y, z)}};
}

std::vector<SamplePoint> LinearPath(int n, double step_mm) {
  std::vector<SamplePoint> points;
  for (int i = 0; i < n; ++i) {
    SamplePoint point;
    point.timestamp = i * kinect::kFramePeriod;
    point.joints = HandAt(i * step_mm, 0, 0);
    points.push_back(std::move(point));
  }
  return points;
}

TEST(DistanceTest, EuclideanOverJoints) {
  EuclideanDistance metric;
  JointPose a = {{JointId::kRightHand, Vec3(0, 0, 0)},
                 {JointId::kLeftHand, Vec3(0, 0, 0)}};
  JointPose b = {{JointId::kRightHand, Vec3(3, 0, 0)},
                 {JointId::kLeftHand, Vec3(0, 4, 0)}};
  EXPECT_DOUBLE_EQ(metric.Distance(a, b, 1), 5.0);
}

TEST(DistanceTest, ChebyshevTakesMaxAxis) {
  ChebyshevDistance metric;
  EXPECT_DOUBLE_EQ(
      metric.Distance(HandAt(0, 0, 0), HandAt(3, -7, 2), 1), 7.0);
}

TEST(DistanceTest, TupleCountIgnoresPositions) {
  TupleCountDistance metric;
  EXPECT_DOUBLE_EQ(metric.Distance(HandAt(0, 0, 0), HandAt(999, 0, 0), 4),
                   4.0);
}

TEST(DistanceTest, WeightedEuclidean) {
  WeightedEuclideanDistance metric({{JointId::kRightHand, 4.0}});
  EXPECT_DOUBLE_EQ(
      metric.Distance(HandAt(0, 0, 0), HandAt(3, 4, 0), 1), 10.0);
}

TEST(DistanceTest, FactoryByName) {
  EPL_ASSERT_OK_AND_ASSIGN(std::shared_ptr<DistanceMetric> metric,
                           MakeDistanceMetric("chebyshev"));
  EXPECT_EQ(metric->name(), "chebyshev");
  EXPECT_FALSE(MakeDistanceMetric("bogus").ok());
}

TEST(SamplerTest, EmptySampleFails) {
  DistanceSampler sampler;
  EXPECT_FALSE(sampler.Run({}).ok());
}

TEST(SamplerTest, SinglePointYieldsOneCentroid) {
  DistanceSampler sampler;
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary,
                           sampler.Run({SamplePoint{0, HandAt(1, 2, 3)}}));
  ASSERT_EQ(summary.centroids.size(), 1u);
  EXPECT_EQ(summary.centroids[0].support, 1);
  EXPECT_DOUBLE_EQ(summary.path_length, 0.0);
}

TEST(SamplerTest, StationarySampleYieldsOneCentroid) {
  DistanceSampler sampler;
  std::vector<SamplePoint> points = LinearPath(30, 0.0);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  EXPECT_EQ(summary.centroids.size(), 1u);
  EXPECT_EQ(summary.centroids[0].support, 30);
}

TEST(SamplerTest, PathLengthIsSumOfSteps) {
  DistanceSampler sampler;
  std::vector<SamplePoint> points = LinearPath(11, 10.0);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  EXPECT_DOUBLE_EQ(summary.path_length, 100.0);
  EXPECT_DOUBLE_EQ(summary.threshold, 12.0);  // default 12%
}

TEST(SamplerTest, ThresholdPctControlsWindowCount) {
  // 100 points moving 10 mm each: path length 990.
  std::vector<SamplePoint> points = LinearPath(100, 10.0);
  SamplerConfig config;
  config.threshold_pct = 0.25;  // threshold 247.5 -> new window every 25
  DistanceSampler sampler(config);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  EXPECT_EQ(summary.centroids.size(), 4u);
  // Reference-mode centroids sit at the cluster starts.
  EXPECT_DOUBLE_EQ(summary.centroids[0].joints.at(JointId::kRightHand).x,
                   0.0);
  EXPECT_DOUBLE_EQ(summary.centroids[1].joints.at(JointId::kRightHand).x,
                   250.0);  // first point farther than 247.5 from 0
}

TEST(SamplerTest, AbsoluteThresholdOverridesPct) {
  std::vector<SamplePoint> points = LinearPath(100, 10.0);
  SamplerConfig config;
  config.threshold_pct = 0.9;
  config.absolute_threshold = 100.0;
  DistanceSampler sampler(config);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  EXPECT_DOUBLE_EQ(summary.threshold, 100.0);
  EXPECT_EQ(summary.centroids.size(), 10u);
}

TEST(SamplerTest, EndPoseAlwaysRepresented) {
  // Path ends mid-cluster: final partial cluster must still be emitted.
  std::vector<SamplePoint> points = LinearPath(95, 10.0);
  SamplerConfig config;
  config.absolute_threshold = 300.0;
  DistanceSampler sampler(config);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  const PoseCentroid& last = summary.centroids.back();
  // The final centroid references a point near the end of the path.
  EXPECT_GE(last.joints.at(JointId::kRightHand).x, 900.0);
}

TEST(SamplerTest, MeanCentroidModeAverages) {
  std::vector<SamplePoint> points = LinearPath(10, 10.0);  // 0..90
  SamplerConfig config;
  config.absolute_threshold = 1000.0;  // single cluster
  config.centroid_mode = SamplerConfig::CentroidMode::kMean;
  DistanceSampler sampler(config);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  ASSERT_EQ(summary.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.centroids[0].joints.at(JointId::kRightHand).x,
                   45.0);
}

TEST(SamplerTest, TupleCountMetricSamplesEveryX) {
  std::vector<SamplePoint> points = LinearPath(30, 5.0);
  SamplerConfig config;
  config.metric = std::make_shared<TupleCountDistance>();
  config.absolute_threshold = 10.0;  // every 10 tuples
  DistanceSampler sampler(config);
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  EXPECT_EQ(summary.centroids.size(), 3u);
  EXPECT_EQ(summary.centroids[1].sequence, 1);
}

TEST(SamplerTest, SupportSumsToFrameCount) {
  std::vector<SamplePoint> points = LinearPath(77, 10.0);
  DistanceSampler sampler;
  EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
  int total_support = 0;
  for (const PoseCentroid& centroid : summary.centroids) {
    total_support += centroid.support;
  }
  EXPECT_EQ(total_support, 77);
}

// Property: raising the threshold never increases the number of windows
// (coarser sampling), over randomized synthetic gestures.
class SamplerMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplerMonotonicityTest, HigherThresholdNoMoreWindows) {
  kinect::UserProfile profile;
  kinect::MotionParams params;
  params.noise_stddev_mm = 4.0;
  uint64_t seed = 100 + static_cast<uint64_t>(GetParam());
  const char* shapes[] = {"swipe_right", "circle", "raise_hand",
                          "push_forward"};
  kinect::GestureShape shape =
      kinect::GestureShapes::ByName(shapes[GetParam() % 4]).value();
  std::vector<kinect::SkeletonFrame> frames =
      kinect::SynthesizeSample(profile, shape, seed, params);
  for (kinect::SkeletonFrame& frame : frames) {
    frame = transform::TransformFrame(frame, transform::TransformConfig());
  }
  std::vector<SamplePoint> points =
      PointsFromFrames(frames, {JointId::kRightHand});

  size_t previous_count = SIZE_MAX;
  for (double pct : {0.04, 0.08, 0.15, 0.25, 0.4, 0.7}) {
    SamplerConfig config;
    config.threshold_pct = pct;
    DistanceSampler sampler(config);
    EPL_ASSERT_OK_AND_ASSIGN(SampleSummary summary, sampler.Run(points));
    EXPECT_LE(summary.centroids.size(), previous_count)
        << shape.name << " pct=" << pct;
    previous_count = summary.centroids.size();
  }
  EXPECT_GE(previous_count, 1u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SamplerMonotonicityTest,
                         ::testing::Range(0, 12));

TEST(SamplerTest, PointsFromFramesRestrictsJoints) {
  kinect::UserProfile profile;
  kinect::BodyModel model(profile);
  std::vector<kinect::SkeletonFrame> frames = {model.NeutralFrame(0)};
  std::vector<SamplePoint> points =
      PointsFromFrames(frames, {JointId::kRightHand, JointId::kLeftHand});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].joints.size(), 2u);
  EXPECT_TRUE(points[0].joints.count(JointId::kRightHand));
  EXPECT_FALSE(points[0].joints.count(JointId::kTorso));
}

}  // namespace
}  // namespace epl::core
