#include <memory>

#include <gtest/gtest.h>

#include "stream/engine.h"
#include "stream/operators.h"
#include "stream/runner.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::stream {
namespace {

Schema TwoFieldSchema() { return Schema({"a", "b"}); }

TEST(SchemaTest, FieldLookup) {
  Schema schema({"x", "y", "z"});
  EXPECT_EQ(schema.num_fields(), 3);
  EPL_ASSERT_OK_AND_ASSIGN(int idx, schema.FieldIndex("y"));
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(schema.FieldIndex("w").ok());
  EXPECT_TRUE(schema.HasField("z"));
  EXPECT_FALSE(schema.HasField(""));
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  Schema schema({"x", "x"});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEmptyName) {
  Schema schema({"x", ""});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(Schema({"a"}), Schema({"a"}));
  EXPECT_FALSE(Schema({"a"}) == Schema({"b"}));
  EXPECT_EQ(Schema({"a", "b"}).ToString(), "(a, b)");
}

TEST(EventTest, ToStringIncludesTimestampAndValues) {
  Event e(1500, {1.0, 2.5});
  EXPECT_EQ(e.ToString(), "@1500 [1.000, 2.500]");
}

TEST(EngineTest, RegisterAndPush) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  auto sink = std::make_unique<CollectSink>();
  CollectSink* sink_ptr = sink.get();
  EPL_ASSERT_OK_AND_ASSIGN(DeploymentId id, engine.Deploy("s", std::move(sink)));
  (void)id;
  EPL_ASSERT_OK(engine.Push("s", Event(1, {1.0, 2.0})));
  EPL_ASSERT_OK(engine.Push("s", Event(2, {3.0, 4.0})));
  ASSERT_EQ(sink_ptr->events().size(), 2u);
  EXPECT_EQ(sink_ptr->events()[1].values[0], 3.0);
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t count, engine.EventCount("s"));
  EXPECT_EQ(count, 2u);
}

TEST(EngineTest, DuplicateStreamRejected) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  Status s = engine.RegisterStream("s", TwoFieldSchema());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, PushUnknownStreamFails) {
  StreamEngine engine;
  Status s = engine.Push("nope", Event(1, {}));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(EngineTest, PushWrongArityFails) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  Status s = engine.Push("s", Event(1, {1.0}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ViewTransformsEvents) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  // View doubles field 0 and drops field 1.
  auto transform = std::make_unique<MapOperator>([](const Event& e) {
    return Event(e.timestamp, {e.values[0] * 2.0});
  });
  EPL_ASSERT_OK(engine.RegisterView("v", "s", std::move(transform),
                                    Schema({"a2"})));
  auto sink = std::make_unique<CollectSink>();
  CollectSink* sink_ptr = sink.get();
  EPL_ASSERT_OK(engine.Deploy("v", std::move(sink)).status());
  EPL_ASSERT_OK(engine.Push("s", Event(5, {21.0, 0.0})));
  ASSERT_EQ(sink_ptr->events().size(), 1u);
  EXPECT_DOUBLE_EQ(sink_ptr->events()[0].values[0], 42.0);
  EXPECT_EQ(sink_ptr->events()[0].timestamp, 5);
}

TEST(EngineTest, CannotPushIntoView) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EPL_ASSERT_OK(engine.RegisterView(
      "v", "s", std::make_unique<MapOperator>([](const Event& e) { return e; }),
      TwoFieldSchema()));
  Status s = engine.Push("v", Event(1, {1.0, 2.0}));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ViewOnUnknownSourceFails) {
  StreamEngine engine;
  Status s = engine.RegisterView(
      "v", "missing",
      std::make_unique<MapOperator>([](const Event& e) { return e; }),
      TwoFieldSchema());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(EngineTest, UndeployStopsDelivery) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  auto sink = std::make_unique<CountingSink>();
  CountingSink* sink_ptr = sink.get();
  EPL_ASSERT_OK_AND_ASSIGN(DeploymentId id, engine.Deploy("s", std::move(sink)));
  EPL_ASSERT_OK(engine.Push("s", Event(1, {0.0, 0.0})));
  EXPECT_EQ(engine.deployment_count(), 1u);
  EPL_ASSERT_OK(engine.Undeploy(id));
  EXPECT_EQ(engine.deployment_count(), 0u);
  // sink_ptr is dangling after undeploy; only check engine behaviour.
  (void)sink_ptr;
  EPL_ASSERT_OK(engine.Push("s", Event(2, {0.0, 0.0})));
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t count, engine.EventCount("s"));
  EXPECT_EQ(count, 2u);
}

TEST(EngineTest, UndeployUnknownIdFails) {
  StreamEngine engine;
  EXPECT_EQ(engine.Undeploy(99).code(), StatusCode::kNotFound);
}

TEST(EngineTest, StreamNamesSorted) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("b", TwoFieldSchema()));
  EPL_ASSERT_OK(engine.RegisterStream("a", TwoFieldSchema()));
  EXPECT_EQ(engine.StreamNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(OperatorsTest, FilterPassesMatching) {
  FilterOperator filter([](const Event& e) { return e.values[0] > 0; });
  CollectSink sink;
  filter.AddDownstream(&sink);
  EPL_ASSERT_OK(filter.Process(Event(1, {1.0})));
  EPL_ASSERT_OK(filter.Process(Event(2, {-1.0})));
  EPL_ASSERT_OK(filter.Process(Event(3, {2.0})));
  EXPECT_EQ(sink.events().size(), 2u);
}

TEST(OperatorsTest, ProjectSelectsAndReorders) {
  ProjectOperator project({2, 0});
  CollectSink sink;
  project.AddDownstream(&sink);
  EPL_ASSERT_OK(project.Process(Event(1, {10.0, 20.0, 30.0})));
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].values, (std::vector<double>{30.0, 10.0}));
}

TEST(OperatorsTest, ProjectOutOfRangeFails) {
  ProjectOperator project({5});
  Status s = project.Process(Event(1, {1.0}));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(EngineTest, UnregisterStreamFreesTheName) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EPL_ASSERT_OK(engine.UnregisterStream("s"));
  EXPECT_FALSE(engine.HasStream("s"));
  // The name is immediately reusable.
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EXPECT_EQ(engine.UnregisterStream("missing").code(), StatusCode::kNotFound);
}

TEST(EngineTest, UnregisterStreamRefusesWhileDeploymentsRemain) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EPL_ASSERT_OK_AND_ASSIGN(DeploymentId id,
                           engine.Deploy("s", std::make_unique<CollectSink>()));
  EXPECT_EQ(engine.UnregisterStream("s").code(),
            StatusCode::kFailedPrecondition);
  EPL_ASSERT_OK(engine.Undeploy(id));
  EPL_ASSERT_OK(engine.UnregisterStream("s"));
}

TEST(EngineTest, UnregisterStreamRefusesWhileViewsDependOnIt) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EPL_ASSERT_OK(engine.RegisterView(
      "v", "s", std::make_unique<MapOperator>([](const Event& e) { return e; }),
      TwoFieldSchema()));
  EXPECT_EQ(engine.UnregisterStream("s").code(),
            StatusCode::kFailedPrecondition);
  // Removing the view first detaches its transform; then the source goes.
  EPL_ASSERT_OK(engine.UnregisterStream("v"));
  EPL_ASSERT_OK(engine.UnregisterStream("s"));
  EXPECT_FALSE(engine.HasStream("v"));
  EXPECT_FALSE(engine.HasStream("s"));
}

TEST(EngineTest, UnregisterViewStopsEventFlow) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", TwoFieldSchema()));
  EPL_ASSERT_OK(engine.RegisterView(
      "v", "s", std::make_unique<MapOperator>([](const Event& e) { return e; }),
      TwoFieldSchema()));
  EPL_ASSERT_OK(engine.UnregisterStream("v"));
  // Pushing into the source no longer routes through the dead view.
  EPL_ASSERT_OK(engine.Push("s", Event(1, {1.0, 2.0})));
  // Re-registering the view works and sees only new events.
  auto transform =
      std::make_unique<MapOperator>([](const Event& e) { return e; });
  EPL_ASSERT_OK(engine.RegisterView("v", "s", std::move(transform),
                                    TwoFieldSchema()));
  auto sink = std::make_unique<CollectSink>();
  CollectSink* sink_ptr = sink.get();
  EPL_ASSERT_OK(engine.Deploy("v", std::move(sink)).status());
  EPL_ASSERT_OK(engine.Push("s", Event(2, {3.0, 4.0})));
  ASSERT_EQ(sink_ptr->events().size(), 1u);
  EXPECT_EQ(sink_ptr->events()[0].timestamp, 2);
}

TEST(RunnerTest, ProcessesEnqueuedEvents) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", Schema({"v"})));
  auto sink = std::make_unique<CountingSink>();
  CountingSink* sink_ptr = sink.get();
  EPL_ASSERT_OK(engine.Deploy("s", std::move(sink)).status());

  EngineRunner runner(&engine);
  EPL_ASSERT_OK(runner.Start());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(runner.Enqueue("s", Event(i, {static_cast<double>(i)})));
  }
  EPL_ASSERT_OK(runner.Stop());
  EXPECT_EQ(sink_ptr->count(), 100u);
  EXPECT_EQ(runner.processed(), 100u);
}

TEST(RunnerTest, SurfacesEngineErrors) {
  StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", Schema({"v"})));
  EngineRunner runner(&engine);
  EPL_ASSERT_OK(runner.Start());
  ASSERT_TRUE(runner.Enqueue("unknown", Event(1, {1.0})));
  Status s = runner.Stop();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(RunnerTest, DoubleStartFails) {
  StreamEngine engine;
  EngineRunner runner(&engine);
  EPL_ASSERT_OK(runner.Start());
  EXPECT_EQ(runner.Start().code(), StatusCode::kFailedPrecondition);
  EPL_ASSERT_OK(runner.Stop());
}

}  // namespace
}  // namespace epl::stream
